//! The telemetry design invariant (ISSUE: engine-wide telemetry layer):
//! after `run_until_drained()`, commands-enqueued must equal
//! commands-executed for every data object — under both the cooperative
//! single-threaded runtime and the real-thread runtime.

use eris_core::prelude::*;
use eris_core::DataObjectId;
use std::time::Duration;

fn engine(nodes: u16, cores: u16) -> Engine {
    Engine::new(
        eris_numa::machines::custom_machine("t", nodes, cores, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            collect_results: true,
            tree: PrefixTreeConfig::new(8, 32),
            ..Default::default()
        },
    )
}

#[test]
fn conservation_single_threaded_mixed_workload() {
    let domain: u64 = 1 << 16;
    let mut e = engine(4, 2);
    let idx = e.create_index("t", domain);
    let col = e.create_column("c");
    e.bulk_load_index(idx, (0..domain).step_by(3).map(|k| (k, k + 1)));
    e.bulk_load_column(col, 0..1000u64);

    let mut ticket = 0u64;
    let num_aeus = e.num_aeus() as u32;
    for round in 0..50u64 {
        let via = AeuId((round as u32 * 7) % num_aeus);
        ticket += 1;
        // Unicast-ish: point lookups land on few partitions.
        e.submit(
            via,
            DataCommand {
                object: idx,
                ticket,
                payload: Payload::Lookup {
                    keys: (0..16).map(|i| (round * 31 + i * 97) % domain).collect(),
                },
            },
        )
        .unwrap();
        ticket += 1;
        // Upserts.
        e.submit(
            via,
            DataCommand {
                object: idx,
                ticket,
                payload: Payload::Upsert {
                    pairs: (0..8)
                        .map(|i| ((round * 131 + i) % domain, round))
                        .collect(),
                },
            },
        )
        .unwrap();
        ticket += 1;
        // Multicast: a full scan fans out to every member AEU.
        e.submit(
            via,
            DataCommand {
                object: col,
                ticket,
                payload: Payload::Scan {
                    pred: Predicate::All,
                    agg: Aggregate::Sum,
                    snapshot: u64::MAX,
                },
            },
        )
        .unwrap();
    }
    e.run_until_drained();

    let snap = e.telemetry();
    assert!(
        snap.conservation_holds(),
        "enqueued == executed per object after drain:\n{snap}"
    );
    for f in &snap.objects {
        assert_eq!(
            f.in_flight(),
            0,
            "object {:?}: enqueued {} vs executed {}",
            f.object,
            f.enqueued,
            f.executed
        );
    }
    // The workload actually exercised every counter family we rely on.
    let t = &snap.totals;
    assert!(t.commands_routed > 0, "routed: {t:?}");
    assert!(t.commands_unicast > 0, "unicast: {t:?}");
    assert!(t.commands_multicast > 0, "multicast (scans fan out): {t:?}");
    assert!(t.flushes > 0 && t.flush_bytes > 0, "flushes: {t:?}");
    assert!(t.buffer_swaps > 0 && t.swapped_bytes > 0, "swaps: {t:?}");
    assert!(t.lookups > 0 && t.upserts > 0 && t.scans > 0, "ops: {t:?}");
    // `commands_routed` counts routing decisions (one per command), while
    // unicast/multicast count per-target deliveries; after a full drain the
    // deliveries are exactly what got executed.
    assert_eq!(
        t.commands_executed,
        t.commands_unicast + t.commands_multicast,
        "every delivered command is executed after drain"
    );
    assert!(
        t.commands_routed <= t.commands_unicast + t.commands_multicast,
        "multicast fan-out can only add deliveries"
    );
    // Per-AEU shards roll up to the engine totals.
    let rollup: u64 = snap.per_aeu.iter().map(|c| c.commands_executed).sum();
    assert_eq!(rollup, t.commands_executed, "shard rollup");
    // Per-node roll-up covers the same commands.
    let node_sum: u64 = snap.per_node.iter().map(|(_, c)| c.commands_executed).sum();
    assert_eq!(node_sum, t.commands_executed, "node rollup");
    // Histograms saw the executed batches.
    assert!(
        snap.swap_batch.count() > 0,
        "swap batch histogram populated"
    );
    assert!(
        snap.exec_group.count() > 0,
        "exec group histogram populated"
    );
}

#[test]
fn conservation_under_real_threads() {
    let domain: u64 = 1 << 16;
    let mut e = engine(2, 4);
    let idx = e.create_index("t", domain);
    e.bulk_load_index(idx, (0..domain).map(|k| (k, k + 1)));
    for a in e.aeu_ids() {
        let mut x = (a.0 as u64 + 11).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let keys: Vec<u64> = (0..16).map(|i| (x >> i) % (1 << 16)).collect();
                out.push(DataCommand {
                    object: DataObjectId(0),
                    ticket: 0,
                    payload: Payload::Lookup { keys },
                });
                out.push(DataCommand {
                    object: DataObjectId(0),
                    ticket: 1,
                    payload: Payload::Upsert {
                        pairs: vec![(x % (1 << 16), x)],
                    },
                });
            })),
        );
    }
    e.run_threaded_for(Duration::from_millis(300));
    // Stop generating, then drain stragglers cooperatively.
    for a in e.aeu_ids() {
        e.set_generator(a, None);
    }
    e.run_until_drained();

    let snap = e.telemetry();
    assert!(
        snap.conservation_holds(),
        "threaded: enqueued == executed per object:\n{snap}"
    );
    let t = &snap.totals;
    assert!(
        t.commands_routed > 1000,
        "threaded run made progress: {t:?}"
    );
    assert_eq!(
        t.commands_unicast + t.commands_multicast,
        t.commands_executed,
        "nothing lost between routing and execution"
    );
    assert!(t.lookups > 0 && t.upserts > 0);
}

#[test]
fn epoch_reports_carry_telemetry_deltas() {
    let domain: u64 = 1 << 14;
    let mut e = engine(2, 2);
    let idx = e.create_index("t", domain);
    e.bulk_load_index(idx, (0..domain).map(|k| (k, k)));

    e.submit(
        AeuId(0),
        DataCommand {
            object: idx,
            ticket: 1,
            payload: Payload::Lookup {
                keys: (0..64).collect(),
            },
        },
    )
    .unwrap();
    // `submit` routes before any epoch runs, so deltas account for
    // everything *after* this baseline.
    let base = e.telemetry().totals;
    let mut delta_routed = 0u64;
    let mut delta_executed = 0u64;
    for _ in 0..50 {
        let r = e.run_epoch();
        delta_routed += r.telemetry.commands_routed;
        delta_executed += r.telemetry.commands_executed;
    }
    let totals = e.telemetry().totals;
    assert_eq!(
        delta_routed,
        totals.commands_routed - base.commands_routed,
        "deltas sum to totals"
    );
    assert_eq!(
        delta_executed,
        totals.commands_executed - base.commands_executed
    );
    assert!(delta_executed > 0, "the lookup actually ran");

    // A drained engine produces an all-quiet epoch delta for sums, while
    // peak gauges keep reporting the high-water mark.
    let quiet = e.run_epoch();
    assert_eq!(quiet.telemetry.commands_routed, 0);
    assert_eq!(quiet.telemetry.commands_executed, 0);
    assert!(quiet.telemetry.peak_incoming_bytes > 0, "gauge survives");
}

#[test]
fn deltas_survive_a_mid_window_counter_reset() {
    // `CounterSnapshot::since` subtracts an earlier baseline — but when
    // `reset_counters` lands inside the window, every counter restarts
    // from zero and a plain saturating subtraction would clamp the whole
    // delta to 0, silently masking all post-reset work.  Snapshots carry
    // a reset generation: across a reset, the post-reset values *are* the
    // delta.
    let mut e = engine(2, 2);
    let idx = e.create_index("t", 1 << 14);
    e.bulk_load_index(idx, (0..100u64).map(|k| (k, k)));

    let lookups = |e: &mut Engine, ticket: u64, n: u64| {
        e.submit(
            AeuId(0),
            DataCommand {
                object: idx,
                ticket,
                payload: Payload::Lookup {
                    keys: (0..n).collect(),
                },
            },
        )
        .unwrap();
        e.run_until_drained();
    };

    lookups(&mut e, 1, 64);
    let before = e.telemetry().totals;

    // Same-generation windows subtract as usual.
    lookups(&mut e, 2, 5);
    let mid = e.telemetry().totals;
    assert_eq!(mid.generation, before.generation);
    assert_eq!(mid.since(&before).lookups, 5, "ordinary window");

    // A reset lands mid-window: the old baseline is void.
    e.reset_counters();
    lookups(&mut e, 3, 7);
    let after = e.telemetry().totals;
    assert_ne!(
        after.generation, before.generation,
        "reset bumps the generation"
    );
    let delta = after.since(&before);
    assert_eq!(
        delta.lookups, 7,
        "post-reset counts are the delta — not clamped to zero: {delta:?}"
    );
    assert!(
        delta.commands_executed > 0,
        "the post-reset lookup's routing work survives: {delta:?}"
    );
}

#[test]
fn trace_ledger_balances_under_cooperative_runtime() {
    // Sampled-latency conservation (ISSUE 4): every command stamped at
    // routing time is either recorded at execution or accounted as
    // dropped — never silently lost.  Dense sampling (1-in-4) so a small
    // workload still stamps plenty.
    let domain: u64 = 1 << 14;
    let mut e = Engine::new(
        eris_numa::machines::custom_machine("t", 4, 2, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            tree: PrefixTreeConfig::new(8, 32),
            routing: RoutingConfig {
                trace_sample_every: 4,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let idx = e.create_index("t", domain);
    e.bulk_load_index(idx, (0..domain).map(|k| (k, k)));
    let num_aeus = e.num_aeus() as u32;
    for round in 0..200u64 {
        let via = AeuId((round as u32 * 5) % num_aeus);
        let payload = if round.is_multiple_of(3) {
            Payload::Upsert {
                pairs: (0..8)
                    .map(|i| ((round * 131 + i) % domain, round))
                    .collect(),
            }
        } else {
            Payload::Lookup {
                keys: (0..16).map(|i| (round * 31 + i * 97) % domain).collect(),
            }
        };
        e.submit(
            via,
            DataCommand {
                object: idx,
                ticket: round,
                payload,
            },
        )
        .unwrap();
    }
    e.run_until_drained();

    let snap = e.telemetry();
    assert!(
        snap.trace.stamped > 0,
        "sampler stamped commands: {:?}",
        snap.trace
    );
    assert!(
        snap.trace.balances(),
        "stamped == traced + dropped after drain: {:?}",
        snap.trace
    );
    // Every traced command landed in exactly one latency series.
    let recorded: u64 = snap.latency.iter().map(|(_, s)| s.queue_wait.count).sum();
    assert_eq!(
        recorded, snap.trace.traced,
        "latency table covers every trace"
    );
    // Both command kinds were sampled (round % 3 breaks sampler aliasing).
    assert!(
        snap.latency.len() >= 2,
        "lookup and upsert series: {:?}",
        snap.latency
    );
    // Ring accounting is exact on every AEU.
    for (i, r) in snap.rings.iter().enumerate() {
        assert_eq!(
            r.emitted,
            r.retained + r.dropped,
            "ring {i} conserves: {r:?}"
        );
        assert!(r.retained <= r.capacity, "ring {i} within capacity");
    }
}

#[test]
fn trace_ledger_balances_under_real_threads() {
    // The same conservation law under the real-thread runtime: stamps are
    // taken on 8 concurrent routers and resolved on whichever AEU executes
    // the batch.
    let mut e = Engine::new(
        eris_numa::machines::custom_machine("t", 4, 2, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            tree: PrefixTreeConfig::new(8, 32),
            routing: RoutingConfig {
                trace_sample_every: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let domain: u64 = 1 << 16;
    let _ = e.create_index("t", domain);
    for a in e.aeu_ids() {
        let mut x = (a.0 as u64 + 17).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let payload = if x.is_multiple_of(4) {
                    Payload::Upsert {
                        pairs: (0..4).map(|i| ((x >> i) % (1 << 16), x)).collect(),
                    }
                } else {
                    Payload::Lookup {
                        keys: (0..16).map(|i| (x >> i) % (1 << 16)).collect(),
                    }
                };
                out.push(DataCommand {
                    object: DataObjectId(0),
                    ticket: 0,
                    payload,
                });
            })),
        );
    }
    e.run_threaded_for(Duration::from_millis(250));
    for a in e.aeu_ids() {
        e.set_generator(a, None);
    }
    e.run_until_drained();

    let snap = e.telemetry();
    assert!(
        snap.trace.stamped > 0,
        "threaded sampler stamped: {:?}",
        snap.trace
    );
    assert!(
        snap.trace.balances(),
        "threaded: stamped == traced + dropped: {:?}",
        snap.trace
    );
    let recorded: u64 = snap.latency.iter().map(|(_, s)| s.queue_wait.count).sum();
    assert_eq!(
        recorded, snap.trace.traced,
        "latency table covers every trace"
    );
    for (i, r) in snap.rings.iter().enumerate() {
        assert_eq!(
            r.emitted,
            r.retained + r.dropped,
            "ring {i} conserves: {r:?}"
        );
    }
    assert!(
        snap.rings.iter().map(|r| r.emitted).sum::<u64>() > 0,
        "execution emitted trace events"
    );
}

#[test]
fn snapshot_renders_text_and_json() {
    let mut e = engine(2, 2);
    let idx = e.create_index("t", 1 << 12);
    e.bulk_load_index(idx, (0..100u64).map(|k| (k, k)));
    e.submit(
        AeuId(0),
        DataCommand {
            object: idx,
            ticket: 1,
            payload: Payload::Lookup {
                keys: vec![1, 2, 3],
            },
        },
    )
    .unwrap();
    e.run_until_drained();
    let snap = e.telemetry();
    let text = snap.to_string();
    assert!(text.contains("telemetry:"), "text render: {text}");
    assert!(text.contains("routed"), "text render: {text}");
    let json = snap.to_json();
    assert!(json.contains("\"commands_routed\""), "json render: {json}");
    assert!(json.contains("\"per_aeu\""), "json render: {json}");
    // JSON stays balanced (cheap structural sanity without a parser).
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "balanced braces"
    );
    assert_eq!(
        json.matches('[').count(),
        json.matches(']').count(),
        "balanced brackets"
    );
}
