//! Crash-matrix: for every fail point compiled into the durability
//! paths, crash a journaled engine there, recover from whatever reached
//! disk, re-drive the post-checkpoint workload in full, and assert the
//! result is indistinguishable from a twin engine that never crashed —
//! identical scan/lookup oracles per object and a balanced conservation
//! ledger.
//!
//! The workload is split so the equality is exact rather than "close":
//!
//! * **WA** (pre-checkpoint): tree/hash/column loads with a skew that
//!   triggers balancing transfers.  WA is always durable — a checkpoint
//!   syncs every journal before it writes a single part file.
//! * **WB** (post-checkpoint): idempotent tree/hash upserts (`key →
//!   f(key)`).  A journal crash may lose any suffix of WB, so recovery
//!   re-drives WB in full; idempotency makes replayed-then-redriven
//!   records harmless.
//!
//! Runs under both the cooperative virtual-time runtime and the real
//! thread-per-AEU runtime (WB via generators on real threads).

use eris_core::prelude::*;
use eris_durability::{
    Durability, FailPoints, RecoveryError, ALL_FAIL_POINTS, FP_CHECKPOINT_PARTIAL,
    FP_CHECKPOINT_PRE_MANIFEST, FP_JOURNAL_PRE_SYNC, FP_JOURNAL_TORN_WRITE, FP_RECOVERY_MID_REPLAY,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const DOMAIN: u64 = 1 << 16;

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eris-crash-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

fn engine() -> Engine {
    Engine::new(
        eris_numa::machines::custom_machine("t", 2, 2, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            collect_results: true,
            tree: PrefixTreeConfig::new(8, 32),
            ..Default::default()
        },
    )
}

struct Objects {
    tree: DataObjectId,
    hash: DataObjectId,
    col: DataObjectId,
}

fn setup_objects(e: &mut Engine) -> Objects {
    Objects {
        tree: e.create_index("orders", DOMAIN),
        hash: e.create_hash_index("customers", DOMAIN),
        col: e.create_column("events"),
    }
}

/// Pre-checkpoint load: skewed tree pairs (to provoke balancing
/// transfers), hash pairs, and column appends.
fn drive_wa(e: &mut Engine, o: &Objects) {
    let tree_pairs: Vec<(u64, u64)> = (0..4000u64).map(|i| (i % (DOMAIN / 8), i * 7)).collect();
    let hash_pairs: Vec<(u64, u64)> = (0..1500u64).map(|i| (i * 11 % DOMAIN, i + 5)).collect();
    let rows: Vec<u64> = (0..2000u64).map(|i| i * 3).collect();
    for (chunk, object) in [(tree_pairs, o.tree), (hash_pairs, o.hash)] {
        for (n, batch) in chunk.chunks(500).enumerate() {
            e.submit(
                AeuId((n % e.num_aeus()) as u32),
                DataCommand {
                    object,
                    ticket: 1000 + n as u64,
                    payload: Payload::Upsert {
                        pairs: batch.to_vec(),
                    },
                },
            )
            .unwrap();
        }
    }
    for (n, batch) in rows.chunks(500).enumerate() {
        e.submit(
            AeuId((n % e.num_aeus()) as u32),
            DataCommand {
                object: o.col,
                ticket: 2000 + n as u64,
                payload: Payload::Upsert {
                    pairs: batch.iter().map(|&r| (0, r)).collect(),
                },
            },
        )
        .unwrap();
    }
    e.run_until_drained();
    // The skewed tree load makes the low AEUs heavy; rebalancing
    // journals RemoveRange/UpsertPairs/SetRange records under a barrier.
    e.run_balancer();
    e.run_until_drained();
}

/// The idempotent post-checkpoint workload: same key set and value
/// function every time it is driven.
fn wb_commands(o: &Objects) -> Vec<DataCommand> {
    let mut cmds = Vec::new();
    for n in 0..16u64 {
        let tree_pairs: Vec<(u64, u64)> = (0..200u64)
            .map(|i| ((n * 331 + i * 17) % DOMAIN, i * 3 + 1))
            .collect();
        let hash_pairs: Vec<(u64, u64)> = (0..120u64)
            .map(|i| ((n * 577 + i * 29) % DOMAIN, i + 9))
            .collect();
        cmds.push(DataCommand {
            object: o.tree,
            ticket: 3000 + n,
            payload: Payload::Upsert { pairs: tree_pairs },
        });
        cmds.push(DataCommand {
            object: o.hash,
            ticket: 3100 + n,
            payload: Payload::Upsert { pairs: hash_pairs },
        });
    }
    cmds
}

fn drive_wb_cooperative(e: &mut Engine, o: &Objects) {
    for (n, cmd) in wb_commands(o).into_iter().enumerate() {
        e.submit(AeuId((n % e.num_aeus()) as u32), cmd).unwrap();
        // Interleave processing so group commits happen mid-workload —
        // that is where the journal fail points live.
        e.run_epoch();
    }
    e.run_until_drained();
}

/// WB on the real thread-per-AEU runtime: every AEU drains its share of
/// the command set through a generator while journaling concurrently.
fn drive_wb_threaded(e: &mut Engine, o: &Objects) {
    let all = wb_commands(o);
    let n_aeus = e.num_aeus();
    for a in 0..n_aeus {
        let mut mine: Vec<DataCommand> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| i % n_aeus == a)
            .map(|(_, c)| c.clone())
            .collect();
        mine.reverse();
        e.set_generator(
            AeuId(a as u32),
            Some(Box::new(move |_epoch, out| {
                if let Some(cmd) = mine.pop() {
                    out.push(cmd);
                }
            })),
        );
    }
    e.run_threaded_for(std::time::Duration::from_millis(200));
    for a in 0..n_aeus {
        e.set_generator(AeuId(a as u32), None);
    }
    e.run_until_drained();
}

/// Everything externally observable about the logical database state:
/// full-scan aggregates per object plus a lookup probe over a key grid.
#[derive(Debug, PartialEq, Eq)]
struct Oracle {
    scans: Vec<(u32, Option<eris_column::scan::AggregateResult>)>,
    lookups: Vec<(u64, u64, Option<u64>)>,
}

fn oracle(e: &mut Engine, o: &Objects) -> Oracle {
    let mut scans = Vec::new();
    for (t, object) in [(9001u64, o.tree), (9002, o.hash), (9003, o.col)] {
        e.submit(
            AeuId(0),
            DataCommand {
                object,
                ticket: t,
                payload: Payload::Scan {
                    pred: Predicate::All,
                    agg: Aggregate::Sum,
                    snapshot: u64::MAX,
                },
            },
        )
        .unwrap();
        e.run_until_drained();
        scans.push((object.0, e.results().combine_scan(t)));
    }
    let keys: Vec<u64> = (0..DOMAIN).step_by(97).collect();
    for (t, object) in [(9004u64, o.tree), (9005, o.hash)] {
        e.submit(
            AeuId(0),
            DataCommand {
                object,
                ticket: t,
                payload: Payload::Lookup { keys: keys.clone() },
            },
        )
        .unwrap();
    }
    e.run_until_drained();
    let mut lookups = e.results().take_lookup_values();
    lookups.sort_unstable();
    Oracle { scans, lookups }
}

/// The never-crashed reference: WA + checkpoint-equivalent drain + WB.
fn twin_oracle() -> Oracle {
    let mut e = engine();
    let o = setup_objects(&mut e);
    drive_wa(&mut e, &o);
    drive_wb_cooperative(&mut e, &o);
    assert!(e.telemetry().conservation_holds());
    oracle(&mut e, &o)
}

/// Crash at `fp`, recover, re-drive WB, compare against `expected`.
fn crash_and_recover(fp: &'static str, threaded: bool, expected: &Oracle) {
    let dir = temp_dir(fp);
    let fail = Arc::new(FailPoints::new());
    let mut dura = Durability::open_with(&dir, engine().num_aeus(), fail.clone()).unwrap();
    let mut e = engine();
    dura.attach(&mut e);
    let o = setup_objects(&mut e);
    drive_wa(&mut e, &o);
    dura.checkpoint(&mut e).unwrap();
    assert!(!fail.crashed(), "WA and checkpoint 0 are crash-free");

    // Arm the point, then run the lossy tail.  Journal points fire
    // during WB's group commits; checkpoint points fire in checkpoint 1;
    // the recovery point fires later, in the first recovery attempt.
    fail.arm(fp, 0);
    if threaded {
        drive_wb_threaded(&mut e, &o);
    } else {
        drive_wb_cooperative(&mut e, &o);
    }
    match fp {
        FP_CHECKPOINT_PARTIAL | FP_CHECKPOINT_PRE_MANIFEST => {
            // The armed point kills checkpoint 1 partway through.
            let _ = dura.checkpoint(&mut e);
            assert!(fail.crashed(), "{fp} must have fired");
        }
        FP_JOURNAL_TORN_WRITE | FP_JOURNAL_PRE_SYNC => {
            assert!(fail.crashed(), "{fp} must have fired during WB");
        }
        _ => {}
    }
    drop(e);
    drop(dura);

    // A recovery attempt that itself crashes is discarded and re-run.
    if fp == FP_RECOVERY_MID_REPLAY {
        let mut half = engine();
        let crash = FailPoints::new();
        crash.arm(FP_RECOVERY_MID_REPLAY, 4);
        match eris_durability::recovery::recover_into(&mut half, &dir, &crash) {
            Err(RecoveryError::InjectedCrash) => {}
            other => panic!("expected an injected mid-replay crash, got {other:?}"),
        }
    }

    let mut r = engine();
    let report = Durability::recover(&mut r, &dir).unwrap();
    assert_eq!(
        report.checkpoint,
        Some(0),
        "checkpoint 0 is the durable base"
    );

    // Re-attach and re-drive the idempotent tail in full.
    let dura = Durability::open(&dir, r.num_aeus()).unwrap();
    dura.attach(&mut r);
    drive_wb_cooperative(&mut r, &o);

    assert!(
        r.telemetry().conservation_holds(),
        "{fp}: recovered ledger must balance (enqueued == executed)"
    );
    assert_eq!(
        &oracle(&mut r, &o),
        expected,
        "{fp}: oracle mismatch vs twin"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_matrix_cooperative() {
    let expected = twin_oracle();
    for fp in ALL_FAIL_POINTS {
        crash_and_recover(fp, false, &expected);
    }
}

#[test]
fn crash_matrix_threaded() {
    let expected = twin_oracle();
    for fp in [FP_JOURNAL_TORN_WRITE, FP_JOURNAL_PRE_SYNC] {
        crash_and_recover(fp, true, &expected);
    }
}

/// Idempotent dynamic-workload traffic: one upsert batch per virtual
/// second against the tree and the hash index, keys drawn from the phase
/// active at that second, values a pure function of the key — so a
/// recovery re-drive converges to the same state no matter which suffix
/// the crash lost.
fn drive_dynamic(
    e: &mut Engine,
    o: &Objects,
    w: &eris_workloads::DynamicWorkload,
    secs: std::ops::Range<u64>,
) {
    for t in secs {
        let (lo, hi) = w.range_at(t as f64);
        let width = hi - lo;
        let pairs = |stride: u64| -> Vec<(u64, u64)> {
            (0..120u64)
                .map(|i| {
                    let k = lo + (t.wrapping_mul(stride).wrapping_add(i.wrapping_mul(17))) % width;
                    (k, k.wrapping_mul(0x9E37_79B9).wrapping_add(1))
                })
                .collect()
        };
        for (object, ticket, stride) in [(o.tree, 5000 + t, 131u64), (o.hash, 5200 + t, 269)] {
            e.submit(
                AeuId((t % e.num_aeus() as u64) as u32),
                DataCommand {
                    object,
                    ticket,
                    payload: Payload::Upsert {
                        pairs: pairs(stride),
                    },
                },
            )
            .unwrap();
        }
        // Interleave processing so group commits happen mid-phase.
        e.run_epoch();
    }
    e.run_until_drained();
}

/// Mid-traffic chaos: the journal fail point fires *between* dynamic
/// workload phases — phase 1 commits durably, the crash lands in the
/// middle of phase 2's traffic — and after recovery plus a full re-drive
/// the engine is indistinguishable from a never-crashed twin.
#[test]
fn mid_traffic_crash_between_dynamic_phases_matches_twin() {
    let w = eris_workloads::DynamicWorkload::paper_schedule(DOMAIN);

    let expected = {
        let mut e = engine();
        let o = setup_objects(&mut e);
        drive_wa(&mut e, &o);
        drive_dynamic(&mut e, &o, &w, 0..w.duration_s());
        assert!(e.telemetry().conservation_holds());
        oracle(&mut e, &o)
    };

    let dir = temp_dir("dynamic");
    let fail = Arc::new(FailPoints::new());
    let mut dura = Durability::open_with(&dir, engine().num_aeus(), fail.clone()).unwrap();
    let mut e = engine();
    dura.attach(&mut e);
    let o = setup_objects(&mut e);
    drive_wa(&mut e, &o);
    dura.checkpoint(&mut e).unwrap();

    // Phase 1 runs crash-free; the fail point is armed exactly at the
    // first workload change, so the crash hits a group commit a couple of
    // syncs into the shifted hot range.
    let boundary = w.change_times()[0];
    drive_dynamic(&mut e, &o, &w, 0..boundary);
    assert!(!fail.crashed(), "phase 1 must be crash-free");
    fail.arm(FP_JOURNAL_PRE_SYNC, 2);
    drive_dynamic(&mut e, &o, &w, boundary..w.duration_s());
    assert!(fail.crashed(), "the crash must fire during phase 2 traffic");
    drop(e);
    drop(dura);

    let mut r = engine();
    let report = Durability::recover(&mut r, &dir).unwrap();
    assert_eq!(
        report.checkpoint,
        Some(0),
        "checkpoint 0 is the durable base"
    );

    let dura = Durability::open(&dir, r.num_aeus()).unwrap();
    dura.attach(&mut r);
    drive_dynamic(&mut r, &o, &w, 0..w.duration_s());

    assert!(
        r.telemetry().conservation_holds(),
        "recovered ledger must balance (enqueued == executed)"
    );
    assert_eq!(oracle(&mut r, &o), expected, "oracle mismatch vs twin");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_without_any_checkpoint_is_journal_only() {
    let dir = temp_dir("no-ckpt");
    let dura = Durability::open(&dir, engine().num_aeus()).unwrap();
    let mut e = engine();
    dura.attach(&mut e);
    let o = setup_objects(&mut e);
    drive_wa(&mut e, &o);
    e.run_until_drained();
    // Sync the journals the way a clean shutdown would, but never
    // checkpoint: recovery must rebuild purely from the logs.
    let expected = oracle(&mut e, &o);
    drop(e);

    let mut r = engine();
    let report = Durability::recover(&mut r, &dir).unwrap();
    assert_eq!(report.checkpoint, None);
    assert!(report.replayed_records > 0);
    assert_eq!(oracle(&mut r, &o), expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repeated_checkpoints_pick_the_newest() {
    let dir = temp_dir("multi-ckpt");
    let mut dura = Durability::open(&dir, engine().num_aeus()).unwrap();
    let mut e = engine();
    dura.attach(&mut e);
    let o = setup_objects(&mut e);
    drive_wa(&mut e, &o);
    assert_eq!(dura.checkpoint(&mut e).unwrap(), 0);
    drive_wb_cooperative(&mut e, &o);
    assert_eq!(dura.checkpoint(&mut e).unwrap(), 1);
    let expected = oracle(&mut e, &o);
    drop(e);

    let mut r = engine();
    let report = Durability::recover(&mut r, &dir).unwrap();
    assert_eq!(report.checkpoint, Some(1));
    // Everything was inside checkpoint 1; only oracle traffic could
    // follow it, and none did — the tails are empty.
    assert_eq!(report.replayed_records, 0);
    assert_eq!(oracle(&mut r, &o), expected);
    std::fs::remove_dir_all(&dir).unwrap();
}
