//! Load-balancer invariants: whatever the algorithm and workload dynamics,
//! no key is ever lost or duplicated, lookups stay correct across
//! repartitionings (including in-flight commands that get forwarded), and
//! adaption actually reduces the imbalance.

use eris_core::prelude::*;
use eris_core::DataObjectId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn skewed_engine(algorithm: BalanceAlgorithm) -> (Engine, DataObjectId, u64) {
    let domain: u64 = 1 << 18;
    let mut e = Engine::new(
        eris_numa::machines::custom_machine("t", 4, 2, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            collect_results: false,
            tree: PrefixTreeConfig::new(8, 32),
            balancer: BalancerConfig {
                enabled: true,
                algorithm,
                threshold_cv: 0.2,
                period_s: 1e-4,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let idx = e.create_index("t", domain);
    e.bulk_load_index(idx, (0..domain).map(|k| (k, k ^ 0xABCD)));
    (e, idx, domain)
}

fn attach_hot_gens(e: &mut Engine, lo: Arc<AtomicU64>, hi: Arc<AtomicU64>) {
    for a in e.aeu_ids() {
        let (lo, hi) = (Arc::clone(&lo), Arc::clone(&hi));
        let mut x = (a.0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                let (lo, hi) = (lo.load(Ordering::Relaxed), hi.load(Ordering::Relaxed));
                let keys = (0..32)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        lo + x % (hi - lo)
                    })
                    .collect();
                out.push(DataCommand {
                    object: DataObjectId(0),
                    ticket: 0,
                    payload: Payload::Lookup { keys },
                });
            })),
        );
    }
}

fn total_keys(e: &Engine, idx: DataObjectId) -> usize {
    e.aeu_ids()
        .iter()
        .map(|a| e.aeu(*a).partition(idx).map_or(0, |p| p.data.len()))
        .sum()
}

fn ranges_are_consistent(e: &Engine, idx: DataObjectId, domain: u64) {
    // Every AEU's recorded range must match what its partition holds, and
    // the ranges must tile the domain.
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for a in e.aeu_ids() {
        let p = e.aeu(a).partition(idx).expect("partition exists");
        ranges.push(p.range);
        if let eris_core::PartitionData::Index(tree) = &p.data {
            // No key outside the recorded range.
            let outside_low = tree.flatten_range(0, p.range.0).len();
            let outside_high = tree.flatten_from(p.range.1).len();
            assert_eq!(
                outside_low + outside_high,
                0,
                "{a:?} holds keys outside its range"
            );
        }
    }
    ranges.sort();
    assert_eq!(ranges[0].0, 0, "first range starts at the domain minimum");
    for w in ranges.windows(2) {
        assert_eq!(w[0].1, w[1].0, "ranges tile without gaps or overlaps");
    }
    assert_eq!(ranges.last().unwrap().1, domain);
}

#[test]
fn one_shot_preserves_everything_under_shifting_hotspots() {
    let (mut e, idx, domain) = skewed_engine(BalanceAlgorithm::OneShot);
    let lo = Arc::new(AtomicU64::new(0));
    let hi = Arc::new(AtomicU64::new(domain));
    attach_hot_gens(&mut e, Arc::clone(&lo), Arc::clone(&hi));
    // Shift the hotspot several times.
    for phase in 0..4u64 {
        lo.store(phase * domain / 8, Ordering::Relaxed);
        hi.store(phase * domain / 8 + domain / 16, Ordering::Relaxed);
        e.run_for_virtual_secs(1.5e-3);
        assert_eq!(total_keys(&e, idx), domain as usize, "phase {phase}");
        ranges_are_consistent(&e, idx, domain);
    }
}

#[test]
fn moving_average_preserves_everything() {
    for k in [1usize, 4, 8] {
        let (mut e, idx, domain) = skewed_engine(BalanceAlgorithm::MovingAverage(k));
        let lo = Arc::new(AtomicU64::new(0));
        let hi = Arc::new(AtomicU64::new(domain / 10));
        attach_hot_gens(&mut e, lo, hi);
        e.run_for_virtual_secs(3e-3);
        assert_eq!(total_keys(&e, idx), domain as usize, "MA-{k}");
        ranges_are_consistent(&e, idx, domain);
    }
}

#[test]
fn lookups_stay_correct_across_rebalancing() {
    // Collect results while the balancer moves partitions underneath:
    // every hit must still return the right value (stray commands are
    // forwarded to the new owner).
    let domain: u64 = 1 << 16;
    let mut e = Engine::new(
        eris_numa::machines::custom_machine("t", 4, 2, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            collect_results: true,
            tree: PrefixTreeConfig::new(8, 32),
            balancer: BalancerConfig {
                enabled: true,
                algorithm: BalanceAlgorithm::OneShot,
                threshold_cv: 0.15,
                period_s: 5e-5,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let idx = e.create_index("t", domain);
    e.bulk_load_index(idx, (0..domain).map(|k| (k, k.wrapping_mul(31))));

    // Skewed generator traffic to force rebalancing...
    let lo = Arc::new(AtomicU64::new(0));
    let hi = Arc::new(AtomicU64::new(domain / 20));
    attach_hot_gens(&mut e, lo, hi);
    // ...plus tracked probe lookups injected between epochs.
    let mut ticket = 1_000_000u64;
    let mut probes: Vec<(u64, u64, Option<u64>)> = Vec::new();
    // Keep only probe answers; drop the background traffic's values each
    // round to bound memory.
    let harvest = |e: &Engine, probes: &mut Vec<(u64, u64, Option<u64>)>| {
        for r in e.results().take_lookup_values() {
            if r.0 >= 1_000_000 {
                probes.push(r);
            }
        }
    };
    for round in 0..40 {
        let key = (round * 1117) % domain;
        ticket += 1;
        e.submit(
            AeuId((round % 8) as u32),
            DataCommand {
                object: idx,
                ticket,
                payload: Payload::Lookup { keys: vec![key] },
            },
        )
        .unwrap();
        for _ in 0..3 {
            e.run_epoch();
        }
        harvest(&e, &mut probes);
    }
    // Detach generators so the engine can drain.
    for a in e.aeu_ids() {
        e.set_generator(a, None);
    }
    e.run_until_drained();
    harvest(&e, &mut probes);
    assert_eq!(probes.len(), 40, "every probe answered exactly once");
    for (_, k, v) in probes {
        assert_eq!(v, Some(k.wrapping_mul(31)), "key {k} correct despite moves");
    }
}

#[test]
fn balancing_reduces_imbalance() {
    let (mut e, idx, domain) = skewed_engine(BalanceAlgorithm::OneShot);
    let lo = Arc::new(AtomicU64::new(0));
    let hi = Arc::new(AtomicU64::new(domain / 16));
    attach_hot_gens(&mut e, lo, hi);
    e.run_for_virtual_secs(2e-3);
    // The hot 1/16 of the domain must now be split across most AEUs.
    let owners: std::collections::BTreeSet<u32> = e
        .aeu_ids()
        .iter()
        .filter(|a| {
            let p = e.aeu(**a).partition(idx).unwrap();
            p.range.0 < domain / 16 && p.range.0 < p.range.1
        })
        .map(|a| a.0)
        .collect();
    assert!(owners.len() >= 6, "hot range split {} ways", owners.len());
}

#[test]
fn disabled_balancer_never_moves_anything() {
    let domain: u64 = 1 << 16;
    let mut e = Engine::new(
        eris_numa::machines::custom_machine("t", 2, 2, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            tree: PrefixTreeConfig::new(8, 32),
            ..Default::default()
        },
    );
    let idx = e.create_index("t", domain);
    e.bulk_load_index(idx, (0..domain).map(|k| (k, k)));
    let before: Vec<usize> = e
        .aeu_ids()
        .iter()
        .map(|a| e.aeu(*a).partition(idx).unwrap().data.len())
        .collect();
    let lo = Arc::new(AtomicU64::new(0));
    let hi = Arc::new(AtomicU64::new(domain / 100));
    attach_hot_gens(&mut e, lo, hi);
    e.run_for_virtual_secs(1e-3);
    let after: Vec<usize> = e
        .aeu_ids()
        .iter()
        .map(|a| e.aeu(*a).partition(idx).unwrap().data.len())
        .collect();
    assert_eq!(before, after);
}

#[test]
fn audited_migrations_match_the_partition_table() {
    // ISSUE 4: every migration in the balancer's audit log must describe
    // an ownership change that the partition table actually shows.  Run
    // until the first `Rebalanced` verdict, stop immediately, and check
    // that each audited range is now owned by its recorded destination.
    use eris_core::BalanceVerdict;

    let (mut e, idx, domain) = skewed_engine(BalanceAlgorithm::OneShot);
    let lo = Arc::new(AtomicU64::new(0));
    let hi = Arc::new(AtomicU64::new(domain / 20));
    attach_hot_gens(&mut e, Arc::clone(&lo), Arc::clone(&hi));

    let mut decision = None;
    for _ in 0..200 {
        e.run_for_virtual_secs(1e-4);
        if let Some(d) = e.monitor().last_decision(idx) {
            if d.verdict == BalanceVerdict::Rebalanced {
                decision = Some(d.clone());
                break;
            }
        }
    }
    let decision = decision.expect("hotspot forced a rebalance within 2e-2 vsecs");
    assert!(
        !decision.migrations.is_empty(),
        "a rebalance audited its transfers"
    );
    assert!(
        decision.access_cv > decision.threshold_cv || decision.exec_cv > decision.threshold_cv,
        "audited CVs justify the trigger: {decision:?}"
    );
    for m in &decision.migrations {
        assert!(m.lo < m.hi, "audited range is non-empty: {m:?}");
        assert!(m.keys > 0, "audited transfer moved keys: {m:?}");
        // Ownership of the moved range — probe both ends and the middle.
        for probe in [m.lo, m.lo + (m.hi - m.lo) / 2, m.hi - 1] {
            assert_eq!(
                e.owner_of(idx, probe),
                Some(AeuId(m.dst as u32)),
                "audit says [{}, {}) moved to aeu {}, table disagrees at {probe}",
                m.lo,
                m.hi,
                m.dst
            );
        }
    }
    // The audit's key totals agree with the engine-wide balancer counters,
    // and with the migration events in the trace rings.
    let audited: u64 = e
        .monitor()
        .audit_log()
        .iter()
        .flat_map(|d| &d.migrations)
        .map(|m| m.keys)
        .sum();
    let snap = e.telemetry();
    assert_eq!(
        audited, snap.balancer.keys_moved,
        "audit == telemetry counter"
    );
    let ring_keys: u64 = e
        .trace_events()
        .iter()
        .filter_map(|ev| match ev.event {
            eris_obs::TraceEvent::Migration { keys, .. } => Some(keys),
            _ => None,
        })
        .sum();
    assert_eq!(ring_keys, audited, "ring migration events == audit log");
    // Nothing was lost or duplicated by the audited moves.
    assert_eq!(total_keys(&e, idx) as u64, domain);
    ranges_are_consistent(&e, idx, domain);
}
