//! The threaded runtime: real OS threads exercising the latch-free
//! incoming-buffer protocol (64-bit descriptor CAS) and the concurrent
//! shared tree under true parallelism.

use eris_core::prelude::*;
use eris_core::DataObjectId;
use eris_index::SharedPrefixTree;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn threaded_engine_loses_no_lookups() {
    let mut e = Engine::new(
        eris_numa::machines::custom_machine("t", 4, 2, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            tree: PrefixTreeConfig::new(8, 32),
            ..Default::default()
        },
    );
    let domain: u64 = 1 << 16;
    let idx = e.create_index("t", domain);
    e.bulk_load_index(idx, (0..domain).map(|k| (k, k + 1)));
    // Every generated key is in the domain, so every lookup must hit:
    // lookups == hits proves no command was lost, duplicated, or corrupted
    // in the buffers.
    let issued = Arc::new(AtomicU64::new(0));
    for a in e.aeu_ids() {
        let mut x = (a.0 as u64 + 5).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let issued = Arc::clone(&issued);
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                let keys: Vec<u64> = (0..32)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x % (1 << 16)
                    })
                    .collect();
                issued.fetch_add(keys.len() as u64, Ordering::Relaxed);
                out.push(DataCommand {
                    object: DataObjectId(0),
                    ticket: 0,
                    payload: Payload::Lookup { keys },
                });
            })),
        );
    }
    e.run_threaded_for(Duration::from_millis(300));
    let c = e.results().counts();
    assert!(c.lookups > 10_000, "made progress: {}", c.lookups);
    assert_eq!(c.lookups, c.lookup_hits, "every in-domain key must hit");
}

#[test]
fn threaded_upserts_are_all_applied() {
    let mut e = Engine::new(
        eris_numa::machines::custom_machine("t", 2, 4, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            tree: PrefixTreeConfig::new(8, 32),
            ..Default::default()
        },
    );
    let domain: u64 = 1 << 20;
    let idx = e.create_index("t", domain);
    // Each AEU upserts a disjoint key slice; afterwards every key must be
    // present exactly once.
    let per_aeu = 2000u64;
    let num_aeus = e.num_aeus() as u64;
    for a in e.aeu_ids() {
        let base = a.0 as u64 * per_aeu;
        let mut next = 0u64;
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                if next >= per_aeu {
                    return;
                }
                let hi = (next + 50).min(per_aeu);
                let pairs: Vec<(u64, u64)> = (next..hi).map(|i| (base + i, base + i + 7)).collect();
                next = hi;
                out.push(DataCommand {
                    object: DataObjectId(0),
                    ticket: a.0 as u64,
                    payload: Payload::Upsert { pairs },
                });
            })),
        );
    }
    e.run_threaded_for(Duration::from_millis(400));
    // Drain any stragglers cooperatively.
    for a in e.aeu_ids() {
        e.set_generator(a, None);
    }
    e.run_until_drained();
    let c = e.results().counts();
    assert_eq!(c.upserts, num_aeus * per_aeu, "all upserts applied");
    assert_eq!(c.inserted_new, num_aeus * per_aeu, "all keys distinct");
    let total: usize = e
        .aeu_ids()
        .iter()
        .map(|a| e.aeu(*a).partition(idx).map_or(0, |p| p.data.len()))
        .sum();
    assert_eq!(total as u64, num_aeus * per_aeu);
}

#[test]
fn shared_tree_concurrent_mixed_workload() {
    // The baseline's latch-free tree under mixed reads/writes from many
    // threads: all writes visible, no garbage reads.
    let tree = Arc::new(SharedPrefixTree::new(PrefixTreeConfig::new(8, 32), 0));
    let threads = 8u64;
    let per = 20_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                for i in 0..per {
                    let k = t * per + i;
                    tree.upsert(k, value_of(k));
                    // Read-back of own writes plus probing others: a probe
                    // either misses (not inserted yet) or returns exactly
                    // the value its writer stored — never garbage.
                    assert_eq!(tree.lookup(k), Some(value_of(k)));
                    let probe = (k * 7919) % (threads * per);
                    if let Some(v) = tree.lookup(probe) {
                        assert_eq!(v, value_of(probe), "garbage value for {probe}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(tree.len(), (threads * per) as usize);
    for k in 0..threads * per {
        assert_eq!(tree.lookup(k), Some(value_of(k)));
    }
}

/// Value a writer stores for key `k` (recognizable, key-derived).
fn value_of(k: u64) -> u64 {
    k.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}
