//! The threaded runtime: real OS threads exercising the latch-free
//! incoming-buffer protocol (64-bit descriptor CAS) and the concurrent
//! shared tree under true parallelism.

use eris_core::prelude::*;
use eris_core::routing::IncomingBuffers;
use eris_core::DataObjectId;
use eris_index::SharedPrefixTree;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Stress depth: the default tier-1 run uses reduced loop depths so the
/// suite stays fast; `ERIS_STRESS=1` (set by the dedicated CI stress job)
/// restores the original full-depth loops.
fn stress() -> bool {
    std::env::var("ERIS_STRESS").is_ok_and(|v| v == "1")
}

fn stress_ms(full: u64, reduced: u64) -> Duration {
    Duration::from_millis(if stress() { full } else { reduced })
}

fn stress_n(full: u64, reduced: u64) -> u64 {
    if stress() {
        full
    } else {
        reduced
    }
}

#[test]
fn threaded_engine_loses_no_lookups() {
    let mut e = Engine::new(
        eris_numa::machines::custom_machine("t", 4, 2, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            tree: PrefixTreeConfig::new(8, 32),
            ..Default::default()
        },
    );
    let domain: u64 = 1 << 16;
    let idx = e.create_index("t", domain);
    e.bulk_load_index(idx, (0..domain).map(|k| (k, k + 1)));
    // Every generated key is in the domain, so every lookup must hit:
    // lookups == hits proves no command was lost, duplicated, or corrupted
    // in the buffers.
    let issued = Arc::new(AtomicU64::new(0));
    for a in e.aeu_ids() {
        let mut x = (a.0 as u64 + 5).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let issued = Arc::clone(&issued);
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                let keys: Vec<u64> = (0..32)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x % (1 << 16)
                    })
                    .collect();
                issued.fetch_add(keys.len() as u64, Ordering::Relaxed);
                out.push(DataCommand {
                    object: DataObjectId(0),
                    ticket: 0,
                    payload: Payload::Lookup { keys },
                });
            })),
        );
    }
    e.run_threaded_for(stress_ms(300, 120));
    let c = e.results().counts();
    assert!(
        c.lookups > stress_n(10_000, 3_000),
        "made progress: {}",
        c.lookups
    );
    assert_eq!(c.lookups, c.lookup_hits, "every in-domain key must hit");
}

#[test]
fn threaded_upserts_are_all_applied() {
    let mut e = Engine::new(
        eris_numa::machines::custom_machine("t", 2, 4, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            tree: PrefixTreeConfig::new(8, 32),
            ..Default::default()
        },
    );
    let domain: u64 = 1 << 20;
    let idx = e.create_index("t", domain);
    // Each AEU upserts a disjoint key slice; afterwards every key must be
    // present exactly once.
    let per_aeu = 2000u64;
    let num_aeus = e.num_aeus() as u64;
    for a in e.aeu_ids() {
        let base = a.0 as u64 * per_aeu;
        let mut next = 0u64;
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                if next >= per_aeu {
                    return;
                }
                let hi = (next + 50).min(per_aeu);
                let pairs: Vec<(u64, u64)> = (next..hi).map(|i| (base + i, base + i + 7)).collect();
                next = hi;
                out.push(DataCommand {
                    object: DataObjectId(0),
                    ticket: a.0 as u64,
                    payload: Payload::Upsert { pairs },
                });
            })),
        );
    }
    e.run_threaded_for(stress_ms(400, 150));
    // Drain any stragglers cooperatively.
    for a in e.aeu_ids() {
        e.set_generator(a, None);
    }
    e.run_until_drained();
    let c = e.results().counts();
    assert_eq!(c.upserts, num_aeus * per_aeu, "all upserts applied");
    assert_eq!(c.inserted_new, num_aeus * per_aeu, "all keys distinct");
    let total: usize = e
        .aeu_ids()
        .iter()
        .map(|a| e.aeu(*a).partition(idx).map_or(0, |p| p.data.len()))
        .sum();
    assert_eq!(total as u64, num_aeus * per_aeu);
}

#[test]
fn shared_tree_concurrent_mixed_workload() {
    // The baseline's latch-free tree under mixed reads/writes from many
    // threads: all writes visible, no garbage reads.
    let tree = Arc::new(SharedPrefixTree::new(PrefixTreeConfig::new(8, 32), 0));
    let threads = 8u64;
    let per = stress_n(20_000, 5_000);
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                for i in 0..per {
                    let k = t * per + i;
                    tree.upsert(k, value_of(k));
                    // Read-back of own writes plus probing others: a probe
                    // either misses (not inserted yet) or returns exactly
                    // the value its writer stored — never garbage.
                    assert_eq!(tree.lookup(k), Some(value_of(k)));
                    let probe = (k * 7919) % (threads * per);
                    if let Some(v) = tree.lookup(probe) {
                        assert_eq!(v, value_of(probe), "garbage value for {probe}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(tree.len(), (threads * per) as usize);
    for k in 0..threads * per {
        assert_eq!(tree.lookup(k), Some(value_of(k)));
    }
}

/// Value a writer stores for key `k` (recognizable, key-derived).
fn value_of(k: u64) -> u64 {
    k.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

#[test]
fn contended_buffer_swap_loses_no_bytes() {
    // Many writers hammer one incoming double buffer while the owner swaps
    // as fast as it can — maximum descriptor-CAS contention.  Every
    // checksummed record must come back exactly once and intact, and the
    // buffer's own telemetry must account for every consumed byte.
    let buf = Arc::new(IncomingBuffers::new(2048));
    let writers = 8u32;
    let per = stress_n(4000, 1500) as u32;
    let stop = Arc::new(AtomicBool::new(false));

    let handles: Vec<_> = (0..writers)
        .map(|t| {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || {
                for i in 0..per {
                    // Record: [len=12][writer:4][seq:4][checksum:4]
                    let sum = (t ^ i).wrapping_mul(0x9E37_79B9);
                    let mut rec = Vec::with_capacity(16);
                    rec.extend_from_slice(&12u32.to_le_bytes());
                    rec.extend_from_slice(&t.to_le_bytes());
                    rec.extend_from_slice(&i.to_le_bytes());
                    rec.extend_from_slice(&sum.to_le_bytes());
                    while buf.write(&rec).is_err() {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    // Owner: swap continuously, even when there is nothing pending — that
    // is the contended case where writers race a mid-swap descriptor.
    let owner = {
        let buf = Arc::clone(&buf);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen: Vec<Vec<u32>> = vec![Vec::new(); writers as usize];
            let mut consumed_bytes = 0u64;
            while !stop.load(Ordering::Acquire) || buf.pending_bytes() > 0 {
                consumed_bytes += buf.swap_and_consume(|mut d| {
                    while !d.is_empty() {
                        let len = u32::from_le_bytes(d[..4].try_into().unwrap()) as usize;
                        assert_eq!(len, 12, "no torn length prefix");
                        let t = u32::from_le_bytes(d[4..8].try_into().unwrap());
                        let i = u32::from_le_bytes(d[8..12].try_into().unwrap());
                        let sum = u32::from_le_bytes(d[12..16].try_into().unwrap());
                        assert_eq!(
                            sum,
                            (t ^ i).wrapping_mul(0x9E37_79B9),
                            "no torn record body (writer {t}, seq {i})"
                        );
                        seen[t as usize].push(i);
                        d = &d[16..];
                    }
                }) as u64;
            }
            // One extra swap pair drains whatever the last check missed.
            for _ in 0..2 {
                consumed_bytes += buf.swap_and_consume(|mut d| {
                    while !d.is_empty() {
                        let t = u32::from_le_bytes(d[4..8].try_into().unwrap());
                        let i = u32::from_le_bytes(d[8..12].try_into().unwrap());
                        seen[t as usize].push(i);
                        d = &d[16..];
                    }
                }) as u64;
            }
            (seen, consumed_bytes)
        })
    };

    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    let (mut seen, consumed_bytes) = owner.join().unwrap();

    for (t, got) in seen.iter_mut().enumerate() {
        got.sort_unstable();
        assert_eq!(got.len(), per as usize, "writer {t}: nothing lost");
        got.dedup();
        assert_eq!(got.len(), per as usize, "writer {t}: nothing duplicated");
        assert_eq!(*got.last().unwrap(), per - 1, "writer {t}: full range");
    }
    // The buffer's own counters agree with what the owner observed.
    let stats = buf.stats();
    let total_bytes = (writers as u64) * (per as u64) * 16;
    assert_eq!(consumed_bytes, total_bytes, "all bytes consumed");
    assert_eq!(stats.swapped_bytes, total_bytes, "telemetry: swapped bytes");
    assert_eq!(
        stats.writes,
        (writers as u64) * (per as u64),
        "telemetry: one write per record"
    );
    assert!(stats.swaps >= 2, "owner actually swapped");
    assert!(stats.peak_pending_bytes <= 2048, "gauge within capacity");
}

#[test]
fn threaded_run_conserves_telemetry_commands() {
    // Telemetry conservation under real threads: after the threaded run is
    // drained, per-object enqueued == executed and the engine-wide delivery
    // counters balance.
    let mut e = Engine::new(
        eris_numa::machines::custom_machine("t", 4, 2, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            tree: PrefixTreeConfig::new(8, 32),
            ..Default::default()
        },
    );
    let domain: u64 = 1 << 16;
    let _ = e.create_index("t", domain);
    for a in e.aeu_ids() {
        let mut x = (a.0 as u64 + 3).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                out.push(DataCommand {
                    object: DataObjectId(0),
                    ticket: 0,
                    payload: Payload::Upsert {
                        pairs: (0..4).map(|i| ((x >> i) % (1 << 16), x)).collect(),
                    },
                });
            })),
        );
    }
    e.run_threaded_for(stress_ms(250, 100));
    for a in e.aeu_ids() {
        e.set_generator(a, None);
    }
    e.run_until_drained();

    let snap = e.telemetry();
    assert!(
        snap.conservation_holds(),
        "per-object enqueued == executed after threaded drain:\n{snap}"
    );
    let t = &snap.totals;
    assert!(t.commands_routed > 0, "threaded run routed commands");
    assert_eq!(
        t.commands_unicast + t.commands_multicast,
        t.commands_executed,
        "deliveries balance executions"
    );
    assert!(t.buffer_swaps > 0, "real swaps happened");
}

#[test]
fn trace_rings_conserve_under_threaded_overwrite_pressure() {
    // ISSUE 4: the per-AEU trace rings under real threads, sized small
    // enough (64 slots) that sustained execution *must* overwrite old
    // events.  The accounting has to stay exact anyway:
    // emitted == retained + dropped on every ring, with retained bounded
    // by the capacity.
    let mut e = Engine::new(
        eris_numa::machines::custom_machine("t", 4, 2, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            tree: PrefixTreeConfig::new(8, 32),
            routing: RoutingConfig {
                trace_sample_every: 8,
                trace_ring_capacity: 64,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let domain: u64 = 1 << 16;
    let _ = e.create_index("t", domain);
    for a in e.aeu_ids() {
        let mut x = (a.0 as u64 + 29).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                out.push(DataCommand {
                    object: DataObjectId(0),
                    ticket: 0,
                    payload: Payload::Lookup {
                        keys: (0..16).map(|i| (x >> i) % (1 << 16)).collect(),
                    },
                });
            })),
        );
    }
    e.run_threaded_for(stress_ms(300, 120));
    for a in e.aeu_ids() {
        e.set_generator(a, None);
    }
    e.run_until_drained();

    let snap = e.telemetry();
    let mut total_emitted = 0u64;
    let mut total_dropped = 0u64;
    for (i, r) in snap.rings.iter().enumerate() {
        assert_eq!(
            r.emitted,
            r.retained + r.dropped,
            "ring {i}: emitted == retained + dropped: {r:?}"
        );
        assert!(
            r.retained <= r.capacity,
            "ring {i}: retained within capacity: {r:?}"
        );
        total_emitted += r.emitted;
        total_dropped += r.dropped;
    }
    assert!(
        total_emitted > 1000,
        "execution emitted events: {total_emitted}"
    );
    assert!(
        total_dropped > 0,
        "64-slot rings under sustained batches must have overwritten"
    );
    // Snapshots taken after quiescence decode cleanly and in order.
    for a in e.aeu_ids() {
        let events = e.telemetry_shard(a).ring.snapshot();
        assert!(events.len() <= 64, "snapshot bounded by capacity");
        for w in events.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns, "per-ring events are time-ordered");
        }
    }
    // The sampled-latency ledger survived the same run intact.
    assert!(
        snap.trace.stamped > 0 && snap.trace.balances(),
        "{:?}",
        snap.trace
    );
}
