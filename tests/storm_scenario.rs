//! The storm scenario as a permanent integration test: a compressed
//! six-phase storm (Zipf hotspot, drift, write surge, flash crowd) on the
//! 8-AEU smoke machine with the MA-8 balancer live, journaling on, a
//! fail-point crash mid-drift, and recovery — asserting the full proof
//! bundle the `storm` experiment gates in CI:
//!
//! * every conservation ledger balances in both process lifetimes
//!   (per-object `enqueued == executed`, trace `stamped == traced +
//!   dropped`);
//! * zero loss: every storm lookup hits (the checkpoint is the durable
//!   base for the whole domain, so one miss = one lost key);
//! * p50/p99 SLOs extracted from the latency-attribution histograms hold;
//! * the balancer actually adapted (cycles > 0) and recovery actually
//!   replayed journal records.
//!
//! The heavyweight 512-AEU version of the same harness is `experiments
//! storm` (see DESIGN.md "Storm scenario").

use eris_bench::experiments::storm::{run_storm, Slo, StormConfig};

fn storm_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("eris-storm-test-{}-{tag}", std::process::id()))
}

#[test]
fn storm_with_mid_drift_crash_recovers_without_loss() {
    let cfg = StormConfig {
        quick: true,
        chaos: true,
        // An 11-unit squall keeps the debug-mode test inside the tier-1
        // budget while covering all six phases.
        time_div: 10,
        dir: Some(storm_dir("chaos")),
    };
    let r = run_storm(&cfg);

    // The chaos schedule ran: a crash mid-storm, then a recovery that
    // restored the checkpoint base and replayed the journaled tail.
    let at = r.crashed_at_unit.expect("fail point must fire mid-storm");
    assert!(at < r.units, "crash inside the schedule");
    assert!(r.recovered, "recovery restored the checkpoint base");
    assert!(
        r.replayed_records > 0,
        "the journaled tail must be non-empty"
    );

    // Conservation in both process lifetimes.
    assert!(r.conservation_ok, "enqueued == executed");
    assert!(r.trace_ok, "stamped == traced + dropped");

    // Zero loss: every lookup over the storm's whole domain hit.
    assert!(
        (r.hit_rate - 1.0).abs() < 1e-12,
        "hit rate {} — recovery lost keys",
        r.hit_rate
    );

    // The balancer adapted to the hotspot phases.
    assert!(r.rebalance_cycles > 0, "MA-8 never rebalanced");

    // Every phase produced traffic, including the open-loop ones.
    assert_eq!(r.phases.len(), 6);
    for p in &r.phases {
        assert!(p.units > 0, "phase {} got no units", p.phase);
        assert!(p.ops > 0, "phase {} produced no traffic", p.phase);
    }

    // The p50/p99 SLO bundle (tested quantile math over the merged
    // latency histograms) holds.
    let failures = r.slo_failures(&Slo::default());
    assert!(failures.is_empty(), "SLO failures: {failures:?}");
}

#[test]
fn storm_without_chaos_is_conserved_and_balanced() {
    let cfg = StormConfig {
        quick: true,
        chaos: false,
        time_div: 10,
        dir: None,
    };
    let r = run_storm(&cfg);
    assert!(r.crashed_at_unit.is_none());
    assert!(r.conservation_ok && r.trace_ok);
    assert!((r.hit_rate - 1.0).abs() < 1e-12);
    // Throughput trajectory sanity: the flash crowd (1.28x oversubscribed,
    // narrow 0.99-Zipf hotspot) must not collapse relative to warmup.
    let warm = r.phases[0].mops;
    let flash = r.phases[4].mops;
    assert!(warm > 0.0 && flash > 0.0);
    assert!(
        flash / warm > 0.2,
        "flash crowd collapsed: {flash:.1} vs warmup {warm:.1} Mops"
    );
}
