//! Baseline semantics and headline performance relationships: the shared
//! index computes the same answers as the partitioned engine, and the
//! paper's qualitative results hold in the simulation.

use eris_core::baseline::{ScanPlacement, SharedIndexBench, SharedScanBench};
use eris_core::prelude::*;
use eris_index::{PrefixTree, SharedPrefixTree};
use eris_numa::NodeId;

#[test]
fn shared_tree_agrees_with_partitioned_trees() {
    let cfg = PrefixTreeConfig::new(8, 32);
    let shared = SharedPrefixTree::new(cfg, 0);
    let mut partitioned: Vec<PrefixTree> = (0..4)
        .map(|i| PrefixTree::with_config(cfg, i << 40))
        .collect();
    let domain = 1u64 << 20;
    for k in (0..domain).step_by(17) {
        shared.upsert(k, k * 3);
        partitioned[(k * 4 / domain) as usize].upsert(k, k * 3);
    }
    for k in (0..domain).step_by(13) {
        let part = &partitioned[(k * 4 / domain) as usize];
        assert_eq!(shared.lookup(k), part.lookup(k), "key {k}");
    }
}

#[test]
fn eris_beats_shared_index_on_big_numa_machines() {
    // The Figure 8 headline on the SGI machine: memory-bound lookups run
    // several times faster on ERIS than on the NUMA-agnostic shared index.
    let real_keys: u64 = 1 << 16;
    let scale = (16u64 << 30) / real_keys; // model 16B keys
    let mut shared = SharedIndexBench::new(
        eris_numa::sgi_machine(),
        PrefixTreeConfig::new(8, 64),
        CostParams::default(),
        real_keys,
        scale,
        3,
    );
    shared.load_dense(real_keys);
    let shared_rate = shared.run_lookup_phase(3e-4).ops_per_sec();

    let mut e = Engine::new(
        eris_numa::sgi_machine(),
        EngineConfig {
            size_scale: scale,
            ..Default::default()
        },
    );
    let idx = e.create_index("t", real_keys * scale);
    e.bulk_load_index(idx, (0..real_keys).map(|i| (i * scale, i)));
    for a in e.aeu_ids() {
        let mut x = (a.0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                let keys = (0..128)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        (x % real_keys) * scale
                    })
                    .collect();
                out.push(DataCommand {
                    object: eris_core::DataObjectId(0),
                    ticket: 0,
                    payload: Payload::Lookup { keys },
                });
            })),
        );
    }
    e.run_for_virtual_secs(1e-4);
    let t0 = e.clock().now_secs();
    let ops = e.run_for_virtual_secs(3e-4);
    let eris_rate = ops.lookups as f64 / (e.clock().now_secs() - t0);

    assert!(
        eris_rate > 2.0 * shared_rate,
        "paper: ~3.5x at 16B keys; measured {:.1}x ({:.1e} vs {:.1e})",
        eris_rate / shared_rate,
        eris_rate,
        shared_rate
    );
}

#[test]
fn scan_strategies_order_like_figure_9() {
    // ERIS (NUMA-local) > Interleaved > Single RAM, and Single RAM is
    // bounded by one memory controller.
    let rows = 1 << 18;
    let scale = (8u64 << 30) / rows as u64;
    let params = CostParams::default();
    let gbps = |placement| {
        let mut b = SharedScanBench::new(eris_numa::sgi_machine(), placement, params, rows, scale);
        let (bytes, dur) = b.scan_once();
        bytes as f64 / dur
    };
    let single = gbps(ScanPlacement::SingleRam(NodeId(0)));
    let inter = gbps(ScanPlacement::Interleaved);
    assert!(single <= 36.2 * 1.01, "one IMC bound: {single}");
    assert!(inter > 2.0 * single, "interleaving beats a single hotspot");

    let mut e = Engine::new(
        eris_numa::sgi_machine(),
        EngineConfig {
            size_scale: scale,
            ..Default::default()
        },
    );
    let col = e.create_column("c");
    e.bulk_load_column(col, 0..rows as u64);
    e.submit(
        AeuId(0),
        DataCommand {
            object: col,
            ticket: 0,
            payload: Payload::Scan {
                pred: Predicate::All,
                agg: Aggregate::Sum,
                snapshot: u64::MAX,
            },
        },
    )
    .unwrap();
    let t0 = e.clock().now_secs();
    e.run_until_drained();
    let eris = (rows as u64 * 8 * scale) as f64 / ((e.clock().now_secs() - t0) * 1e9);
    assert!(
        eris > 4.0 * inter,
        "paper: 6.6x over interleaved; measured {:.1}x",
        eris / inter
    );
}

#[test]
fn shared_upserts_pay_cas_penalty() {
    let real_keys: u64 = 1 << 14;
    let mk = || {
        let mut b = SharedIndexBench::new(
            eris_numa::amd_machine(),
            PrefixTreeConfig::new(8, 64),
            CostParams::default(),
            real_keys,
            1 << 16,
            9,
        );
        b.load_dense(real_keys);
        b
    };
    let up = mk().run_upsert_phase(2e-4).ops_per_sec();
    let lk = mk().run_lookup_phase(2e-4).ops_per_sec();
    assert!(lk > up, "lookups must outpace CAS-synchronized upserts");
}

#[test]
fn interleaving_beats_memory_agnostic_single_node_for_shared_index() {
    // Section 4.1: "Interleaving the memory resulted in slightly higher
    // throughputs of the shared index" — the counters show why: traffic
    // spreads over all controllers instead of hammering one.
    let mut b = SharedIndexBench::new(
        eris_numa::intel_machine(),
        PrefixTreeConfig::new(8, 64),
        CostParams::default(),
        1 << 14,
        1 << 16,
        4,
    );
    b.load_dense(1 << 14);
    b.run_lookup_phase(2e-4);
    let per_node: Vec<u64> = (0..4).map(|n| b.counters.imc_bytes(NodeId(n))).collect();
    let max = *per_node.iter().max().unwrap() as f64;
    let min = *per_node.iter().min().unwrap() as f64;
    assert!(max / min < 1.5, "interleaved traffic is even: {per_node:?}");
}
