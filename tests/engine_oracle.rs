//! End-to-end correctness: commands routed through the full engine must
//! behave exactly like a BTreeMap oracle, across partitions, objects, and
//! submission points.

use eris_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn engine(nodes: u16, cores: u16) -> Engine {
    Engine::new(
        eris_numa::machines::custom_machine("t", nodes, cores, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            collect_results: true,
            tree: PrefixTreeConfig::new(8, 32),
            ..Default::default()
        },
    )
}

#[test]
fn randomized_ops_match_btreemap() {
    let mut rng = StdRng::seed_from_u64(0xE515);
    let domain: u64 = 1 << 20;
    let mut e = engine(4, 2);
    let idx = e.create_index("t", domain);
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let mut ticket = 0u64;

    for round in 0..30 {
        // A burst of upserts from random submission points.
        let n_upserts = rng.gen_range(1..100);
        let pairs: Vec<(u64, u64)> = (0..n_upserts)
            .map(|_| (rng.gen_range(0..domain), rng.gen()))
            .collect();
        for &(k, v) in &pairs {
            oracle.insert(k, v);
        }
        let via = AeuId(rng.gen_range(0..e.num_aeus() as u32));
        ticket += 1;
        e.submit(
            via,
            DataCommand {
                object: idx,
                ticket,
                payload: Payload::Upsert { pairs },
            },
        )
        .unwrap();
        e.run_until_drained();

        // Probe lookups: mix of present and absent keys.
        let keys: Vec<u64> = (0..50).map(|_| rng.gen_range(0..domain)).collect();
        ticket += 1;
        let via = AeuId(rng.gen_range(0..e.num_aeus() as u32));
        e.submit(
            via,
            DataCommand {
                object: idx,
                ticket,
                payload: Payload::Lookup { keys: keys.clone() },
            },
        )
        .unwrap();
        e.run_until_drained();
        let got = e.results().take_lookup_values();
        assert_eq!(got.len(), 50, "round {round}: every key answered once");
        for (t, k, v) in got {
            assert_eq!(t, ticket);
            assert_eq!(v, oracle.get(&k).copied(), "round {round}, key {k}");
        }
    }
    // Total count matches.
    let total: usize = e
        .aeu_ids()
        .iter()
        .map(|a| e.aeu(*a).partition(idx).map_or(0, |p| p.data.len()))
        .sum();
    assert_eq!(total, oracle.len());
}

#[test]
fn scans_match_oracle_aggregates() {
    let mut rng = StdRng::seed_from_u64(7);
    let domain: u64 = 1 << 16;
    let mut e = engine(2, 2);
    let idx = e.create_index("t", domain);
    let data: Vec<(u64, u64)> = (0..5000)
        .map(|_| (rng.gen_range(0..domain), rng.gen_range(0..1000)))
        .collect();
    let mut oracle = BTreeMap::new();
    for &(k, v) in &data {
        oracle.insert(k, v);
    }
    e.bulk_load_index(idx, oracle.iter().map(|(&k, &v)| (k, v)));

    for t in 0..20u64 {
        let lo = rng.gen_range(0..domain);
        let hi = rng.gen_range(lo..=domain);
        e.submit(
            AeuId(0),
            DataCommand {
                object: idx,
                ticket: t,
                payload: Payload::Scan {
                    pred: Predicate::Range { lo, hi },
                    agg: Aggregate::Sum,
                    snapshot: u64::MAX,
                },
            },
        )
        .unwrap();
        e.run_until_drained();
        let want: u64 = oracle.range(lo..hi).map(|(_, &v)| v).sum();
        match e.results().combine_scan(t) {
            Some(eris_column::scan::AggregateResult::Sum(s)) => {
                assert_eq!(s, want, "range [{lo},{hi})")
            }
            other => panic!("expected a sum, got {other:?}"),
        }
    }
}

#[test]
fn coalesced_scans_match_unshared_baseline() {
    // Scan sharing (coalesced execution of simultaneous scans through one
    // SharedScan sweep) is a pure throughput optimization: the results must
    // be bit-identical to running the very same scans one at a time, where
    // no coalescing can occur.  Telemetry proves each mode did what the
    // test assumes.
    let mut rng = StdRng::seed_from_u64(0xC0A1);
    let domain: u64 = 1 << 16;
    let rows: Vec<u64> = (0..20_000).map(|_| rng.gen_range(0..domain)).collect();
    let queries: Vec<(Predicate, Aggregate)> = (0..40)
        .map(|i| {
            let pred = match i % 3 {
                0 => Predicate::All,
                1 => {
                    let lo = rng.gen_range(0..domain);
                    Predicate::Range {
                        lo,
                        hi: rng.gen_range(lo..=domain),
                    }
                }
                _ => Predicate::Equals(rows[rng.gen_range(0..rows.len())]),
            };
            let agg = match i % 4 {
                0 => Aggregate::Count,
                1 | 2 => Aggregate::Sum,
                _ => Aggregate::MinMax,
            };
            (pred, agg)
        })
        .collect();

    let run = |batched: bool| {
        let mut e = engine(2, 2);
        let col = e.create_column("c");
        e.bulk_load_column(col, rows.iter().copied());
        let mut results = Vec::with_capacity(queries.len());
        for (t, &(pred, agg)) in queries.iter().enumerate() {
            e.submit(
                AeuId((t % 4) as u32),
                DataCommand {
                    object: col,
                    ticket: t as u64,
                    payload: Payload::Scan {
                        pred,
                        agg,
                        snapshot: u64::MAX,
                    },
                },
            )
            .unwrap();
            if !batched {
                // One scan in flight at a time: nothing to coalesce with.
                e.run_until_drained();
            }
        }
        e.run_until_drained();
        for t in 0..queries.len() as u64 {
            results.push(e.results().combine_scan(t));
        }
        (results, e.telemetry().totals)
    };

    let (shared_results, shared_tel) = run(true);
    let (solo_results, solo_tel) = run(false);

    assert!(
        shared_tel.coalesced_scans > 0,
        "batched submission actually exercised scan sharing: {shared_tel:?}"
    );
    assert_eq!(
        solo_tel.coalesced_scans, 0,
        "one-at-a-time submission must not coalesce: {solo_tel:?}"
    );
    assert_eq!(shared_tel.scans, solo_tel.scans, "same scan count");
    for (t, (s, u)) in shared_results.iter().zip(&solo_results).enumerate() {
        assert!(s.is_some(), "query {t} answered");
        assert_eq!(s, u, "query {t} ({:?}): shared == unshared", queries[t]);
    }
}

#[test]
fn chunked_and_scalar_kernels_agree_end_to_end() {
    // The chunked branch-free kernels are the default coalesced-scan path;
    // the row-at-a-time scalar path survives as the oracle.  The same
    // workload through two engines — one per kernel — must produce
    // identical answers, including at MVCC snapshot cuts that land
    // mid-chunk and at the very top of the u64 value domain.  Telemetry
    // proves each engine dispatched the kernel the test assumes.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let domain: u64 = 1 << 16;
    let mut rows: Vec<u64> = (0..30_000).map(|_| rng.gen_range(0..domain)).collect();
    rows.extend([0, u64::MAX - 1, u64::MAX]);
    let queries: Vec<(Predicate, Aggregate, u64)> = (0..48)
        .map(|i| {
            let pred = match i % 4 {
                0 => Predicate::All,
                1 => {
                    let lo = rng.gen_range(0..domain);
                    Predicate::Range {
                        lo,
                        hi: rng.gen_range(lo..=domain),
                    }
                }
                // Unbounded-above sentinel: reaches u64::MAX.
                2 => Predicate::Range {
                    lo: rng.gen_range(0..domain),
                    hi: u64::MAX,
                },
                _ => Predicate::Equals(rows[rng.gen_range(0..rows.len())]),
            };
            let agg = match i % 3 {
                0 => Aggregate::Count,
                1 => Aggregate::Sum,
                _ => Aggregate::MinMax,
            };
            // Snapshots cutting before, inside, and past the first chunk of
            // each per-AEU partition (30k rows over 4 AEUs ≈ 7.5k each).
            let snapshot = [0, 1, 1023, 1024, 1025, 5000, u64::MAX][i % 7];
            (pred, agg, snapshot)
        })
        .collect();

    let run = |kernel: ScanKernel| {
        let mut e = Engine::new(
            eris_numa::machines::custom_machine("t", 2, 2, 20.0, 100.0, 10.0, 60.0),
            EngineConfig {
                collect_results: true,
                tree: PrefixTreeConfig::new(8, 32),
                scan_kernel: kernel,
                ..Default::default()
            },
        );
        let col = e.create_column("c");
        e.bulk_load_column(col, rows.iter().copied());
        for (t, &(pred, agg, snapshot)) in queries.iter().enumerate() {
            e.submit(
                AeuId((t % 4) as u32),
                DataCommand {
                    object: col,
                    ticket: t as u64,
                    payload: Payload::Scan {
                        pred,
                        agg,
                        snapshot,
                    },
                },
            )
            .unwrap();
        }
        e.run_until_drained();
        let results: Vec<_> = (0..queries.len() as u64)
            .map(|t| e.results().combine_scan(t))
            .collect();
        (results, e.telemetry().totals)
    };

    let (chunked, ct) = run(ScanKernel::Chunked);
    let (simd, vt) = run(ScanKernel::Simd);
    let (scalar, st) = run(ScanKernel::Scalar);

    assert!(
        ct.chunked_sweeps > 0 && ct.scalar_sweeps == 0 && ct.simd_sweeps == 0,
        "chunked engine dispatched chunked sweeps only: {ct:?}"
    );
    assert!(
        vt.simd_sweeps > 0 && vt.chunked_sweeps == 0 && vt.scalar_sweeps == 0,
        "simd engine dispatched simd sweeps only: {vt:?}"
    );
    assert!(
        st.scalar_sweeps > 0 && st.chunked_sweeps == 0 && st.simd_sweeps == 0,
        "scalar engine dispatched scalar sweeps only: {st:?}"
    );
    for (t, ((c, s), v)) in chunked.iter().zip(&scalar).zip(&simd).enumerate() {
        assert!(c.is_some(), "query {t} answered");
        assert_eq!(c, s, "query {t} ({:?}): chunked == scalar", queries[t]);
        assert_eq!(v, s, "query {t} ({:?}): simd == scalar", queries[t]);
    }
}

#[test]
fn the_top_key_of_the_domain_round_trips() {
    // Key u64::MAX used to be unreachable: half-open ranges saturate at
    // the top of the domain, so the key routed correctly but every
    // validity check called it a stray and every scan bound excluded it.
    // Upsert → lookup → scan must all see it now, for both in-partition
    // structures that store keys.
    for hash in [false, true] {
        let mut e = Engine::new(
            eris_numa::machines::custom_machine("t", 2, 2, 20.0, 100.0, 10.0, 60.0),
            EngineConfig {
                collect_results: true,
                // Default 64-bit tree: the full u64 key domain.
                ..Default::default()
            },
        );
        let idx = if hash {
            e.create_hash_index("t", u64::MAX)
        } else {
            e.create_index("t", u64::MAX)
        };
        e.submit(
            AeuId(0),
            DataCommand {
                object: idx,
                ticket: 1,
                payload: Payload::Upsert {
                    pairs: vec![(u64::MAX, 42), (0, 7), (1 << 40, 9)],
                },
            },
        )
        .unwrap();
        e.run_until_drained();

        e.submit(
            AeuId(1),
            DataCommand {
                object: idx,
                ticket: 2,
                payload: Payload::Lookup {
                    keys: vec![u64::MAX, 0, 12345],
                },
            },
        )
        .unwrap();
        e.run_until_drained();
        let mut got = e.results().take_lookup_values();
        got.sort();
        assert_eq!(
            got,
            vec![(2, 0, Some(7)), (2, 12345, None), (2, u64::MAX, Some(42)),],
            "hash={hash}: the top key answers like any other"
        );

        // Scans phrase the top key three ways; all must include it.
        for (t, pred, want) in [
            (3, Predicate::Equals(u64::MAX), 42u64),
            // `hi == u64::MAX` is the unbounded-above sentinel.
            (
                4,
                Predicate::Range {
                    lo: u64::MAX,
                    hi: u64::MAX,
                },
                42,
            ),
            (5, Predicate::All, 42 + 7 + 9),
        ] {
            e.submit(
                AeuId(0),
                DataCommand {
                    object: idx,
                    ticket: t,
                    payload: Payload::Scan {
                        pred,
                        agg: Aggregate::Sum,
                        snapshot: u64::MAX,
                    },
                },
            )
            .unwrap();
            e.run_until_drained();
            assert_eq!(
                e.results().combine_scan(t),
                Some(eris_column::scan::AggregateResult::Sum(want)),
                "hash={hash}, ticket {t}: {pred:?}"
            );
        }
    }
}

#[test]
fn multiple_objects_are_independent() {
    let mut e = engine(2, 2);
    let a = e.create_index("a", 1 << 16);
    let b = e.create_index("b", 1 << 16);
    let col = e.create_column("c");
    e.bulk_load_index(a, (0..100u64).map(|k| (k, k)));
    e.bulk_load_index(b, (0..100u64).map(|k| (k, k * 100)));
    e.bulk_load_column(col, 0..1000u64);

    e.submit(
        AeuId(0),
        DataCommand {
            object: a,
            ticket: 1,
            payload: Payload::Lookup { keys: vec![50] },
        },
    )
    .unwrap();
    e.submit(
        AeuId(1),
        DataCommand {
            object: b,
            ticket: 2,
            payload: Payload::Lookup { keys: vec![50] },
        },
    )
    .unwrap();
    e.submit(
        AeuId(2),
        DataCommand {
            object: col,
            ticket: 3,
            payload: Payload::Scan {
                pred: Predicate::All,
                agg: Aggregate::Count,
                snapshot: u64::MAX,
            },
        },
    )
    .unwrap();
    e.run_until_drained();
    let mut got = e.results().take_lookup_values();
    got.sort();
    assert_eq!(got, vec![(1, 50, Some(50)), (2, 50, Some(5000))]);
    assert_eq!(
        e.results().combine_scan(3),
        Some(eris_column::scan::AggregateResult::Count(1000))
    );
}

#[test]
fn column_appends_distribute_over_members() {
    let mut e = engine(2, 2);
    let col = e.create_column("c");
    for i in 0..40u64 {
        e.submit(
            AeuId(0),
            DataCommand {
                object: col,
                ticket: i,
                payload: Payload::Upsert {
                    pairs: vec![(0, i)],
                },
            },
        )
        .unwrap();
    }
    e.run_until_drained();
    let lens: Vec<usize> = e
        .aeu_ids()
        .iter()
        .map(|a| e.aeu(*a).partition(col).map_or(0, |p| p.data.len()))
        .collect();
    assert_eq!(lens.iter().sum::<usize>(), 40);
    assert!(
        lens.iter().all(|&l| l == 10),
        "round-robin appends: {lens:?}"
    );
}

#[test]
fn real_machines_route_correctly() {
    // Smoke the three paper machines end to end.
    for topo in [
        eris_numa::intel_machine(),
        eris_numa::amd_machine(),
        eris_numa::sgi_machine(),
    ] {
        let name = topo.name().to_string();
        let mut e = Engine::new(
            topo,
            EngineConfig {
                collect_results: true,
                tree: PrefixTreeConfig::new(8, 32),
                ..Default::default()
            },
        );
        let idx = e.create_index("t", 1 << 24);
        e.bulk_load_index(idx, (0..10_000u64).map(|k| (k * 1000, k)));
        e.submit(
            AeuId(0),
            DataCommand {
                object: idx,
                ticket: 1,
                payload: Payload::Lookup {
                    keys: vec![0, 5_000_000, 9_999_000, 13],
                },
            },
        )
        .unwrap();
        e.run_until_drained();
        let mut got = e.results().take_lookup_values();
        got.sort();
        assert_eq!(
            got,
            vec![
                (1, 0, Some(0)),
                (1, 13, None),
                (1, 5_000_000, Some(5000)),
                (1, 9_999_000, Some(9999)),
            ],
            "{name}"
        );
    }
}
