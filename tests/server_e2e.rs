//! End-to-end serving-layer tests: loopback connections through the full
//! framed protocol into a real engine, plus one short TCP round trip.
//!
//! The load-bearing claims:
//!
//! * **Zero silent drops** — every command a client sends is settled by
//!   exactly one typed response; `commands_received == accepted + shed +
//!   quota_denied + rejected` on the server, and client-side stats agree.
//! * **Conservation composes** — `accepted == engine_routed` and the
//!   engine's per-object `enqueued == executed` hold after drain, so
//!   accepted == executed end to end, even when the server is shut down
//!   mid-traffic.
//! * **Denials are typed** — over-quota commands get `QuotaDenied` with
//!   a positive retry hint; overload gets `Shed`; malformed payloads get
//!   `Rejected(REJ_DECODE)`; nothing is just dropped.

use eris_core::prelude::*;
use eris_server::{
    loopback_pair, AdmissionConfig, Client, ClockSource, EngineServer, PipeTransport, RespKind,
    ServerConfig, TcpServer, Transport, REJ_DECODE,
};

fn small_engine(nodes: u16, cores: u16) -> (Engine, DataObjectId) {
    let cfg = EngineConfig {
        balancer: BalancerConfig {
            enabled: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut engine = Engine::new(
        eris_numa::machines::custom_machine("t", nodes, cores, 20.0, 100.0, 10.0, 60.0),
        cfg,
    );
    let obj = engine.create_index("kv", 1 << 18);
    engine.bulk_load_index(obj, (0..4096u64).map(|k| (k * 61 % (1 << 18), k)));
    (engine, obj)
}

fn lookup(obj: DataObjectId, seed: u64) -> DataCommand {
    let keys = (0..4u64)
        .map(|i| (seed * 31 + i * 977) % (1 << 18))
        .collect();
    DataCommand {
        object: obj,
        ticket: seed,
        payload: Payload::Lookup { keys },
    }
}

fn upsert(obj: DataObjectId, seed: u64) -> DataCommand {
    let pairs = (0..2u64)
        .map(|i| ((seed * 53 + i * 1009) % (1 << 18), seed))
        .collect();
    DataCommand {
        object: obj,
        ticket: seed,
        payload: Payload::Upsert { pairs },
    }
}

/// N concurrent loopback connections, mixed workload, generous quotas:
/// everything is accepted, and the combined ledger balances exactly.
#[test]
fn loopback_mixed_workload_conserves() {
    let (engine, obj) = small_engine(2, 4);
    let mut server = EngineServer::new(
        engine,
        ServerConfig {
            tenants: 3,
            admission: AdmissionConfig {
                credit_limit: 16,
                quota_capacity_ops: 1 << 20,
                quota_refill_ops_per_sec: 1 << 20,
                ..Default::default()
            },
            clock: ClockSource::Virtual,
            ..Default::default()
        },
    );
    let mut clients: Vec<Client<PipeTransport>> = (0..6u32)
        .map(|i| {
            let (server_side, client_side) = loopback_pair();
            server.attach(Box::new(server_side));
            Client::connect(client_side, i % 3)
        })
        .collect();

    let mut sent = 0u64;
    for cycle in 0..120u64 {
        for (i, c) in clients.iter_mut().enumerate() {
            c.poll();
            let seed = cycle * 64 + i as u64;
            let cmd = if (cycle + i as u64).is_multiple_of(3) {
                upsert(obj, seed)
            } else {
                lookup(obj, seed)
            };
            if c.try_send(&cmd) {
                sent += 1;
            }
            c.poll();
        }
        server.pump();
    }
    server.pump_until_quiet(64);
    for c in clients.iter_mut() {
        c.poll();
    }

    assert!(sent > 0);
    let snap = server.snapshot();
    assert_eq!(snap.counters.commands_received, sent);
    // Generous quotas + no overload: everything was accepted.
    assert_eq!(snap.accepted_total(), sent);
    assert_eq!(
        snap.shed_total() + snap.quota_denied_total() + snap.rejected_total(),
        0
    );

    // Client and server agree command for command.
    let client_accepted: u64 = clients.iter().map(|c| c.stats().accepted).sum();
    assert_eq!(client_accepted, sent);
    for c in &clients {
        assert_eq!(c.stats().settled(), c.stats().sent, "no unsettled commands");
        assert_eq!(c.stats().protocol_errors, 0);
    }

    // The conservation chain: accepted == routed, enqueued == executed.
    let ledger = server.ledger();
    assert!(ledger.holds(), "{ledger:?}");
    let outcome = server.shutdown();
    assert!(outcome.quiesce.clean(), "{:?}", outcome.quiesce);
    assert!(outcome.ledger.holds(), "{:?}", outcome.ledger);
}

/// Tight quotas: over-quota commands each get a typed `QuotaDenied` with
/// an honest retry hint; none are silently dropped; the bucketed tenant
/// does not affect its neighbor.
#[test]
fn over_quota_commands_get_typed_denials() {
    let (engine, obj) = small_engine(1, 4);
    let mut server = EngineServer::new(
        engine,
        ServerConfig {
            tenants: 2,
            admission: AdmissionConfig {
                credit_limit: 8,
                // Tiny bucket, zero refill: exactly 12 lookup ops fit.
                quota_capacity_ops: 12,
                quota_refill_ops_per_sec: 0,
                ..Default::default()
            },
            clock: ClockSource::Virtual,
            ..Default::default()
        },
    );
    let mk_client = |server: &mut EngineServer, tenant| {
        let (server_side, client_side) = loopback_pair();
        server.attach(Box::new(server_side));
        Client::connect(client_side, tenant)
    };
    let mut greedy = mk_client(&mut server, 0);
    let mut neighbor = mk_client(&mut server, 1);

    for cycle in 0..20u64 {
        greedy.poll();
        neighbor.poll();
        // 4-op lookups: the 12-op bucket admits exactly 3 of them.
        greedy.try_send(&lookup(obj, cycle));
        // (cycle 0 stalls pre-Welcome, so gate on sent count, not cycle)
        if neighbor.stats().sent < 3 {
            neighbor.try_send(&lookup(obj, 1000 + cycle));
        }
        greedy.poll();
        neighbor.poll();
        server.pump();
    }
    server.pump_until_quiet(32);
    greedy.poll();
    neighbor.poll();

    let g = greedy.stats();
    assert_eq!(
        g.accepted, 3,
        "12-op bucket admits exactly three 4-op lookups: {g:?}"
    );
    assert!(g.quota_denied > 0);
    assert_eq!(g.settled(), g.sent, "every command settled");
    // The denial carried a retry hint (u32::MAX for a zero-refill bucket).
    assert_eq!(greedy.take_retry_hint(), Some(u32::MAX));

    // Tenant isolation: the neighbor's bucket was untouched by tenant 0.
    let n = neighbor.stats();
    assert_eq!(n.accepted, 3);
    assert_eq!(n.quota_denied, 0);

    let snap = server.snapshot();
    assert_eq!(snap.tenants[0].quota_denied, g.quota_denied);
    assert!(server.ledger().holds());
}

/// Credit windows bound outstanding commands: a client that never polls
/// responses stalls at the limit, and the server-side window never goes
/// above its bound even across regrants.
#[test]
fn credit_window_bounds_outstanding_commands() {
    let (engine, obj) = small_engine(1, 4);
    let limit = 4u32;
    let mut server = EngineServer::new(
        engine,
        ServerConfig {
            tenants: 1,
            admission: AdmissionConfig {
                credit_limit: limit,
                quota_capacity_ops: 1 << 20,
                quota_refill_ops_per_sec: 1 << 20,
                ..Default::default()
            },
            clock: ClockSource::Virtual,
            ..Default::default()
        },
    );
    let (server_side, client_side) = loopback_pair();
    server.attach(Box::new(server_side));
    let mut c = Client::connect(client_side, 0);
    c.poll();
    server.pump();
    c.poll();
    assert_eq!(c.credits(), limit);

    // Send without consuming responses: exactly `limit` go out.
    let mut sent = 0;
    for i in 0..(limit * 3) {
        if c.try_send(&lookup(obj, i as u64)) {
            sent += 1;
        }
    }
    assert_eq!(sent, limit);
    assert_eq!(c.in_flight() as u32, limit);
    c.poll();
    server.pump();
    server.pump_until_quiet(16);
    // After settling, the full window is back — never more.
    c.poll();
    assert_eq!(c.credits(), limit);
    assert_eq!(c.stats().accepted, limit as u64);
    assert!(server.ledger().holds());
}

/// A frame whose payload is not a valid `DataCommand` gets
/// `Rejected(REJ_DECODE)` — typed, credit returned, connection lives on.
#[test]
fn malformed_command_payload_is_typed_rejected() {
    let (engine, obj) = small_engine(1, 2);
    let mut server = EngineServer::new(engine, ServerConfig::default());
    let (server_side, mut client_side) = loopback_pair();
    let id = server.attach(Box::new(server_side));

    use eris_server::{ReqKind, RequestFrame, ResponseFrame};
    let mut bytes = Vec::new();
    RequestFrame {
        kind: ReqKind::Hello,
        tenant: 0,
        conn: 0,
        seq: 0,
        payload: vec![],
    }
    .encode(&mut bytes);
    // A command frame whose payload is garbage (not a DataCommand).
    RequestFrame {
        kind: ReqKind::Command,
        tenant: 0,
        conn: id,
        seq: 1,
        payload: vec![0xFF; 9],
    }
    .encode(&mut bytes);
    client_side.try_write(&bytes).unwrap();
    server.pump();

    let mut resp = Vec::new();
    client_side.try_read(&mut resp).unwrap();
    let mut cur = resp.as_slice();
    let welcome = ResponseFrame::try_decode(&mut cur).unwrap().unwrap();
    assert_eq!(welcome.kind, RespKind::Welcome);
    let rej = ResponseFrame::try_decode(&mut cur).unwrap().unwrap();
    assert_eq!(
        (rej.kind, rej.code, rej.seq),
        (RespKind::Rejected, REJ_DECODE, 1)
    );
    assert_eq!(rej.credits, 1, "credit returned with the reject");

    // The connection still works: a valid command goes through.
    let mut bytes = Vec::new();
    RequestFrame::command(0, id, 2, &lookup(obj, 5)).encode(&mut bytes);
    client_side.try_write(&bytes).unwrap();
    server.pump();
    let mut resp = Vec::new();
    client_side.try_read(&mut resp).unwrap();
    let acc = ResponseFrame::try_decode(&mut resp.as_slice())
        .unwrap()
        .unwrap();
    assert_eq!(acc.kind, RespKind::Accepted);
    server.pump_until_quiet(16);
    let ledger = server.ledger();
    assert!(ledger.holds(), "{ledger:?}");
}

/// Mid-traffic graceful shutdown: clients still have commands in flight
/// when the server drains; every admitted command executes, ledgers
/// balance, and every connection gets a `Goodbye`.
#[test]
fn mid_traffic_shutdown_conserves() {
    let (engine, obj) = small_engine(2, 2);
    let mut server = EngineServer::new(
        engine,
        ServerConfig {
            tenants: 2,
            admission: AdmissionConfig {
                credit_limit: 32,
                quota_capacity_ops: 1 << 20,
                quota_refill_ops_per_sec: 1 << 20,
                ..Default::default()
            },
            clock: ClockSource::Virtual,
            ..Default::default()
        },
    );
    let mut clients: Vec<Client<PipeTransport>> = (0..4u32)
        .map(|i| {
            let (server_side, client_side) = loopback_pair();
            server.attach(Box::new(server_side));
            Client::connect(client_side, i % 2)
        })
        .collect();

    // Drive traffic but stop abruptly: in-flight commands remain.
    for cycle in 0..30u64 {
        for (i, c) in clients.iter_mut().enumerate() {
            c.poll();
            c.try_send(&upsert(obj, cycle * 16 + i as u64));
            c.poll();
        }
        server.pump();
    }
    // No pump_until_quiet: shut down with work still in the pipeline.
    let outcome = server.shutdown();
    assert!(outcome.quiesce.clean(), "{:?}", outcome.quiesce);
    assert!(outcome.quiesce.epochs >= 1);
    assert!(outcome.ledger.holds(), "{:?}", outcome.ledger);
    assert_eq!(outcome.snapshot.counters.shed_after_accept, 0);

    // Every client hears the Goodbye.
    for c in clients.iter_mut() {
        c.poll();
        assert!(c.is_done());
        assert_eq!(c.stats().goodbyes, 1);
    }
}

/// Shedding engages under an engine-side backlog watermark and every
/// shed is typed with a retry hint; nothing is silently dropped.
#[test]
fn overload_sheds_with_typed_retry_hints() {
    let (engine, obj) = small_engine(1, 2);
    let mut server = EngineServer::new(
        engine,
        ServerConfig {
            tenants: 1,
            admission: AdmissionConfig {
                credit_limit: 64,
                quota_capacity_ops: 1 << 20,
                quota_refill_ops_per_sec: 1 << 20,
                // Shed as soon as anything is in flight at a boundary:
                // guarantees the watermark trips under sustained load.
                shed_in_flight: 1,
                shed_retry_after_ms: 25,
                ..Default::default()
            },
            clock: ClockSource::Virtual,
            ..Default::default()
        },
    );
    let (server_side, client_side) = loopback_pair();
    server.attach(Box::new(server_side));
    let mut c = Client::connect(client_side, 0);

    for cycle in 0..40u64 {
        c.poll();
        for k in 0..8u64 {
            c.try_send(&upsert(obj, cycle * 8 + k));
        }
        c.poll();
        server.pump();
    }
    server.pump_until_quiet(32);
    c.poll();

    let s = c.stats();
    assert!(s.shed > 0, "watermark must have tripped: {s:?}");
    assert!(s.accepted > 0);
    assert_eq!(s.settled(), s.sent);
    assert_eq!(c.take_retry_hint(), Some(25));
    let snap = server.snapshot();
    assert_eq!(snap.shed_total(), s.shed);
    assert!(server.ledger().holds());
}

/// Regression (trace-ledger accounting at admission): with every command
/// traced and the overload watermark forced to trip, stamps on shed
/// commands must be charged as dropped — `stamped == traced + dropped`
/// holds even though most sampled commands never reach the engine.
#[test]
fn trace_ledger_balances_under_forced_shedding() {
    let (engine, obj) = small_engine(1, 2);
    let mut server = EngineServer::new(
        engine,
        ServerConfig {
            tenants: 1,
            admission: AdmissionConfig {
                credit_limit: 64,
                quota_capacity_ops: 1 << 20,
                quota_refill_ops_per_sec: 1 << 20,
                shed_in_flight: 1,
                shed_retry_after_ms: 25,
                ..Default::default()
            },
            clock: ClockSource::Virtual,
            trace_sample_every: 1, // stamp every command
            ..Default::default()
        },
    );
    let (server_side, client_side) = loopback_pair();
    server.attach(Box::new(server_side));
    let mut c = Client::connect(client_side, 0);

    for cycle in 0..40u64 {
        c.poll();
        for k in 0..8u64 {
            c.try_send(&upsert(obj, cycle * 8 + k));
        }
        c.poll();
        server.pump();
    }
    server.pump_until_quiet(32);
    c.poll();

    let s = c.stats();
    assert!(s.shed > 0, "watermark must have tripped: {s:?}");
    assert!(s.accepted > 0, "some commands still got through: {s:?}");
    assert!(server.ledger().holds());

    let outcome = server.shutdown();
    assert!(outcome.quiesce.clean(), "{:?}", outcome.quiesce);
    let trace = outcome.engine.telemetry().trace;
    assert_eq!(
        trace.stamped,
        trace.traced + trace.dropped,
        "trace ledger must balance under forced shedding: {trace:?}"
    );
    assert!(
        trace.dropped >= s.shed,
        "every traced shed command was charged as dropped: {trace:?} vs {s:?}"
    );
    assert!(trace.traced > 0, "accepted traced commands were recorded");
}

/// Short TCP round trip over localhost: the same protocol, admission,
/// and conservation guarantees over real sockets.
#[test]
fn tcp_round_trip_on_localhost() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let (engine, obj) = small_engine(1, 2);
    let server = EngineServer::new(
        engine,
        ServerConfig {
            tenants: 1,
            admission: AdmissionConfig::default(),
            clock: ClockSource::Host,
            ..Default::default()
        },
    );
    let tcp = TcpServer::bind("127.0.0.1:0".parse().unwrap(), server).unwrap();
    let addr = tcp.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::spawn(move || tcp.serve(&stop2));

    let mut c = Client::connect_tcp(addr, 0).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut sent = 0u64;
    while std::time::Instant::now() < deadline {
        c.poll();
        if c.is_welcomed() && sent < 50 && c.try_send(&lookup(obj, sent)) {
            sent += 1;
        }
        if c.stats().accepted >= 50 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let s = c.stats();
    assert_eq!(s.accepted, 50, "all 50 lookups accepted over TCP: {s:?}");
    assert_eq!(s.settled(), s.sent);
    assert_eq!(s.protocol_errors, 0);

    stop.store(true, Ordering::Relaxed);
    let outcome = handle.join().unwrap();
    assert!(outcome.quiesce.clean(), "{:?}", outcome.quiesce);
    assert!(outcome.ledger.holds(), "{:?}", outcome.ledger);
    assert_eq!(outcome.snapshot.accepted_total(), 50);
}
