//! The reproduction is itself regression-tested: every experiment runs in
//! quick mode and its headline *shape* is asserted — who wins, roughly by
//! what factor, and in which direction curves move.

use eris_bench::experiments::{fig1, fig10, fig11, fig13, fig5, fig9};
use eris_core::prelude::*;

#[test]
fn fig1_lookup_and_scan_scale_with_nodes() {
    let rows = fig1::sweep(true); // 1, 2, 4 nodes
    assert_eq!(rows.len(), 3);
    // Scans scale essentially linearly with active multiprocessors.
    assert!(
        rows[2].scan_speedup > 3.5,
        "scan speedup {:.2}",
        rows[2].scan_speedup
    );
    // Lookups scale substantially (the full sweep reaches ~50x at 64).
    assert!(
        rows[2].lookup_speedup > 2.0,
        "lookup speedup {:.2}",
        rows[2].lookup_speedup
    );
}

#[test]
fn fig5_raw_routing_improves_with_buffer_size() {
    let rows = fig5::sweep(true); // buffers 1, 8, 64, 512
    assert!(rows
        .windows(2)
        .all(|w| w[1].raw_mcmds >= w[0].raw_mcmds * 0.95));
    let first = &rows[0];
    let last = &rows[rows.len() - 1];
    assert!(
        last.raw_mcmds > 3.0 * first.raw_mcmds,
        "buffering wins: {:.1} -> {:.1} M/s",
        first.raw_mcmds,
        last.raw_mcmds
    );
    // With processing enabled the curve is capped by execution, so the
    // spread is much smaller than the raw spread.
    let raw_gain = last.raw_mcmds / first.raw_mcmds;
    let proc_gain = last.processing_mcmds / first.processing_mcmds;
    assert!(
        proc_gain < raw_gain,
        "processing plateaus: {proc_gain:.1} vs {raw_gain:.1}"
    );
    // The routing telemetry behind the curve is live and consistent: the
    // experiment moved real commands through flushes and buffer swaps, and
    // bigger outgoing buffers amortize reservations into fewer, fatter
    // flushes.
    for r in &rows {
        let t = &r.telemetry;
        assert!(t.commands_routed > 0, "buffer {}: routed", r.buffer_cmds);
        assert!(t.flushes > 0 && t.buffer_swaps > 0, "telemetry live");
        // Counters cover only the measurement window (warmup traffic is
        // reset away), so executions may lead window deliveries by at most
        // the pipeline backlog carried in from warmup — a rounding error
        // against the window totals.
        let delivered = t.commands_unicast + t.commands_multicast;
        assert!(
            t.commands_executed as f64 <= delivered as f64 * 1.01,
            "buffer {}: executed {} may exceed window deliveries {} only by \
             the warmup carry-in",
            r.buffer_cmds,
            t.commands_executed,
            delivered
        );
    }
    let cmds_per_flush =
        |r: &fig5::Row| r.telemetry.flush_commands as f64 / r.telemetry.flushes.max(1) as f64;
    assert!(
        cmds_per_flush(last) > 2.0 * cmds_per_flush(first),
        "bigger buffers batch more commands per flush: {:.1} vs {:.1}",
        cmds_per_flush(last),
        cmds_per_flush(first)
    );
}

#[test]
fn fig9_strategy_ordering() {
    let r = fig9::run_measurement(true);
    assert!(r.single_ram_gbps < r.interleaved_gbps);
    assert!(r.eris_gbps > 3.0 * r.interleaved_gbps);
    assert!(r.eris_gbps > 0.5 * r.aggregate_local_gbps);
    assert!(r.eris_gbps <= r.aggregate_local_gbps * 1.01);
}

#[test]
fn fig10_shared_misses_more_at_small_sizes() {
    let rows = fig10::sweep(true);
    // Miss ratios are sane and the shared index misses at least as often.
    for r in &rows {
        assert!(r.eris_miss_ratio > 0.0 && r.eris_miss_ratio < 1.0);
        assert!(r.shared_miss_ratio >= r.eris_miss_ratio * 0.8);
    }
}

#[test]
fn fig11_line_states_split_like_the_paper() {
    let r = fig11::run_measurement(true);
    // ERIS: overwhelmingly Modified/Exclusive (paper: 97%).
    assert!(r.eris.modified + r.eris.exclusive > 0.9);
    // Shared: mostly Shared/Forward (paper: 79.3%).
    assert!(r.shared.shared + r.shared.forward > 0.6);
}

#[test]
fn fig13_balancers_dip_and_recover() {
    let one_shot = fig13::run_config(Some(BalanceAlgorithm::OneShot), true);
    let none = fig13::run_config(None, true);
    // Before the change (t<=10) both run at the same level.
    let base: f64 = one_shot[..10].iter().map(|s| s.mops).sum::<f64>() / 10.0;
    // Right after the change One-Shot dips below the non-balancing run...
    let dip = one_shot[10..13]
        .iter()
        .map(|s| s.mops)
        .fold(f64::INFINITY, f64::min);
    let none_after: f64 = none[20..30].iter().map(|s| s.mops).sum::<f64>() / 10.0;
    assert!(dip < none_after, "One-Shot pays a repartitioning dip");
    // ...then recovers above it, towards the pre-change level.
    let recovered: f64 = one_shot[20..30].iter().map(|s| s.mops).sum::<f64>() / 10.0;
    assert!(
        recovered > 1.15 * none_after,
        "recovered {recovered:.0} must beat unbalanced {none_after:.0}"
    );
    assert!(
        recovered > 0.7 * base,
        "recovery approaches the original level"
    );
}

#[test]
fn energy_memory_bound_work_tolerates_frequency_scaling() {
    let rows = eris_bench::experiments::energy::sweep(true); // 100%, 60%
    let base = &rows[0];
    let low = &rows[1];
    let lookup_kept = low.lookup_rate / base.lookup_rate;
    let scan_kept = low.scan_gbps / base.scan_gbps;
    assert!(
        scan_kept > lookup_kept + 0.1,
        "memory-bound scans ({scan_kept:.2}) must tolerate DVFS better than \
         CPU-bound lookups ({lookup_kept:.2})"
    );
    assert!(scan_kept > 0.9, "scans barely notice reduced frequency");
    // Energy per row drops for the memory-bound workload.
    assert!(low.scan_energy < base.scan_energy);
}

#[test]
fn zipf_balancing_helps_under_skew() {
    let rows = eris_bench::experiments::zipf::sweep(true); // theta 0, 0.99
    let uniform = &rows[0];
    let skewed = &rows[1];
    // Skew costs throughput without balancing...
    assert!(skewed.unbalanced < 0.6 * uniform.unbalanced);
    // ...and balancing recovers a substantial part of it.
    assert!(
        skewed.balanced > 1.2 * skewed.unbalanced,
        "balanced {:.2e} vs unbalanced {:.2e}",
        skewed.balanced,
        skewed.unbalanced
    );
}
