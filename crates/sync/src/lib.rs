//! Synchronization facade for the ERIS lock-free hot paths.
//!
//! Code that builds on this crate compiles against `std` primitives in
//! normal builds — every wrapper here is a zero-cost re-export or a
//! `#[repr(transparent)]` newtype with `#[inline]` accessors — and
//! against the [loom](../../shims/loom) model checker when built with
//! `RUSTFLAGS="--cfg loom"`.  That lets the exact shipping source of
//! the latch-free structures (incoming-buffer descriptor, trace-ring
//! seqlock, outgoing handoff) be explored under every thread
//! interleaving the preemption bound admits, without a test-only fork
//! of the protocol code.
//!
//! Usage rules (enforced by `cargo xtask lint`):
//! - crates ported to this facade must not import `std::sync::atomic`
//!   directly in the ported modules;
//! - protocol data guarded by an atomic protocol goes through
//!   [`cell::UnsafeCell`], whose accesses become scheduling points
//!   under loom.
#![deny(unsafe_op_in_unsafe_fn)]

/// Atomics and `Arc`.
pub mod sync {
    #[cfg(not(loom))]
    pub use std::sync::Arc;

    #[cfg(loom)]
    pub use loom::sync::Arc;

    #[cfg(not(loom))]
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
        };
    }

    #[cfg(loom)]
    pub mod atomic {
        pub use loom::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
        };
    }
}

/// Thread spawn/yield (used by loom models and threaded helpers).
pub mod thread {
    #[cfg(not(loom))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(loom)]
    pub use loom::thread::{spawn, yield_now, JoinHandle};
}

/// Spin-loop hint; a voluntary yield under loom so cooperative
/// exploration never livelocks on a spin-wait.
pub mod hint {
    #[cfg(not(loom))]
    pub use std::hint::spin_loop;

    #[cfg(loom)]
    pub use loom::hint::spin_loop;
}

/// Interior mutability for protocol-guarded data.
pub mod cell {
    /// `std::cell::UnsafeCell` with loom's closure-based API.
    ///
    /// `#[repr(transparent)]` in both modes: arrays of cells stay
    /// contiguous, so pointer arithmetic across elements (the
    /// incoming-buffer byte array) is layout-identical to a plain
    /// `[u8]`.
    #[cfg(not(loom))]
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    #[cfg(not(loom))]
    impl<T> UnsafeCell<T> {
        #[inline(always)]
        pub const fn new(v: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(v))
        }

        /// Immutable access to the contents via raw pointer.
        #[inline(always)]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Mutable access to the contents via raw pointer.
        #[inline(always)]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }

    #[cfg(loom)]
    pub use loom::cell::UnsafeCell;
}

/// Run `f` under exhaustive schedule exploration when built with
/// `--cfg loom`; otherwise run it once as a plain smoke test, so the
/// same model doubles as a tier-1 unit test.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    #[cfg(loom)]
    loom::model(f);
    #[cfg(not(loom))]
    f();
}
