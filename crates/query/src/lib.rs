//! # eris-query — a query processing framework on top of ERIS
//!
//! The paper's conclusion: *"Since ERIS only provides storage operation
//! primitives, we plan to implement a query processing framework on top of
//! ERIS to evaluate the performance of more complex queries."*  This crate
//! is that layer in miniature: relational operators compiled down to data
//! commands, executed by the AEUs, with intermediate results materialized
//! NUMA-aware through the routing layer — the pattern the paper's
//! introduction calls mission-critical for analytical workloads.
//!
//! Operators:
//!
//! * **Aggregate** — predicate + aggregate over a table: a multicast scan,
//!   partials combined at the coordinator.
//! * **FilterInto** — σ(src) materialized into a fresh column object: each
//!   AEU scans its partition and routes matching rows as appends, which the
//!   routing layer spreads round-robin over the destination's partitions
//!   (NUMA-aware intermediate results).
//! * **IndexJoinCount** — the distributed index-nested-loop join probe:
//!   each AEU scans its probe partition and routes a `Lookup` into the
//!   dimension index for every matching row; the matched count is the join
//!   cardinality ("lookup operations during a join", Section 3.2).
//!
//! ```
//! use eris_query::QueryEngine;
//! use eris_core::prelude::*;
//!
//! let mut q = QueryEngine::new(eris_numa::intel_machine(), EngineConfig {
//!     collect_results: true,
//!     ..Default::default()
//! });
//! let sales = q.create_column("sales");
//! q.insert_rows(sales, (0..1000u64).map(|i| i % 100));
//! let total = q.aggregate(sales, Predicate::Range { lo: 90, hi: 100 }, Aggregate::Count);
//! assert_eq!(total, eris_column::scan::AggregateResult::Count(100));
//! ```

use eris_column::scan::AggregateResult;
use eris_column::{Aggregate, Predicate};
use eris_core::prelude::*;
use eris_core::DataObjectId;
use eris_numa::Topology;

/// Outcome of an [`QueryEngine::index_join_count`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinStats {
    /// Probe rows that found a partner in the index.
    pub matches: u64,
    /// Probe rows routed into the index.
    pub probes: u64,
}

/// A coordinator wrapping the storage engine with query operators.
pub struct QueryEngine {
    engine: Engine,
    next_ticket: u64,
}

impl QueryEngine {
    /// Build a query engine on a simulated machine.  `collect_results`
    /// should be enabled in `cfg` for exact results.
    pub fn new(topo: Topology, cfg: EngineConfig) -> Self {
        QueryEngine {
            engine: Engine::new(topo, cfg),
            next_ticket: 1,
        }
    }

    /// Wrap an existing engine.
    pub fn from_engine(engine: Engine) -> Self {
        QueryEngine {
            engine,
            next_ticket: 1,
        }
    }

    /// The underlying storage engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the underlying storage engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    fn ticket(&mut self) -> u64 {
        self.next_ticket += 1;
        self.next_ticket
    }

    // ------------------------------------------------------------------
    // DDL / loading
    // ------------------------------------------------------------------

    /// Create a size-partitioned fact column.
    pub fn create_column(&mut self, name: &str) -> DataObjectId {
        self.engine.create_column(name)
    }

    /// Create a range-partitioned dimension index over `[0, domain)`.
    pub fn create_index(&mut self, name: &str, domain: u64) -> DataObjectId {
        self.engine.create_index(name, domain)
    }

    /// Bulk-load rows into a column.
    pub fn insert_rows(&mut self, column: DataObjectId, rows: impl IntoIterator<Item = u64>) {
        self.engine.bulk_load_column(column, rows);
    }

    /// Bulk-load key/value pairs into an index.
    pub fn insert_pairs(
        &mut self,
        index: DataObjectId,
        pairs: impl IntoIterator<Item = (u64, u64)>,
    ) {
        self.engine.bulk_load_index(index, pairs);
    }

    /// Total rows/keys currently stored in an object.
    pub fn object_len(&self, object: DataObjectId) -> usize {
        self.engine
            .aeu_ids()
            .iter()
            .map(|a| {
                self.engine
                    .aeu(*a)
                    .partition(object)
                    .map_or(0, |p| p.data.len())
            })
            .sum()
    }

    // ------------------------------------------------------------------
    // Operators
    // ------------------------------------------------------------------

    /// σ+γ: aggregate the rows of `table` matching `pred`.
    pub fn aggregate(
        &mut self,
        table: DataObjectId,
        pred: Predicate,
        agg: Aggregate,
    ) -> AggregateResult {
        let t = self.ticket();
        self.engine
            .submit(
                AeuId(0),
                DataCommand {
                    object: table,
                    ticket: t,
                    payload: Payload::Scan {
                        pred,
                        agg,
                        snapshot: u64::MAX,
                    },
                },
            )
            .unwrap();
        self.engine.run_until_drained();
        self.engine
            .results()
            .combine_scan(t)
            .expect("every partition contributed a partial")
    }

    /// σ into a new column: scan `src`, materialize matching rows into a
    /// fresh size-partitioned object.  Returns `(dst, rows_materialized)`.
    pub fn filter_into(
        &mut self,
        name: &str,
        src: DataObjectId,
        pred: Predicate,
    ) -> (DataObjectId, u64) {
        let dst = self.engine.create_column(name);
        let before = self.engine.results().counts().upserts;
        let t = self.ticket();
        self.engine
            .submit(
                AeuId(0),
                DataCommand {
                    object: src,
                    ticket: t,
                    payload: Payload::Materialize {
                        dst,
                        pred,
                        snapshot: u64::MAX,
                    },
                },
            )
            .unwrap();
        self.engine.run_until_drained();
        let rows = self.engine.results().counts().upserts - before;
        (dst, rows)
    }

    /// Index-nested-loop join cardinality: probe `index` with every row of
    /// `probe_table` matching `pred`.
    pub fn index_join_count(
        &mut self,
        probe_table: DataObjectId,
        pred: Predicate,
        index: DataObjectId,
    ) -> JoinStats {
        let before = self.engine.results().counts();
        let t = self.ticket();
        self.engine
            .submit(
                AeuId(0),
                DataCommand {
                    object: probe_table,
                    ticket: t,
                    payload: Payload::JoinProbe {
                        index,
                        pred,
                        snapshot: u64::MAX,
                    },
                },
            )
            .unwrap();
        self.engine.run_until_drained();
        let after = self.engine.results().counts();
        JoinStats {
            matches: after.lookup_hits - before.lookup_hits,
            probes: after.lookups - before.lookups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eris_numa::machines::custom_machine;

    fn qe() -> QueryEngine {
        QueryEngine::new(
            custom_machine("q", 4, 2, 20.0, 100.0, 10.0, 60.0),
            EngineConfig {
                collect_results: true,
                tree: PrefixTreeConfig::new(8, 32),
                ..Default::default()
            },
        )
    }

    #[test]
    fn aggregate_over_column() {
        let mut q = qe();
        let c = q.create_column("c");
        q.insert_rows(c, (0..10_000u64).map(|i| i % 100));
        assert_eq!(
            q.aggregate(c, Predicate::All, Aggregate::Count),
            AggregateResult::Count(10_000)
        );
        assert_eq!(
            q.aggregate(c, Predicate::Equals(7), Aggregate::Count),
            AggregateResult::Count(100)
        );
        assert_eq!(
            q.aggregate(c, Predicate::Range { lo: 0, hi: 10 }, Aggregate::Sum),
            AggregateResult::Sum((0..10u64).map(|v| v * 100).sum())
        );
    }

    #[test]
    fn filter_into_materializes_numa_spread() {
        let mut q = qe();
        let c = q.create_column("src");
        q.insert_rows(c, 0..10_000u64);
        let (dst, rows) = q.filter_into("hot", c, Predicate::Range { lo: 0, hi: 1000 });
        assert_eq!(rows, 1000);
        assert_eq!(q.object_len(dst), 1000);
        // The intermediate result is spread over many AEUs, not piled on one.
        let lens: Vec<usize> = q
            .engine()
            .aeu_ids()
            .iter()
            .map(|a| {
                q.engine()
                    .aeu(*a)
                    .partition(dst)
                    .map_or(0, |p| p.data.len())
            })
            .collect();
        let holders = lens.iter().filter(|&&l| l > 0).count();
        assert!(
            holders >= 4,
            "materialized rows spread over {holders} AEUs: {lens:?}"
        );
        // And the materialized column is queryable like any other.
        assert_eq!(
            q.aggregate(dst, Predicate::All, Aggregate::MinMax),
            AggregateResult::MinMax(Some((0, 999)))
        );
    }

    #[test]
    fn index_join_counts_matches() {
        let mut q = qe();
        // Dimension: even ids 0,2,..,1998 exist.
        let dim = q.create_index("dim", 1 << 16);
        q.insert_pairs(dim, (0..1000u64).map(|i| (i * 2, i)));
        // Fact: foreign keys 0..2000, half of which exist in the dimension.
        let fact = q.create_column("fact");
        q.insert_rows(fact, 0..2000u64);
        let stats = q.index_join_count(fact, Predicate::All, dim);
        assert_eq!(stats.probes, 2000);
        assert_eq!(stats.matches, 1000, "exactly the even foreign keys join");
    }

    #[test]
    fn join_after_filter_pipeline() {
        let mut q = qe();
        let dim = q.create_index("dim", 1 << 16);
        q.insert_pairs(dim, (0..500u64).map(|k| (k, k)));
        let fact = q.create_column("fact");
        q.insert_rows(fact, (0..4000u64).map(|i| i % 1000));
        // σ(fact < 250) — then join the intermediate result with dim.
        let (hot, rows) = q.filter_into("hot", fact, Predicate::Range { lo: 0, hi: 250 });
        assert_eq!(rows, 1000, "4 repetitions x 250 values");
        let stats = q.index_join_count(hot, Predicate::All, dim);
        assert_eq!(stats.probes, 1000);
        assert_eq!(stats.matches, 1000, "all filtered keys exist in dim");
    }

    #[test]
    fn join_probe_with_predicate_pushdown() {
        let mut q = qe();
        let dim = q.create_index("dim", 1 << 16);
        q.insert_pairs(dim, (0..100u64).map(|k| (k, k)));
        let fact = q.create_column("fact");
        q.insert_rows(fact, 0..1000u64);
        // Only probe rows in [50, 150): 100 probes, 50 match.
        let stats = q.index_join_count(fact, Predicate::Range { lo: 50, hi: 150 }, dim);
        assert_eq!(stats.probes, 100);
        assert_eq!(stats.matches, 50);
    }

    #[test]
    fn works_on_the_paper_machines() {
        for topo in [eris_numa::intel_machine(), eris_numa::amd_machine()] {
            let mut q = QueryEngine::new(
                topo,
                EngineConfig {
                    collect_results: true,
                    ..Default::default()
                },
            );
            let c = q.create_column("c");
            q.insert_rows(c, 0..1000u64);
            assert_eq!(
                q.aggregate(c, Predicate::All, Aggregate::Count),
                AggregateResult::Count(1000)
            );
        }
    }
}
