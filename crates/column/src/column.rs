//! Segmented columns with node-homed segments and snapshot visibility.

use eris_numa::NodeId;

/// Default values per segment (512 KiB of u64s).
pub const DEFAULT_SEGMENT_CAPACITY: usize = 64 * 1024;

/// Error returned when a column has no segment space left; the caller
/// (the AEU, which owns the node's memory manager) provisions a segment
/// and retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnFull;

impl std::fmt::Display for ColumnFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "column has no free segment capacity")
    }
}

impl std::error::Error for ColumnFull {}

/// A fixed-capacity run of values homed on one NUMA node.
pub struct Segment {
    home: NodeId,
    /// Synthetic address of the segment start (for traffic accounting).
    vaddr: u64,
    data: Vec<u64>,
    capacity: usize,
}

impl Segment {
    pub fn with_capacity(home: NodeId, vaddr: u64, capacity: usize) -> Self {
        assert!(capacity > 0);
        Segment {
            home,
            vaddr,
            data: Vec::with_capacity(capacity),
            capacity,
        }
    }

    #[inline]
    pub fn home(&self) -> NodeId {
        self.home
    }

    #[inline]
    pub fn vaddr(&self) -> u64 {
        self.vaddr
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn is_full(&self) -> bool {
        self.data.len() == self.capacity
    }

    #[inline]
    pub fn values(&self) -> &[u64] {
        &self.data
    }

    /// Bytes of stored values.
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.data.len() * 8) as u64
    }
}

/// A scan predicate.  Analytical scans in the paper are filters over a
/// column; these three forms cover the evaluation workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// Every row matches.
    All,
    /// `lo <= v < hi` — except that `hi == u64::MAX` is the unbounded-above
    /// sentinel and *includes* `u64::MAX` itself.  A plain half-open bound
    /// cannot express "everything from `lo` up", so the top key of the
    /// domain would be silently unreachable without the sentinel.
    Range { lo: u64, hi: u64 },
    /// `v == x`.
    Equals(u64),
}

impl Predicate {
    #[inline]
    pub fn matches(&self, v: u64) -> bool {
        match *self {
            Predicate::All => true,
            Predicate::Range { lo, hi } => v >= lo && (v < hi || hi == u64::MAX),
            Predicate::Equals(x) => v == x,
        }
    }

    /// The inclusive `[lo, hi]` value interval this predicate admits, or
    /// `None` when it can match nothing.  Exact for every variant — in
    /// particular `Equals(x)` becomes `[x, x]` with no `x + 1` overflow,
    /// and the `hi == u64::MAX` sentinel becomes `[lo, u64::MAX]` — so
    /// callers that walk an index by bounds visit exactly the matching
    /// keys and need no per-key re-check.
    #[inline]
    pub fn bounds_inclusive(&self) -> Option<(u64, u64)> {
        match *self {
            Predicate::All => Some((0, u64::MAX)),
            Predicate::Range { lo, hi } => {
                if hi == u64::MAX {
                    Some((lo, u64::MAX))
                } else if lo >= hi {
                    None
                } else {
                    Some((lo, hi - 1))
                }
            }
            Predicate::Equals(x) => Some((x, x)),
        }
    }
}

/// An append-only column assembled from node-homed segments.
pub struct Column {
    segments: Vec<Segment>,
    len: usize,
}

impl Column {
    /// An empty column; segments are provisioned by the owner.
    pub fn new() -> Self {
        Column {
            segments: Vec::new(),
            len: 0,
        }
    }

    /// Convenience constructor: a column that self-provisions segments of
    /// `capacity` values homed on `home`, with synthetic addresses starting
    /// at `base_vaddr`.  Used by tests and single-node tools; the engine
    /// provisions segments through its memory manager instead.
    pub fn new_local(home: NodeId, base_vaddr: u64, capacity: usize) -> LocalColumn {
        LocalColumn {
            column: Column::new(),
            home,
            base_vaddr,
            capacity,
        }
    }

    /// Add a fresh segment (provisioned by the AEU's memory manager).
    pub fn push_segment(&mut self, seg: Segment) {
        assert!(seg.is_empty(), "provisioned segments start empty");
        self.segments.push(seg);
    }

    /// Total rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total value bytes.
    pub fn bytes(&self) -> u64 {
        (self.len * 8) as u64
    }

    /// The segments, for per-segment traffic accounting.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Remaining capacity of the open (last) segment.
    pub fn free_capacity(&self) -> usize {
        self.segments
            .last()
            .map_or(0, |s| s.capacity - s.data.len())
    }

    /// Append one value into the open segment.
    pub fn append(&mut self, v: u64) -> Result<(), ColumnFull> {
        match self.segments.last_mut() {
            Some(seg) if !seg.is_full() => {
                seg.data.push(v);
                self.len += 1;
                Ok(())
            }
            _ => Err(ColumnFull),
        }
    }

    /// Append as many of `values` as fit; returns how many were written.
    pub fn append_slice(&mut self, values: &[u64]) -> usize {
        let mut written = 0;
        while written < values.len() {
            let Some(seg) = self.segments.last_mut() else {
                break;
            };
            let room = seg.capacity - seg.data.len();
            if room == 0 {
                break;
            }
            let take = room.min(values.len() - written);
            // BOUNDS: take = min(room, len - written), so the slice stays in
            // `values`.  ALLOC-OK: room > 0 was just checked, so this extend
            // fills pre-provisioned segment capacity without reallocating.
            seg.data.extend_from_slice(&values[written..written + take]);
            written += take;
        }
        self.len += written;
        written
    }

    /// Append a stable little-endian serialization of the row values:
    /// `[u64 n][n × u64 value]` in row order.  Segment boundaries are not
    /// persisted — the restoring AEU re-provisions segments on its own
    /// node, which is exactly the NUMA-local placement we want after a
    /// recovery anyway.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.reserve(8 + self.len * 8);
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for seg in &self.segments {
            for &v in &seg.data {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }

    /// Decode a [`Column::serialize_into`] payload back into row values.
    /// `None` if the buffer is truncated, carries trailing bytes, or
    /// declares more rows than it holds — checkpoint files are external
    /// input and may be cut short by a crash.
    pub fn decode_values(payload: &[u8]) -> Option<Vec<u64>> {
        if payload.len() < 8 {
            return None;
        }
        let n = u64::from_le_bytes(payload[..8].try_into().unwrap()) as usize;
        let body = &payload[8..];
        if body.len() != n.checked_mul(8)? {
            return None;
        }
        Some(
            body.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        )
    }

    /// Read row `i` (0-based across segments).
    pub fn get(&self, mut i: usize) -> Option<u64> {
        if i >= self.len {
            return None;
        }
        for seg in &self.segments {
            if i < seg.data.len() {
                // BOUNDS: guarded by `i < seg.data.len()` on the previous line.
                return Some(seg.data[i]);
            }
            i -= seg.data.len();
        }
        None
    }

    /// Scan the first `snapshot` rows, calling `f(row_id, value)` for every
    /// match.  Returns rows examined (for virtual-time accounting).
    pub fn scan(&self, pred: Predicate, snapshot: usize, mut f: impl FnMut(usize, u64)) -> usize {
        let limit = snapshot.min(self.len);
        let mut row = 0usize;
        for seg in &self.segments {
            if row >= limit {
                break;
            }
            let take = (limit - row).min(seg.data.len());
            for (i, &v) in seg.data[..take].iter().enumerate() {
                if pred.matches(v) {
                    f(row + i, v);
                }
            }
            row += take;
        }
        limit
    }

    /// Visit the first `snapshot` rows as contiguous chunks of at most
    /// [`crate::kernel::CHUNK_ROWS`] values, calling `f(row_base, values)`
    /// per chunk.  Chunks never straddle a segment boundary, so each slice
    /// is one contiguous run of memory a kernel can stream through.
    /// Returns rows examined (for virtual-time accounting).
    pub fn for_each_chunk(&self, snapshot: usize, mut f: impl FnMut(usize, &[u64])) -> usize {
        let limit = snapshot.min(self.len);
        let mut row = 0usize;
        for seg in &self.segments {
            if row >= limit {
                break;
            }
            let take = (limit - row).min(seg.data.len());
            let mut off = 0usize;
            while off < take {
                let end = (off + crate::kernel::CHUNK_ROWS).min(take);
                f(row + off, &seg.data[off..end]);
                off = end;
            }
            row += take;
        }
        limit
    }

    /// Append every value matching `pred` within the snapshot to `out`,
    /// in row order, via the chunked bitmap kernel.  Returns rows
    /// examined.
    pub fn collect_matching(&self, pred: Predicate, snapshot: usize, out: &mut Vec<u64>) -> usize {
        let p = crate::kernel::CompiledPredicate::compile(pred);
        let mut words = [0u64; crate::kernel::CHUNK_WORDS];
        self.for_each_chunk(snapshot, |_, chunk| {
            let n = crate::kernel::select_bitmap(chunk, p, &mut words);
            if n > 0 {
                // ALLOC-OK: `out` is the caller's reusable result vector; reserve
                // amortizes and the push writes into reserved capacity.
                out.reserve(n as usize);
                crate::kernel::for_each_selected(chunk, &words, |_, v| out.push(v));
            }
        })
    }

    /// Scan rows `[start, end)` (parallel workers splitting one shared
    /// scan), calling `f(row_id, value)` for matches.  Returns rows
    /// examined.
    pub fn scan_rows(
        &self,
        start: usize,
        end: usize,
        pred: Predicate,
        mut f: impl FnMut(usize, u64),
    ) -> usize {
        let end = end.min(self.len);
        if start >= end {
            return 0;
        }
        let mut row = 0usize;
        let mut examined = 0usize;
        for seg in &self.segments {
            let seg_end = row + seg.data.len();
            if seg_end > start && row < end {
                let lo = start.max(row) - row;
                let hi = end.min(seg_end) - row;
                for (i, &v) in seg.data[lo..hi].iter().enumerate() {
                    if pred.matches(v) {
                        f(row + lo + i, v);
                    }
                }
                examined += hi - lo;
            }
            row = seg_end;
            if row >= end {
                break;
            }
        }
        examined
    }

    /// How many of the rows in `[start, end)` live on each node — the
    /// per-home traffic of a partial scan.
    pub fn rows_per_node(&self, start: usize, end: usize) -> Vec<(eris_numa::NodeId, u64)> {
        let end = end.min(self.len);
        let mut out: Vec<(eris_numa::NodeId, u64)> = Vec::new();
        let mut row = 0usize;
        for seg in &self.segments {
            let seg_end = row + seg.data.len();
            if seg_end > start && row < end {
                let rows = (end.min(seg_end) - start.max(row)) as u64;
                match out.iter_mut().find(|(n, _)| *n == seg.home()) {
                    Some((_, r)) => *r += rows,
                    None => out.push((seg.home(), rows)),
                }
            }
            row = seg_end;
            if row >= end {
                break;
            }
        }
        out
    }

    /// Count rows matching `pred` within the snapshot (chunked kernel).
    pub fn count(&self, pred: Predicate, snapshot: usize) -> u64 {
        let p = crate::kernel::CompiledPredicate::compile(pred);
        let mut n = 0u64;
        self.for_each_chunk(snapshot, |_, chunk| n += crate::kernel::count(chunk, p));
        n
    }

    /// Sum of matching values within the snapshot (chunked kernel).
    pub fn sum(&self, pred: Predicate, snapshot: usize) -> u64 {
        let p = crate::kernel::CompiledPredicate::compile(pred);
        let mut s = 0u64;
        self.for_each_chunk(snapshot, |_, chunk| {
            s = s.wrapping_add(crate::kernel::sum(chunk, p));
        });
        s
    }

    /// Remove and return the last `n` rows — the shrink side of a
    /// physical-size balancing command ("the balancing command includes the
    /// number of tuples that have to be ... handed over to another AEU").
    pub fn drain_tail(&mut self, n: usize) -> Vec<u64> {
        let n = n.min(self.len);
        let mut out = Vec::with_capacity(n);
        let mut remaining = n;
        while remaining > 0 {
            let seg = self.segments.last_mut().expect("len accounting");
            let take = remaining.min(seg.data.len());
            let at = seg.data.len() - take;
            let mut tail = seg.data.split_off(at);
            tail.append(&mut out);
            out = tail;
            remaining -= take;
            let emptied = seg.data.is_empty();
            if emptied && self.segments.len() > 1 {
                self.segments.pop();
            } else if emptied && remaining > 0 {
                unreachable!("drain_tail({n}) exceeds accounted length");
            }
        }
        self.len -= n;
        out
    }
}

impl Default for Column {
    fn default() -> Self {
        Self::new()
    }
}

/// A self-provisioning column for single-owner use (tests, examples).
pub struct LocalColumn {
    column: Column,
    home: NodeId,
    base_vaddr: u64,
    capacity: usize,
}

impl LocalColumn {
    /// Append, provisioning a fresh local segment when full.
    pub fn append(&mut self, v: u64) {
        if self.column.append(v) == Err(ColumnFull) {
            let idx = self.column.segments.len() as u64;
            let vaddr = self.base_vaddr + idx * (self.capacity as u64 * 8);
            self.column
                .push_segment(Segment::with_capacity(self.home, vaddr, self.capacity));
            self.column.append(v).expect("fresh segment has room");
        }
    }

    /// Append many values.
    pub fn extend(&mut self, values: impl IntoIterator<Item = u64>) {
        for v in values {
            self.append(v);
        }
    }

    /// The underlying column.
    pub fn column(&self) -> &Column {
        &self.column
    }

    /// Mutable access to the underlying column.
    pub fn column_mut(&mut self) -> &mut Column {
        &mut self.column
    }

    /// Unwrap into the plain column.
    pub fn into_column(self) -> Column {
        self.column
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64) -> LocalColumn {
        let mut c = Column::new_local(NodeId(0), 0, 16);
        c.extend(0..n);
        c
    }

    #[test]
    fn append_without_segment_fails() {
        let mut c = Column::new();
        assert_eq!(c.append(1), Err(ColumnFull));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn append_spans_segments() {
        let c = filled(40);
        assert_eq!(c.column().len(), 40);
        assert_eq!(c.column().segments().len(), 3, "16-value segments");
        assert_eq!(c.column().get(0), Some(0));
        assert_eq!(c.column().get(17), Some(17));
        assert_eq!(c.column().get(39), Some(39));
        assert_eq!(c.column().get(40), None);
    }

    #[test]
    fn serialization_roundtrips_and_rejects_corruption() {
        let c = filled(40);
        let mut buf = Vec::new();
        c.column().serialize_into(&mut buf);
        assert_eq!(
            Column::decode_values(&buf),
            Some((0..40).collect::<Vec<u64>>())
        );
        assert_eq!(Column::decode_values(&buf[..buf.len() - 3]), None);
        assert_eq!(Column::decode_values(&[]), None);
        let mut lying = buf;
        lying[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(Column::decode_values(&lying), None);
    }

    #[test]
    fn scan_respects_snapshot() {
        let c = filled(40);
        let mut seen = Vec::new();
        let examined = c.column().scan(Predicate::All, 20, |_, v| seen.push(v));
        assert_eq!(examined, 20);
        assert_eq!(seen, (0..20).collect::<Vec<u64>>());
        // Snapshot beyond len clamps.
        assert_eq!(c.column().scan(Predicate::All, 100, |_, _| {}), 40);
    }

    #[test]
    fn predicates_filter() {
        let c = filled(100);
        assert_eq!(
            c.column().count(Predicate::Range { lo: 10, hi: 20 }, 100),
            10
        );
        assert_eq!(c.column().count(Predicate::Equals(55), 100), 1);
        assert_eq!(
            c.column().count(Predicate::Equals(55), 50),
            0,
            "snapshot hides it"
        );
        assert_eq!(
            c.column().sum(Predicate::Range { lo: 0, hi: 4 }, 100),
            1 + 2 + 3
        );
    }

    #[test]
    fn max_key_is_reachable_through_every_predicate_form() {
        let mut c = Column::new_local(NodeId(0), 0, 16);
        c.extend([1, u64::MAX, 7, u64::MAX - 1]);
        let c = c.column();
        // The unbounded-above sentinel includes u64::MAX...
        let unbounded = Predicate::Range {
            lo: 5,
            hi: u64::MAX,
        };
        assert_eq!(c.count(unbounded, 4), 3);
        assert!(unbounded.matches(u64::MAX));
        // ...while a genuinely half-open range still excludes its hi.
        let half_open = Predicate::Range {
            lo: 5,
            hi: u64::MAX - 1,
        };
        assert_eq!(c.count(half_open, 4), 1, "only the 7");
        assert_eq!(c.count(Predicate::Equals(u64::MAX), 4), 1);
        let mut got = Vec::new();
        c.collect_matching(unbounded, 4, &mut got);
        assert_eq!(got, vec![u64::MAX, 7, u64::MAX - 1]);
    }

    #[test]
    fn bounds_inclusive_is_exact() {
        assert_eq!(Predicate::All.bounds_inclusive(), Some((0, u64::MAX)));
        assert_eq!(
            Predicate::Range { lo: 3, hi: 9 }.bounds_inclusive(),
            Some((3, 8))
        );
        assert_eq!(Predicate::Range { lo: 3, hi: 3 }.bounds_inclusive(), None);
        assert_eq!(Predicate::Range { lo: 9, hi: 3 }.bounds_inclusive(), None);
        assert_eq!(
            Predicate::Range {
                lo: 3,
                hi: u64::MAX
            }
            .bounds_inclusive(),
            Some((3, u64::MAX))
        );
        assert_eq!(
            Predicate::Equals(u64::MAX).bounds_inclusive(),
            Some((u64::MAX, u64::MAX))
        );
    }

    #[test]
    fn chunks_respect_snapshot_and_segment_boundaries() {
        let c = filled(40); // 16-value segments
        let mut bases = Vec::new();
        let mut total = 0usize;
        let examined = c.column().for_each_chunk(35, |base, chunk| {
            bases.push(base);
            total += chunk.len();
        });
        assert_eq!(examined, 35);
        assert_eq!(total, 35);
        assert_eq!(bases, vec![0, 16, 32], "one chunk per partial segment");
    }

    #[test]
    fn scan_reports_row_ids() {
        let c = filled(50);
        let mut rows = Vec::new();
        c.column()
            .scan(Predicate::Equals(33), 50, |row, v| rows.push((row, v)));
        assert_eq!(rows, vec![(33, 33)]);
    }

    #[test]
    fn scan_rows_covers_exact_window() {
        let c = filled(50);
        let mut seen = Vec::new();
        let examined = c
            .column()
            .scan_rows(10, 35, Predicate::All, |_, v| seen.push(v));
        assert_eq!(examined, 25);
        assert_eq!(seen, (10..35).collect::<Vec<u64>>());
        assert_eq!(c.column().scan_rows(40, 40, Predicate::All, |_, _| {}), 0);
        assert_eq!(c.column().scan_rows(45, 100, Predicate::All, |_, _| {}), 5);
    }

    #[test]
    fn rows_per_node_tracks_segment_homes() {
        let mut c = Column::new();
        c.push_segment(Segment::with_capacity(NodeId(0), 0, 4));
        c.append_slice(&[1, 2, 3, 4]);
        c.push_segment(Segment::with_capacity(NodeId(1), 64, 4));
        c.append_slice(&[5, 6, 7, 8]);
        let per = c.rows_per_node(2, 7);
        assert_eq!(per, vec![(NodeId(0), 2), (NodeId(1), 3)]);
        assert_eq!(c.rows_per_node(0, 8).iter().map(|(_, r)| r).sum::<u64>(), 8);
    }

    #[test]
    fn append_slice_fills_open_segment_only() {
        let mut c = Column::new();
        c.push_segment(Segment::with_capacity(NodeId(1), 0, 8));
        let values: Vec<u64> = (0..20).collect();
        assert_eq!(c.append_slice(&values), 8);
        assert_eq!(c.len(), 8);
        c.push_segment(Segment::with_capacity(NodeId(1), 64, 8));
        assert_eq!(c.append_slice(&values[8..]), 8);
        assert_eq!(c.len(), 16);
    }

    #[test]
    fn drain_tail_removes_exactly_n_in_order() {
        let mut c = filled(40).into_column();
        let tail = c.drain_tail(20);
        assert_eq!(tail, (20..40).collect::<Vec<u64>>());
        assert_eq!(c.len(), 20);
        assert_eq!(c.get(19), Some(19));
        assert_eq!(c.get(20), None);
        // Draining more than remains clamps.
        let rest = c.drain_tail(100);
        assert_eq!(rest.len(), 20);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn drain_tail_drops_emptied_segments() {
        let mut c = filled(40).into_column();
        c.drain_tail(33);
        assert_eq!(c.segments().len(), 1);
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn segment_homes_and_bytes() {
        let mut c = Column::new();
        c.push_segment(Segment::with_capacity(NodeId(3), 4096, 4));
        c.append(7).unwrap();
        let seg = &c.segments()[0];
        assert_eq!(seg.home(), NodeId(3));
        assert_eq!(seg.vaddr(), 4096);
        assert_eq!(seg.bytes(), 8);
        assert_eq!(c.bytes(), 8);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn scan_equals_vec_filter(values in proptest::collection::vec(0u64..1000, 0..300),
                                      lo in 0u64..1000, hi in 0u64..1000,
                                      snapshot in 0usize..350)
            {
                let mut c = Column::new_local(NodeId(0), 0, 7);
                c.extend(values.iter().copied());
                let mut got = Vec::new();
                c.column().scan(Predicate::Range { lo, hi }, snapshot, |_, v| got.push(v));
                let expect: Vec<u64> = values.iter().take(snapshot)
                    .filter(|&&v| v >= lo && v < hi).copied().collect();
                prop_assert_eq!(got, expect);
            }

            #[test]
            fn chunked_aggregates_match_scalar_scan(
                values in proptest::collection::vec(
                    prop_oneof![any::<u64>(), Just(u64::MAX), Just(0u64), 0u64..1000],
                    0..300),
                lo in prop_oneof![any::<u64>(), 0u64..1000],
                hi in prop_oneof![any::<u64>(), Just(u64::MAX), 0u64..1000],
                snapshot in 0usize..350)
            {
                let mut c = Column::new_local(NodeId(0), 0, 7);
                c.extend(values.iter().copied());
                let pred = Predicate::Range { lo, hi };
                // The per-row closure scan is the oracle for the kernels.
                let mut n = 0u64;
                let mut s = 0u64;
                let mut vals = Vec::new();
                c.column().scan(pred, snapshot, |_, v| {
                    n += 1;
                    s = s.wrapping_add(v);
                    vals.push(v);
                });
                prop_assert_eq!(c.column().count(pred, snapshot), n);
                prop_assert_eq!(c.column().sum(pred, snapshot), s);
                let mut got = Vec::new();
                c.column().collect_matching(pred, snapshot, &mut got);
                prop_assert_eq!(got, vals);
            }

            #[test]
            fn drain_then_reappend_is_identity(values in proptest::collection::vec(0u64..1000, 1..200),
                                               n in 0usize..220)
            {
                let mut c = Column::new_local(NodeId(0), 0, 16);
                c.extend(values.iter().copied());
                let tail = c.column_mut().drain_tail(n);
                c.extend(tail);
                let mut got = Vec::new();
                c.column().scan(Predicate::All, usize::MAX, |_, v| got.push(v));
                prop_assert_eq!(got, values);
            }
        }
    }
}
