//! Scan sharing: many scan commands, one pass over the data.
//!
//! Section 3.1: *"an AEU is able to execute multiple scan commands on the
//! same partition with a single scan and is thereby implementing scan
//! sharing in combination with MVCC to ensure isolation."*
//!
//! A [`SharedScan`] collects the coalesced scan commands of one processing
//! round — each with its own predicate, snapshot, and aggregate — and
//! executes them in a single sweep of the column.  Because each consumer
//! carries its own snapshot, isolation is preserved even though the sweep
//! is shared.

use crate::column::{Column, Predicate};

/// The aggregate a scan command computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of matching rows.
    Count,
    /// Sum of matching values (wrapping).
    Sum,
    /// Minimum and maximum of matching values.
    MinMax,
}

/// Result of one consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateResult {
    Count(u64),
    Sum(u64),
    /// `None` when no row matched.
    MinMax(Option<(u64, u64)>),
}

struct Consumer {
    pred: Predicate,
    snapshot: usize,
    agg: Aggregate,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    matched: bool,
}

/// A batch of scan commands answered by a single pass.
pub struct SharedScan {
    consumers: Vec<Consumer>,
}

impl SharedScan {
    pub fn new() -> Self {
        SharedScan {
            consumers: Vec::new(),
        }
    }

    /// Register one scan command; returns its consumer index.
    pub fn add(&mut self, pred: Predicate, snapshot: usize, agg: Aggregate) -> usize {
        self.consumers.push(Consumer {
            pred,
            snapshot,
            agg,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            matched: false,
        });
        self.consumers.len() - 1
    }

    /// Number of registered consumers.
    pub fn len(&self) -> usize {
        self.consumers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.consumers.is_empty()
    }

    /// Execute all consumers in one sweep.  Returns the rows examined —
    /// the *maximum* snapshot across consumers, not the sum: that the data
    /// is read once for N commands is exactly the scan-sharing win the
    /// virtual-time model charges for.
    pub fn execute(mut self, column: &Column) -> (Vec<AggregateResult>, usize) {
        let sweep = self.consumers.iter().map(|c| c.snapshot).max().unwrap_or(0);
        let examined = column.scan(Predicate::All, sweep, |row, v| {
            for c in &mut self.consumers {
                if row < c.snapshot && c.pred.matches(v) {
                    c.count += 1;
                    c.sum = c.sum.wrapping_add(v);
                    if v < c.min {
                        c.min = v;
                    }
                    if v > c.max {
                        c.max = v;
                    }
                    c.matched = true;
                }
            }
        });
        let results = self
            .consumers
            .iter()
            .map(|c| match c.agg {
                Aggregate::Count => AggregateResult::Count(c.count),
                Aggregate::Sum => AggregateResult::Sum(c.sum),
                Aggregate::MinMax => AggregateResult::MinMax(c.matched.then_some((c.min, c.max))),
            })
            .collect();
        (results, examined)
    }
}

impl Default for SharedScan {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eris_numa::NodeId;

    fn column(n: u64) -> Column {
        let mut c = Column::new_local(NodeId(0), 0, 32);
        c.extend(0..n);
        c.into_column()
    }

    #[test]
    fn shared_scan_matches_individual_scans() {
        let c = column(100);
        let mut s = SharedScan::new();
        s.add(Predicate::All, 100, Aggregate::Count);
        s.add(Predicate::Range { lo: 10, hi: 20 }, 100, Aggregate::Sum);
        s.add(Predicate::Equals(42), 100, Aggregate::MinMax);
        let (r, examined) = s.execute(&c);
        assert_eq!(examined, 100, "one sweep, not three");
        assert_eq!(r[0], AggregateResult::Count(100));
        assert_eq!(r[1], AggregateResult::Sum((10..20).sum()));
        assert_eq!(r[2], AggregateResult::MinMax(Some((42, 42))));
    }

    #[test]
    fn per_consumer_snapshots_isolate() {
        let c = column(50);
        let mut s = SharedScan::new();
        s.add(Predicate::All, 10, Aggregate::Count);
        s.add(Predicate::All, 50, Aggregate::Count);
        let (r, examined) = s.execute(&c);
        assert_eq!(examined, 50, "sweep covers the largest snapshot");
        assert_eq!(r[0], AggregateResult::Count(10));
        assert_eq!(r[1], AggregateResult::Count(50));
    }

    #[test]
    fn minmax_of_empty_match_is_none() {
        let c = column(10);
        let mut s = SharedScan::new();
        s.add(Predicate::Equals(999), 10, Aggregate::MinMax);
        let (r, _) = s.execute(&c);
        assert_eq!(r[0], AggregateResult::MinMax(None));
    }

    #[test]
    fn empty_shared_scan_examines_nothing() {
        let c = column(10);
        let (r, examined) = SharedScan::new().execute(&c);
        assert!(r.is_empty());
        assert_eq!(examined, 0);
    }
}
