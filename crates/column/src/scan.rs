//! Scan sharing: many scan commands, one pass over the data.
//!
//! Section 3.1: *"an AEU is able to execute multiple scan commands on the
//! same partition with a single scan and is thereby implementing scan
//! sharing in combination with MVCC to ensure isolation."*
//!
//! A [`SharedScan`] collects the coalesced scan commands of one processing
//! round — each with its own predicate, snapshot, and aggregate — and
//! executes them in a single sweep of the column.  Because each consumer
//! carries its own snapshot, isolation is preserved even though the sweep
//! is shared.

use crate::column::{Column, Predicate};
use crate::kernel::{self, CompiledPredicate};
use crate::simd;

/// Which execution path a shared sweep uses.  [`ScanKernel::Simd`] is the
/// default everywhere and degrades to the portable chunked code when the
/// hardware (or `ERIS_SIMD=0`) rules the explicit lanes out;
/// [`ScanKernel::Scalar`] keeps the original per-row closure path alive
/// as a correctness oracle (and a baseline for the kernel benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanKernel {
    /// Fused chunked sweep through the explicit-SIMD predicate kernels
    /// ([`crate::simd`]): AVX2 u64 lanes where detected, the portable
    /// chunked kernels otherwise — bit-identical either way.
    #[default]
    Simd,
    /// Fused chunked sweep through the portable branch-free kernels:
    /// every consumer's predicate is evaluated against each
    /// [`kernel::CHUNK_ROWS`]-row chunk while the chunk is hot in L1,
    /// leaving vectorization to the compiler.
    Chunked,
    /// Row-at-a-time `Predicate::matches` closure per consumer.
    Scalar,
}

/// The aggregate a scan command computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of matching rows.
    Count,
    /// Sum of matching values (wrapping).
    Sum,
    /// Minimum and maximum of matching values.
    MinMax,
}

/// Result of one consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateResult {
    Count(u64),
    Sum(u64),
    /// `None` when no row matched.
    MinMax(Option<(u64, u64)>),
}

struct Consumer {
    pred: Predicate,
    snapshot: usize,
    agg: Aggregate,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    matched: bool,
}

/// A batch of scan commands answered by a single pass.
pub struct SharedScan {
    consumers: Vec<Consumer>,
}

impl SharedScan {
    pub fn new() -> Self {
        SharedScan {
            consumers: Vec::new(),
        }
    }

    /// Register one scan command; returns its consumer index.
    pub fn add(&mut self, pred: Predicate, snapshot: usize, agg: Aggregate) -> usize {
        // ALLOC-OK: one consumer registration per scan command in the
        // fused batch; the vector's growth amortizes across the sweep
        // that shares it.
        self.consumers.push(Consumer {
            pred,
            snapshot,
            agg,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            matched: false,
        });
        self.consumers.len() - 1
    }

    /// Number of registered consumers.
    pub fn len(&self) -> usize {
        self.consumers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.consumers.is_empty()
    }

    /// Execute all consumers in one sweep with the default
    /// ([`ScanKernel::Simd`]) kernel.  Returns the rows examined — the
    /// *maximum* snapshot across consumers, not the sum: that the data is
    /// read once for N commands is exactly the scan-sharing win the
    /// virtual-time model charges for.
    pub fn execute(self, column: &Column) -> (Vec<AggregateResult>, usize) {
        self.execute_with(column, ScanKernel::default())
    }

    /// Execute with an explicit kernel choice.
    pub fn execute_with(self, column: &Column, k: ScanKernel) -> (Vec<AggregateResult>, usize) {
        match k {
            ScanKernel::Simd => self.execute_fused(column, true),
            ScanKernel::Chunked => self.execute_fused(column, false),
            ScanKernel::Scalar => self.execute_scalar(column),
        }
    }

    /// Fused chunked sweep: each chunk is pulled through the cache once
    /// and every consumer's compiled predicate reduces it branch-free,
    /// computing only the aggregate that consumer asked for — through the
    /// explicit-SIMD kernels when `use_simd` (which themselves fall back
    /// to the portable code on non-AVX2 hardware), the portable chunked
    /// kernels otherwise.  Exactness: count/sum/min/max are
    /// commutative–associative folds, so per-chunk partials combine to
    /// bit-identical results vs. the scalar path.
    fn execute_fused(mut self, column: &Column, use_simd: bool) -> (Vec<AggregateResult>, usize) {
        let sweep = self.consumers.iter().map(|c| c.snapshot).max().unwrap_or(0);
        // ALLOC-OK: one predicate-compilation vector per fused sweep,
        // amortized over every chunk the sweep touches.
        let preds: Vec<CompiledPredicate> = self
            .consumers
            .iter()
            .map(|c| CompiledPredicate::compile(c.pred))
            .collect();
        let consumers = &mut self.consumers;
        let examined = column.for_each_chunk(sweep, |base, chunk| {
            for (c, &p) in consumers.iter_mut().zip(&preds) {
                if base >= c.snapshot {
                    continue;
                }
                // MVCC cut: this consumer sees only its snapshot prefix.
                // BOUNDS: the end is clamped with min(chunk.len()), and
                // base < c.snapshot was checked above, so the range is valid.
                let part = &chunk[..(c.snapshot - base).min(chunk.len())];
                match c.agg {
                    Aggregate::Count => {
                        c.count += if use_simd {
                            simd::count(part, p)
                        } else {
                            kernel::count(part, p)
                        }
                    }
                    Aggregate::Sum => {
                        let s = if use_simd {
                            simd::sum(part, p)
                        } else {
                            kernel::sum(part, p)
                        };
                        c.sum = c.sum.wrapping_add(s);
                    }
                    Aggregate::MinMax => {
                        let mm = if use_simd {
                            simd::min_max(part, p)
                        } else {
                            kernel::min_max(part, p)
                        };
                        if let Some((mn, mx)) = mm {
                            c.min = c.min.min(mn);
                            c.max = c.max.max(mx);
                            c.matched = true;
                        }
                    }
                }
            }
        });
        (self.results(), examined)
    }

    /// The original row-at-a-time path, kept as the oracle the chunked
    /// kernels are tested (and benchmarked) against.
    pub fn execute_scalar(mut self, column: &Column) -> (Vec<AggregateResult>, usize) {
        let sweep = self.consumers.iter().map(|c| c.snapshot).max().unwrap_or(0);
        let examined = column.scan(Predicate::All, sweep, |row, v| {
            for c in &mut self.consumers {
                if row < c.snapshot && c.pred.matches(v) {
                    c.count += 1;
                    c.sum = c.sum.wrapping_add(v);
                    if v < c.min {
                        c.min = v;
                    }
                    if v > c.max {
                        c.max = v;
                    }
                    c.matched = true;
                }
            }
        });
        (self.results(), examined)
    }

    fn results(&self) -> Vec<AggregateResult> {
        self.consumers
            .iter()
            // ALLOC-OK: result materialization, once per completed sweep.
            .map(|c| match c.agg {
                Aggregate::Count => AggregateResult::Count(c.count),
                Aggregate::Sum => AggregateResult::Sum(c.sum),
                Aggregate::MinMax => AggregateResult::MinMax(c.matched.then_some((c.min, c.max))),
            })
            .collect()
    }
}

impl Default for SharedScan {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eris_numa::NodeId;

    fn column(n: u64) -> Column {
        let mut c = Column::new_local(NodeId(0), 0, 32);
        c.extend(0..n);
        c.into_column()
    }

    #[test]
    fn shared_scan_matches_individual_scans() {
        let c = column(100);
        let mut s = SharedScan::new();
        s.add(Predicate::All, 100, Aggregate::Count);
        s.add(Predicate::Range { lo: 10, hi: 20 }, 100, Aggregate::Sum);
        s.add(Predicate::Equals(42), 100, Aggregate::MinMax);
        let (r, examined) = s.execute(&c);
        assert_eq!(examined, 100, "one sweep, not three");
        assert_eq!(r[0], AggregateResult::Count(100));
        assert_eq!(r[1], AggregateResult::Sum((10..20).sum()));
        assert_eq!(r[2], AggregateResult::MinMax(Some((42, 42))));
    }

    #[test]
    fn per_consumer_snapshots_isolate() {
        let c = column(50);
        let mut s = SharedScan::new();
        s.add(Predicate::All, 10, Aggregate::Count);
        s.add(Predicate::All, 50, Aggregate::Count);
        let (r, examined) = s.execute(&c);
        assert_eq!(examined, 50, "sweep covers the largest snapshot");
        assert_eq!(r[0], AggregateResult::Count(10));
        assert_eq!(r[1], AggregateResult::Count(50));
    }

    #[test]
    fn minmax_of_empty_match_is_none() {
        let c = column(10);
        let mut s = SharedScan::new();
        s.add(Predicate::Equals(999), 10, Aggregate::MinMax);
        let (r, _) = s.execute(&c);
        assert_eq!(r[0], AggregateResult::MinMax(None));
    }

    #[test]
    fn empty_shared_scan_examines_nothing() {
        let c = column(10);
        let (r, examined) = SharedScan::new().execute(&c);
        assert!(r.is_empty());
        assert_eq!(examined, 0);
    }

    #[test]
    fn snapshot_cut_mid_chunk_isolates() {
        // Snapshots that land inside a kernel chunk must still cut exactly.
        let mut c = Column::new_local(NodeId(0), 0, 1 << 14);
        c.extend(0..3000u64);
        let c = c.into_column();
        for snap in [0usize, 1, 1023, 1024, 1025, 2048, 2999, 3000] {
            let mut s = SharedScan::new();
            s.add(Predicate::All, snap, Aggregate::Count);
            s.add(Predicate::All, snap, Aggregate::Sum);
            let (r, _) = s.execute(&c);
            assert_eq!(r[0], AggregateResult::Count(snap as u64), "snap {snap}");
            let want: u64 = (0..snap as u64).sum();
            assert_eq!(r[1], AggregateResult::Sum(want), "snap {snap}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn preds() -> impl Strategy<Value = Predicate> {
            prop_oneof![
                Just(Predicate::All),
                (any::<u64>(), any::<u64>()).prop_map(|(lo, hi)| Predicate::Range { lo, hi }),
                (0u64..2000, 0u64..2000).prop_map(|(lo, hi)| Predicate::Range { lo, hi }),
                any::<u64>().prop_map(|lo| Predicate::Range { lo, hi: u64::MAX }),
                any::<u64>().prop_map(Predicate::Equals),
                (0u64..2000).prop_map(Predicate::Equals),
                Just(Predicate::Equals(u64::MAX)),
            ]
        }

        fn aggs() -> impl Strategy<Value = Aggregate> {
            prop_oneof![
                Just(Aggregate::Count),
                Just(Aggregate::Sum),
                Just(Aggregate::MinMax),
            ]
        }

        proptest! {
            #[test]
            fn chunked_matches_scalar_oracle(
                values in proptest::collection::vec(
                    prop_oneof![any::<u64>(), Just(u64::MAX), 0u64..2000],
                    0..2600),
                consumers in proptest::collection::vec(
                    (preds(), aggs(), 0usize..2700), 1..8),
                seg_cap in prop_oneof![Just(11usize), Just(1024), Just(4096)])
            {
                let mut c = Column::new_local(NodeId(0), 0, seg_cap);
                c.extend(values.iter().copied());
                let c = c.into_column();
                let build = || {
                    let mut s = SharedScan::new();
                    for &(p, a, snap) in &consumers {
                        s.add(p, snap, a);
                    }
                    s
                };
                let (chunked, ex_c) = build().execute_with(&c, ScanKernel::Chunked);
                let (simd, ex_v) = build().execute_with(&c, ScanKernel::Simd);
                let (scalar, ex_s) = build().execute_with(&c, ScanKernel::Scalar);
                prop_assert_eq!(&chunked, &scalar);
                prop_assert_eq!(&simd, &scalar);
                prop_assert_eq!(ex_c, ex_s);
                prop_assert_eq!(ex_v, ex_s);
            }
        }
    }
}
