//! Chunked, branch-free scan kernels.
//!
//! The coalesced scan stage originally evaluated every `(row, predicate)`
//! pair through a per-row closure — a call and an unpredictable branch per
//! row per consumer.  These kernels process fixed-size chunks instead: a
//! predicate is compiled to inclusive `[lo, hi]` bounds once per sweep, and
//! each chunk is reduced with straight-line arithmetic the compiler can
//! unroll and auto-vectorize (the match test lowers to two compares and an
//! `and`, with no data-dependent branch).
//!
//! [`CHUNK_ROWS`] rows of `u64` are 8 KiB — small enough that a chunk
//! fetched once stays resident in L1 while *all* predicates of a fused
//! sweep ([`crate::scan::SharedScan`]) are evaluated against it, which is
//! what turns N coalesced scans into one memory pass.

use crate::column::Predicate;

/// Rows per kernel chunk.  8 KiB of `u64`s: comfortably inside a 32 KiB L1
/// data cache even with a few consumers' accumulator state alongside, yet
/// long enough to amortize per-chunk dispatch to noise.
pub const CHUNK_ROWS: usize = 1024;

/// Bitmap words needed for one full chunk.
pub const CHUNK_WORDS: usize = CHUNK_ROWS / 64;

/// A predicate compiled to inclusive bounds: `v` matches iff
/// `lo <= v && v <= hi`.  An empty predicate is encoded as `lo > hi`.
///
/// Inclusive bounds are what make the `u64::MAX` boundary representable:
/// `Predicate::Range { lo, hi: u64::MAX }` (the unbounded-above sentinel)
/// compiles to `[lo, u64::MAX]`, and `Predicate::Equals(u64::MAX)` to
/// `[u64::MAX, u64::MAX]` — no `hi + 1` overflow anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledPredicate {
    lo: u64,
    hi: u64,
}

impl CompiledPredicate {
    /// Compile a [`Predicate`] into branch-free inclusive bounds.
    #[inline]
    pub fn compile(pred: Predicate) -> Self {
        match pred.bounds_inclusive() {
            Some((lo, hi)) => CompiledPredicate { lo, hi },
            None => CompiledPredicate { lo: 1, hi: 0 },
        }
    }

    /// Branch-free match test (`&`, not `&&`: both compares always run).
    #[inline(always)]
    pub fn matches(self, v: u64) -> bool {
        (v >= self.lo) & (v <= self.hi)
    }

    /// The inclusive `[lo, hi]` bounds (for the explicit-SIMD kernels,
    /// which broadcast them into vector lanes).
    #[inline]
    pub fn bounds(self) -> (u64, u64) {
        (self.lo, self.hi)
    }
}

/// Count matching values in one chunk.
#[inline]
pub fn count(values: &[u64], p: CompiledPredicate) -> u64 {
    let mut n = 0u64;
    for &v in values {
        n += p.matches(v) as u64;
    }
    n
}

/// Wrapping sum of matching values in one chunk.  A non-match contributes
/// `v & 0`, a match `v & !0` — no branch, no select.
#[inline]
pub fn sum(values: &[u64], p: CompiledPredicate) -> u64 {
    let mut s = 0u64;
    for &v in values {
        let sel = (p.matches(v) as u64).wrapping_neg();
        s = s.wrapping_add(v & sel);
    }
    s
}

/// Min and max of matching values in one chunk; `None` when nothing
/// matched.  Non-matches are forced to the identity of each fold
/// (`u64::MAX` for min, `0` for max) by the selection mask.
#[inline]
pub fn min_max(values: &[u64], p: CompiledPredicate) -> Option<(u64, u64)> {
    let mut mn = u64::MAX;
    let mut mx = 0u64;
    let mut any = 0u64;
    for &v in values {
        let sel = (p.matches(v) as u64).wrapping_neg();
        mn = mn.min(v | !sel);
        mx = mx.max(v & sel);
        any |= sel;
    }
    (any != 0).then_some((mn, mx))
}

/// Fill `out` with the selection bitmap of one chunk (bit `i`, LSB-first
/// within each word, set iff `values[i]` matches) and return the match
/// count.  `out` must hold at least `values.len().div_ceil(64)` words;
/// words beyond the chunk's tail are zeroed up to that length.
#[inline]
pub fn select_bitmap(values: &[u64], p: CompiledPredicate, out: &mut [u64]) -> u64 {
    let words = values.len().div_ceil(64);
    // BOUNDS: the documented precondition on `out` (callers size it as
    // CHUNK_WORDS); `out[w]` below stays under the asserted length
    // because w < values.len().div_ceil(64) == words.
    assert!(out.len() >= words, "bitmap buffer too small");
    let mut total = 0u64;
    for (w, chunk) in values.chunks(64).enumerate() {
        let mut word = 0u64;
        for (i, &v) in chunk.iter().enumerate() {
            word |= (p.matches(v) as u64) << i;
        }
        out[w] = word;
        total += word.count_ones() as u64;
    }
    total
}

/// Visit every selected value of a chunk, given its bitmap: calls
/// `f(row_in_chunk, value)` in row order.
#[inline]
pub fn for_each_selected(values: &[u64], bitmap: &[u64], mut f: impl FnMut(usize, u64)) {
    for (w, &word) in bitmap.iter().take(values.len().div_ceil(64)).enumerate() {
        let mut bits = word;
        while bits != 0 {
            let i = w * 64 + bits.trailing_zeros() as usize;
            f(i, values[i]);
            bits &= bits - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive(values: &[u64], pred: Predicate) -> Vec<u64> {
        values
            .iter()
            .copied()
            .filter(|&v| pred.matches(v))
            .collect()
    }

    fn preds() -> impl Strategy<Value = Predicate> {
        prop_oneof![
            Just(Predicate::All),
            (any::<u64>(), any::<u64>()).prop_map(|(lo, hi)| Predicate::Range { lo, hi }),
            any::<u64>().prop_map(Predicate::Equals),
            // Boundary-heavy forms the uniform u64 draw almost never hits.
            any::<u64>().prop_map(|lo| Predicate::Range { lo, hi: u64::MAX }),
            Just(Predicate::Equals(u64::MAX)),
            Just(Predicate::Range { lo: 0, hi: 0 }),
        ]
    }

    fn values() -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::vec(
            prop_oneof![any::<u64>(), Just(u64::MAX), Just(0u64), 0u64..1000,],
            0..300,
        )
    }

    proptest! {
        #[test]
        fn compiled_matches_interpreted(v in any::<u64>(), pred in preds()) {
            let p = CompiledPredicate::compile(pred);
            prop_assert_eq!(p.matches(v), pred.matches(v));
        }

        #[test]
        fn kernels_match_naive(vals in values(), pred in preds()) {
            let p = CompiledPredicate::compile(pred);
            let want = naive(&vals, pred);
            prop_assert_eq!(count(&vals, p), want.len() as u64);
            let want_sum = want.iter().fold(0u64, |s, &v| s.wrapping_add(v));
            prop_assert_eq!(sum(&vals, p), want_sum);
            let want_mm = (!want.is_empty()).then(|| {
                (*want.iter().min().unwrap(), *want.iter().max().unwrap())
            });
            prop_assert_eq!(min_max(&vals, p), want_mm);
        }

        #[test]
        fn bitmap_selects_exactly_the_matches(vals in values(), pred in preds()) {
            let p = CompiledPredicate::compile(pred);
            let mut words = vec![0u64; vals.len().div_ceil(64)];
            let n = select_bitmap(&vals, p, &mut words);
            prop_assert_eq!(n, count(&vals, p));
            let mut got = Vec::new();
            let mut rows = Vec::new();
            for_each_selected(&vals, &words, |i, v| {
                rows.push(i);
                got.push(v);
            });
            prop_assert_eq!(got, naive(&vals, pred));
            // Row ids are strictly increasing (row order preserved).
            prop_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn max_value_is_reachable() {
        let vals = [0, 5, u64::MAX, u64::MAX - 1];
        let unbounded = CompiledPredicate::compile(Predicate::Range {
            lo: 5,
            hi: u64::MAX,
        });
        assert_eq!(count(&vals, unbounded), 3);
        assert_eq!(
            min_max(&vals, unbounded),
            Some((5, u64::MAX)),
            "u64::MAX participates in min/max"
        );
        let eq_max = CompiledPredicate::compile(Predicate::Equals(u64::MAX));
        assert_eq!(count(&vals, eq_max), 1);
        assert_eq!(sum(&vals, eq_max), u64::MAX);
    }

    #[test]
    fn empty_predicate_matches_nothing() {
        let vals: Vec<u64> = (0..100).collect();
        let p = CompiledPredicate::compile(Predicate::Range { lo: 7, hi: 7 });
        assert_eq!(count(&vals, p), 0);
        assert_eq!(sum(&vals, p), 0);
        assert_eq!(min_max(&vals, p), None);
        let mut words = [0u64; 2];
        assert_eq!(select_bitmap(&vals, p, &mut words), 0);
        assert_eq!(words, [0, 0]);
    }
}
