//! # eris-column — the column store of an AEU partition
//!
//! Each AEU stores its column-partition as a sequence of fixed-capacity
//! [`Segment`]s, each homed on a NUMA node (for ERIS, always the AEU's own
//! node; the baselines home segments on one node or round-robin across all,
//! reproducing the *Single RAM* and *Interleaved* strategies of Figure 9).
//!
//! Analytical workloads are append-only; visibility is snapshot-by-length
//! (an MVCC degenerate that is exact for insert-only data): a scan opened at
//! snapshot `s` sees exactly the first `s` rows.  Combined with
//! [`scan::SharedScan`], multiple scan commands coalesce into a single pass
//! over the data — the scan-sharing optimization of Section 3.1.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod column;
pub mod kernel;
pub mod scan;
pub mod simd;

pub use column::{Column, ColumnFull, Predicate, Segment};
pub use kernel::{CompiledPredicate, CHUNK_ROWS};
pub use scan::{Aggregate, ScanKernel, SharedScan};
pub use simd::SimdLevel;
