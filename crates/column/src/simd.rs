//! Explicit-SIMD predicate kernels.
//!
//! The chunked kernels in [`crate::kernel`] are branch-free scalar loops
//! the compiler *may* auto-vectorize — but release builds target the
//! x86-64 baseline (SSE2), which has no 64-bit compares, so the predicate
//! test `(v >= lo) & (v <= hi)` stays scalar there.  This module lifts the
//! same `[lo, hi]` kernels to explicit 4×u64 AVX2 lanes via `std::arch`
//! intrinsics, selected at runtime:
//!
//! * [`level`] detects AVX2 once per process (`is_x86_feature_detected!`)
//!   and honors the `ERIS_SIMD=0` kill switch, which forces the portable
//!   path so CI can prove the fallback is equivalent.
//! * Every entry point falls back to the matching [`crate::kernel`]
//!   function — the scalar kernel stays the correctness oracle, exactly
//!   like [`crate::scan::ScanKernel::Scalar`] does for the chunked tier.
//! * Unsigned 64-bit compares are built from the signed `_mm256_cmpgt_epi64`
//!   by biasing both sides with `1 << 63` (the "sign-flip" idiom); all
//!   folds use the same identities as the scalar kernels (`u64::MAX` for
//!   min, `0` for max, masked `AND` for sum), so results are bit-identical.

use crate::kernel::{self, CompiledPredicate};

/// Which lane width the explicit-SIMD kernels run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// No usable vector extension (or `ERIS_SIMD=0`): dispatch to the
    /// portable chunked kernels in [`crate::kernel`].
    Portable,
    /// 4×u64 lanes via AVX2 intrinsics.
    Avx2,
}

/// The SIMD level this process dispatches to, detected once.
///
/// `ERIS_SIMD=0` in the environment forces [`SimdLevel::Portable`]
/// regardless of hardware — CI runs the kernel gate both ways.
pub fn level() -> SimdLevel {
    static LEVEL: std::sync::OnceLock<SimdLevel> = std::sync::OnceLock::new();
    *LEVEL.get_or_init(|| {
        if std::env::var_os("ERIS_SIMD").is_some_and(|v| v == "0") {
            return SimdLevel::Portable;
        }
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        SimdLevel::Portable
    })
}

/// Count matching values in one chunk ([`kernel::count`] semantics).
#[inline]
pub fn count(values: &[u64], p: CompiledPredicate) -> u64 {
    match level() {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // SAFETY: `level()` returns Avx2 only after runtime detection of
        // the avx2 target feature on this CPU.
        SimdLevel::Avx2 => unsafe { avx2::count(values, p) },
        _ => kernel::count(values, p),
    }
}

/// Wrapping sum of matching values in one chunk ([`kernel::sum`]).
#[inline]
pub fn sum(values: &[u64], p: CompiledPredicate) -> u64 {
    match level() {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // SAFETY: `level()` returns Avx2 only after runtime detection of
        // the avx2 target feature on this CPU.
        SimdLevel::Avx2 => unsafe { avx2::sum(values, p) },
        _ => kernel::sum(values, p),
    }
}

/// Min and max of matching values in one chunk ([`kernel::min_max`]).
#[inline]
pub fn min_max(values: &[u64], p: CompiledPredicate) -> Option<(u64, u64)> {
    match level() {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // SAFETY: `level()` returns Avx2 only after runtime detection of
        // the avx2 target feature on this CPU.
        SimdLevel::Avx2 => unsafe { avx2::min_max(values, p) },
        _ => kernel::min_max(values, p),
    }
}

/// Fill `out` with the LSB-first selection bitmap of one chunk and return
/// the match count ([`kernel::select_bitmap`] semantics and layout).
#[inline]
pub fn select_bitmap(values: &[u64], p: CompiledPredicate, out: &mut [u64]) -> u64 {
    match level() {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // SAFETY: `level()` returns Avx2 only after runtime detection of
        // the avx2 target feature on this CPU.
        SimdLevel::Avx2 => unsafe { avx2::select_bitmap(values, p, out) },
        _ => kernel::select_bitmap(values, p, out),
    }
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod avx2 {
    //! The AVX2 lane implementations.  Safety rule for the whole module:
    //! every function is `#[target_feature(enable = "avx2")]` and must
    //! only be called after `is_x86_feature_detected!("avx2")`; all loads
    //! are unaligned (`loadu`) from in-bounds `chunks_exact` slices.

    use super::CompiledPredicate;
    use crate::kernel;
    use std::arch::x86_64::*;

    /// Sign-flip bias: XORing both sides of an unsigned compare with
    /// `1 << 63` lets the *signed* `_mm256_cmpgt_epi64` decide it.
    const BIAS: i64 = i64::MIN;

    /// Per-lane match mask (-1 in-range, 0 out) for 4 biased values.
    ///
    /// # Safety
    /// Caller must have verified the `avx2` target feature.
    #[inline]
    #[target_feature(enable = "avx2")]
    // SAFETY: declared unsafe for the avx2 target-feature contract
    // (see the doc Safety section); callers go through `level()`.
    unsafe fn in_range(vs: __m256i, lo_s: __m256i, hi_s: __m256i) -> __m256i {
        // Pure register arithmetic: these intrinsics are safe calls once
        // the avx2 target feature is enabled on the enclosing fn.
        let below = _mm256_cmpgt_epi64(lo_s, vs);
        let above = _mm256_cmpgt_epi64(vs, hi_s);
        // NOT(below OR above): andnot(x, -1) complements.
        _mm256_andnot_si256(_mm256_or_si256(below, above), _mm256_set1_epi64x(-1))
    }

    /// # Safety
    /// Caller must have verified the `avx2` target feature.
    #[target_feature(enable = "avx2")]
    // SAFETY: declared unsafe for the avx2 target-feature contract
    // (see the doc Safety section); callers go through `level()`.
    pub unsafe fn count(values: &[u64], p: CompiledPredicate) -> u64 {
        let (lo, hi) = p.bounds();
        let mut chunks = values.chunks_exact(4);
        // SAFETY: loads read 32 bytes from 4-element in-bounds slices.
        unsafe {
            let bias = _mm256_set1_epi64x(BIAS);
            let lo_s = _mm256_set1_epi64x(lo as i64 ^ BIAS);
            let hi_s = _mm256_set1_epi64x(hi as i64 ^ BIAS);
            let mut acc = _mm256_setzero_si256();
            for c in chunks.by_ref() {
                let v = _mm256_loadu_si256(c.as_ptr() as *const __m256i);
                let m = in_range(_mm256_xor_si256(v, bias), lo_s, hi_s);
                // Subtracting a -1 mask adds 1 per matching lane.
                acc = _mm256_sub_epi64(acc, m);
            }
            let mut lanes = [0u64; 4];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
            lanes.iter().sum::<u64>() + kernel::count(chunks.remainder(), p)
        }
    }

    /// # Safety
    /// Caller must have verified the `avx2` target feature.
    #[target_feature(enable = "avx2")]
    // SAFETY: declared unsafe for the avx2 target-feature contract
    // (see the doc Safety section); callers go through `level()`.
    pub unsafe fn sum(values: &[u64], p: CompiledPredicate) -> u64 {
        let (lo, hi) = p.bounds();
        let mut chunks = values.chunks_exact(4);
        // SAFETY: loads read 32 bytes from 4-element in-bounds slices.
        unsafe {
            let bias = _mm256_set1_epi64x(BIAS);
            let lo_s = _mm256_set1_epi64x(lo as i64 ^ BIAS);
            let hi_s = _mm256_set1_epi64x(hi as i64 ^ BIAS);
            let mut acc = _mm256_setzero_si256();
            for c in chunks.by_ref() {
                let v = _mm256_loadu_si256(c.as_ptr() as *const __m256i);
                let m = in_range(_mm256_xor_si256(v, bias), lo_s, hi_s);
                // v & mask: matches contribute v, non-matches 0 — then a
                // wrapping lane add, same as the scalar fold.
                acc = _mm256_add_epi64(acc, _mm256_and_si256(v, m));
            }
            let mut lanes = [0u64; 4];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
            lanes
                .iter()
                .fold(0u64, |s, &l| s.wrapping_add(l))
                .wrapping_add(kernel::sum(chunks.remainder(), p))
        }
    }

    /// # Safety
    /// Caller must have verified the `avx2` target feature.
    #[target_feature(enable = "avx2")]
    // SAFETY: declared unsafe for the avx2 target-feature contract
    // (see the doc Safety section); callers go through `level()`.
    pub unsafe fn min_max(values: &[u64], p: CompiledPredicate) -> Option<(u64, u64)> {
        let (lo, hi) = p.bounds();
        let mut chunks = values.chunks_exact(4);
        // SAFETY: loads read 32 bytes from 4-element in-bounds slices.
        let (vec_any, vec_mn, vec_mx) = unsafe {
            let bias = _mm256_set1_epi64x(BIAS);
            let lo_s = _mm256_set1_epi64x(lo as i64 ^ BIAS);
            let hi_s = _mm256_set1_epi64x(hi as i64 ^ BIAS);
            let mut any = _mm256_setzero_si256();
            // Lane identities match the scalar fold: u64::MAX (min), 0 (max).
            let mut mn = _mm256_set1_epi64x(-1);
            let mut mx = _mm256_setzero_si256();
            for c in chunks.by_ref() {
                let v = _mm256_loadu_si256(c.as_ptr() as *const __m256i);
                let m = in_range(_mm256_xor_si256(v, bias), lo_s, hi_s);
                any = _mm256_or_si256(any, m);
                // Non-matches become the fold identity, then an unsigned
                // lane min/max via biased signed compare + byte blend.
                let cand_mn = _mm256_or_si256(v, _mm256_andnot_si256(m, _mm256_set1_epi64x(-1)));
                let cand_mx = _mm256_and_si256(v, m);
                let lt =
                    _mm256_cmpgt_epi64(_mm256_xor_si256(mn, bias), _mm256_xor_si256(cand_mn, bias));
                mn = _mm256_blendv_epi8(mn, cand_mn, lt);
                let gt =
                    _mm256_cmpgt_epi64(_mm256_xor_si256(cand_mx, bias), _mm256_xor_si256(mx, bias));
                mx = _mm256_blendv_epi8(mx, cand_mx, gt);
            }
            let mut mn_l = [0u64; 4];
            let mut mx_l = [0u64; 4];
            _mm256_storeu_si256(mn_l.as_mut_ptr() as *mut __m256i, mn);
            _mm256_storeu_si256(mx_l.as_mut_ptr() as *mut __m256i, mx);
            (
                _mm256_movemask_epi8(any) != 0,
                // BOUNDS: min/max over fixed-size [u64; 4] arrays — never empty.
                mn_l.into_iter().min().unwrap(),
                mx_l.into_iter().max().unwrap(),
            )
        };
        match (
            vec_any.then_some((vec_mn, vec_mx)),
            kernel::min_max(chunks.remainder(), p),
        ) {
            (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
            (v, t) => v.or(t),
        }
    }

    /// # Safety
    /// Caller must have verified the `avx2` target feature.
    #[target_feature(enable = "avx2")]
    // SAFETY: declared unsafe for the avx2 target-feature contract
    // (see the doc Safety section); callers go through `level()`.
    pub unsafe fn select_bitmap(values: &[u64], p: CompiledPredicate, out: &mut [u64]) -> u64 {
        let (lo, hi) = p.bounds();
        let words = values.len().div_ceil(64);
        // BOUNDS: same precondition as the scalar kernel; `out[w]` stays
        // under the asserted length for every chunk index w < words.
        assert!(out.len() >= words, "bitmap buffer too small");
        let mut total = 0u64;
        // SAFETY: loads read 32 bytes from 4-element in-bounds slices.
        unsafe {
            let bias = _mm256_set1_epi64x(BIAS);
            let lo_s = _mm256_set1_epi64x(lo as i64 ^ BIAS);
            let hi_s = _mm256_set1_epi64x(hi as i64 ^ BIAS);
            for (w, block) in values.chunks(64).enumerate() {
                let mut word = 0u64;
                let mut groups = block.chunks_exact(4);
                for (g, c) in groups.by_ref().enumerate() {
                    let v = _mm256_loadu_si256(c.as_ptr() as *const __m256i);
                    let m = in_range(_mm256_xor_si256(v, bias), lo_s, hi_s);
                    // One sign bit per 64-bit lane, LSB-first: 4 bits.
                    let bits = _mm256_movemask_pd(_mm256_castsi256_pd(m)) as u64 & 0xF;
                    word |= bits << (g * 4);
                }
                let base = block.len() - groups.remainder().len();
                for (i, &v) in groups.remainder().iter().enumerate() {
                    word |= (p.matches(v) as u64) << (base + i);
                }
                // BOUNDS: w < words <= out.len() (asserted precondition above).
                out[w] = word;
                total += word.count_ones() as u64;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Predicate;
    use proptest::prelude::*;

    fn preds() -> impl Strategy<Value = Predicate> {
        prop_oneof![
            Just(Predicate::All),
            (any::<u64>(), any::<u64>()).prop_map(|(lo, hi)| Predicate::Range { lo, hi }),
            (0u64..2000, 0u64..2000).prop_map(|(lo, hi)| Predicate::Range { lo, hi }),
            any::<u64>().prop_map(Predicate::Equals),
            any::<u64>().prop_map(|lo| Predicate::Range { lo, hi: u64::MAX }),
            Just(Predicate::Equals(u64::MAX)),
            Just(Predicate::Range { lo: 0, hi: 0 }),
        ]
    }

    fn values() -> impl Strategy<Value = Vec<u64>> {
        // Lengths cover empty, sub-lane tails, and multi-word bitmaps;
        // values cover both compare boundaries and the sign-flip bias.
        proptest::collection::vec(
            prop_oneof![
                any::<u64>(),
                Just(u64::MAX),
                Just(0u64),
                Just(1u64 << 63),
                Just((1u64 << 63) - 1),
                0u64..1000,
            ],
            0..300,
        )
    }

    proptest! {
        #[test]
        fn dispatched_simd_matches_scalar_kernels(vals in values(), pred in preds()) {
            let p = CompiledPredicate::compile(pred);
            prop_assert_eq!(count(&vals, p), kernel::count(&vals, p));
            prop_assert_eq!(sum(&vals, p), kernel::sum(&vals, p));
            prop_assert_eq!(min_max(&vals, p), kernel::min_max(&vals, p));
            let mut got = vec![0u64; vals.len().div_ceil(64)];
            let mut want = vec![0u64; vals.len().div_ceil(64)];
            let n_got = select_bitmap(&vals, p, &mut got);
            let n_want = kernel::select_bitmap(&vals, p, &mut want);
            prop_assert_eq!(n_got, n_want);
            prop_assert_eq!(got, want);
        }

    }

    // Exercise the AVX2 lane code directly whenever the hardware has
    // it — even under ERIS_SIMD=0, where `level()` hides it.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    mod avx2_direct {
        use super::*;

        proptest! {
            #[test]
            fn avx2_lanes_match_scalar_kernels(vals in values(), pred in preds()) {
                if !std::arch::is_x86_feature_detected!("avx2") {
                    return; // nothing to cross-check on this hardware
                }
                let p = CompiledPredicate::compile(pred);
                // SAFETY: avx2 presence checked by the assume above.
                unsafe {
                    prop_assert_eq!(avx2::count(&vals, p), kernel::count(&vals, p));
                    prop_assert_eq!(avx2::sum(&vals, p), kernel::sum(&vals, p));
                    prop_assert_eq!(avx2::min_max(&vals, p), kernel::min_max(&vals, p));
                    let mut got = vec![0u64; vals.len().div_ceil(64)];
                    let mut want = vec![0u64; vals.len().div_ceil(64)];
                    let n_got = avx2::select_bitmap(&vals, p, &mut got);
                    let n_want = kernel::select_bitmap(&vals, p, &mut want);
                    prop_assert_eq!(n_got, n_want);
                    prop_assert_eq!(got, want);
                }
            }
        }
    }

    #[test]
    fn level_is_detected_and_stable() {
        let first = level();
        assert_eq!(level(), first, "cached after first call");
        if std::env::var_os("ERIS_SIMD").is_some_and(|v| v == "0") {
            assert_eq!(first, SimdLevel::Portable, "kill switch honored");
        }
    }

    #[test]
    fn sign_flip_boundaries_are_exact() {
        // Values straddling the i64 sign bit are exactly where a naive
        // signed compare goes wrong; pin the boundary behavior.
        let vals = [0, 1, (1 << 63) - 1, 1 << 63, (1 << 63) + 1, u64::MAX];
        let p = CompiledPredicate::compile(Predicate::Range {
            lo: (1 << 63) - 1,
            hi: u64::MAX,
        });
        assert_eq!(count(&vals, p), kernel::count(&vals, p));
        assert_eq!(count(&vals, p), 4);
        assert_eq!(min_max(&vals, p), Some(((1 << 63) - 1, u64::MAX)));
    }
}
