//! The per-machine memory manager façade and the baseline allocation
//! policies of Section 4.2.2 (Figure 9): *Single RAM*, *Interleaved*, and
//! node-local (what ERIS itself does).

use crate::node_alloc::{Allocation, NodeAllocator, NodeMemStats};
use eris_numa::{NodeId, Topology};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where an allocation should be homed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// On a given node — ERIS' policy: each AEU allocates on its own node.
    Local(NodeId),
    /// Round-robin over all nodes — the `numactl --interleave=all` baseline.
    Interleaved,
    /// Everything on one node — the *Single RAM* baseline of Figure 9.
    SingleNode(NodeId),
}

/// One [`NodeAllocator`] per node of a machine.
pub struct MemoryManager {
    allocators: Vec<Arc<NodeAllocator>>,
    interleave_next: AtomicU64,
}

impl MemoryManager {
    /// Build managers sized to each node's installed memory.
    pub fn new(topo: &Topology) -> Self {
        let allocators = topo
            .nodes()
            .map(|n| {
                let gib = topo.node_spec(n).memory_gib;
                Arc::new(NodeAllocator::new(n, gib << 30))
            })
            .collect();
        MemoryManager {
            allocators,
            interleave_next: AtomicU64::new(0),
        }
    }

    /// The allocator of one node (for wiring up AEU thread caches).
    pub fn node(&self, node: NodeId) -> &Arc<NodeAllocator> {
        // BOUNDS: NodeId comes from the topology that sized this vector.
        &self.allocators[node.index()]
    }

    /// Number of per-node allocators.
    pub fn num_nodes(&self) -> usize {
        self.allocators.len()
    }

    /// Allocate one span according to `policy`.
    pub fn alloc(&self, policy: Policy, size: u64) -> Allocation {
        match policy {
            Policy::Local(n) | Policy::SingleNode(n) => self.allocators[n.index()].alloc(size),
            Policy::Interleaved => {
                let i = self.interleave_next.fetch_add(1, Ordering::Relaxed);
                self.allocators[(i % self.allocators.len() as u64) as usize].alloc(size)
            }
        }
    }

    /// Allocate `count` spans of `size` bytes under `policy`.  Interleaving
    /// distributes consecutive spans round-robin, exactly like page-granular
    /// OS interleaving distributes a large array.
    pub fn alloc_many(&self, policy: Policy, size: u64, count: usize) -> Vec<Allocation> {
        (0..count).map(|_| self.alloc(policy, size)).collect()
    }

    /// Free a span on whichever node homes it.
    pub fn free(&self, a: Allocation) {
        self.allocators[a.home().index()].free(a);
    }

    /// Per-node statistics.
    pub fn stats(&self) -> Vec<NodeMemStats> {
        self.allocators.iter().map(|a| a.stats()).collect()
    }

    /// Total live bytes across all nodes.
    pub fn live_bytes(&self) -> u64 {
        self.allocators.iter().map(|a| a.live_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eris_numa::machines::custom_machine;

    fn mgr() -> MemoryManager {
        MemoryManager::new(&custom_machine("m", 4, 2, 20.0, 100.0, 10.0, 50.0))
    }

    #[test]
    fn local_policy_homes_on_requested_node() {
        let m = mgr();
        let a = m.alloc(Policy::Local(NodeId(2)), 4096);
        assert_eq!(a.home(), NodeId(2));
    }

    #[test]
    fn single_node_policy_concentrates() {
        let m = mgr();
        for _ in 0..16 {
            assert_eq!(m.alloc(Policy::SingleNode(NodeId(1)), 64).home(), NodeId(1));
        }
    }

    #[test]
    fn interleaved_policy_round_robins() {
        let m = mgr();
        let homes: Vec<u16> = (0..8)
            .map(|_| m.alloc(Policy::Interleaved, 64).home().0)
            .collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn free_returns_to_owning_node() {
        let m = mgr();
        let a = m.alloc(Policy::Local(NodeId(3)), 64);
        m.free(a);
        assert_eq!(m.node(NodeId(3)).live_bytes(), 0);
        assert_eq!(m.live_bytes(), 0);
    }

    #[test]
    fn alloc_many_interleaves_spans() {
        let m = mgr();
        let spans = m.alloc_many(Policy::Interleaved, 4096, 12);
        let on_node0 = spans.iter().filter(|a| a.home() == NodeId(0)).count();
        assert_eq!(on_node0, 3);
    }
}
