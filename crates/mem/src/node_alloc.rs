//! The per-node allocator: spans from a node-colored address region.
//!
//! Allocation is bump-plus-free-list over power-of-two size classes.  All
//! central state sits behind one mutex per node — deliberately, because the
//! paper's point is that *per-node* managers with *thread-local caches*
//! (see [`crate::thread_cache`]) keep this lock cold.  The allocator counts
//! every central operation so benchmarks can demonstrate the caching win.

use crate::node_base;
use eris_numa::NodeId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Smallest span size class, bytes.
pub const MIN_CLASS: u64 = 64;
/// Number of power-of-two size classes (64 B .. 2 MiB).
pub const NUM_CLASSES: usize = 16;

/// A span of simulated node-homed memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Synthetic virtual address; decode the home with
    /// [`crate::home_of_vaddr`].
    pub vaddr: u64,
    /// Span size in bytes (rounded up to its size class).
    pub size: u64,
}

impl Allocation {
    /// The NUMA node this span is homed on.
    #[inline]
    pub fn home(&self) -> NodeId {
        crate::home_of_vaddr(self.vaddr)
    }
}

/// Statistics of one node allocator.
#[derive(Debug, Clone, Default)]
pub struct NodeMemStats {
    /// Bytes currently allocated (live spans).
    pub live_bytes: u64,
    /// Bytes ever handed out.
    pub total_allocated_bytes: u64,
    /// Operations that took the central lock (alloc batches, free batches).
    pub central_ops: u64,
    /// Spans handed out by the central allocator.
    pub central_allocs: u64,
    /// Spans returned to the central allocator.
    pub central_frees: u64,
}

struct Central {
    /// Bump pointer within the node region.
    next: u64,
    /// Free spans per size class.
    free: [Vec<u64>; NUM_CLASSES],
    stats: NodeMemStats,
}

/// One memory manager per multiprocessor (Section 3.1).
pub struct NodeAllocator {
    node: NodeId,
    capacity: u64,
    central: Mutex<Central>,
    /// Fast-path live-byte gauge readable without the lock.
    live_bytes: AtomicU64,
}

/// Size class for a request, or `None` if it is a large direct allocation.
pub(crate) fn class_of(size: u64) -> Option<usize> {
    if size == 0 {
        return Some(0);
    }
    let rounded = size.max(MIN_CLASS).next_power_of_two();
    let class = (rounded / MIN_CLASS).trailing_zeros() as usize;
    (class < NUM_CLASSES).then_some(class)
}

/// Span size of a class.
pub(crate) fn class_size(class: usize) -> u64 {
    MIN_CLASS << class
}

impl NodeAllocator {
    /// An allocator managing `capacity` bytes homed on `node`.
    pub fn new(node: NodeId, capacity: u64) -> Self {
        assert!(
            capacity <= 1 << crate::NODE_SHIFT,
            "capacity exceeds node region"
        );
        NodeAllocator {
            node,
            capacity,
            central: Mutex::new(Central {
                next: node_base(node),
                free: Default::default(),
                stats: NodeMemStats::default(),
            }),
            live_bytes: AtomicU64::new(0),
        }
    }

    /// The node this allocator is bound to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Allocate one span.  Prefer [`crate::ThreadCache`] on hot paths.
    pub fn alloc(&self, size: u64) -> Allocation {
        let mut out = [Allocation { vaddr: 0, size: 0 }];
        self.alloc_batch(size, &mut out);
        out[0]
    }

    /// Allocate a batch of equally sized spans under one lock acquisition.
    pub fn alloc_batch(&self, size: u64, out: &mut [Allocation]) {
        let mut c = self.central.lock();
        c.stats.central_ops += 1;
        match class_of(size) {
            Some(class) => {
                let span = class_size(class);
                for slot in out.iter_mut() {
                    let vaddr = c.free[class].pop().unwrap_or_else(|| {
                        let v = c.next;
                        c.next += span;
                        v
                    });
                    *slot = Allocation { vaddr, size: span };
                    c.stats.central_allocs += 1;
                    c.stats.live_bytes += span;
                    c.stats.total_allocated_bytes += span;
                }
            }
            None => {
                // Large allocation: direct bump, no free-list reuse.
                let span = size.div_ceil(MIN_CLASS) * MIN_CLASS;
                for slot in out.iter_mut() {
                    let v = c.next;
                    c.next += span;
                    *slot = Allocation {
                        vaddr: v,
                        size: span,
                    };
                    c.stats.central_allocs += 1;
                    c.stats.live_bytes += span;
                    c.stats.total_allocated_bytes += span;
                }
            }
        }
        let used = c.next - node_base(self.node);
        assert!(
            used <= self.capacity,
            "node {} out of memory: {used} > {}",
            self.node,
            self.capacity
        );
        self.live_bytes.store(c.stats.live_bytes, Ordering::Relaxed);
    }

    /// Return spans to the central free lists (one lock acquisition).
    pub fn free_batch(&self, spans: &[Allocation]) {
        if spans.is_empty() {
            return;
        }
        let mut c = self.central.lock();
        c.stats.central_ops += 1;
        for a in spans {
            debug_assert_eq!(a.home(), self.node, "span freed on wrong node");
            if let Some(class) = class_of(a.size) {
                if class_size(class) == a.size {
                    c.free[class].push(a.vaddr);
                }
                // Off-class (large) spans are leaked back to the bump region;
                // acceptable for the simulation's lifetime patterns.
            }
            c.stats.live_bytes = c.stats.live_bytes.saturating_sub(a.size);
            c.stats.central_frees += 1;
        }
        self.live_bytes.store(c.stats.live_bytes, Ordering::Relaxed);
    }

    /// Free one span.
    pub fn free(&self, a: Allocation) {
        self.free_batch(&[a]);
    }

    /// Live bytes without taking the lock.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// Snapshot the statistics.
    pub fn stats(&self) -> NodeMemStats {
        self.central.lock().stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_round_up() {
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(64), Some(0));
        assert_eq!(class_of(65), Some(1));
        assert_eq!(class_of(128), Some(1));
        assert_eq!(class_size(class_of(100).unwrap()), 128);
        // 2 MiB is the largest class.
        assert_eq!(class_of(2 << 20), Some(NUM_CLASSES - 1));
        assert_eq!(class_of((2 << 20) + 1), None);
    }

    #[test]
    fn allocations_are_node_tagged_and_disjoint() {
        let a = NodeAllocator::new(NodeId(3), 1 << 30);
        let x = a.alloc(100);
        let y = a.alloc(100);
        assert_eq!(x.home(), NodeId(3));
        assert_eq!(y.home(), NodeId(3));
        assert_eq!(x.size, 128);
        assert!(x.vaddr + x.size <= y.vaddr || y.vaddr + y.size <= x.vaddr);
    }

    #[test]
    fn free_lists_recycle_spans() {
        let a = NodeAllocator::new(NodeId(0), 1 << 30);
        let x = a.alloc(64);
        a.free(x);
        let y = a.alloc(64);
        assert_eq!(x.vaddr, y.vaddr, "span must be recycled");
        assert_eq!(a.live_bytes(), 64);
    }

    #[test]
    fn batch_alloc_takes_one_central_op() {
        let a = NodeAllocator::new(NodeId(0), 1 << 30);
        let mut out = [Allocation { vaddr: 0, size: 0 }; 32];
        a.alloc_batch(64, &mut out);
        let s = a.stats();
        assert_eq!(s.central_ops, 1);
        assert_eq!(s.central_allocs, 32);
        assert_eq!(s.live_bytes, 32 * 64);
    }

    #[test]
    fn large_allocations_bypass_classes() {
        let a = NodeAllocator::new(NodeId(0), 1 << 30);
        let x = a.alloc(3 << 20);
        assert_eq!(x.size, 3 << 20);
        a.free(x);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "out of memory")]
    fn capacity_is_enforced() {
        let a = NodeAllocator::new(NodeId(0), 1024);
        for _ in 0..64 {
            a.alloc(64);
        }
    }

    #[test]
    fn concurrent_allocs_are_disjoint() {
        use std::sync::Arc;
        let a = Arc::new(NodeAllocator::new(NodeId(0), 1 << 30));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| a.alloc(64).vaddr).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "no span handed out twice");
    }
}
