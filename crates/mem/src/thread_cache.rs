//! Thread-local allocation caches.
//!
//! Each AEU owns a [`ThreadCache`] bound to its node's [`NodeAllocator`].
//! Allocations are served from cached free spans; refills pull a whole batch
//! under a single central lock acquisition, and frees flush in batches once
//! a watermark is exceeded.  This is the paper's mechanism for scaling the
//! per-node memory manager "with a high number of cores per multiprocessor".

use crate::node_alloc::{class_of, class_size, Allocation, NodeAllocator, NUM_CLASSES};
use std::sync::Arc;

/// Spans fetched per refill and kept at most per class.
const BATCH: usize = 32;
const HIGH_WATERMARK: usize = 2 * BATCH;

/// Per-AEU cache in front of a [`NodeAllocator`].
pub struct ThreadCache {
    central: Arc<NodeAllocator>,
    free: Vec<Vec<u64>>,
    /// Spans served from the cache without touching the central allocator.
    pub cached_allocs: u64,
    /// Spans that needed a central refill batch.
    pub refills: u64,
}

impl ThreadCache {
    pub fn new(central: Arc<NodeAllocator>) -> Self {
        ThreadCache {
            central,
            free: vec![Vec::new(); NUM_CLASSES],
            cached_allocs: 0,
            refills: 0,
        }
    }

    /// The central allocator this cache refills from.
    pub fn central(&self) -> &Arc<NodeAllocator> {
        &self.central
    }

    /// Allocate a span of at least `size` bytes on this cache's node.
    pub fn alloc(&mut self, size: u64) -> Allocation {
        match class_of(size) {
            Some(class) => {
                if let Some(vaddr) = self.free[class].pop() {
                    self.cached_allocs += 1;
                    return Allocation {
                        vaddr,
                        size: class_size(class),
                    };
                }
                // Refill a batch; serve the first span, cache the rest.
                self.refills += 1;
                let mut batch = [Allocation { vaddr: 0, size: 0 }; BATCH];
                self.central.alloc_batch(class_size(class), &mut batch);
                for a in &batch[1..] {
                    self.free[class].push(a.vaddr);
                }
                batch[0]
            }
            // Large spans go straight to the central allocator.
            None => self.central.alloc(size),
        }
    }

    /// Return a span; flushes a batch centrally past the high watermark.
    pub fn free(&mut self, a: Allocation) {
        match class_of(a.size) {
            Some(class) if class_size(class) == a.size => {
                self.free[class].push(a.vaddr);
                if self.free[class].len() > HIGH_WATERMARK {
                    let span = class_size(class);
                    let spill: Vec<Allocation> = self.free[class]
                        .drain(BATCH..)
                        .map(|vaddr| Allocation { vaddr, size: span })
                        .collect();
                    self.central.free_batch(&spill);
                }
            }
            _ => self.central.free(a),
        }
    }

    /// Return every cached span to the central allocator (AEU shutdown or
    /// partition handoff during load balancing).
    pub fn flush(&mut self) {
        for class in 0..NUM_CLASSES {
            if self.free[class].is_empty() {
                continue;
            }
            let span = class_size(class);
            let spill: Vec<Allocation> = self.free[class]
                .drain(..)
                .map(|vaddr| Allocation { vaddr, size: span })
                .collect();
            self.central.free_batch(&spill);
        }
    }
}

impl Drop for ThreadCache {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eris_numa::NodeId;

    fn cache() -> ThreadCache {
        ThreadCache::new(Arc::new(NodeAllocator::new(NodeId(0), 1 << 30)))
    }

    #[test]
    fn refill_amortizes_central_ops() {
        let mut c = cache();
        for _ in 0..BATCH {
            c.alloc(64);
        }
        assert_eq!(c.refills, 1);
        assert_eq!(c.cached_allocs, (BATCH - 1) as u64);
        assert_eq!(c.central().stats().central_ops, 1);
    }

    #[test]
    fn free_then_alloc_reuses_locally() {
        let mut c = cache();
        let a = c.alloc(64);
        let ops_before = c.central().stats().central_ops;
        c.free(a);
        let b = c.alloc(64);
        assert_eq!(a.vaddr, b.vaddr);
        assert_eq!(
            c.central().stats().central_ops,
            ops_before,
            "no central traffic"
        );
    }

    #[test]
    fn watermark_flushes_excess_spans() {
        let mut c = cache();
        let spans: Vec<Allocation> = (0..HIGH_WATERMARK + 1).map(|_| c.alloc(64)).collect();
        let frees_before = c.central().stats().central_frees;
        for s in spans {
            c.free(s);
        }
        let frees_after = c.central().stats().central_frees;
        assert!(frees_after > frees_before, "spill happened");
    }

    #[test]
    fn drop_flushes_everything() {
        let central = Arc::new(NodeAllocator::new(NodeId(0), 1 << 30));
        {
            let mut c = ThreadCache::new(Arc::clone(&central));
            let a = c.alloc(64);
            c.free(a);
            // Cached span still counted live centrally? No: frees to cache
            // keep the span "allocated" from the central view until flushed.
        }
        // After drop, all cached spans are back: the only live bytes are
        // the refill batch minus everything returned.
        assert_eq!(central.stats().live_bytes, 0);
    }

    #[test]
    fn large_spans_pass_through() {
        let mut c = cache();
        let a = c.alloc(10 << 20);
        assert_eq!(a.size, 10 << 20);
        c.free(a);
        assert_eq!(c.central().live_bytes(), 0);
    }
}
