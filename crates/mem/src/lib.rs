//! # eris-mem — per-multiprocessor memory management
//!
//! Section 3.1 of the paper: *"a global memory manager (per data object) is
//! not feasible on a NUMA platform.  Instead, ERIS deploys one memory
//! manager per multiprocessor (and data object) ... To scale with a high
//! number of cores per multiprocessor, our memory managers use thread-local
//! caching mechanisms."*
//!
//! This crate provides exactly that:
//!
//! * [`NodeAllocator`] — one allocator per NUMA node, handing out spans from
//!   the node's region of a synthetic, node-colored virtual address space
//!   (the simulation analogue of physical memory homed at that node).
//! * [`ThreadCache`] — a per-AEU cache of free spans that batches refills
//!   and flushes so the central per-node free lists are touched rarely.
//! * [`MemoryManager`] — the per-machine façade, plus the NUMA-agnostic
//!   allocation [`Policy`]s (`Interleaved`, `SingleNode`) used by the
//!   baseline engines of Section 4.
//!
//! Every allocation is tagged with its **home node**, which is what the
//! engine, the flow solver, and the cache simulator consume.  Synthetic
//! addresses are stable, unique, and node-decodable via [`home_of_vaddr`].

pub mod manager;
pub mod node_alloc;
pub mod thread_cache;

pub use manager::{MemoryManager, Policy};
pub use node_alloc::{Allocation, NodeAllocator, NodeMemStats};
pub use thread_cache::ThreadCache;

use eris_numa::NodeId;

/// Bits of a synthetic virtual address reserved for the node offset.
pub const NODE_SHIFT: u32 = 40;

/// The home node encoded in a synthetic virtual address.
#[inline]
pub fn home_of_vaddr(vaddr: u64) -> NodeId {
    NodeId((vaddr >> NODE_SHIFT) as u16)
}

/// First address of a node's region.
#[inline]
pub fn node_base(node: NodeId) -> u64 {
    (node.0 as u64) << NODE_SHIFT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vaddr_roundtrip() {
        for n in [0u16, 1, 7, 63] {
            let base = node_base(NodeId(n));
            assert_eq!(home_of_vaddr(base), NodeId(n));
            assert_eq!(home_of_vaddr(base + (1 << NODE_SHIFT) - 1), NodeId(n));
        }
    }
}
