//! Group-size sweep for the AMAC interleaved probe path.
//!
//! `cargo run --release -p eris-index --example amac_sweep [keys_log2]`
//! prints keys/s for the one-at-a-time scalar loop and for
//! `lookup_batch_grouped` across a range of in-flight group sizes —
//! the tuning data behind the `AMAC_GROUP` default.

use eris_index::HashTable;
use std::time::Instant;

fn time(min_ms: u64, mut f: impl FnMut() -> u64) -> f64 {
    let mut sink = f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut iters = 0u64;
        loop {
            sink = sink.wrapping_add(f());
            iters += 1;
            if t0.elapsed().as_millis() as u64 >= min_ms {
                break;
            }
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    std::hint::black_box(sink);
    best
}

fn main() {
    let log2: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(21);
    let keys_n: u64 = 1 << log2;
    let mut h = HashTable::new(0xE515, 0);
    for k in 0..keys_n {
        h.upsert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k);
    }
    const BATCH: usize = 4096;
    let all_keys: Vec<u64> = (0..keys_n)
        .map(|i| (i * 37 % (2 * keys_n)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let windows = all_keys.len() / BATCH;
    let mut out: Vec<Option<u64>> = Vec::new();

    let mut w = 0usize;
    let t_scalar = time(200, || {
        let batch = &all_keys[w * BATCH..(w + 1) * BATCH];
        w = (w + 1) % windows;
        out.clear();
        out.extend(batch.iter().map(|&k| h.lookup(k)));
        out.iter().flatten().sum()
    });
    println!(
        "table 2^{log2} keys; scalar {:.1} Mkeys/s",
        BATCH as f64 / t_scalar / 1e6
    );

    for group in [2usize, 4, 8, 12, 16, 24, 32, 48, 64, 96] {
        let mut w = 0usize;
        let t = time(200, || {
            let batch = &all_keys[w * BATCH..(w + 1) * BATCH];
            w = (w + 1) % windows;
            out.clear();
            h.lookup_batch_grouped(batch, &mut out, group);
            out.iter().flatten().sum()
        });
        println!(
            "group {group:3}: {:7.1} Mkeys/s  ({:.2}x vs scalar)",
            BATCH as f64 / t / 1e6,
            t_scalar / t
        );
    }
}
