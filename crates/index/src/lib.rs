//! # eris-index — in-memory index structures
//!
//! Section 4 of the paper: *"An AEU implements a simple column store as well
//! as a prefix tree as index.  We decided to use a prefix tree, because this
//! index structure is order-preserving, in-memory optimized, and offers a
//! high update performance.  To implement the range partition tables of
//! ERIS, we decided to deploy a CSB+-Tree."*
//!
//! * [`PrefixTree`] — the generalized prefix tree (Böhm et al., BTW'11):
//!   order-preserving trie over fixed-width key digits with a configurable
//!   prefix length (default 8 bit), supporting point and range operations,
//!   splitting/merging for partition rebalancing, and flattening to a
//!   sorted stream for inter-node *copy* transfers.
//! * [`SharedPrefixTree`] — the NUMA-agnostic baseline: one shared tree
//!   synchronized purely with atomic instructions (CAS child insertion),
//!   latch-free readers.
//! * [`CsbTree`] — a cache-sensitive B+-tree mapping range boundaries to
//!   targets, used for the routing layer's range partition tables.
//! * [`HashTable`] — a per-partition Robin-Hood hash table with a
//!   per-instance hash function ("ERIS supports hash tables by using
//!   different hash functions on a per-partition level"), for partitions
//!   that never need range scans.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod codec;
pub mod csb_tree;
pub mod hash_table;
pub mod prefix_tree;
pub mod shared_tree;

pub use csb_tree::CsbTree;
pub use hash_table::HashTable;
pub use prefix_tree::{PrefixTree, PrefixTreeConfig};
pub use shared_tree::SharedPrefixTree;
