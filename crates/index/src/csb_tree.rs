//! A cache-sensitive B+-tree (Rao & Ross, SIGMOD'00) for range partition
//! tables.
//!
//! The routing layer maps a key to the AEU owning its range.  The paper
//! deploys a CSB+-tree here *"because it works fast for sparsely distributed
//! data and it scales with an increasing number of ranges, respectively
//! AEUs, compared to a simple array"*.
//!
//! The defining CSB+ property — all children of a node stored contiguously
//! so a parent needs no per-child pointers — is realized with a fully
//! implicit static layout: the tree is bulk-built from the sorted boundary
//! array (routing tables change only during load balancing, so rebuild on
//! update is the honest strategy), and the child group of node `j` is the
//! node range `j*(B+1)..` of the level below.  Search within a node is a
//! linear scan over at most [`NODE_KEYS`] keys, which stays inside one or
//! two cache lines.
//!
//! [`FlatRangeMap`] is the "simple array" alternative the paper compares
//! against; both implement the same interface so benches can ablate them.

/// Keys per node (two 64-byte cache lines of u64 keys).
pub const NODE_KEYS: usize = 14;

/// Maps range boundaries to owners: `lookup(k)` returns the value of the
/// greatest boundary `<= k`.
pub struct CsbTree<V> {
    /// Sorted range boundaries; `boundaries[0]` is the domain minimum.
    boundaries: Vec<u64>,
    values: Vec<V>,
    /// Internal levels, root first.  Each level stores its nodes' keys
    /// flattened (`keys`) plus per-node key counts.
    levels: Vec<Level>,
}

struct Level {
    keys: Vec<u64>,
    node_sizes: Vec<u32>,
}

impl<V> CsbTree<V> {
    /// Bulk-build from entries sorted by strictly increasing boundary.
    pub fn build(entries: Vec<(u64, V)>) -> Self {
        assert!(!entries.is_empty(), "a range map needs at least one range");
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "boundaries must be strictly increasing"
        );
        let (boundaries, values): (Vec<u64>, Vec<V>) = entries.into_iter().unzip();

        // Leaf level: nodes of up to NODE_KEYS boundaries each.
        let mut node_mins: Vec<u64> = boundaries.chunks(NODE_KEYS).map(|c| c[0]).collect();
        let mut levels: Vec<Level> = Vec::new();

        // Build internal levels until one node remains.
        while node_mins.len() > 1 {
            let mut keys = Vec::new();
            let mut node_sizes = Vec::new();
            let mut parents = Vec::new();
            for group in node_mins.chunks(NODE_KEYS + 1) {
                // Separators are the mins of children[1..].
                keys.extend_from_slice(&group[1..]);
                node_sizes.push((group.len() - 1) as u32);
                parents.push(group[0]);
            }
            levels.push(Level { keys, node_sizes });
            node_mins = parents;
        }
        levels.reverse(); // root first
        CsbTree {
            boundaries,
            values,
            levels,
        }
    }

    /// Number of ranges.
    pub fn len(&self) -> usize {
        self.boundaries.len()
    }

    /// True when the map holds a single range.
    pub fn is_empty(&self) -> bool {
        false // build() enforces at least one range
    }

    /// The value of the greatest boundary `<= key`.
    ///
    /// # Panics
    /// When `key` is below the first boundary (no owning range).
    pub fn lookup(&self, key: u64) -> &V {
        // BOUNDS: documented precondition — keys below the domain
        // minimum are a caller bug, checked once at the tree entry;
        // build() guarantees boundaries is non-empty, so boundaries[0]
        // exists.
        assert!(
            key >= self.boundaries[0],
            "key {key} below the domain minimum {}",
            self.boundaries[0]
        );
        let mut node = 0usize;
        for level in &self.levels {
            // Node j's keys start at sum of preceding node sizes; all nodes
            // except the last are full, so the offset is j * NODE_KEYS when
            // full — track via prefix to stay correct for ragged tails.
            // BOUNDS: `node` is a child index produced by the previous level
            // (at most its separator count + 1), which the bulk build sized
            // this level for; start/size come from the level's own layout,
            // so the key slice stays inside `level.keys`.
            let start = node_key_start(level, node);
            let size = level.node_sizes[node] as usize;
            let keys = &level.keys[start..start + size];
            let mut idx = 0;
            while idx < keys.len() && keys[idx] <= key {
                idx += 1;
            }
            node = node * (NODE_KEYS + 1) + idx;
        }
        // Leaf `node` covers boundaries[node*NODE_KEYS ..].
        // BOUNDS: the last level's child index lands inside the leaf
        // array by construction; `hi` is clamped to boundaries.len() and
        // values is parallel to boundaries (idx > 0 is debug-asserted
        // and guaranteed by the entry assert + separator routing).
        let lo = node * NODE_KEYS;
        let hi = (lo + NODE_KEYS).min(self.boundaries.len());
        let leaf = &self.boundaries[lo..hi];
        let mut idx = 0;
        while idx < leaf.len() && leaf[idx] <= key {
            idx += 1;
        }
        debug_assert!(idx > 0, "internal separators must route above the node min");
        // BOUNDS: idx > 0 (entry assert + separator routing) and
        // lo + idx - 1 < boundaries.len() == values.len().
        &self.values[lo + idx - 1]
    }

    /// Iterate `(boundary, value)` in order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.boundaries.iter().copied().zip(self.values.iter())
    }

    /// The boundary starting range `i`.
    pub fn boundary(&self, i: usize) -> u64 {
        self.boundaries[i]
    }
}

#[inline]
fn node_key_start(level: &Level, node: usize) -> usize {
    // All nodes before the last are full (bulk build), so this is exact.
    // BOUNDS: the else branch only runs for the (short) last node,
    // whose recorded size is <= keys.len().
    let full = NODE_KEYS * node;
    if full <= level.keys.len() {
        // May still be ragged if an earlier group was short (only the last
        // group can be short in a bulk build, so `full` is correct).
        full
    } else {
        level.keys.len() - level.node_sizes[node] as usize
    }
}

/// The "simple array" alternative: binary search over sorted boundaries.
pub struct FlatRangeMap<V> {
    boundaries: Vec<u64>,
    values: Vec<V>,
}

impl<V> FlatRangeMap<V> {
    /// Build from entries sorted by strictly increasing boundary.
    pub fn build(entries: Vec<(u64, V)>) -> Self {
        assert!(!entries.is_empty());
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let (boundaries, values) = entries.into_iter().unzip();
        FlatRangeMap { boundaries, values }
    }

    /// The value of the greatest boundary `<= key`.
    pub fn lookup(&self, key: u64) -> &V {
        let idx = self.boundaries.partition_point(|&b| b <= key);
        // BOUNDS: documented precondition, mirrored from CsbTree::lookup;
        // idx > 0 makes `idx - 1` in-bounds for the parallel values array.
        assert!(idx > 0, "key {key} below the domain minimum");
        &self.values[idx - 1]
    }

    pub fn len(&self) -> usize {
        self.boundaries.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges(n: u64, step: u64) -> Vec<(u64, u32)> {
        (0..n).map(|i| (i * step, i as u32)).collect()
    }

    #[test]
    fn single_range_maps_everything() {
        let t = CsbTree::build(vec![(0u64, "all")]);
        assert_eq!(*t.lookup(0), "all");
        assert_eq!(*t.lookup(u64::MAX), "all");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn boundaries_route_exactly() {
        let t = CsbTree::build(vec![(0, 'a'), (10, 'b'), (20, 'c')]);
        assert_eq!(*t.lookup(0), 'a');
        assert_eq!(*t.lookup(9), 'a');
        assert_eq!(*t.lookup(10), 'b');
        assert_eq!(*t.lookup(19), 'b');
        assert_eq!(*t.lookup(20), 'c');
        assert_eq!(*t.lookup(1000), 'c');
    }

    #[test]
    #[should_panic(expected = "below the domain minimum")]
    fn key_below_first_boundary_panics() {
        let t = CsbTree::build(vec![(10u64, ())]);
        t.lookup(9);
    }

    #[test]
    fn multi_level_tree_matches_flat_map() {
        // 10_000 ranges => 3+ levels with NODE_KEYS = 14.
        let entries = ranges(10_000, 37);
        let t = CsbTree::build(entries.clone());
        let f = FlatRangeMap::build(entries);
        for key in (0..370_000u64).step_by(11) {
            assert_eq!(t.lookup(key), f.lookup(key), "key {key}");
        }
        assert_eq!(*t.lookup(u64::MAX), 9_999);
    }

    #[test]
    fn ragged_sizes_route_correctly() {
        // Sizes that leave partially filled nodes at every level.
        for n in [1u64, 2, 13, 14, 15, 29, 196, 197, 225, 3000] {
            let entries = ranges(n, 5);
            let t = CsbTree::build(entries.clone());
            let f = FlatRangeMap::build(entries);
            for key in 0..n * 5 + 10 {
                assert_eq!(t.lookup(key), f.lookup(key), "n={n} key={key}");
            }
        }
    }

    #[test]
    fn iter_returns_build_order() {
        let t = CsbTree::build(ranges(100, 3));
        let collected: Vec<(u64, u32)> = t.iter().map(|(b, v)| (b, *v)).collect();
        assert_eq!(collected, ranges(100, 3));
        assert_eq!(t.boundary(50), 150);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn csb_matches_binary_search(
                bounds in proptest::collection::btree_set(0u64..1_000_000, 1..500),
                probes in proptest::collection::vec(0u64..1_100_000, 1..100))
            {
                let entries: Vec<(u64, usize)> =
                    bounds.iter().copied().enumerate().map(|(i, b)| (b, i)).collect();
                let min = entries[0].0;
                let t = CsbTree::build(entries.clone());
                let f = FlatRangeMap::build(entries);
                for p in probes {
                    if p >= min {
                        prop_assert_eq!(t.lookup(p), f.lookup(p));
                    }
                }
            }
        }
    }
}
