//! The generalized prefix tree (Böhm et al., BTW'11).
//!
//! Keys are unsigned 64-bit integers split into fixed-width digits of
//! `prefix_bits` bits, consumed from the most significant digit down, which
//! makes the structure order-preserving (unlike a hash table) and gives it
//! O(key_bits / prefix_bits) point-operation cost independent of size
//! (unlike a B+-tree).  Inner nodes are child-pointer arrays; the last level
//! holds the values.
//!
//! Nodes live in flat arenas indexed by `u32`, so the whole tree is three
//! contiguous allocations — cache friendly and trivially relocatable, which
//! matters for the load balancer: a partition *copy* transfer flattens the
//! tree into a sorted stream ([`PrefixTree::flatten_range`]) and rebuilds it
//! on the target AEU ([`PrefixTree::build_from_sorted`]).
//!
//! Every node has a synthetic address (base vaddr + arena offset) so the
//! engine can feed lookup paths into the L3 cache simulator
//! ([`PrefixTree::trace_path`]).

/// Configuration of a [`PrefixTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixTreeConfig {
    /// Digit width in bits.  The paper's default is 8.
    pub prefix_bits: u32,
    /// Number of significant key bits; must be a multiple of `prefix_bits`.
    pub key_bits: u32,
}

impl Default for PrefixTreeConfig {
    fn default() -> Self {
        PrefixTreeConfig {
            prefix_bits: 8,
            key_bits: 64,
        }
    }
}

impl PrefixTreeConfig {
    /// A tree for keys below `2^key_bits` with the given digit width.
    pub fn new(prefix_bits: u32, key_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&prefix_bits),
            "prefix length must be between 1 and 16 bits"
        );
        assert!(key_bits > 0 && key_bits <= 64);
        assert_eq!(
            key_bits % prefix_bits,
            0,
            "key_bits ({key_bits}) must be a multiple of prefix_bits ({prefix_bits})"
        );
        PrefixTreeConfig {
            prefix_bits,
            key_bits,
        }
    }

    /// Tree depth in levels (inner levels + the leaf level).
    #[inline]
    pub fn levels(&self) -> u32 {
        self.key_bits / self.prefix_bits
    }

    /// Children / slots per node.
    #[inline]
    pub fn fanout(&self) -> usize {
        1usize << self.prefix_bits
    }

    #[inline]
    fn digit(&self, key: u64, level: u32) -> usize {
        let shift = self.key_bits - (level + 1) * self.prefix_bits;
        ((key >> shift) & ((1u64 << self.prefix_bits) - 1)) as usize
    }

    fn check_key(&self, key: u64) {
        if self.key_bits < 64 {
            // BOUNDS: documented domain precondition — keys wider than
            // the configured key_bits are a caller bug, rejected once
            // at every tree entry point.
            assert!(
                key < (1u64 << self.key_bits),
                "key {key} exceeds the configured {}-bit domain",
                self.key_bits
            );
        }
    }
}

const NULL: u32 = u32::MAX;

/// An order-preserving trie from `u64` keys to `u64` values.
pub struct PrefixTree {
    cfg: PrefixTreeConfig,
    /// Inner child arrays: node `i` occupies `i*fanout .. (i+1)*fanout`.
    inner: Vec<u32>,
    /// Leaf value slots: leaf `j` occupies `j*fanout .. (j+1)*fanout`.
    values: Vec<u64>,
    /// Presence bitmap: `fanout/64` words per leaf.
    present: Vec<u64>,
    len: usize,
    /// Synthetic base address for cache simulation.
    base_vaddr: u64,
}

impl PrefixTree {
    /// An empty tree with the default configuration (8-bit digits).
    pub fn new() -> Self {
        Self::with_config(PrefixTreeConfig::default(), 0)
    }

    /// An empty tree; `base_vaddr` anchors synthetic node addresses.
    pub fn with_config(cfg: PrefixTreeConfig, base_vaddr: u64) -> Self {
        let mut t = PrefixTree {
            cfg,
            inner: Vec::new(),
            values: Vec::new(),
            present: Vec::new(),
            len: 0,
            base_vaddr,
        };
        if cfg.levels() == 1 {
            t.new_leaf();
        } else {
            t.new_inner(); // root
        }
        t
    }

    /// The configuration.
    pub fn config(&self) -> PrefixTreeConfig {
        self.cfg
    }

    /// Number of keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate resident bytes (arena sizes).
    pub fn memory_bytes(&self) -> u64 {
        (self.inner.len() * 4 + self.values.len() * 8 + self.present.len() * 8) as u64
    }

    /// Relocate the synthetic address base (after a partition transfer).
    pub fn set_base_vaddr(&mut self, base: u64) {
        self.base_vaddr = base;
    }

    fn new_inner(&mut self) -> u32 {
        let id = (self.inner.len() / self.cfg.fanout()) as u32;
        // ALLOC-OK: node allocation is the tree growing — amortized
        // over the keys that land in the fresh node.
        self.inner
            .resize(self.inner.len() + self.cfg.fanout(), NULL);
        id
    }

    fn new_leaf(&mut self) -> u32 {
        // ALLOC-OK: leaf allocation (values + present bitmap) is the tree
        // growing — amortized over the keys that land in the fresh leaf.
        let id = (self.values.len() / self.cfg.fanout()) as u32;
        self.values.resize(self.values.len() + self.cfg.fanout(), 0);
        self.present
            .resize(self.present.len() + self.cfg.fanout().div_ceil(64), 0);
        id
    }

    #[inline]
    fn present_word(&self, leaf: u32, digit: usize) -> (usize, u64) {
        let words_per_leaf = self.cfg.fanout().div_ceil(64);
        (
            leaf as usize * words_per_leaf + digit / 64,
            1u64 << (digit % 64),
        )
    }

    /// Insert or overwrite; returns the previous value if the key existed.
    pub fn upsert(&mut self, key: u64, value: u64) -> Option<u64> {
        self.cfg.check_key(key);
        let levels = self.cfg.levels();
        let fanout = self.cfg.fanout();
        let mut node = 0u32; // root (inner, or leaf when levels == 1)
        for level in 0..levels.saturating_sub(1) {
            let digit = self.cfg.digit(key, level);
            let slot = node as usize * fanout + digit;
            // BOUNDS: `node` names a live inner node and `digit` is masked to
            // fanout by `digit()`, so slot < inner.len().
            let child = self.inner[slot];
            node = if child == NULL {
                let fresh = if level + 2 == levels {
                    self.new_leaf()
                } else {
                    self.new_inner()
                };
                // BOUNDS: same slot as the load above.
                self.inner[node as usize * fanout + digit] = fresh;
                fresh
            } else {
                child
            };
        }
        let digit = self.cfg.digit(key, levels - 1);
        let (word, bit) = self.present_word(node, digit);
        // BOUNDS: `node` is a live leaf id; `digit` is masked to fanout;
        // present/values were sized for the leaf at new_leaf time.
        let slot = node as usize * fanout + digit;
        if self.present[word] & bit != 0 {
            let old = self.values[slot];
            self.values[slot] = value;
            Some(old)
        } else {
            self.present[word] |= bit;
            self.values[slot] = value;
            self.len += 1;
            None
        }
    }

    /// Descend to the leaf of `key` without modifying; returns
    /// (leaf node, leaf digit) if the path exists.
    #[inline]
    fn descend(&self, key: u64) -> Option<(u32, usize)> {
        let levels = self.cfg.levels();
        let fanout = self.cfg.fanout();
        let mut node = 0u32;
        for level in 0..levels - 1 {
            let digit = self.cfg.digit(key, level);
            // BOUNDS: `node` names a live inner node and `digit` is masked to
            // fanout by `digit()`.
            node = self.inner[node as usize * fanout + digit];
            if node == NULL {
                return None;
            }
        }
        Some((node, self.cfg.digit(key, levels - 1)))
    }

    /// Point lookup.
    pub fn lookup(&self, key: u64) -> Option<u64> {
        self.cfg.check_key(key);
        let (leaf, digit) = self.descend(key)?;
        let (word, bit) = self.present_word(leaf, digit);
        // BOUNDS: descend returned a live leaf; word/bit come from
        // present_word over that leaf and digit is masked to fanout.
        (self.present[word] & bit != 0)
            .then(|| self.values[leaf as usize * self.cfg.fanout() + digit])
    }

    /// Batched lookup: the per-AEU command grouping of Section 3.1 executes
    /// many lookups in one pass to hide memory latency.
    pub fn lookup_batch(&self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        out.clear();
        // ALLOC-OK: pre-sizes the caller's reusable output vector once
        // per batch; the pushes below stay within that reservation.
        out.reserve(keys.len());
        for &k in keys {
            out.push(self.lookup(k));
        }
    }

    /// Remove a key; returns the old value.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        self.cfg.check_key(key);
        let (leaf, digit) = self.descend(key)?;
        let (word, bit) = self.present_word(leaf, digit);
        if self.present[word] & bit == 0 {
            return None;
        }
        self.present[word] &= !bit;
        self.len -= 1;
        Some(self.values[leaf as usize * self.cfg.fanout() + digit])
    }

    /// Synthetic addresses of the nodes visited by a lookup of `key`,
    /// appended to `out` — the input for the L3 cache simulator.
    /// The trace stops at the first missing node.
    pub fn trace_path(&self, key: u64, out: &mut Vec<u64>) {
        let levels = self.cfg.levels();
        let fanout = self.cfg.fanout();
        let inner_bytes = self.inner.len() as u64 * 4;
        let mut node = 0u32;
        for level in 0..levels - 1 {
            let digit = self.cfg.digit(key, level);
            // Address of the child slot actually read, so the cache
            // simulator sees the node's true line footprint.
            out.push(self.base_vaddr + (node as u64 * fanout as u64 + digit as u64) * 4);
            node = self.inner[node as usize * fanout + digit];
            if node == NULL {
                return;
            }
        }
        let digit = self.cfg.digit(key, levels - 1);
        out.push(self.base_vaddr + inner_bytes + (node as u64 * fanout as u64 + digit as u64) * 8);
    }

    /// In-order visit of all `(key, value)` pairs in `[lo, hi)`.
    pub fn scan_range(&self, lo: u64, hi: u64, mut f: impl FnMut(u64, u64)) {
        if lo >= hi {
            return;
        }
        self.cfg.check_key(lo);
        self.scan_node(0, 0, 0, lo, hi, &mut f);
    }

    fn scan_node(
        &self,
        node: u32,
        level: u32,
        prefix: u64,
        lo: u64,
        hi: u64,
        f: &mut impl FnMut(u64, u64),
    ) {
        let levels = self.cfg.levels();
        let fanout = self.cfg.fanout();
        let shift = self.cfg.key_bits - (level + 1) * self.cfg.prefix_bits;
        let span = 1u64 << shift; // key range covered per child
        if level == levels - 1 {
            for digit in 0..fanout {
                let key = prefix | digit as u64;
                if key >= hi {
                    break;
                }
                if key < lo {
                    continue;
                }
                let (word, bit) = self.present_word(node, digit);
                if self.present[word] & bit != 0 {
                    f(key, self.values[node as usize * fanout + digit]);
                }
            }
            return;
        }
        for digit in 0..fanout {
            let child_lo = prefix | (digit as u64) << shift;
            if child_lo >= hi {
                break;
            }
            // `child_hi` may overflow for the last digit at the top level.
            let child_hi = child_lo.saturating_add(span);
            if child_hi <= lo {
                continue;
            }
            let child = self.inner[node as usize * fanout + digit];
            if child != NULL {
                self.scan_node(child, level + 1, child_lo, lo, hi, f);
            }
        }
    }

    /// In-order visit of all `(key, value)` pairs in the *inclusive* range
    /// `[lo, hi]`.  Unlike [`PrefixTree::scan_range`] this can reach the
    /// top key of the domain: `hi == u64::MAX` on a 64-bit tree visits
    /// `u64::MAX` itself (there is no `hi + 1` to overflow into).  Keys
    /// outside the configured domain are clamped, not panicked on, so a
    /// caller holding engine-level bounds (`[lo, u64::MAX]` from an
    /// unbounded predicate) can pass them to a narrower tree verbatim.
    pub fn scan_range_inclusive(&self, lo: u64, hi: u64, mut f: impl FnMut(u64, u64)) {
        if lo > hi {
            return;
        }
        let top = if self.cfg.key_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.cfg.key_bits) - 1
        };
        if lo > top {
            return;
        }
        let hi = hi.min(top);
        if hi == top {
            self.scan_range(lo, top, &mut f);
            if let Some(v) = self.lookup(top) {
                f(top, v);
            }
        } else {
            self.scan_range(lo, hi + 1, &mut f);
        }
    }

    /// Flatten `[lo, hi)` into a sorted `(key, value)` stream — the exchange
    /// format of the load balancer's *copy* transfer (Section 3.3.2).
    pub fn flatten_range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        self.scan_range(lo, hi, |k, v| out.push((k, v)));
        out
    }

    /// Flatten every key in `[lo, ∞)`, including `u64::MAX`.
    pub fn flatten_from(&self, lo: u64) -> Vec<(u64, u64)> {
        let mut out = self.flatten_range(lo, u64::MAX);
        if self.cfg.key_bits == 64 {
            if let Some(v) = self.lookup(u64::MAX) {
                out.push((u64::MAX, v));
            }
        }
        out
    }

    /// Flatten the whole tree.
    pub fn flatten(&self) -> Vec<(u64, u64)> {
        self.flatten_from(0)
    }

    /// Rebuild a tree from a sorted stream (target side of a copy transfer).
    pub fn build_from_sorted(cfg: PrefixTreeConfig, base_vaddr: u64, pairs: &[(u64, u64)]) -> Self {
        let mut t = Self::with_config(cfg, base_vaddr);
        for &(k, v) in pairs {
            t.upsert(k, v);
        }
        t
    }

    /// Append a stable little-endian serialization of the contents:
    /// `[u64 n][n × (u64 key, u64 value)]` in key order.  The tree *shape*
    /// is not persisted — [`PrefixTree::restore`] rebuilds it from the
    /// receiver's own [`PrefixTreeConfig`], which keeps the format
    /// independent of tuning parameters.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        let pairs = self.flatten();
        crate::codec::encode_pairs(&pairs, out);
    }

    /// Refill the tree from a [`PrefixTree::serialize_into`] payload,
    /// upserting into whatever is already stored (recovery starts from an
    /// empty partition).  Returns `false` on malformed input, leaving the
    /// tree with a prefix of the pairs applied.
    pub fn restore(&mut self, payload: &[u8]) -> bool {
        let Some(pairs) = crate::codec::decode_pairs(payload) else {
            return false;
        };
        for (k, v) in pairs {
            self.upsert(k, v);
        }
        true
    }

    /// Split off every key in `[pivot, ∞)` into a new tree, removing them
    /// from `self` — the shrink side of a balancing command.
    pub fn split_off(&mut self, pivot: u64) -> PrefixTree {
        let moved = self.flatten_from(pivot);
        for &(k, _) in &moved {
            self.remove(k);
        }
        Self::build_from_sorted(self.cfg, self.base_vaddr, &moved)
    }

    /// Absorb all keys of `other` (the *link* mechanism: on real hardware
    /// this is a pointer relink inside one memory domain; the simulation
    /// charges it near-zero virtual time, see the engine's balancer).
    pub fn merge_from(&mut self, other: PrefixTree) {
        assert_eq!(self.cfg, other.cfg, "cannot merge trees of different shape");
        other.scan_range(0, u64::MAX, |k, v| {
            self.upsert(k, v);
        });
    }
}

impl Default for PrefixTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PrefixTree {
        PrefixTree::with_config(PrefixTreeConfig::new(4, 16), 0)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut t = PrefixTree::new();
        assert_eq!(t.upsert(42, 100), None);
        assert_eq!(t.upsert(7, 200), None);
        assert_eq!(t.lookup(42), Some(100));
        assert_eq!(t.lookup(7), Some(200));
        assert_eq!(t.lookup(8), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn serialization_roundtrips_into_a_fresh_tree() {
        let mut t = small();
        for k in [9u64, 3, 200, 0, 77] {
            t.upsert(k, k * 10);
        }
        let mut buf = Vec::new();
        t.serialize_into(&mut buf);
        // Restore into a tree with a *different* shape: the payload is
        // contents-only, so this must still work.
        let mut back = PrefixTree::with_config(PrefixTreeConfig::new(8, 16), 0);
        assert!(back.restore(&buf));
        assert_eq!(back.flatten(), t.flatten());
        assert!(!back.restore(&buf[..buf.len() - 1]), "truncated payload");
    }

    #[test]
    fn upsert_overwrites() {
        let mut t = small();
        assert_eq!(t.upsert(5, 1), None);
        assert_eq!(t.upsert(5, 2), Some(1));
        assert_eq!(t.lookup(5), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn zero_key_and_zero_value() {
        let mut t = small();
        assert_eq!(t.lookup(0), None);
        t.upsert(0, 0);
        assert_eq!(t.lookup(0), Some(0));
    }

    #[test]
    fn max_key_in_domain() {
        let mut t = small();
        t.upsert(0xFFFF, 9);
        assert_eq!(t.lookup(0xFFFF), Some(9));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn key_outside_domain_panics() {
        small().upsert(0x1_0000, 1);
    }

    #[test]
    fn inclusive_scan_reaches_the_top_of_a_64_bit_domain() {
        let mut t = PrefixTree::with_config(PrefixTreeConfig::new(8, 64), 0);
        t.upsert(0, 1);
        t.upsert(u64::MAX - 1, 2);
        t.upsert(u64::MAX, 3);
        let mut got = Vec::new();
        t.scan_range_inclusive(1, u64::MAX, |k, v| got.push((k, v)));
        assert_eq!(got, vec![(u64::MAX - 1, 2), (u64::MAX, 3)]);
        // Half-open scan_range cannot see u64::MAX — that asymmetry is
        // exactly what scan_range_inclusive exists to close.
        let mut half_open = Vec::new();
        t.scan_range(1, u64::MAX, |k, v| half_open.push((k, v)));
        assert_eq!(half_open, vec![(u64::MAX - 1, 2)]);
        // Single-key inclusive scan at the very top.
        let mut top = Vec::new();
        t.scan_range_inclusive(u64::MAX, u64::MAX, |k, v| top.push((k, v)));
        assert_eq!(top, vec![(u64::MAX, 3)]);
    }

    #[test]
    fn inclusive_scan_clamps_to_a_narrow_domain() {
        let mut t = small(); // 16-bit keys
        t.upsert(0xFFFF, 9);
        t.upsert(5, 1);
        // Engine-level unbounded bounds pass through without panicking.
        let mut got = Vec::new();
        t.scan_range_inclusive(1, u64::MAX, |k, v| got.push((k, v)));
        assert_eq!(got, vec![(5, 1), (0xFFFF, 9)]);
        let mut none = Vec::new();
        t.scan_range_inclusive(0x1_0000, u64::MAX, |k, v| none.push((k, v)));
        assert!(
            none.is_empty(),
            "lo beyond the domain is empty, not a panic"
        );
        t.scan_range_inclusive(9, 3, |_, _| panic!("empty inclusive range"));
    }

    #[test]
    fn remove_works() {
        let mut t = small();
        t.upsert(3, 30);
        t.upsert(4, 40);
        assert_eq!(t.remove(3), Some(30));
        assert_eq!(t.remove(3), None);
        assert_eq!(t.lookup(3), None);
        assert_eq!(t.lookup(4), Some(40));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn scan_is_ordered_and_bounded() {
        let mut t = small();
        for k in [9u64, 1, 5, 3, 7, 100, 200] {
            t.upsert(k, k * 10);
        }
        let got = t.flatten_range(3, 100);
        assert_eq!(got, vec![(3, 30), (5, 50), (7, 70), (9, 90)]);
        assert_eq!(t.flatten().len(), 7);
        assert!(t.flatten().windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn scan_empty_range() {
        let mut t = small();
        t.upsert(5, 1);
        assert!(t.flatten_range(5, 5).is_empty());
        assert!(t.flatten_range(6, 5).is_empty());
    }

    #[test]
    fn full_domain_scan_on_64bit_tree() {
        let mut t = PrefixTree::new();
        t.upsert(u64::MAX, 1);
        t.upsert(0, 2);
        // u64::MAX as hi is exclusive, so only key 0 is returned below MAX...
        assert_eq!(t.flatten_range(0, u64::MAX), vec![(0, 2)]);
        // ...but flatten() must still cover the full domain.
        assert_eq!(t.flatten(), vec![(0, 2), (u64::MAX, 1)]);
        assert_eq!(t.flatten_from(1), vec![(u64::MAX, 1)]);
    }

    #[test]
    fn split_off_moves_upper_range() {
        let mut t = small();
        for k in 0..100u64 {
            t.upsert(k, k);
        }
        let upper = t.split_off(60);
        assert_eq!(t.len(), 60);
        assert_eq!(upper.len(), 40);
        assert_eq!(t.lookup(59), Some(59));
        assert_eq!(t.lookup(60), None);
        assert_eq!(upper.lookup(60), Some(60));
        assert_eq!(upper.lookup(59), None);
    }

    #[test]
    fn merge_reunites_split() {
        let mut t = small();
        for k in 0..50u64 {
            t.upsert(k, k + 1);
        }
        let upper = t.split_off(25);
        let mut t2 = t;
        t2.merge_from(upper);
        assert_eq!(t2.len(), 50);
        for k in 0..50u64 {
            assert_eq!(t2.lookup(k), Some(k + 1));
        }
    }

    #[test]
    fn flatten_rebuild_roundtrip() {
        let mut t = small();
        for k in (0..1000u64).step_by(7) {
            t.upsert(k % 0x10000, k);
        }
        let flat = t.flatten();
        let r = PrefixTree::build_from_sorted(t.config(), 7777, &flat);
        assert_eq!(r.len(), t.len());
        assert_eq!(r.flatten(), flat);
    }

    #[test]
    fn trace_path_has_one_address_per_level() {
        let mut t = PrefixTree::with_config(PrefixTreeConfig::new(8, 32), 1 << 20);
        t.upsert(0xAABBCCDD, 1);
        let mut trace = Vec::new();
        t.trace_path(0xAABBCCDD, &mut trace);
        assert_eq!(trace.len(), 4, "32-bit key / 8-bit digits = 4 levels");
        assert!(trace.iter().all(|a| *a >= 1 << 20));
        // A missing key stops early at the first absent node.
        let mut missing = Vec::new();
        t.trace_path(0x11223344, &mut missing);
        assert!(missing.len() < 4);
    }

    #[test]
    fn single_level_tree_works() {
        let mut t = PrefixTree::with_config(PrefixTreeConfig::new(8, 8), 0);
        for k in 0..256u64 {
            t.upsert(k, k * 2);
        }
        assert_eq!(t.len(), 256);
        assert_eq!(t.lookup(255), Some(510));
        assert_eq!(t.flatten().len(), 256);
    }

    #[test]
    fn memory_grows_with_keys() {
        let mut t = PrefixTree::new();
        let empty = t.memory_bytes();
        for k in 0..10_000u64 {
            t.upsert(k * 1_000_003, k);
        }
        assert!(t.memory_bytes() > empty);
    }

    #[test]
    fn batch_lookup_matches_point_lookups() {
        let mut t = small();
        for k in (0..200u64).step_by(3) {
            t.upsert(k, k);
        }
        let keys: Vec<u64> = (0..200).collect();
        let mut out = Vec::new();
        t.lookup_batch(&keys, &mut out);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(out[i], t.lookup(*k));
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeMap;

        proptest! {
            #[test]
            fn behaves_like_btreemap(ops in proptest::collection::vec(
                (0u8..4, 0u64..0x10000, 0u64..1000), 1..200))
            {
                let mut t = small();
                let mut m = BTreeMap::new();
                for (op, k, v) in ops {
                    match op {
                        0 | 1 => {
                            prop_assert_eq!(t.upsert(k, v), m.insert(k, v));
                        }
                        2 => {
                            prop_assert_eq!(t.remove(k), m.remove(&k));
                        }
                        _ => {
                            prop_assert_eq!(t.lookup(k), m.get(&k).copied());
                        }
                    }
                    prop_assert_eq!(t.len(), m.len());
                }
                let flat = t.flatten();
                let expect: Vec<(u64, u64)> = m.into_iter().collect();
                prop_assert_eq!(flat, expect);
            }

            #[test]
            fn split_preserves_all_keys(keys in proptest::collection::btree_set(0u64..0x10000, 1..100),
                                        pivot in 0u64..0x10000)
            {
                let mut t = small();
                for &k in &keys {
                    t.upsert(k, k);
                }
                let upper = t.split_off(pivot);
                for &k in &keys {
                    if k < pivot {
                        prop_assert_eq!(t.lookup(k), Some(k));
                        prop_assert_eq!(upper.lookup(k), None);
                    } else {
                        prop_assert_eq!(upper.lookup(k), Some(k));
                        prop_assert_eq!(t.lookup(k), None);
                    }
                }
                prop_assert_eq!(t.len() + upper.len(), keys.len());
            }

            #[test]
            fn scan_matches_filter(keys in proptest::collection::btree_set(0u64..0x10000, 0..100),
                                   lo in 0u64..0x10000, hi in 0u64..0x10000)
            {
                let mut t = small();
                for &k in &keys {
                    t.upsert(k, k ^ 0xFF);
                }
                let got = t.flatten_range(lo, hi);
                let expect: Vec<(u64, u64)> = keys.iter()
                    .filter(|&&k| k >= lo && k < hi)
                    .map(|&k| (k, k ^ 0xFF))
                    .collect();
                prop_assert_eq!(got, expect);
            }
        }
    }
}
