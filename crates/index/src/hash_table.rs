//! A per-partition open-addressing hash table.
//!
//! Section 3.1: *"ERIS primarily uses range partitioning ... Nevertheless,
//! ERIS supports hash tables by using different hash functions on a
//! per-partition level."*  Routing still happens by key range; *within* a
//! partition the AEU may store its keys in a hash table instead of a prefix
//! tree — O(1) point access at the price of losing order (no range scans).
//!
//! The table uses Robin-Hood linear probing over power-of-two buckets and a
//! per-instance multiplicative hash seed (the paper's "different hash
//! functions per partition"), so identical keys land in different probe
//! sequences on different partitions — no cross-partition hot buckets.

/// Load factor threshold (percent) that triggers growth.
const MAX_LOAD_PERCENT: usize = 85;

#[derive(Clone, Copy, PartialEq, Eq)]
struct Slot {
    key: u64,
    value: u64,
    /// Probe-sequence length + 1; 0 = empty.
    psl: u32,
}

const EMPTY: Slot = Slot {
    key: 0,
    value: 0,
    psl: 0,
};

/// Probes kept in flight by the AMAC interleaved batch-lookup path.  Each
/// in-flight probe owns one pending cache line; 12 is enough to cover a
/// DRAM miss (~60-80 ns) with useful work at ~5 ns per bucket inspection,
/// while keeping the state array well inside one L1 set's worth of lines.
pub const AMAC_GROUP: usize = 12;

/// One in-flight probe of the AMAC state machine: where it is in its
/// Robin-Hood displacement chain and where its answer goes.
#[derive(Clone, Copy)]
struct ProbeState {
    idx: usize,
    psl: u32,
    key: u64,
    out: usize,
}

/// An open-addressing hash table from `u64` keys to `u64` values with a
/// per-instance hash function.
pub struct HashTable {
    slots: Vec<Slot>,
    mask: usize,
    len: usize,
    seed: u64,
    base_vaddr: u64,
    rehashes: u64,
}

impl HashTable {
    /// An empty table using hash function `seed` (one per partition).
    pub fn new(seed: u64, base_vaddr: u64) -> Self {
        Self::with_capacity(seed, base_vaddr, 16)
    }

    /// An empty table pre-sized for `capacity` keys.
    pub fn with_capacity(seed: u64, base_vaddr: u64, capacity: usize) -> Self {
        let buckets = (capacity * 100 / MAX_LOAD_PERCENT + 1)
            .next_power_of_two()
            .max(16);
        HashTable {
            slots: vec![EMPTY; buckets],
            mask: buckets - 1,
            len: 0,
            seed: seed | 1,
            base_vaddr,
            rehashes: 0,
        }
    }

    /// How many times the bucket array has been reallocated and every
    /// resident key rehashed (growth or an explicit [`HashTable::reserve`]).
    pub fn rehashes(&self) -> u64 {
        self.rehashes
    }

    /// Number of keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resident bytes (bucket array).
    pub fn memory_bytes(&self) -> u64 {
        (self.slots.len() * std::mem::size_of::<Slot>()) as u64
    }

    /// The per-partition hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Relocate the synthetic address base (after a partition transfer).
    pub fn set_base_vaddr(&mut self, base: u64) {
        self.base_vaddr = base;
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        // Multiplicative (Fibonacci) hashing, seeded per partition.
        (key.wrapping_add(self.seed)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            >> 32) as usize
            & self.mask
    }

    /// Insert or overwrite; returns the previous value if the key existed.
    pub fn upsert(&mut self, key: u64, value: u64) -> Option<u64> {
        if (self.len + 1) * 100 > self.slots.len() * MAX_LOAD_PERCENT {
            self.grow();
        }
        let mut idx = self.bucket_of(key);
        let mut cur = Slot { key, value, psl: 1 };
        // Once the probe displaces an entry, `cur` carries a pre-existing
        // element, and the Robin-Hood invariant guarantees the original key
        // cannot appear further along — so duplicate detection only applies
        // while the original is still being carried.
        let mut carrying_original = true;
        loop {
            // BOUNDS: `idx` starts at bucket_of (masked) and every advance
            // re-masks, so it always lands inside the power-of-two array.
            let s = &mut self.slots[idx];
            if s.psl == 0 {
                *s = cur;
                self.len += 1;
                return None;
            }
            if carrying_original && s.key == key {
                let old = s.value;
                s.value = value;
                return Some(old);
            }
            // Robin Hood: steal the slot from richer entries.
            if cur.psl > s.psl {
                std::mem::swap(s, &mut cur);
                carrying_original = false;
            }
            cur.psl += 1;
            idx = (idx + 1) & self.mask;
        }
    }

    /// Probe for `key` starting at `idx` (its home bucket).
    #[inline]
    fn probe(&self, mut idx: usize, key: u64) -> Option<u64> {
        let mut psl = 1u32;
        loop {
            // BOUNDS: the caller passes a masked home bucket and the advance
            // below re-masks.
            let s = &self.slots[idx];
            if s.psl == 0 || s.psl < psl {
                return None; // Robin Hood invariant: key would be here
            }
            if s.key == key {
                return Some(s.value);
            }
            psl += 1;
            idx = (idx + 1) & self.mask;
        }
    }

    /// Point lookup.
    pub fn lookup(&self, key: u64) -> Option<u64> {
        self.probe(self.bucket_of(key), key)
    }

    /// Batched point lookups: appends one result per key to `out`, in
    /// input order.  Large batches run through an AMAC-style interleaved
    /// probe state machine ([`HashTable::lookup_batch_grouped`] with the
    /// default [`AMAC_GROUP`]): every in-flight probe's next cache line
    /// is prefetched while the other probes execute, so misses overlap
    /// *by construction* even on long Robin-Hood displacement chains —
    /// the coalesced lookup path hands whole command batches here.
    /// Results are identical to a loop of [`HashTable::lookup`].
    pub fn lookup_batch(&self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        self.lookup_batch_grouped(keys, out, AMAC_GROUP);
    }

    /// [`HashTable::lookup_batch`] with a tunable number of in-flight
    /// probes.  `group` trades miss overlap (more probes in flight)
    /// against prefetch-to-use distance growing past the cache's ability
    /// to hold the lines; 8-16 is the useful range on current cores.
    pub fn lookup_batch_grouped(&self, keys: &[u64], out: &mut Vec<Option<u64>>, group: usize) {
        // Interleaving only pays once the batch outgrows a few cache
        // lines; short batches probe straight through.
        const BATCH_THRESHOLD: usize = 8;
        if keys.len() < BATCH_THRESHOLD {
            // ALLOC-OK: results append to the caller's reusable output
            // vector (batch API contract).
            out.extend(keys.iter().map(|&k| self.lookup(k)));
            return;
        }
        // AMAC (asynchronous memory access chaining): `group` probes are
        // live at once, each holding its own (bucket, psl, key, out-slot)
        // state.  A round-robin step advances one probe by exactly one
        // bucket inspection — the line it inspects was prefetched a full
        // rotation ago, and the line it will need next is prefetched
        // before moving on.  Unlike the previous fixed 16-ahead prefetch
        // stream (which only covered each probe's *first* bucket and
        // merely duplicated the out-of-order window's overlap), chained
        // probes past the home bucket also get their misses overlapped.
        // Finished probes are refilled from the pending keys so the
        // machine stays `group` wide until the tail drains; output order
        // stays input order because each probe carries its result slot.
        let base = out.len();
        // ALLOC-OK: pre-sizes the caller's reusable output vector once
        // per batch.
        // ALLOC-OK: the probe-state ring below is bounded by `group`
        // (8-16 entries) and lives for one batch.
        out.resize(base + keys.len(), None);
        let group = group.clamp(2, keys.len());
        let mut states: Vec<ProbeState> = Vec::with_capacity(group);
        let mut next = 0usize;
        let feed = |states: &mut Vec<ProbeState>, at: usize, next: &mut usize| {
            // BOUNDS: feed is only invoked while `*next < keys.len()`.
            let key = keys[*next];
            let idx = self.bucket_of(key);
            self.prefetch_slot(idx);
            let st = ProbeState {
                idx,
                psl: 1,
                key,
                out: base + *next,
            };
            *next += 1;
            if at == states.len() {
                // ALLOC-OK: `at == states.len()` appends within the
                // reserved `group` capacity.
                // BOUNDS: otherwise `at` indexes a live slot.
                states.push(st);
            } else {
                states[at] = st;
            }
        };
        while states.len() < group && next < keys.len() {
            let at = states.len();
            feed(&mut states, at, &mut next);
        }
        let mut i = 0usize;
        while !states.is_empty() {
            if i >= states.len() {
                i = 0;
            }
            // BOUNDS: `i` was just wrapped to `< states.len()`, and states is
            // non-empty inside the loop.
            let st = &mut states[i];
            // SAFETY: `st.idx` is always masked into range — `bucket_of`
            // masks at feed time and the advance below re-masks — and
            // `slots` is never resized while `&self` probes are live.
            let s = unsafe { self.slots.get_unchecked(st.idx) };
            if s.psl != 0 && s.psl >= st.psl && s.key != st.key {
                // Not resolved yet: advance one bucket, prefetch it, and
                // hand the core to the next in-flight probe.
                st.psl += 1;
                st.idx = (st.idx + 1) & self.mask;
                self.prefetch_slot(st.idx);
                i += 1;
                continue;
            }
            // Resolved: a hit writes its slot; a miss (empty bucket or
            // Robin-Hood invariant break) leaves the pre-set `None`.
            if s.key == st.key && s.psl != 0 {
                // BOUNDS: `st.out = base + key-index < out.len()` after the
                // resize above.
                out[st.out] = Some(s.value);
            }
            if next < keys.len() {
                feed(&mut states, i, &mut next);
                i += 1; // let the refill's prefetch age a full rotation
            } else {
                states.swap_remove(i);
            }
        }
    }

    /// Hint the cache hierarchy that bucket `idx` is about to be probed.
    #[inline]
    fn prefetch_slot(&self, idx: usize) {
        // Miri has no model for the prefetch intrinsic (and flags the
        // raw pointer arithmetic as a spurious provenance escape), so
        // interpret the probe sequence scalar-for-scalar under it: the
        // 16-ahead prefetch is a pure cache hint with no semantics.
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // SAFETY: `idx` is a bucket index (`bucket_of` masks into range);
        // prefetch has no architectural effect beyond the cache.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.slots.as_ptr().add(idx) as *const i8, _MM_HINT_T0);
        }
        #[cfg(not(all(target_arch = "x86_64", not(miri))))]
        let _ = idx;
    }

    /// Pre-size the bucket array for `extra` further keys, so a following
    /// batch of upserts never rehashes mid-loop.  The array is sized
    /// directly to the final power of two and every resident key is
    /// rehashed exactly once — not once per doubling.
    pub fn reserve(&mut self, extra: usize) {
        let needed = self.len + extra;
        if (needed + 1) * 100 > self.slots.len() * MAX_LOAD_PERCENT {
            let buckets = ((needed + 1) * 100 / MAX_LOAD_PERCENT + 1)
                .next_power_of_two()
                .max(16);
            self.resize_to(buckets);
        }
    }

    /// Insert or overwrite a whole batch; returns how many keys were
    /// fresh inserts.  Pairs apply in input order (later duplicates win),
    /// so the result is identical to a loop of [`HashTable::upsert`] —
    /// the batch entry point pre-grows the table once (keeping the
    /// per-key loop free of rehash checks that can hit) and walks the
    /// batch in prefetch groups: every group's home buckets are
    /// prefetched before any of its upserts run, so the displacement
    /// chains start from warm lines.  (Full AMAC interleaving does not
    /// apply to upserts: a displacement rewrites the very chain a
    /// concurrent in-flight probe would be walking.)
    pub fn upsert_batch(&mut self, pairs: &[(u64, u64)]) -> u64 {
        // ALLOC-OK: the one pre-grow that keeps the per-key loop
        // rehash-free; amortized over the batch.
        self.reserve(pairs.len());
        let mut fresh = 0u64;
        for group in pairs.chunks(AMAC_GROUP) {
            for &(k, _) in group {
                self.prefetch_slot(self.bucket_of(k));
            }
            for &(k, v) in group {
                fresh += self.upsert(k, v).is_none() as u64;
            }
        }
        fresh
    }

    /// Remove a key; returns its value.  Uses backward-shift deletion to
    /// preserve the Robin-Hood invariant.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let mut idx = self.bucket_of(key);
        let mut psl = 1u32;
        loop {
            let s = self.slots[idx];
            if s.psl == 0 || s.psl < psl {
                return None;
            }
            if s.key == key {
                let value = s.value;
                self.remove_at(idx);
                return Some(value);
            }
            psl += 1;
            idx = (idx + 1) & self.mask;
        }
    }

    /// Delete the occupied slot at `idx` by backward-shifting the chain
    /// behind it, preserving the Robin-Hood invariant.
    fn remove_at(&mut self, idx: usize) {
        let mut prev = idx;
        let mut next = (idx + 1) & self.mask;
        loop {
            let n = self.slots[next];
            if n.psl <= 1 {
                break;
            }
            self.slots[prev] = Slot {
                psl: n.psl - 1,
                ..n
            };
            prev = next;
            next = (next + 1) & self.mask;
        }
        self.slots[prev] = EMPTY;
        self.len -= 1;
    }

    fn grow(&mut self) {
        self.resize_to((self.mask + 1) * 2);
    }

    /// Reallocate the bucket array to exactly `buckets` (a power of two)
    /// and rehash every resident key once.
    fn resize_to(&mut self, buckets: usize) {
        debug_assert!(buckets.is_power_of_two());
        debug_assert!(buckets > self.slots.len());
        self.rehashes += 1;
        // ALLOC-OK: table growth is amortized doubling — reached only
        // when an upsert crosses the load factor.
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; buckets]);
        self.mask = buckets - 1;
        self.len = 0;
        for s in old {
            if s.psl > 0 {
                self.upsert(s.key, s.value);
            }
        }
    }

    /// Visit every `(key, value)` pair in arbitrary (hash) order.
    pub fn for_each(&self, mut f: impl FnMut(u64, u64)) {
        for s in &self.slots {
            if s.psl > 0 {
                f(s.key, s.value);
            }
        }
    }

    /// Drain all pairs (partition transfer source side).
    pub fn drain_all(&mut self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.len);
        for s in &mut self.slots {
            if s.psl > 0 {
                out.push((s.key, s.value));
                *s = EMPTY;
            }
        }
        self.len = 0;
        out
    }

    /// Extract and remove every key in `[lo, hi)` (range-partitioned
    /// balancing over hash-stored partitions — the table is unordered, so
    /// this is a full sweep).  Collection and deletion happen in a single
    /// pass: a matching slot is backward-shift-deleted in place and the
    /// scan re-examines the slot (the shift pulls the next chain entry
    /// into it) instead of re-probing every extracted key from its home
    /// bucket afterwards, which made dense extractions O(n·k).
    pub fn extract_range(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut idx = 0usize;
        while idx < self.slots.len() {
            let s = self.slots[idx];
            if s.psl > 0 && s.key >= lo && s.key < hi {
                out.push((s.key, s.value));
                // Deleting here can only move entries *backward* (toward
                // their home bucket), i.e. into this slot or — across the
                // wrap — from slot 0 to the array's end, which the scan
                // has yet to visit either way: nothing is skipped, and a
                // re-examined non-matching entry is just re-skipped.
                self.remove_at(idx);
            } else {
                idx += 1;
            }
        }
        out
    }

    /// Append a stable little-endian serialization:
    /// `[u64 seed][u64 n][n × (u64 key, u64 value)]`.  Pairs are emitted
    /// in key order so the payload is deterministic regardless of probe
    /// history; the seed pins the partition's hash function identity.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seed.to_le_bytes());
        let mut pairs = Vec::with_capacity(self.len);
        self.for_each(|k, v| pairs.push((k, v)));
        pairs.sort_unstable();
        crate::codec::encode_pairs(&pairs, out);
    }

    /// Refill the table from a [`HashTable::serialize_into`] payload.
    /// Returns `false` on malformed input or if the payload was written
    /// by a partition with a different hash seed (a wiring error: part
    /// files restored into the wrong AEU).
    pub fn restore(&mut self, payload: &[u8]) -> bool {
        if payload.len() < 8 {
            return false;
        }
        let seed = u64::from_le_bytes(payload[..8].try_into().unwrap());
        if seed != self.seed {
            return false;
        }
        let Some(pairs) = crate::codec::decode_pairs(&payload[8..]) else {
            return false;
        };
        for (k, v) in pairs {
            self.upsert(k, v);
        }
        true
    }

    /// Synthetic addresses touched by a lookup of `key` (bucket probes),
    /// for the cache simulator.
    pub fn trace_path(&self, key: u64, out: &mut Vec<u64>) {
        let mut idx = self.bucket_of(key);
        let mut psl = 1u32;
        loop {
            out.push(self.base_vaddr + (idx * std::mem::size_of::<Slot>()) as u64);
            let s = &self.slots[idx];
            if s.psl == 0 || s.psl < psl || s.key == key {
                return;
            }
            psl += 1;
            idx = (idx + 1) & self.mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_roundtrip() {
        let mut t = HashTable::new(7, 0);
        assert_eq!(t.upsert(42, 1), None);
        assert_eq!(t.upsert(42, 2), Some(1));
        assert_eq!(t.lookup(42), Some(2));
        assert_eq!(t.lookup(43), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn serialization_roundtrips_and_checks_the_seed() {
        let mut t = HashTable::new(7, 0);
        for k in 0..100u64 {
            t.upsert(k, k + 1);
        }
        let mut buf = Vec::new();
        t.serialize_into(&mut buf);
        let mut back = HashTable::new(7, 0);
        assert!(back.restore(&buf));
        assert_eq!(back.len(), 100);
        for k in 0..100u64 {
            assert_eq!(back.lookup(k), Some(k + 1));
        }
        let mut wrong_seed = HashTable::new(8, 0);
        assert!(!wrong_seed.restore(&buf), "seed mismatch rejected");
        let mut fresh = HashTable::new(7, 0);
        assert!(!fresh.restore(&buf[..buf.len() - 1]), "truncated payload");
    }

    #[test]
    fn zero_key_works() {
        let mut t = HashTable::new(3, 0);
        t.upsert(0, 0);
        assert_eq!(t.lookup(0), Some(0));
        assert_eq!(t.remove(0), Some(0));
        assert_eq!(t.lookup(0), None);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = HashTable::with_capacity(1, 0, 4);
        for k in 0..10_000u64 {
            t.upsert(k, k * 2);
        }
        assert_eq!(t.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(t.lookup(k), Some(k * 2), "key {k}");
        }
    }

    #[test]
    fn remove_with_backward_shift() {
        let mut t = HashTable::with_capacity(5, 0, 64);
        for k in 0..50u64 {
            t.upsert(k, k);
        }
        for k in (0..50u64).step_by(2) {
            assert_eq!(t.remove(k), Some(k));
        }
        for k in 0..50u64 {
            assert_eq!(t.lookup(k), if k % 2 == 0 { None } else { Some(k) });
        }
        assert_eq!(t.len(), 25);
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let mut a = HashTable::new(1, 0);
        let mut b = HashTable::new(999, 0);
        for k in 0..100u64 {
            a.upsert(k, k);
            b.upsert(k, k);
        }
        let mut ta = Vec::new();
        let mut tb = Vec::new();
        a.trace_path(50, &mut ta);
        b.trace_path(50, &mut tb);
        // Per-partition hash functions: the same key probes different
        // buckets in different partitions.
        assert_ne!(ta[0], tb[0]);
    }

    #[test]
    fn drain_and_extract_range() {
        let mut t = HashTable::new(11, 0);
        for k in 0..100u64 {
            t.upsert(k, k + 1);
        }
        let moved = t.extract_range(30, 60);
        assert_eq!(moved.len(), 30);
        assert!(moved
            .iter()
            .all(|&(k, v)| (30..60).contains(&k) && v == k + 1));
        assert_eq!(t.len(), 70);
        assert_eq!(t.lookup(45), None);
        assert_eq!(t.lookup(29), Some(30));
        let rest = t.drain_all();
        assert_eq!(rest.len(), 70);
        assert!(t.is_empty());
    }

    #[test]
    fn for_each_visits_everything_once() {
        let mut t = HashTable::new(13, 0);
        for k in 0..500u64 {
            t.upsert(k * 3, k);
        }
        let mut seen = std::collections::BTreeSet::new();
        t.for_each(|k, _| {
            assert!(seen.insert(k), "key {k} visited twice");
        });
        assert_eq!(seen.len(), 500);
    }

    #[test]
    fn lookup_batch_answers_in_input_order() {
        let mut t = HashTable::new(17, 0);
        for k in 0..1000u64 {
            t.upsert(k * 2, k);
        }
        // Duplicates, misses, and u64::MAX all allowed in one batch; 8+
        // keys takes the hoisted prefetching path.
        let keys = vec![4, 9999, 0, 4, u64::MAX, 998 * 2, 6, 1_000_001];
        let mut got = vec![Some(77)]; // pre-existing entries are kept
        t.lookup_batch(&keys, &mut got);
        assert_eq!(
            got,
            vec![
                Some(77),
                Some(2),
                None,
                Some(0),
                Some(2),
                None,
                Some(998),
                Some(3),
                None
            ]
        );
        // The short path (under the batch threshold) agrees.
        let mut short = Vec::new();
        t.lookup_batch(&keys[..3], &mut short);
        assert_eq!(short, vec![Some(2), None, Some(0)]);
    }

    #[test]
    fn upsert_batch_counts_fresh_keys_and_orders_duplicates() {
        let mut t = HashTable::new(19, 0);
        t.upsert(1, 100);
        let fresh = t.upsert_batch(&[(1, 200), (2, 1), (3, 1), (2, 2)]);
        assert_eq!(fresh, 2, "keys 2 and 3 are new; 1 and the dup are not");
        assert_eq!(t.lookup(1), Some(200));
        assert_eq!(t.lookup(2), Some(2), "later duplicate wins");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn reserve_prevents_mid_batch_growth() {
        let mut t = HashTable::with_capacity(23, 0, 4);
        t.reserve(10_000);
        let buckets = t.memory_bytes();
        for k in 0..10_000u64 {
            t.upsert(k, k);
        }
        assert_eq!(t.memory_bytes(), buckets, "no rehash during the batch");
        assert_eq!(t.len(), 10_000);
    }

    #[test]
    fn reserve_rehashes_exactly_once() {
        // A 16-slot table asked for room for 10k keys used to rehash its
        // residents once per doubling (16 → 32 → ... → 16384); it must
        // size the bucket array to the final power of two directly.
        let mut t = HashTable::with_capacity(23, 0, 4);
        assert_eq!(t.memory_bytes(), 16 * std::mem::size_of::<Slot>() as u64);
        for k in 0..10u64 {
            t.upsert(k, k);
        }
        assert_eq!(t.rehashes(), 0, "16 slots hold 10 keys without growth");
        t.reserve(10_000);
        assert_eq!(t.rehashes(), 1, "one reallocation, not one per doubling");
        for k in 0..10_000u64 {
            t.upsert(k, k);
        }
        assert_eq!(t.rehashes(), 1, "reserve covered the whole batch");
        assert_eq!(t.len(), 10_000);
        for k in 0..10u64 {
            assert_eq!(t.lookup(k), Some(k), "residents survive the rehash");
        }
    }

    #[test]
    fn extract_range_matches_per_key_removal_on_dense_ranges() {
        // Equivalence against the old semantics (full sweep, then one
        // backward-shift `remove` per collected key): same extracted
        // multiset, same survivors, on ranges dense enough that the old
        // path went quadratic.
        for (lo, hi) in [(0, 5_000), (100, 4_900), (2_500, 2_501), (0, 0)] {
            let mut fast = HashTable::with_capacity(31, 0, 64);
            let mut slow = HashTable::with_capacity(31, 0, 64);
            for k in 0..5_000u64 {
                fast.upsert(k, k * 7);
                slow.upsert(k, k * 7);
            }
            let mut got = fast.extract_range(lo, hi);
            // Old semantics, spelled out.
            let mut want = Vec::new();
            slow.for_each(|k, v| {
                if k >= lo && k < hi {
                    want.push((k, v));
                }
            });
            for &(k, _) in &want {
                slow.remove(k);
            }
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "extracted set for [{lo}, {hi})");
            assert_eq!(fast.len(), slow.len());
            for k in 0..5_000u64 {
                assert_eq!(fast.lookup(k), slow.lookup(k), "survivor {k}");
            }
        }
    }

    #[test]
    fn amac_lookup_matches_scalar_at_the_growth_brink() {
        // Fill the table to just under the load threshold so probe chains
        // are at their longest, then drive the AMAC path across group
        // sizes and a batch spanning hits, misses, duplicates, and MAX.
        let mut t = HashTable::with_capacity(41, 0, 4);
        let n = {
            // Stop one insert short of the next growth trigger.
            let mut k = 0u64;
            while (t.len() + 2) * 100
                <= t.memory_bytes() as usize / std::mem::size_of::<Slot>() * MAX_LOAD_PERCENT
            {
                t.upsert(k.wrapping_mul(0x9E37_79B9), k);
                k += 1;
            }
            k
        };
        let grown = t.rehashes();
        let keys: Vec<u64> = (0..4 * n)
            .map(|i| {
                if i % 3 == 0 {
                    u64::MAX - (i % 5)
                } else {
                    (i % (2 * n)).wrapping_mul(0x9E37_79B9)
                }
            })
            .collect();
        for group in [2usize, 8, 12, 16, 64] {
            let mut got = Vec::new();
            t.lookup_batch_grouped(&keys, &mut got, group);
            let want: Vec<Option<u64>> = keys.iter().map(|&k| t.lookup(k)).collect();
            assert_eq!(got, want, "group {group}");
        }
        assert_eq!(t.rehashes(), grown, "lookups never grow the table");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeMap;

        proptest! {
            #[test]
            fn batch_entry_points_match_scalar_loops(
                seed in 0u64..1000,
                pairs in proptest::collection::vec(
                    (prop_oneof![0u64..300, Just(u64::MAX)], 0u64..100), 0..300),
                // Batch lengths concentrate around the 8-key threshold
                // (both sides of the scalar/AMAC switch) and stretch into
                // proper interleaving territory.
                keys in prop_oneof![
                    proptest::collection::vec(
                        prop_oneof![0u64..300, Just(u64::MAX)], 0..300),
                    proptest::collection::vec(
                        prop_oneof![0u64..300, Just(u64::MAX)], 6..10),
                ],
                group in 2usize..32)
            {
                let mut batched = HashTable::new(seed, 0);
                let mut scalar = HashTable::new(seed, 0);
                let fresh = batched.upsert_batch(&pairs);
                let mut scalar_fresh = 0u64;
                for &(k, v) in &pairs {
                    scalar_fresh += scalar.upsert(k, v).is_none() as u64;
                }
                prop_assert_eq!(fresh, scalar_fresh);
                prop_assert_eq!(batched.len(), scalar.len());
                let want: Vec<Option<u64>> =
                    keys.iter().map(|&k| scalar.lookup(k)).collect();
                let mut got = Vec::new();
                batched.lookup_batch(&keys, &mut got);
                prop_assert_eq!(&got, &want, "default AMAC group");
                let mut grouped = Vec::new();
                batched.lookup_batch_grouped(&keys, &mut grouped, group);
                prop_assert_eq!(&grouped, &want, "group {}", group);
            }

            #[test]
            fn extract_range_behaves_like_btreemap_split(
                seed in 0u64..1000,
                pairs in proptest::collection::vec(
                    (prop_oneof![0u64..500, Just(u64::MAX)], 0u64..100), 0..400),
                lo in 0u64..600,
                width in 0u64..600)
            {
                let hi = lo.saturating_add(width);
                let mut t = HashTable::new(seed, 0);
                let mut m = BTreeMap::new();
                for &(k, v) in &pairs {
                    t.upsert(k, v);
                    m.insert(k, v);
                }
                let mut got = t.extract_range(lo, hi);
                got.sort_unstable();
                let want: Vec<(u64, u64)> = m
                    .iter()
                    .filter(|(&k, _)| k >= lo && k < hi)
                    .map(|(&k, &v)| (k, v))
                    .collect();
                prop_assert_eq!(got, want);
                m.retain(|&k, _| !(k >= lo && k < hi));
                prop_assert_eq!(t.len(), m.len());
                for (&k, &v) in &m {
                    prop_assert_eq!(t.lookup(k), Some(v));
                }
            }

            #[test]
            fn behaves_like_btreemap(
                seed in 0u64..1000,
                ops in proptest::collection::vec((0u8..3, 0u64..500, 0u64..100), 1..400))
            {
                let mut t = HashTable::new(seed, 0);
                let mut m = BTreeMap::new();
                for (op, k, v) in ops {
                    match op {
                        0 => { prop_assert_eq!(t.upsert(k, v), m.insert(k, v)); }
                        1 => { prop_assert_eq!(t.remove(k), m.remove(&k)); }
                        _ => { prop_assert_eq!(t.lookup(k), m.get(&k).copied()); }
                    }
                    prop_assert_eq!(t.len(), m.len());
                }
                let mut all: Vec<(u64, u64)> = Vec::new();
                t.for_each(|k, v| all.push((k, v)));
                all.sort();
                let expect: Vec<(u64, u64)> = m.into_iter().collect();
                prop_assert_eq!(all, expect);
            }
        }
    }
}
