//! The NUMA-agnostic baseline: one shared prefix tree synchronized with
//! atomic instructions.
//!
//! Section 4 of the paper: *"For the baseline experiments we use the same
//! data structures as for the AEUs.  The difference is that those data
//! structures are not partitioned and are thus synchronized via atomic
//! instructions for updates, because they are accessed by different
//! transaction threads in parallel."*
//!
//! The tree shape matches [`crate::PrefixTree`]; concurrency comes from
//! CAS-published child pointers (insertion installs a node and races to CAS
//! it into the parent slot; the loser frees nothing — slots are arena ids
//! and the orphaned node is simply unused) and from release/acquire
//! publication of leaf values.  Readers never take a latch.
//!
//! Arenas grow in fixed-size segments appended under a short mutex, so node
//! ids stay stable without relocating memory that concurrent readers might
//! be traversing.

use crate::prefix_tree::PrefixTreeConfig;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

const NULL: u32 = u32::MAX;
/// Nodes per arena segment.
const SEGMENT: usize = 1024;

/// Maximum number of segments (=> 64 Mi nodes per arena).
const MAX_SEGMENTS: usize = 1 << 16;

/// A segmented, append-only arena of atomic slots with lock-free reads.
///
/// Segment allocation takes a short mutex (it is rare: once per `SEGMENT`
/// nodes); readers go straight through an atomic pointer table, so lookups
/// never serialize — the whole point of the latch-free baseline.
struct AtomicArena<T> {
    ptrs: Box<[std::sync::atomic::AtomicPtr<T>]>,
    grow: Mutex<()>,
    next: AtomicUsize,
    slots_per_node: usize,
}

impl<T: Default> AtomicArena<T> {
    fn new(slots_per_node: usize) -> Self {
        let mut v = Vec::with_capacity(MAX_SEGMENTS);
        v.resize_with(MAX_SEGMENTS, || {
            std::sync::atomic::AtomicPtr::new(std::ptr::null_mut())
        });
        AtomicArena {
            ptrs: v.into_boxed_slice(),
            grow: Mutex::new(()),
            next: AtomicUsize::new(0),
            slots_per_node,
        }
    }

    fn segment_len(&self) -> usize {
        SEGMENT * self.slots_per_node
    }

    /// Allocate one node; returns its id.
    fn alloc_node(&self) -> u32 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let seg = id / SEGMENT;
        // BOUNDS: capacity precondition — the fixed segment-pointer
        // table bounds the arena; exhausting it is a sizing bug, not a
        // data-dependent state, and the check caps `seg` for the
        // pointer-table indexes below.
        assert!(seg < MAX_SEGMENTS, "shared tree arena exhausted");
        if self.ptrs[seg].load(Ordering::Acquire).is_null() {
            // BOUNDS: the grow mutex cannot be poisoned — the critical
            // section below never panics (allocation aborts on OOM).
            // Taken only on the first allocation in each segment
            // (once per SEGMENT nodes); the per-node fast path above is
            // a fetch_add plus an Acquire null check.
            let _g = self.grow.lock().unwrap();
            if self.ptrs[seg].load(Ordering::Acquire).is_null() {
                // ALLOC-OK: segment-granular arena growth — one boxed
                // slice per SEGMENT nodes, amortized across them.
                let mut v: Vec<T> = Vec::with_capacity(self.segment_len());
                v.resize_with(self.segment_len(), T::default);
                let raw = Box::into_raw(v.into_boxed_slice()) as *mut T;
                // BOUNDS: `seg` re-checked under the same capped index.
                self.ptrs[seg].store(raw, Ordering::Release);
            }
        }
        id as u32
    }

    /// The slots of node `id`.
    #[inline]
    fn node(&self, id: u32) -> &[T] {
        let seg = id as usize / SEGMENT;
        let off = (id as usize % SEGMENT) * self.slots_per_node;
        // BOUNDS: node ids come from alloc_node, which asserted
        // seg < MAX_SEGMENTS before handing the id out.
        let ptr = self.ptrs[seg].load(Ordering::Acquire);
        debug_assert!(!ptr.is_null(), "node {id} read before its segment exists");
        // SAFETY: a non-null segment pointer refers to a live boxed slice of
        // `segment_len()` slots that is only freed in `Drop` (which requires
        // exclusive access to the arena).
        unsafe { std::slice::from_raw_parts(ptr.add(off), self.slots_per_node) }
    }

    fn allocated_nodes(&self) -> usize {
        self.next.load(Ordering::Relaxed)
    }
}

impl<T> Drop for AtomicArena<T> {
    fn drop(&mut self) {
        for p in self.ptrs.iter() {
            let raw = p.load(Ordering::Acquire);
            if !raw.is_null() {
                // SAFETY: we own the arena exclusively in Drop; the pointer
                // was created by Box::into_raw of a slice of segment_len().
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        raw,
                        SEGMENT * self.slots_per_node,
                    )));
                }
            }
        }
    }
}

/// One shared, latch-free prefix tree (the paper's baseline index).
pub struct SharedPrefixTree {
    cfg: PrefixTreeConfig,
    inner: AtomicArena<AtomicU32>,
    /// Leaf slot = (present flag in bit 63 of a separate word) — we store
    /// per-leaf: `fanout` value words followed by `fanout/64` bitmap words.
    leaves: AtomicArena<AtomicU64>,
    root: u32,
    len: AtomicUsize,
    base_vaddr: u64,
}

impl SharedPrefixTree {
    pub fn new(cfg: PrefixTreeConfig, base_vaddr: u64) -> Self {
        let fanout = cfg.fanout();
        let inner = AtomicArena::new(fanout);
        let leaves = AtomicArena::new(fanout + fanout.div_ceil(64));
        let t = SharedPrefixTree {
            cfg,
            inner,
            leaves,
            root: 0,
            len: AtomicUsize::new(0),
            base_vaddr,
        };
        if cfg.levels() == 1 {
            t.leaves.alloc_node();
        } else {
            let r = t.inner.alloc_node();
            for s in t.inner.node(r) {
                s.store(NULL, Ordering::Relaxed);
            }
        }
        t
    }

    pub fn config(&self) -> PrefixTreeConfig {
        self.cfg
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.inner.allocated_nodes() * self.cfg.fanout() * 4) as u64
            + (self.leaves.allocated_nodes()
                * (self.cfg.fanout() * 8 + self.cfg.fanout().div_ceil(64) * 8)) as u64
    }

    #[inline]
    fn digit(&self, key: u64, level: u32) -> usize {
        let shift = self.cfg.key_bits - (level + 1) * self.cfg.prefix_bits;
        ((key >> shift) & ((1u64 << self.cfg.prefix_bits) - 1)) as usize
    }

    /// Create-and-CAS a child; on a lost race the orphan node stays unused.
    fn get_or_install_child(&self, parent: u32, digit: usize, leaf_level: bool) -> u32 {
        // BOUNDS: `parent` is a live inner node and `digit` is masked
        // to fanout by `digit()`, inside the node's slots_per_node.
        let slot = &self.inner.node(parent)[digit];
        let cur = slot.load(Ordering::Acquire);
        if cur != NULL {
            return cur;
        }
        let fresh = if leaf_level {
            self.leaves.alloc_node()
        } else {
            let id = self.inner.alloc_node();
            for s in self.inner.node(id) {
                s.store(NULL, Ordering::Relaxed);
            }
            id
        };
        match slot.compare_exchange(NULL, fresh, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => fresh,
            Err(winner) => winner, // lost the race; the orphan id is leaked
        }
    }

    /// Insert or overwrite.  Returns `true` when the key was new.
    pub fn upsert(&self, key: u64, value: u64) -> bool {
        let levels = self.cfg.levels();
        let fanout = self.cfg.fanout();
        let mut node = self.root;
        for level in 0..levels.saturating_sub(1) {
            let digit = self.digit(key, level);
            node = self.get_or_install_child(node, digit, level + 2 == levels);
        }
        let digit = self.digit(key, levels - 1);
        let leaf = self.leaves.node(node);
        // BOUNDS: leaf nodes carry fanout value slots plus the presence
        // bitmap words; `digit` is masked to fanout, so both indexes
        // stay inside slots_per_node.
        // Value first, then publish the presence bit with release ordering.
        leaf[digit].store(value, Ordering::Relaxed);
        let word = &leaf[fanout + digit / 64];
        let bit = 1u64 << (digit % 64);
        let prev = word.fetch_or(bit, Ordering::Release);
        let inserted = prev & bit == 0;
        if inserted {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        inserted
    }

    /// Latch-free point lookup.
    pub fn lookup(&self, key: u64) -> Option<u64> {
        let levels = self.cfg.levels();
        let fanout = self.cfg.fanout();
        let mut node = self.root;
        for level in 0..levels.saturating_sub(1) {
            let digit = self.digit(key, level);
            // BOUNDS: `node` is live and `digit` is masked to fanout.
            node = self.inner.node(node)[digit].load(Ordering::Acquire);
            if node == NULL {
                return None;
            }
        }
        let digit = self.digit(key, levels - 1);
        let leaf = self.leaves.node(node);
        let bit = 1u64 << (digit % 64);
        // BOUNDS: same leaf layout as upsert — fanout value slots plus
        // bitmap words, digit masked to fanout.
        if leaf[fanout + digit / 64].load(Ordering::Acquire) & bit == 0 {
            return None;
        }
        Some(leaf[digit].load(Ordering::Relaxed))
    }

    /// Synthetic addresses of the nodes a lookup touches; see
    /// [`crate::PrefixTree::trace_path`].  The shared tree is one global
    /// object, so every thread produces addresses in the same region —
    /// which is exactly why its lines end up `Shared`/`Forward` in the
    /// cache simulation (Figure 11).
    pub fn trace_path(&self, key: u64, out: &mut Vec<u64>) {
        let levels = self.cfg.levels();
        let fanout = self.cfg.fanout() as u64;
        let mut node = self.root;
        for level in 0..levels.saturating_sub(1) {
            let digit = self.digit(key, level);
            out.push(self.base_vaddr + (node as u64 * fanout + digit as u64) * 4);
            // BOUNDS: `node` is live and `digit` is masked to fanout.
            node = self.inner.node(node)[digit].load(Ordering::Acquire);
            if node == NULL {
                return;
            }
        }
        let digit = self.digit(key, levels.saturating_sub(1)) as u64;
        out.push(self.base_vaddr + (1 << 39) + (node as u64 * fanout + digit) * 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tree() -> SharedPrefixTree {
        SharedPrefixTree::new(PrefixTreeConfig::new(4, 16), 0)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let t = tree();
        assert!(t.upsert(42, 420));
        assert!(!t.upsert(42, 421));
        assert_eq!(t.lookup(42), Some(421));
        assert_eq!(t.lookup(43), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn zero_key_zero_value() {
        let t = tree();
        t.upsert(0, 0);
        assert_eq!(t.lookup(0), Some(0));
    }

    #[test]
    fn matches_sequential_tree() {
        let t = tree();
        let mut reference = crate::PrefixTree::with_config(PrefixTreeConfig::new(4, 16), 0);
        for k in (0..0x10000u64).step_by(37) {
            t.upsert(k, k * 3);
            reference.upsert(k, k * 3);
        }
        for k in 0..0x10000u64 {
            assert_eq!(t.lookup(k), reference.lookup(k));
        }
        assert_eq!(t.len(), reference.len());
    }

    #[test]
    fn concurrent_inserts_all_visible() {
        let t = Arc::new(SharedPrefixTree::new(PrefixTreeConfig::new(8, 32), 0));
        let threads = 8;
        let per = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for j in 0..per {
                        let k = i * per + j;
                        t.upsert(k, k + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), (threads * per) as usize);
        for k in 0..threads * per {
            assert_eq!(t.lookup(k), Some(k + 1), "key {k}");
        }
    }

    #[test]
    fn concurrent_reads_during_writes_never_see_garbage() {
        let t = Arc::new(SharedPrefixTree::new(PrefixTreeConfig::new(8, 24), 0));
        let writer = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for k in 0..50_000u64 {
                    t.upsert(k % (1 << 24), 0xDEAD0000 + k);
                }
            })
        };
        // Readers must see either absence or a value some writer stored.
        for _ in 0..4 {
            for k in 0..10_000u64 {
                if let Some(v) = t.lookup(k) {
                    assert!(v >= 0xDEAD0000, "garbage value {v:#x}");
                }
            }
        }
        writer.join().unwrap();
    }

    #[test]
    fn trace_addresses_are_deterministic_per_key() {
        let t = SharedPrefixTree::new(PrefixTreeConfig::new(8, 16), 0x8000);
        t.upsert(0x1234, 1);
        let mut a = Vec::new();
        let mut b = Vec::new();
        t.trace_path(0x1234, &mut a);
        t.trace_path(0x1234, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }
}
