//! Little-endian pair codec shared by the partition serializers.
//!
//! The layout — `[u64 n][n × (u64 key, u64 value)]` — is the stable
//! checkpoint payload of both the prefix tree and the hash table.  It is
//! decoded defensively: checkpoint files are external input that may be
//! truncated by a crash, so malformed bytes yield `None`, never a panic
//! or an oversized allocation.

/// Append `[u64 n][pairs]` to `out`.
pub fn encode_pairs(pairs: &[(u64, u64)], out: &mut Vec<u8>) {
    out.reserve(8 + pairs.len() * 16);
    out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for &(k, v) in pairs {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decode an [`encode_pairs`] payload.  `None` if the buffer is truncated,
/// carries trailing bytes, or declares more pairs than it holds.
pub fn decode_pairs(payload: &[u8]) -> Option<Vec<(u64, u64)>> {
    if payload.len() < 8 {
        return None;
    }
    let n = u64::from_le_bytes(payload[..8].try_into().unwrap()) as usize;
    let body = &payload[8..];
    if body.len() != n.checked_mul(16)? {
        return None;
    }
    let mut pairs = Vec::with_capacity(n);
    for chunk in body.chunks_exact(16) {
        let k = u64::from_le_bytes(chunk[..8].try_into().unwrap());
        let v = u64::from_le_bytes(chunk[8..].try_into().unwrap());
        pairs.push((k, v));
    }
    Some(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_rejection() {
        let pairs = vec![(1u64, 10u64), (2, 20), (u64::MAX, 0)];
        let mut buf = Vec::new();
        encode_pairs(&pairs, &mut buf);
        assert_eq!(decode_pairs(&buf), Some(pairs));
        assert_eq!(decode_pairs(&[]), None, "empty");
        assert_eq!(decode_pairs(&buf[..buf.len() - 1]), None, "truncated");
        let mut extra = buf.clone();
        extra.push(0);
        assert_eq!(decode_pairs(&extra), None, "trailing byte");
        let mut lying = buf;
        lying[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(decode_pairs(&lying), None, "count overflow");
    }
}
