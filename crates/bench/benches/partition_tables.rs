//! Ablation: CSB+-tree vs. a flat sorted array for the range partition
//! tables.  The paper chose the CSB+-tree because it "scales with an
//! increasing number of ranges, respectively AEUs, compared to a simple
//! array".

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use eris_index::csb_tree::{CsbTree, FlatRangeMap};

fn bench_lookup_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition_tables/owner_lookup");
    for ranges in [8usize, 64, 512, 4096, 32768] {
        let entries: Vec<(u64, u32)> = (0..ranges).map(|i| (i as u64 * 1000, i as u32)).collect();
        let csb = CsbTree::build(entries.clone());
        let flat = FlatRangeMap::build(entries);
        let domain = ranges as u64 * 1000;
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::new("csb", ranges), &ranges, |b, _| {
            b.iter(|| {
                i = (i.wrapping_mul(6364136223846793005).wrapping_add(1)) % domain;
                black_box(csb.lookup(black_box(i)))
            })
        });
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::new("flat_array", ranges), &ranges, |b, _| {
            b.iter(|| {
                i = (i.wrapping_mul(6364136223846793005).wrapping_add(1)) % domain;
                black_box(flat.lookup(black_box(i)))
            })
        });
    }
    g.finish();
}

fn bench_rebuild(c: &mut Criterion) {
    // Routing tables are rebuilt on every rebalance; the rebuild must be
    // cheap relative to the data movement it accompanies.
    let entries: Vec<(u64, u32)> = (0..512).map(|i| (i * 1000, i as u32)).collect();
    c.bench_function("partition_tables/csb_rebuild_512_ranges", |b| {
        b.iter(|| black_box(CsbTree::build(black_box(entries.clone()))).len())
    });
}

criterion_group!(benches, bench_lookup_scaling, bench_rebuild);
criterion_main!(benches);
