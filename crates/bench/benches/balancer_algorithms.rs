//! The load-balancer computations (target partitioning + transfer plan)
//! run inside the adaption loop; they must be negligible next to the data
//! movement they trigger.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use eris_core::balancer::{target_boundaries, transfer_plan, BalanceAlgorithm};

fn skewed_weights(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if i % 7 == 0 {
                100.0
            } else {
                1.0 + (i % 3) as f64
            }
        })
        .collect()
}

fn even_bounds(n: usize, domain: u64) -> Vec<u64> {
    (0..n as u64).map(|i| domain / n as u64 * i).collect()
}

fn bench_target_boundaries(c: &mut Criterion) {
    let mut g = c.benchmark_group("balancer/target_boundaries");
    for n in [8usize, 64, 512] {
        let bounds = even_bounds(n, 1 << 30);
        let weights = skewed_weights(n);
        for (name, algo) in [
            ("one_shot", BalanceAlgorithm::OneShot),
            ("ma1", BalanceAlgorithm::MovingAverage(1)),
            ("ma8", BalanceAlgorithm::MovingAverage(8)),
        ] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    black_box(target_boundaries(
                        black_box(&bounds),
                        1 << 30,
                        black_box(&weights),
                        algo,
                    ))
                    .len()
                })
            });
        }
    }
    g.finish();
}

fn bench_transfer_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("balancer/transfer_plan");
    for n in [8usize, 64, 512] {
        let old = even_bounds(n, 1 << 30);
        let new = target_boundaries(&old, 1 << 30, &skewed_weights(n), BalanceAlgorithm::OneShot);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(transfer_plan(black_box(&old), black_box(&new), 1 << 30)).len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_target_boundaries, bench_transfer_plan);
criterion_main!(benches);
