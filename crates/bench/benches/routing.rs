//! Microbenchmarks of the data command routing layer: the latch-free
//! incoming double buffer, outgoing pre-buffering, and end-to-end routing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use eris_core::routing::{
    IncomingBuffers, OutgoingBuffers, PartitionTable, RangeTable, Router, RoutingConfig,
    RoutingShared,
};
use eris_core::{AeuId, DataCommand, DataObjectId, Payload};
use std::sync::Arc;

fn bench_incoming_write_consume(c: &mut Criterion) {
    let buf = IncomingBuffers::new(1 << 20);
    let payload = [7u8; 64];
    c.bench_function("routing/incoming_write_64B", |b| {
        b.iter(|| {
            if buf.write(black_box(&payload)).is_err() {
                buf.swap_and_consume(|d| {
                    black_box(d.len());
                });
                buf.write(&payload).unwrap();
            }
        })
    });
}

fn bench_incoming_contended(c: &mut Criterion) {
    // Multi-threaded writers against one swapping owner: the real CAS
    // protocol under contention.
    let mut g = c.benchmark_group("routing/incoming_contended");
    for writers in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(writers),
            &writers,
            |b, &writers| {
                b.iter_custom(|iters| {
                    let buf = Arc::new(IncomingBuffers::new(1 << 20));
                    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
                    let handles: Vec<_> = (0..writers)
                        .map(|_| {
                            let buf = Arc::clone(&buf);
                            let stop = Arc::clone(&stop);
                            std::thread::spawn(move || {
                                let payload = [1u8; 32];
                                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                                    let _ = buf.write(&payload);
                                }
                            })
                        })
                        .collect();
                    let start = std::time::Instant::now();
                    for _ in 0..iters {
                        buf.swap_and_consume(|d| {
                            black_box(d.len());
                        });
                    }
                    let dt = start.elapsed();
                    stop.store(true, std::sync::atomic::Ordering::Relaxed);
                    for h in handles {
                        h.join().unwrap();
                    }
                    dt
                })
            },
        );
    }
    g.finish();
}

fn bench_outgoing_flush(c: &mut Criterion) {
    let cmd = DataCommand {
        object: DataObjectId(0),
        ticket: 1,
        payload: Payload::Lookup {
            keys: vec![1, 2, 3, 4],
        },
    };
    c.bench_function("routing/outgoing_buffer_and_flush_16cmds", |b| {
        let inc = IncomingBuffers::new(1 << 20);
        let mut out = OutgoingBuffers::new(4, 1 << 16);
        b.iter(|| {
            for _ in 0..16 {
                out.push_unicast(AeuId(2), &cmd);
            }
            let info = out.flush_into(AeuId(2), &inc).unwrap().unwrap();
            black_box(info.bytes);
            inc.swap_and_consume(|d| {
                black_box(d.len());
            });
        })
    });
}

fn bench_route_split(c: &mut Criterion) {
    // End-to-end routing of a 64-key lookup over 64 owners.
    let shared = Arc::new(RoutingShared::new(64, RoutingConfig::default()));
    let owners: Vec<AeuId> = (0..64).map(AeuId).collect();
    shared.register_object(
        DataObjectId(0),
        PartitionTable::Range(RangeTable::even(1 << 20, &owners)),
    );
    let mut router = Router::new(AeuId(0), Arc::clone(&shared), RoutingConfig::default());
    let keys: Vec<u64> = (0..64).map(|i| (i * 104729) % (1 << 20)).collect();
    c.bench_function("routing/route_64key_lookup_over_64_aeus", |b| {
        b.iter(|| {
            router
                .route(DataCommand {
                    object: DataObjectId(0),
                    ticket: 0,
                    payload: Payload::Lookup { keys: keys.clone() },
                })
                .unwrap();
            black_box(router.flush_all().len());
            // Drain targets so incoming buffers never fill.
            for a in 0..64u32 {
                shared.incoming(AeuId(a)).swap_and_consume(|d| {
                    black_box(d.len());
                });
            }
        })
    });
}

criterion_group!(
    benches,
    bench_incoming_write_consume,
    bench_incoming_contended,
    bench_outgoing_flush,
    bench_route_split
);
criterion_main!(benches);
