//! Ablation: scan sharing on vs. off.  N coalesced scan commands answered
//! by one sweep must approach 1/N of the cost of N separate sweeps.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use eris_column::{Aggregate, Column, Predicate, SharedScan};
use eris_numa::NodeId;

fn column(rows: u64) -> Column {
    let mut c = Column::new_local(NodeId(0), 0, 64 * 1024);
    c.extend((0..rows).map(|i| i % 10_000));
    c.into_column()
}

fn preds(n: usize) -> Vec<Predicate> {
    (0..n)
        .map(|i| Predicate::Range {
            lo: (i as u64) * 500,
            hi: (i as u64) * 500 + 2_000,
        })
        .collect()
}

fn bench_shared_vs_separate(c: &mut Criterion) {
    let col = column(1 << 18);
    let mut g = c.benchmark_group("scan_sharing");
    for n in [1usize, 4, 16] {
        let ps = preds(n);
        g.bench_with_input(BenchmarkId::new("shared_sweep", n), &n, |b, _| {
            b.iter(|| {
                let mut s = SharedScan::new();
                for p in &ps {
                    s.add(*p, usize::MAX, Aggregate::Sum);
                }
                let (results, examined) = s.execute(&col);
                black_box((results.len(), examined))
            })
        });
        g.bench_with_input(BenchmarkId::new("separate_sweeps", n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0u64;
                for p in &ps {
                    total = total.wrapping_add(col.sum(*p, usize::MAX));
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

fn bench_scan_kernels(c: &mut Criterion) {
    let col = column(1 << 18);
    let mut g = c.benchmark_group("scan_kernels");
    g.bench_function("count_all", |b| {
        b.iter(|| black_box(col.count(Predicate::All, usize::MAX)))
    });
    g.bench_function("sum_range", |b| {
        b.iter(|| black_box(col.sum(Predicate::Range { lo: 100, hi: 5_000 }, usize::MAX)))
    });
    g.bench_function("count_equals", |b| {
        b.iter(|| black_box(col.count(Predicate::Equals(1234), usize::MAX)))
    });
    g.finish();
}

criterion_group!(benches, bench_shared_vs_separate, bench_scan_kernels);
criterion_main!(benches);
