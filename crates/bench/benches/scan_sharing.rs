//! Ablation: scan sharing on vs. off.  N coalesced scan commands answered
//! by one sweep must approach 1/N of the cost of N separate sweeps.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use eris_column::{Aggregate, Column, Predicate, ScanKernel, SharedScan};
use eris_index::HashTable;
use eris_numa::NodeId;

fn column(rows: u64) -> Column {
    let mut c = Column::new_local(NodeId(0), 0, 64 * 1024);
    c.extend((0..rows).map(|i| i % 10_000));
    c.into_column()
}

fn preds(n: usize) -> Vec<Predicate> {
    (0..n)
        .map(|i| Predicate::Range {
            lo: (i as u64) * 500,
            hi: (i as u64) * 500 + 2_000,
        })
        .collect()
}

fn bench_shared_vs_separate(c: &mut Criterion) {
    let col = column(1 << 18);
    let mut g = c.benchmark_group("scan_sharing");
    for n in [1usize, 4, 16] {
        let ps = preds(n);
        g.bench_with_input(BenchmarkId::new("shared_sweep", n), &n, |b, _| {
            b.iter(|| {
                let mut s = SharedScan::new();
                for p in &ps {
                    s.add(*p, usize::MAX, Aggregate::Sum);
                }
                let (results, examined) = s.execute(&col);
                black_box((results.len(), examined))
            })
        });
        g.bench_with_input(BenchmarkId::new("separate_sweeps", n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0u64;
                for p in &ps {
                    total = total.wrapping_add(col.sum(*p, usize::MAX));
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

fn bench_scan_kernels(c: &mut Criterion) {
    let col = column(1 << 18);
    let mut g = c.benchmark_group("scan_kernels");
    g.bench_function("count_all", |b| {
        b.iter(|| black_box(col.count(Predicate::All, usize::MAX)))
    });
    g.bench_function("sum_range", |b| {
        b.iter(|| black_box(col.sum(Predicate::Range { lo: 100, hi: 5_000 }, usize::MAX)))
    });
    g.bench_function("count_equals", |b| {
        b.iter(|| black_box(col.count(Predicate::Equals(1234), usize::MAX)))
    });
    g.finish();
}

fn bench_chunked_vs_scalar_dispatch(c: &mut Criterion) {
    // The ScanKernel A/B the engine exposes: the same fused sweep through
    // the chunked kernels and through the row-at-a-time scalar oracle.
    let col = column(1 << 18);
    let mut g = c.benchmark_group("kernel_dispatch");
    for n in [1usize, 8] {
        let ps = preds(n);
        for (name, k) in [
            ("simd", ScanKernel::Simd),
            ("chunked", ScanKernel::Chunked),
            ("scalar", ScanKernel::Scalar),
        ] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let mut s = SharedScan::new();
                    for p in &ps {
                        s.add(*p, usize::MAX, Aggregate::Sum);
                    }
                    black_box(s.execute_with(&col, k))
                })
            });
        }
    }
    g.finish();
}

fn bench_hash_probes(c: &mut Criterion) {
    // AMAC interleaved batched probes vs one-at-a-time lookups.
    let mut h = HashTable::new(7, 0);
    for k in 0..(1u64 << 16) {
        h.upsert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k);
    }
    let keys: Vec<u64> = (0..1024u64)
        .map(|i| (i * 37 % (1 << 17)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let mut g = c.benchmark_group("hash_probes");
    g.bench_function("batched", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            h.lookup_batch(&keys, &mut out);
            black_box(out.iter().flatten().count())
        })
    });
    g.bench_function("scalar", |b| {
        b.iter(|| black_box(keys.iter().filter_map(|&k| h.lookup(k)).count()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_shared_vs_separate,
    bench_scan_kernels,
    bench_chunked_vs_scalar_dispatch,
    bench_hash_probes
);
criterion_main!(benches);
