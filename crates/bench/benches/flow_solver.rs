//! The max-min fair bandwidth solver is on the critical path of every
//! simulated epoch; it must stay fast for 512-AEU machines.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use eris_numa::{Flow, FlowSolver, NodeId};

fn bench_solver_scaling(c: &mut Criterion) {
    let topo = eris_numa::sgi_machine();
    let mut g = c.benchmark_group("flow_solver/sgi");
    for flows in [64usize, 512, 4096] {
        let set: Vec<Flow> = (0..flows)
            .map(|i| {
                Flow::new(
                    NodeId((i % 64) as u16),
                    NodeId(((i * 17 + 5) % 64) as u16),
                    4096 + i as u64,
                )
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, _| {
            let solver = FlowSolver::new(&topo);
            b.iter(|| black_box(solver.solve(black_box(&set))).rates.len())
        });
    }
    g.finish();
}

fn bench_solver_local_only(c: &mut Criterion) {
    // The common case in steady state: one local flow per AEU.
    let topo = eris_numa::sgi_machine();
    let set: Vec<Flow> = (0..512)
        .map(|i| Flow::new(NodeId((i / 8) as u16), NodeId((i / 8) as u16), 65536))
        .collect();
    c.bench_function("flow_solver/sgi_512_local_flows", |b| {
        let solver = FlowSolver::new(&topo);
        b.iter(|| black_box(solver.solve(black_box(&set))).rates.len())
    });
}

criterion_group!(benches, bench_solver_scaling, bench_solver_local_only);
criterion_main!(benches);
