//! Ablation: per-node memory managers with thread-local caching vs. naked
//! central allocation.  Section 3.1: *"To scale with a high number of cores
//! per multiprocessor, our memory managers use thread-local caching
//! mechanisms and thus decrease contention on the local memory management."*

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use eris_mem::{NodeAllocator, ThreadCache};
use eris_numa::NodeId;
use std::sync::Arc;

fn bench_contended_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory_manager/contended_alloc_free");
    g.sample_size(20);
    for threads in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("central_only", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let central = Arc::new(NodeAllocator::new(NodeId(0), 1 << 34));
                    let start = std::time::Instant::now();
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let central = Arc::clone(&central);
                            std::thread::spawn(move || {
                                for _ in 0..iters {
                                    let a = central.alloc(64);
                                    black_box(a.vaddr);
                                    central.free(a);
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                    start.elapsed()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("thread_cached", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let central = Arc::new(NodeAllocator::new(NodeId(0), 1 << 34));
                    let start = std::time::Instant::now();
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let central = Arc::clone(&central);
                            std::thread::spawn(move || {
                                let mut cache = ThreadCache::new(central);
                                for _ in 0..iters {
                                    let a = cache.alloc(64);
                                    black_box(a.vaddr);
                                    cache.free(a);
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                    start.elapsed()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_contended_alloc);
criterion_main!(benches);
