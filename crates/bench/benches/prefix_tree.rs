//! Microbenchmarks of the generalized prefix tree, including the prefix
//! length ablation (the paper's default is 8 bit; Section 4.1).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use eris_index::{PrefixTree, PrefixTreeConfig};

fn filled(cfg: PrefixTreeConfig, n: u64) -> PrefixTree {
    let mut t = PrefixTree::with_config(cfg, 0);
    for k in 0..n {
        t.upsert(k, k);
    }
    t
}

fn bench_lookup_by_prefix_len(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefix_tree/lookup_by_prefix_bits");
    let n: u64 = 1 << 18;
    for bits in [4u32, 8, 16] {
        let t = filled(PrefixTreeConfig::new(bits, 32), n);
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| {
                i = (i.wrapping_mul(6364136223846793005).wrapping_add(1)) % n;
                black_box(t.lookup(black_box(i)))
            })
        });
    }
    g.finish();
}

fn bench_upsert(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefix_tree/upsert");
    for n in [1u64 << 14, 1 << 18] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut t = filled(PrefixTreeConfig::new(8, 32), n);
            let mut i = 0u64;
            b.iter(|| {
                i = (i.wrapping_mul(6364136223846793005).wrapping_add(1)) % n;
                black_box(t.upsert(black_box(i), i))
            })
        });
    }
    g.finish();
}

fn bench_batch_lookup(c: &mut Criterion) {
    // The command-grouping optimization: batched lookups per data command.
    let n: u64 = 1 << 18;
    let t = filled(PrefixTreeConfig::new(8, 32), n);
    let keys: Vec<u64> = (0..256).map(|i| (i * 104729) % n).collect();
    let mut out = Vec::new();
    c.bench_function("prefix_tree/batch_lookup_256", |b| {
        b.iter(|| {
            t.lookup_batch(black_box(&keys), &mut out);
            black_box(out.len())
        })
    });
}

fn bench_range_scan(c: &mut Criterion) {
    let n: u64 = 1 << 18;
    let t = filled(PrefixTreeConfig::new(8, 32), n);
    c.bench_function("prefix_tree/scan_64k_range", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            t.scan_range(black_box(1000), black_box(1000 + (1 << 16)), |_, v| {
                sum = sum.wrapping_add(v)
            });
            black_box(sum)
        })
    });
}

fn bench_flatten_rebuild(c: &mut Criterion) {
    // The copy-transfer path of the load balancer.
    let n: u64 = 1 << 16;
    let t = filled(PrefixTreeConfig::new(8, 32), n);
    c.bench_function("prefix_tree/flatten_64k", |b| {
        b.iter(|| black_box(t.flatten()).len())
    });
    let flat = t.flatten();
    c.bench_function("prefix_tree/rebuild_64k", |b| {
        b.iter(|| {
            black_box(PrefixTree::build_from_sorted(
                PrefixTreeConfig::new(8, 32),
                0,
                black_box(&flat),
            ))
            .len()
        })
    });
}

fn bench_split_off(c: &mut Criterion) {
    // The link-transfer (shrink) path.
    c.bench_function("prefix_tree/split_off_half_64k", |b| {
        b.iter_batched(
            || filled(PrefixTreeConfig::new(8, 32), 1 << 16),
            |mut t| black_box(t.split_off(1 << 15)).len(),
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_lookup_by_prefix_len,
    bench_upsert,
    bench_batch_lookup,
    bench_range_scan,
    bench_flatten_rebuild,
    bench_split_off
);
criterion_main!(benches);
