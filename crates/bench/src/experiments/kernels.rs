//! Kernel regression benchmark — chunked vs scalar AEU execution.
//!
//! Unlike the paper-figure experiments (virtual time on simulated
//! machines), this measures **wall-clock** throughput of the vectorized
//! execution kernels themselves, because they are real compute:
//!
//! * the fused multi-predicate shared sweep (N coalesced scans answered
//!   in one pass) against N unshared sweeps and against the
//!   row-at-a-time scalar oracle, at both the chunked and SIMD tiers,
//! * the single-predicate count/sum kernels — explicit-AVX2 SIMD vs the
//!   portable chunked loops vs scalar scans,
//! * AMAC interleaved batched hash probes against one-at-a-time lookups,
//!   under a symmetric output contract (both sides materialize
//!   `Option<u64>` results into the same reused buffer).
//!
//! Results land in `BENCH_kernels.json`.  When `ERIS_BENCH_BASELINE`
//! names a baseline file (CI commits one under `ci/`), the run's
//! *speedup ratios* — machine-portable, unlike absolute rows/s — are
//! gated against it: a measured ratio below `baseline * (1 - tolerance)`
//! fails the run.  `ERIS_BENCH_TOLERANCE` overrides the default 0.5.
//! A baseline may also carry an absolute `<key>_floor` entry; the gate
//! uses whichever floor is *higher*, so design-level claims ("batched
//! probes beat scalar") hold even under a loose tolerance.

use crate::{fmt_rate, TextTable};
use eris_column::{
    simd, Aggregate, Column, CompiledPredicate, Predicate, ScanKernel, SharedScan, SimdLevel,
};
use eris_index::HashTable;
use eris_numa::NodeId;
use std::time::Instant;

/// Coalesced consumers in the fused sweep (the paper's scan-sharing N).
const CONSUMERS: usize = 8;

/// Ratio metrics the CI gate always compares against the committed
/// baseline.  Absolute rows/s are recorded but never gated: they track
/// the runner's hardware, not the code.
const GATED: &[&str] = &[
    "shared_vs_unshared_speedup",
    "chunked_vs_scalar_speedup",
    "chunked_count_speedup",
    "chunked_sum_speedup",
    "batched_probe_speedup",
];

/// Ratio metrics gated only when explicit SIMD dispatch is active.
/// Under `ERIS_SIMD=0` (or hardware without AVX2) the SIMD entry points
/// dispatch to the portable chunked kernels, so these ratios sit at
/// ~1.0 by construction — gating them against an AVX2 baseline would
/// fail the fallback path for being a fallback.
const SIMD_GATED: &[&str] = &["simd_count_speedup", "simd_sum_speedup"];

/// The keys the gate checks this run: base set, plus the SIMD set when
/// the process actually dispatches to vector lanes.
fn gated_keys() -> Vec<&'static str> {
    let mut keys = GATED.to_vec();
    if simd::level() != SimdLevel::Portable {
        keys.extend_from_slice(SIMD_GATED);
    }
    keys
}

fn column(rows: u64) -> Column {
    let mut c = Column::new_local(NodeId(0), 0, 64 * 1024);
    c.extend((0..rows).map(|i| i.wrapping_mul(0x9E37_79B9) % 100_000));
    c.into_column()
}

fn preds(n: usize) -> Vec<Predicate> {
    (0..n)
        .map(|i| Predicate::Range {
            lo: (i as u64) * 5_000,
            hi: (i as u64) * 5_000 + 20_000,
        })
        .collect()
}

/// Wall time of `f` in seconds per call: the minimum over three
/// measurement passes of at least `min_ms` each, after one warmup call.
/// Min-of-passes discards scheduler noise (which only ever slows a
/// pass down), so the gated ratios are stable enough for hard floors.
fn time(min_ms: u64, mut f: impl FnMut() -> u64) -> f64 {
    let mut sink = f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut iters = 0u64;
        loop {
            sink = sink.wrapping_add(f());
            iters += 1;
            if t0.elapsed().as_millis() as u64 >= min_ms {
                break;
            }
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    std::hint::black_box(sink);
    best
}

/// [`time`] for an A/B pair whose *ratio* is gated: the passes alternate
/// (A, B, A, B, ...) so both sides sample the same machine conditions —
/// timing all of A and then all of B lets a load shift between them
/// masquerade as a speedup or a regression.
fn time_pair(min_ms: u64, mut a: impl FnMut() -> u64, mut b: impl FnMut() -> u64) -> (f64, f64) {
    let mut sink = a().wrapping_add(b()); // warmup both
    let (mut ta, mut tb) = (f64::INFINITY, f64::INFINITY);
    let mut fns: [(&mut f64, &mut dyn FnMut() -> u64); 2] = [(&mut ta, &mut a), (&mut tb, &mut b)];
    for _ in 0..3 {
        for (best, f) in fns.iter_mut() {
            let t0 = Instant::now();
            let mut iters = 0u64;
            loop {
                sink = sink.wrapping_add(f());
                iters += 1;
                if t0.elapsed().as_millis() as u64 >= min_ms {
                    break;
                }
            }
            **best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
        }
    }
    std::hint::black_box(sink);
    (ta, tb)
}

fn fused_sweep(col: &Column, ps: &[Predicate], k: ScanKernel) -> u64 {
    let mut s = SharedScan::new();
    for p in ps {
        s.add(*p, usize::MAX, Aggregate::Sum);
    }
    let (results, examined) = s.execute_with(col, k);
    results.len() as u64 + examined as u64
}

pub(super) struct Metrics(pub(super) Vec<(&'static str, f64)>);

impl Metrics {
    pub(super) fn put(&mut self, key: &'static str, v: f64) {
        self.0.push((key, v));
    }

    pub(super) fn get(&self, key: &str) -> f64 {
        self.0
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0.0, |(_, v)| *v)
    }

    fn to_json(&self, quick: bool, rows: u64) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"quick\": {quick},\n"));
        s.push_str(&format!("  \"rows\": {rows},\n"));
        s.push_str(&format!("  \"consumers\": {CONSUMERS},\n"));
        for (i, (k, v)) in self.0.iter().enumerate() {
            let comma = if i + 1 < self.0.len() { "," } else { "" };
            s.push_str(&format!("  \"{k}\": {v:.3}{comma}\n"));
        }
        s.push_str("}\n");
        s
    }
}

/// Pull `"key": <number>` out of a flat JSON object without a parser.
pub(super) fn extract(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let rest = &json[json.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn measure(quick: bool) -> (Metrics, u64) {
    let rows: u64 = if quick { 1 << 16 } else { 1 << 20 };
    let ms: u64 = if quick { 40 } else { 400 };
    let col = column(rows);
    let ps = preds(CONSUMERS);
    let mut m = Metrics(Vec::new());

    // The tentpole comparison: one fused sweep answers all N consumers;
    // the alternatives pay either N sweeps or per-row dispatch.  The
    // SIMD tier runs the same fused sweep through explicit AVX2 lanes
    // (or, under ERIS_SIMD=0, through the portable kernels — ~1.0x).
    let t_fused = time(ms, || fused_sweep(&col, &ps, ScanKernel::Chunked));
    let t_fused_simd = time(ms, || fused_sweep(&col, &ps, ScanKernel::Simd));
    let t_fused_scalar = time(ms, || fused_sweep(&col, &ps, ScanKernel::Scalar));
    let t_unshared = time(ms, || {
        let mut acc = 0u64;
        for p in &ps {
            acc = acc.wrapping_add(col.sum(*p, usize::MAX));
        }
        acc
    });
    let consumer_rows = (rows * CONSUMERS as u64) as f64;
    m.put("fused_chunked_rows_per_sec", consumer_rows / t_fused);
    m.put("fused_simd_rows_per_sec", consumer_rows / t_fused_simd);
    m.put("fused_scalar_rows_per_sec", consumer_rows / t_fused_scalar);
    m.put("unshared_chunked_rows_per_sec", consumer_rows / t_unshared);
    m.put("shared_vs_unshared_speedup", t_unshared / t_fused);
    m.put("chunked_vs_scalar_speedup", t_fused_scalar / t_fused);
    m.put("simd_vs_chunked_fused_speedup", t_fused / t_fused_simd);

    // Single-predicate kernels against the row-at-a-time scan.
    let p = Predicate::Range {
        lo: 10_000,
        hi: 60_000,
    };
    let t_count = time(ms, || col.count(p, usize::MAX));
    let t_count_scalar = time(ms, || {
        let mut n = 0u64;
        col.scan(p, usize::MAX, |_, _| n += 1);
        n
    });
    let t_sum = time(ms, || col.sum(p, usize::MAX));
    let t_sum_scalar = time(ms, || {
        let mut s = 0u64;
        col.scan(p, usize::MAX, |_, v| s = s.wrapping_add(v));
        s
    });
    m.put("chunked_count_rows_per_sec", rows as f64 / t_count);
    m.put("chunked_sum_rows_per_sec", rows as f64 / t_sum);
    m.put("chunked_count_speedup", t_count_scalar / t_count);
    m.put("chunked_sum_speedup", t_sum_scalar / t_sum);

    // Explicit SIMD against the portable chunked loops, head-to-head on
    // one flat buffer so segment iteration doesn't dilute the kernels.
    m.put(
        "simd_active",
        if simd::level() == SimdLevel::Portable {
            0.0
        } else {
            1.0
        },
    );
    let flat: Vec<u64> = (0..rows)
        .map(|i| i.wrapping_mul(0x9E37_79B9) % 100_000)
        .collect();
    let cp = CompiledPredicate::compile(p);
    let t_simd_count = time(ms, || simd::count(&flat, cp));
    let t_chunked_count = time(ms, || eris_column::kernel::count(&flat, cp));
    let t_simd_sum = time(ms, || simd::sum(&flat, cp));
    let t_chunked_sum = time(ms, || eris_column::kernel::sum(&flat, cp));
    m.put("simd_count_rows_per_sec", rows as f64 / t_simd_count);
    m.put("simd_sum_rows_per_sec", rows as f64 / t_simd_sum);
    m.put("simd_count_speedup", t_chunked_count / t_simd_count);
    m.put("simd_sum_speedup", t_chunked_sum / t_simd_sum);

    // Batched hash probes: AMAC interleaved probing (a group of
    // in-flight probes, each advancing one bucket inspection per
    // round-robin step — see `HashTable::lookup_batch`).  The table
    // must not fit in cache for the comparison to mean anything.
    //
    // The comparator is symmetric: the scalar loop materializes its
    // `Option<u64>` results into the *same reused buffer* the batched
    // path fills, then folds them identically.  An earlier version let
    // the scalar side fold `filter_map` results without ever writing an
    // output — a cheaper contract that understated the batched win and
    // pushed the gated ratio below 1.0 (see EXPERIMENTS.md).  That
    // fold-only loop is still measured below as an ungated attribution
    // metric, so the cost of the output contract stays visible.
    let keys_n: u64 = if quick { 1 << 20 } else { 1 << 22 };
    let mut h = HashTable::new(0xE515, 0);
    for k in 0..keys_n {
        h.upsert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k);
    }
    // Rotate through a key set as large as the table so every iteration
    // probes cold buckets — re-probing one small batch would let both
    // sides run out of cache and measure nothing.
    const BATCH: usize = 4096;
    let all_keys: Vec<u64> = (0..keys_n)
        .map(|i| (i * 37 % (2 * keys_n)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let windows = all_keys.len() / BATCH;
    // One reused output buffer per side (identical contract); interleaved
    // passes keep the gated ratio honest on a noisy machine.
    let mut out_b: Vec<Option<u64>> = Vec::new();
    let mut out_s: Vec<Option<u64>> = Vec::new();
    let mut wb = 0usize;
    let mut ws = 0usize;
    let (t_batched, t_scalar_probe) = time_pair(
        ms,
        || {
            let batch = &all_keys[wb * BATCH..(wb + 1) * BATCH];
            wb = (wb + 1) % windows;
            out_b.clear();
            h.lookup_batch(batch, &mut out_b);
            out_b.iter().flatten().sum()
        },
        || {
            let batch = &all_keys[ws * BATCH..(ws + 1) * BATCH];
            ws = (ws + 1) % windows;
            out_s.clear();
            out_s.extend(batch.iter().map(|&k| h.lookup(k)));
            out_s.iter().flatten().sum()
        },
    );
    let mut w = 0usize;
    let t_scalar_fold = time(ms, || {
        let batch = &all_keys[w * BATCH..(w + 1) * BATCH];
        w = (w + 1) % windows;
        batch.iter().filter_map(|&k| h.lookup(k)).sum()
    });
    m.put("batched_probe_keys_per_sec", BATCH as f64 / t_batched);
    m.put("scalar_probe_keys_per_sec", BATCH as f64 / t_scalar_probe);
    m.put(
        "scalar_probe_fold_keys_per_sec",
        BATCH as f64 / t_scalar_fold,
    );
    m.put("batched_probe_speedup", t_scalar_probe / t_batched);
    m.put("batched_vs_fold_speedup", t_scalar_fold / t_batched);

    (m, rows)
}

pub fn run(quick: bool) {
    println!("Kernel regression benchmark: simd vs chunked vs scalar (wall clock)");
    println!(
        "({CONSUMERS} coalesced consumers per fused sweep; simd level {:?})\n",
        simd::level()
    );
    let (m, rows) = measure(quick);

    let mut t = TextTable::new(&["kernel", "throughput", "speedup"]);
    t.row(vec![
        format!("fused shared sweep ({CONSUMERS} preds, chunked)"),
        fmt_rate(m.get("fused_chunked_rows_per_sec")),
        format!("{:.2}x vs unshared", m.get("shared_vs_unshared_speedup")),
    ]);
    t.row(vec![
        format!("fused shared sweep ({CONSUMERS} preds, simd)"),
        fmt_rate(m.get("fused_simd_rows_per_sec")),
        format!("{:.2}x vs chunked", m.get("simd_vs_chunked_fused_speedup")),
    ]);
    t.row(vec![
        "fused shared sweep (scalar oracle)".into(),
        fmt_rate(m.get("fused_scalar_rows_per_sec")),
        format!("{:.2}x chunked/scalar", m.get("chunked_vs_scalar_speedup")),
    ]);
    t.row(vec![
        "chunked count".into(),
        fmt_rate(m.get("chunked_count_rows_per_sec")),
        format!("{:.2}x vs scalar", m.get("chunked_count_speedup")),
    ]);
    t.row(vec![
        "chunked sum".into(),
        fmt_rate(m.get("chunked_sum_rows_per_sec")),
        format!("{:.2}x vs scalar", m.get("chunked_sum_speedup")),
    ]);
    t.row(vec![
        "simd count".into(),
        fmt_rate(m.get("simd_count_rows_per_sec")),
        format!("{:.2}x vs chunked", m.get("simd_count_speedup")),
    ]);
    t.row(vec![
        "simd sum".into(),
        fmt_rate(m.get("simd_sum_rows_per_sec")),
        format!("{:.2}x vs chunked", m.get("simd_sum_speedup")),
    ]);
    t.row(vec![
        "batched hash probe (AMAC)".into(),
        fmt_rate(m.get("batched_probe_keys_per_sec")),
        format!("{:.2}x vs scalar", m.get("batched_probe_speedup")),
    ]);
    t.print();

    let json = m.to_json(quick, rows);
    let out = "BENCH_kernels.json";
    std::fs::write(out, &json).expect("write BENCH_kernels.json");
    println!("\nwrote {out}");

    if let Ok(path) = std::env::var("ERIS_BENCH_BASELINE") {
        let tolerance: f64 = std::env::var("ERIS_BENCH_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.5);
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
        println!("baseline gate: {path} (tolerance {tolerance})");
        let mut failed = false;
        for key in gated_keys() {
            let Some(want) = extract(&baseline, key) else {
                println!("  {key}: not in baseline, skipped");
                continue;
            };
            let got = m.get(key);
            // Tolerance-relative floor, optionally raised by an absolute
            // `<key>_floor` committed next to the baseline value.
            let mut floor = want * (1.0 - tolerance);
            if let Some(abs) = extract(&baseline, &format!("{key}_floor")) {
                floor = floor.max(abs);
            }
            let ok = got >= floor;
            println!(
                "  {key}: measured {got:.2} vs baseline {want:.2} (floor {floor:.2}) {}",
                if ok { "ok" } else { "REGRESSION" }
            );
            failed |= !ok;
        }
        if failed {
            eprintln!("kernel benchmark regressed beyond tolerance");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_through_the_extractor() {
        let mut m = Metrics(Vec::new());
        m.put("shared_vs_unshared_speedup", 4.25);
        m.put("chunked_vs_scalar_speedup", 2.0);
        let json = m.to_json(true, 1024);
        assert_eq!(extract(&json, "shared_vs_unshared_speedup"), Some(4.25));
        assert_eq!(extract(&json, "chunked_vs_scalar_speedup"), Some(2.0));
        assert_eq!(extract(&json, "rows"), Some(1024.0));
        assert_eq!(extract(&json, "missing"), None);
        // Structural sanity without a parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n}"), "no trailing comma: {json}");
    }

    #[test]
    fn absolute_floor_keys_extract_independently() {
        // `<key>_floor` must not shadow `<key>` (or vice versa) in the
        // parserless extractor the gate relies on.
        let json = "{\n  \"batched_probe_speedup\": 1.18,\n  \
                    \"batched_probe_speedup_floor\": 1.02\n}\n";
        assert_eq!(extract(json, "batched_probe_speedup"), Some(1.18));
        assert_eq!(extract(json, "batched_probe_speedup_floor"), Some(1.02));
    }

    #[test]
    fn gated_keys_track_the_simd_level() {
        let keys = gated_keys();
        for key in GATED {
            assert!(keys.contains(key), "base key {key} always gated");
        }
        let simd_gated = keys.iter().any(|k| SIMD_GATED.contains(k));
        assert_eq!(
            simd_gated,
            simd::level() != SimdLevel::Portable,
            "SIMD ratios gated exactly when vector dispatch is active"
        );
    }

    #[test]
    fn quick_measurement_produces_sane_ratios() {
        let (m, rows) = measure(true);
        assert!(rows > 0);
        for key in gated_keys() {
            let v = m.get(key);
            assert!(v.is_finite() && v > 0.0, "{key} = {v}");
        }
        assert!(
            m.get("simd_active")
                == if simd::level() == SimdLevel::Portable {
                    0.0
                } else {
                    1.0
                },
            "simd_active flag matches dispatch level"
        );
        // The fused chunked sweep must beat the per-row scalar path —
        // the acceptance criterion of the chunked-kernel tentpole.
        // Optimized builds only: debug codegen neither vectorizes the
        // kernels nor inlines the scalar dispatch, so the ratio there
        // measures the compiler, not the design.
        if cfg!(not(debug_assertions)) {
            assert!(
                m.get("chunked_vs_scalar_speedup") > 1.0,
                "chunked fused sweep beats the scalar oracle: {:?}",
                m.0
            );
        }
    }
}
