//! One module per table/figure of the paper's evaluation section.

pub mod driver;
pub mod energy;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig5;
pub mod fig8;
pub mod fig9;
pub mod kernels;
pub mod server;
pub mod storm;
pub mod table1;
pub mod table2;
pub mod zipf;

/// All experiment ids, in paper order.
pub const ALL: &[&str] = &[
    "table1", "table2", "fig1", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "energy", "zipf", "kernels", "storm", "server",
];

/// Run one experiment by id (with `quick` shrinking the sweep for CI).
pub fn run(id: &str, quick: bool) {
    match id {
        "table1" => table1::run(),
        "table2" => table2::run(),
        "fig1" => fig1::run(quick),
        "fig5" => fig5::run(quick),
        "fig8" => fig8::run(quick),
        "fig9" => fig9::run(quick),
        "fig10" => fig10::run(quick),
        "fig11" => fig11::run(quick),
        "fig12" => fig12::run(quick),
        "fig13" => fig13::run(quick),
        "energy" => energy::run(quick),
        "zipf" => zipf::run(quick),
        "kernels" => kernels::run(quick),
        "storm" => storm::run(quick),
        "server" => server::run(quick),
        other => {
            eprintln!("unknown experiment '{other}'; available: {ALL:?}");
            std::process::exit(2);
        }
    }
}
