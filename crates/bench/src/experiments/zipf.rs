//! Zipf-skew ablation (beyond the paper's evaluation).
//!
//! The paper's dynamic experiment (Figure 13) uses hot *ranges*; real
//! analytical workloads are often Zipf-skewed per key.  This ablation
//! sweeps the Zipf exponent θ and measures steady-state lookup throughput
//! with the load balancer off and on (MA-8): the data-oriented
//! architecture degrades under skew because the hottest partitions become
//! the critical path, and range rebalancing claws most of it back —
//! *unless* the skew concentrates on single keys (θ → 1.2), where a range
//! split cannot divide one hot key; the residual gap quantifies the limit
//! of range partitioning the paper's Section 5 alludes to.

use super::driver::load_strided_index;
use crate::{fmt_rate, scale_for, TextTable};
use eris_core::prelude::*;
use eris_core::DataObjectId;
use eris_workloads::{KeyGen, Zipf};

pub struct Row {
    pub theta: f64,
    pub unbalanced: f64,
    pub balanced: f64,
}

fn run_config(theta: f64, balance: bool, quick: bool) -> f64 {
    let virtual_keys: u64 = 256 << 20;
    let real_keys: u64 = if quick { 1 << 15 } else { 1 << 17 };
    let scale = scale_for(virtual_keys, real_keys);
    let mut e = Engine::new(
        eris_numa::amd_machine(),
        EngineConfig {
            size_scale: scale,
            // The time axis is compressed ~1000x relative to a real run
            // (milliseconds of virtual time stand for seconds); transfers
            // move time-compressed volumes accordingly (cf. Figure 13).
            transfer_scale: Some((scale / 1000).max(1)),
            balancer: BalancerConfig {
                enabled: balance,
                algorithm: BalanceAlgorithm::MovingAverage(8),
                threshold_cv: 0.15,
                period_s: 2e-4,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let idx = e.create_index("keys", virtual_keys);
    load_strided_index(&mut e, idx, real_keys, scale);
    for a in e.aeu_ids() {
        // Scrambled Zipf: hot *ranks* spread over the key domain, so the
        // hotspots are key-level, not one contiguous range.
        let mut gen = Zipf::new(a.0 as u64 + 1, real_keys, theta, true);
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                let keys: Vec<u64> = (0..64).map(|_| gen.next_key() * scale).collect();
                out.push(DataCommand {
                    object: DataObjectId(0),
                    ticket: 0,
                    payload: Payload::Lookup { keys },
                });
            })),
        );
    }
    // Warmup (and balancing convergence), then measure.
    e.run_for_virtual_secs(3e-3);
    let t0 = e.clock().now_secs();
    let ops = e.run_for_virtual_secs(if quick { 1e-3 } else { 2e-3 });
    ops.lookups as f64 / (e.clock().now_secs() - t0)
}

pub fn sweep(quick: bool) -> Vec<Row> {
    let thetas: &[f64] = if quick {
        &[0.0, 0.99]
    } else {
        &[0.0, 0.5, 0.8, 0.99, 1.2]
    };
    thetas
        .iter()
        .map(|&theta| Row {
            theta,
            unbalanced: run_config(theta, false, quick),
            balanced: run_config(theta, true, quick),
        })
        .collect()
}

pub fn run(quick: bool) {
    println!("Zipf-skew ablation (beyond the paper): lookup throughput vs. skew (AMD machine)");
    println!("(256M modelled keys; scrambled Zipf ranks; balancer = MA-8 on access frequency)\n");
    let rows = sweep(quick);
    let mut t = TextTable::new(&["theta", "no balancing", "MA-8 balancing", "recovered"]);
    let base = rows[0].unbalanced;
    for r in &rows {
        t.row(vec![
            format!("{:.2}", r.theta),
            format!(
                "{} ({:.0}%)",
                fmt_rate(r.unbalanced),
                100.0 * r.unbalanced / base
            ),
            format!(
                "{} ({:.0}%)",
                fmt_rate(r.balanced),
                100.0 * r.balanced / base
            ),
            format!(
                "{:+.0}%",
                100.0 * (r.balanced - r.unbalanced) / r.unbalanced
            ),
        ]);
    }
    t.print();
    println!("\n(θ=0 is uniform; higher θ concentrates accesses on fewer keys)");
}
