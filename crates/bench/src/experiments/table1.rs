//! Table 1 — machine specification overview.

use crate::TextTable;
use eris_numa::machines::machine_specs;
use eris_numa::{amd_machine, intel_machine, sgi_machine};

pub fn run() {
    println!("Table 1: Machine Specification Overview\n");
    let mut t = TextTable::new(&["", "Intel machine", "AMD machine", "SGI machine"]);
    let s = machine_specs();
    let get = |f: fn(&eris_numa::MachineSpec) -> &'static str| -> Vec<String> {
        s.iter().map(|m| f(m).to_string()).collect()
    };
    let rows: Vec<(&str, Vec<String>)> = vec![
        ("processors", get(|m| m.processors)),
        ("cores", get(|m| m.cores)),
        ("memory", get(|m| m.memory)),
        ("LLC", get(|m| m.llc)),
        ("interconnect", get(|m| m.interconnect)),
        ("OS", get(|m| m.os)),
    ];
    for (label, cells) in rows {
        t.row(vec![
            label.into(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    t.print();

    // Cross-check the simulated topologies against the specs.
    println!("\nSimulated topologies:");
    for topo in [intel_machine(), amd_machine(), sgi_machine()] {
        println!(
            "  {:13} {:3} nodes, {:3} cores, {:5} GiB, {:6.1} GB/s aggregate local bandwidth, {} links",
            topo.name(),
            topo.num_nodes(),
            topo.num_cores(),
            topo.total_memory_gib(),
            topo.aggregate_local_bandwidth_gbps(),
            topo.links().len(),
        );
    }
}
