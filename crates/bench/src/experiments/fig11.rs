//! Figure 11 — L3 cache line states at hit time on the Intel machine
//! (1 B keys).
//!
//! The paper reads the LLC_HITS C-Box counter extensions: for the shared
//! index, 79.3% of all hits land on `Shared`/`Forward` lines — the same
//! line is replicated in other caches, shrinking effective capacity —
//! while 97% of ERIS hits land on `Modified`/`Exclusive` lines.
//!
//! Reproduced with the MESIF simulator: a mixed upsert+lookup stream over
//! per-AEU trees (ERIS) versus one shared tree accessed from every node.

use super::driver::XorShift;
use crate::TextTable;
use eris_index::{PrefixTree, PrefixTreeConfig, SharedPrefixTree};
use eris_numa::{CacheConfig, CacheSim, NodeId};

pub struct Shares {
    pub modified: f64,
    pub exclusive: f64,
    pub shared: f64,
    pub forward: f64,
}

pub struct Result {
    pub eris: Shares,
    pub shared: Shares,
}

fn shares(sim: &CacheSim) -> Shares {
    let s = sim.stats();
    let hits = s.hits().max(1) as f64;
    Shares {
        modified: s.hits_modified as f64 / hits,
        exclusive: s.hits_exclusive as f64 / hits,
        shared: s.hits_shared as f64 / hits,
        forward: s.hits_forward as f64 / hits,
    }
}

pub fn run_measurement(quick: bool) -> Result {
    let topo = eris_numa::intel_machine();
    let cfg = PrefixTreeConfig::new(8, 32);
    let real: u64 = if quick { 1 << 15 } else { 1 << 19 };
    let virtual_keys: u64 = 1 << 30; // 1B keys
    let scale = virtual_keys / real;
    let llc = topo.node_spec(NodeId(0)).llc_mib as u64 * 1048576;
    let scaled = CacheConfig {
        llc_bytes: (llc / scale).max(16 * 1024),
        ways: 16,
        line_size: 64,
        sample_shift: 0,
    };
    let nodes = topo.num_nodes();
    let aeus = topo.num_cores();
    let aeus_per_node = aeus / nodes;
    let ops: u64 = if quick { 30_000 } else { 200_000 };
    // 10% upserts in the stream: the workload of Section 4.1 runs an
    // insert phase before the lookup phase, leaving Modified lines behind.
    let write_every = 10;

    // ERIS: one private tree per AEU.
    let per = real / aeus as u64;
    let trees: Vec<PrefixTree> = (0..aeus)
        .map(|a| {
            let mut t = PrefixTree::with_config(cfg, (a as u64) << 36);
            for k in 0..per {
                t.upsert(a as u64 * per + k, k);
            }
            t
        })
        .collect();
    let mut sim = CacheSim::new(nodes, scaled.clone());
    let mut rng = XorShift::new(5);
    let mut trace = Vec::new();
    for phase in 0..2 {
        if phase == 1 {
            sim.reset_stats();
        }
        for i in 0..ops {
            let a = rng.below(aeus as u64) as usize;
            let key = a as u64 * per + rng.below(per);
            trace.clear();
            trees[a].trace_path(key, &mut trace);
            let node = NodeId((a / aeus_per_node) as u16);
            let write = i % write_every == 0;
            for &addr in &trace {
                sim.access(node, addr, write);
            }
        }
    }
    let eris = shares(&sim);

    // Shared index: every node walks the same tree.
    let tree = SharedPrefixTree::new(cfg, 0);
    for k in 0..real {
        tree.upsert(k, k);
    }
    let mut sim = CacheSim::new(nodes, scaled);
    let mut rng = XorShift::new(6);
    for phase in 0..2 {
        if phase == 1 {
            sim.reset_stats();
        }
        for i in 0..ops {
            let key = rng.below(real);
            trace.clear();
            tree.trace_path(key, &mut trace);
            let node = NodeId(rng.below(nodes as u64) as u16);
            let write = i % write_every == 0;
            for &addr in &trace {
                sim.access(node, addr, write);
            }
        }
    }
    let shared_shares = shares(&sim);

    Result {
        eris,
        shared: shared_shares,
    }
}

pub fn run(quick: bool) {
    println!("Figure 11: L3 Cache Line States on Intel — Percentage of all Hits (1B keys)\n");
    let r = run_measurement(quick);
    let mut t = TextTable::new(&["state", "ERIS", "shared index"]);
    let pct = |x: f64| format!("{:.1}%", 100.0 * x);
    t.row(vec![
        "Modified".into(),
        pct(r.eris.modified),
        pct(r.shared.modified),
    ]);
    t.row(vec![
        "Exclusive".into(),
        pct(r.eris.exclusive),
        pct(r.shared.exclusive),
    ]);
    t.row(vec![
        "Shared".into(),
        pct(r.eris.shared),
        pct(r.shared.shared),
    ]);
    t.row(vec![
        "Forward".into(),
        pct(r.eris.forward),
        pct(r.shared.forward),
    ]);
    t.print();
    println!(
        "\nERIS Modified+Exclusive: {:.1}% (paper: 97%);  shared Shared+Forward: {:.1}% (paper: 79.3%)",
        100.0 * (r.eris.modified + r.eris.exclusive),
        100.0 * (r.shared.shared + r.shared.forward),
    );
}
