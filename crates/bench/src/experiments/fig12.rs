//! Figure 12 — link and memory-controller activity on the AMD machine
//! (scan of an 8 GB column; lookups on a 1 B-key index).
//!
//! The paper reads the HyperTransport Link Transmit Bandwidth and DRAM
//! Accesses counters over a 10-second steady-state window.  Expected
//! shapes: the shared index moves ≈84 GB/s over the links to ERIS' ≈18
//! (mostly command routing), the shared interleaved scan ≈76 GB/s to
//! ERIS' ≈1; meanwhile ERIS drives the memory controllers much harder
//! (73 vs 42 GB/s for lookups, 123 vs 34 GB/s for scans) because local
//! requests actually complete.

use super::driver::{attach_lookup_gens, attach_scan_gen, load_strided_index};
use crate::{scale_for, TextTable};
use eris_core::baseline::{ScanPlacement, SharedIndexBench, SharedScanBench};
use eris_core::prelude::*;

pub struct Row {
    pub setup: &'static str,
    pub link_gbps: f64,
    pub imc_gbps: f64,
}

pub fn run_measurement(quick: bool) -> Vec<Row> {
    let topo = eris_numa::amd_machine;
    let window = if quick { 5e-4 } else { 2e-3 };
    let mut rows = Vec::new();

    // --- Lookups: 1B keys ---
    let virtual_keys: u64 = 1 << 30;
    let real_keys: u64 = if quick { 1 << 16 } else { 1 << 19 };
    let scale = scale_for(virtual_keys, real_keys);

    {
        let mut e = Engine::new(
            topo(),
            EngineConfig {
                size_scale: scale,
                ..Default::default()
            },
        );
        let idx = e.create_index("keys", virtual_keys);
        load_strided_index(&mut e, idx, real_keys, scale);
        attach_lookup_gens(&mut e, idx, real_keys, scale, 128);
        e.run_for_virtual_secs(2e-4);
        e.reset_counters();
        let t0 = e.clock().now_secs();
        e.run_for_virtual_secs(window);
        let secs = e.clock().now_secs() - t0;
        rows.push(Row {
            setup: "ERIS lookup",
            link_gbps: e.counters().total_link_bytes() as f64 / (secs * 1e9),
            imc_gbps: e.counters().total_imc_bytes() as f64 / (secs * 1e9),
        });
    }
    {
        let mut b = SharedIndexBench::new(
            topo(),
            PrefixTreeConfig::new(8, 64),
            CostParams::default(),
            real_keys,
            scale,
            13,
        );
        b.load_dense(real_keys);
        b.run_lookup_phase(2e-4);
        b.counters.reset();
        let t0 = b.clock.now_secs();
        b.run_lookup_phase(window);
        let secs = b.clock.now_secs() - t0;
        rows.push(Row {
            setup: "shared lookup",
            link_gbps: b.counters.total_link_bytes() as f64 / (secs * 1e9),
            imc_gbps: b.counters.total_imc_bytes() as f64 / (secs * 1e9),
        });
    }

    // --- Scans: 8 GB column ---
    let virtual_rows: u64 = 1 << 30; // 1G rows x 8 B = 8 GB
    let real_rows: usize = if quick { 1 << 17 } else { 1 << 20 };
    let row_scale = scale_for(virtual_rows, real_rows as u64);

    {
        let mut e = Engine::new(
            topo(),
            EngineConfig {
                size_scale: row_scale,
                ..Default::default()
            },
        );
        let col = e.create_column("col");
        e.bulk_load_column(col, 0..real_rows as u64);
        attach_scan_gen(&mut e, col);
        e.run_for_virtual_secs(2e-4);
        e.reset_counters();
        let t0 = e.clock().now_secs();
        e.run_for_virtual_secs(window);
        let secs = e.clock().now_secs() - t0;
        rows.push(Row {
            setup: "ERIS scan",
            link_gbps: e.counters().total_link_bytes() as f64 / (secs * 1e9),
            imc_gbps: e.counters().total_imc_bytes() as f64 / (secs * 1e9),
        });
    }
    {
        let mut b = SharedScanBench::new(
            topo(),
            ScanPlacement::Interleaved,
            CostParams::default(),
            real_rows,
            row_scale,
        );
        b.scan_once();
        b.counters.reset();
        let t0 = b.clock.now_secs();
        let reps = if quick { 2 } else { 5 };
        for _ in 0..reps {
            b.scan_once();
        }
        let secs = b.clock.now_secs() - t0;
        rows.push(Row {
            setup: "shared scan",
            link_gbps: b.counters.total_link_bytes() as f64 / (secs * 1e9),
            imc_gbps: b.counters.total_imc_bytes() as f64 / (secs * 1e9),
        });
    }
    rows
}

pub fn run(quick: bool) {
    println!("Figure 12: Link and Memory Controller Activity on AMD");
    println!("(scan: 8 GB column; lookup: 1B keys; steady-state window)\n");
    let rows = run_measurement(quick);
    let mut t = TextTable::new(&["setup", "link traffic", "memory controller traffic"]);
    for r in &rows {
        t.row(vec![
            r.setup.into(),
            format!("{:.1} GB/s", r.link_gbps),
            format!("{:.1} GB/s", r.imc_gbps),
        ]);
    }
    t.print();
    let get = |name: &str| rows.iter().find(|r| r.setup == name).unwrap();
    println!(
        "\nlink traffic shared/ERIS: lookups {:.1}x, scans {:.1}x (paper: ~4.7x and ~60x)",
        get("shared lookup").link_gbps / get("ERIS lookup").link_gbps.max(1e-9),
        get("shared scan").link_gbps / get("ERIS scan").link_gbps.max(1e-9),
    );
}
