//! The storm scenario — every subsystem under sustained skewed traffic.
//!
//! The paper's figures exercise the engine one mechanism at a time; the
//! storm composes them into the ROADMAP's north-star claim ("heavy traffic
//! from millions of users"): a population of Zipf-skewed clients drives the
//! simulated SGI UV 2000 at 512 AEUs through a six-phase
//! [`Storm`](eris_workloads::Storm) timeline — uniform warmup, a Zipf
//! hotspot, continuous hotspot drift, a write surge, a 1.6×-load flash
//! crowd, cooldown — while the MA-8 balancer adapts live, journaling is on,
//! and a fail point kills the "process" mid-drift.  Recovery rebuilds from
//! the checkpoint + journals and the storm resumes.
//!
//! Traffic is **open loop** under the virtual clock: the warmup phase runs
//! closed loop to calibrate the engine's capacity, then every later phase
//! credits arrival tokens at `load × 80%-of-capacity` per unit regardless
//! of the service rate, so the flash crowd genuinely oversubscribes the
//! engine instead of politely waiting for it.
//!
//! Proof obligations, asserted via [`StormReport::slo_failures`]:
//!
//! * **conservation** — per-object `enqueued == executed` and the trace
//!   ledger `stamped == traced + dropped` balance in *both* process
//!   lifetimes (the dying process's in-memory accounting and the recovered
//!   engine's);
//! * **zero loss** — every storm lookup hits: the checkpoint is the
//!   durable base for the whole key domain, so a single miss would mean
//!   recovery lost a key;
//! * **SLOs** — p50/p99 queue-wait/execution latencies (log2-histogram
//!   quantiles, host time, generous bounds) and a forwarding-hops p99
//!   bound from the latency-attribution tables.
//!
//! Results land in `BENCH_storm.json`; when `ERIS_STORM_BASELINE` names a
//! baseline file (CI commits `ci/BENCH_storm.baseline.json`), the
//! machine-portable metrics are gated exactly like the kernels benchmark.

use super::driver::load_strided_index;
use super::kernels::{extract, Metrics};
use crate::{fmt_rate, scale_for, TextTable};
use eris_core::prelude::*;
use eris_core::DataObjectId;
use eris_durability::{Durability, FailPoints, FP_JOURNAL_PRE_SYNC};
use eris_obs::{LatencySeries, LogHistogram, SloConfig, SloEngine, SloTotals};
use eris_workloads::{Storm, StormParams, StormSampler};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// One paper second, time-compressed (same model as Figure 13).
const UNIT_S: f64 = 1e-3;
const TIME_COMPRESSION: u64 = 1000;

/// Keys per lookup / pairs per upsert command.
const READ_BATCH: u64 = 64;
const WRITE_BATCH: u64 = 32;

/// Open-loop arrival rate as a fraction of calibrated capacity, so the
/// 1.6× flash crowd oversubscribes (1.28×) while cooldown (0.6×) drains.
const TARGET_UTILIZATION: f64 = 0.8;

/// The simulated client population (ISSUE: "millions of simulated users").
const CLIENTS: u64 = 2 << 20;

/// Metrics gated against `ci/BENCH_storm.baseline.json`.  All are
/// machine-portable: exact conservation booleans (rendered as 1.0),
/// the end-to-end hit rate, and a virtual-time throughput ratio —
/// absolute ns and mops are recorded but track the runner's hardware.
const GATED: &[&str] = &[
    "hit_rate",
    "conservation",
    "trace_conservation",
    "rebalanced",
    "recovered",
    "flash_over_warmup",
    "slo_burn_ok",
];

/// One storm unit in virtual nanoseconds (the SLO tracker's clock).
const UNIT_NS: u64 = (UNIT_S * 1e9) as u64;

/// Engine-wide SLO burn tracking across process lifetimes: one
/// pseudo-tenant (id 0), cumulative totals that survive the crash,
/// global unit time as the clock.  "Bad latency" is `count_over` of the
/// objective threshold on the sampled exec histograms; "errors" are
/// trace stamps dropped before execution.  Both numerators cover only
/// sampled commands while the denominator covers all executed ops, so
/// the burns are diluted lower bounds — a healthy storm must keep them
/// under 1× budget, and that is what `slo_failures` asserts.
struct SloTrack {
    slo: SloEngine,
    acc: SloTotals,
    worst_latency_burn: f64,
    worst_error_burn: f64,
    observations: u64,
    // Per-lifetime cumulative baselines (telemetry restarts at zero in
    // the recovered engine).
    last_ops: u64,
    last_bad: u64,
    last_dropped: u64,
}

impl SloTrack {
    fn new() -> Self {
        SloTrack {
            slo: SloEngine::new(SloConfig {
                // 8-unit fast window, 64-unit slow window: the fast one
                // reacts inside a single storm phase, the slow one spans
                // most of the 110-unit schedule.
                windows_ns: vec![8 * UNIT_NS, 64 * UNIT_NS],
                ..SloConfig::default()
            }),
            acc: SloTotals::default(),
            worst_latency_burn: 0.0,
            worst_error_burn: 0.0,
            observations: 0,
            last_ops: 0,
            last_bad: 0,
            last_dropped: 0,
        }
    }

    fn bad_and_dropped(&self, tel: &TelemetrySnapshot) -> (u64, u64) {
        let threshold = self.slo.config().latency_threshold_ns;
        let bad = tel
            .latency
            .iter()
            .map(|(_, s)| s.exec.count_over(threshold))
            .sum();
        (bad, tel.trace.dropped)
    }

    /// Re-baseline the per-lifetime counters (idempotent; called at the
    /// start of every `run_units` segment).
    fn begin_lifetime(&mut self, e: &Engine, tel: &TelemetrySnapshot) {
        let c = e.results().counts();
        self.last_ops = c.lookups + c.upserts;
        let (bad, dropped) = self.bad_and_dropped(tel);
        self.last_bad = bad;
        self.last_dropped = dropped;
    }

    /// One unit's observation tick: fold the lifetime deltas into the
    /// cross-lifetime totals, feed the tracker, and record the worst
    /// burn seen over any window.
    fn observe_unit(&mut self, e: &Engine, tel: &TelemetrySnapshot, unit: u64) {
        let c = e.results().counts();
        let ops = c.lookups + c.upserts;
        let (bad, dropped) = self.bad_and_dropped(tel);
        self.acc.requests += ops.saturating_sub(self.last_ops);
        self.acc.bad_latency += bad.saturating_sub(self.last_bad);
        self.acc.errors += dropped.saturating_sub(self.last_dropped);
        self.last_ops = ops;
        self.last_bad = bad;
        self.last_dropped = dropped;
        let at_ns = (unit + 1) * UNIT_NS;
        self.slo.observe(0, at_ns, self.acc);
        self.observations += 1;
        for b in self.slo.burn_rates(0, at_ns) {
            self.worst_latency_burn = self.worst_latency_burn.max(b.latency_burn);
            self.worst_error_burn = self.worst_error_burn.max(b.error_burn);
        }
    }
}

/// How a storm run is scaled.
pub struct StormConfig {
    /// Small machine (8 AEUs) and key domain instead of the 512-AEU UV 2000.
    pub quick: bool,
    /// Inject a mid-drift fail-point crash and recover.
    pub chaos: bool,
    /// Schedule compression: divides every phase length (1 = the paper's
    /// 110-unit shape, 5 = a 22-unit squall).
    pub time_div: u64,
    /// Durable directory override (default: a fresh temp dir, removed on
    /// success).
    pub dir: Option<PathBuf>,
}

impl StormConfig {
    /// The CI smoke shape: 8 AEUs, 22 units, chaos on.
    pub fn quick() -> Self {
        StormConfig {
            quick: true,
            chaos: true,
            time_div: 5,
            dir: None,
        }
    }

    /// The full storm: SGI UV 2000, 512 AEUs, the paper's 110-unit length.
    pub fn full() -> Self {
        StormConfig {
            quick: false,
            chaos: true,
            time_div: 1,
            dir: None,
        }
    }
}

/// Aggregated traffic of one storm phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStat {
    pub phase: usize,
    pub units: u64,
    pub ops: u64,
    /// Throughput in million ops per *virtual* second.
    pub mops: f64,
    /// Balancer cycles that ran during the phase.
    pub rebalance_cycles: u64,
}

/// p50/p99 decomposition of one op kind, merged across process lifetimes.
#[derive(Debug, Clone, Copy)]
pub struct OpLatency {
    pub op: &'static str,
    pub traced: u64,
    pub queue_p50_ns: u64,
    pub queue_p99_ns: u64,
    pub exec_p50_ns: u64,
    pub exec_p99_ns: u64,
    pub hops_p99: u64,
}

/// Everything a storm run proves and measures.
#[derive(Debug)]
pub struct StormReport {
    pub aeus: usize,
    pub units: u64,
    pub virtual_keys: u64,
    pub real_keys: u64,
    pub phases: Vec<PhaseStat>,
    pub latencies: Vec<OpLatency>,
    pub hit_rate: f64,
    /// Per-object enqueued == executed, in every process lifetime.
    pub conservation_ok: bool,
    /// stamped == traced + dropped, in every process lifetime.
    pub trace_ok: bool,
    pub rebalance_cycles: u64,
    pub keys_moved: u64,
    pub forwarded: u64,
    pub stamped: u64,
    pub traced: u64,
    pub dropped_stamps: u64,
    /// Chaos actually ran: the fail point fired and recovery restored the
    /// checkpoint base.
    pub recovered: bool,
    pub replayed_records: u64,
    /// Unit at which the injected crash was detected (chaos runs).
    pub crashed_at_unit: Option<u64>,
    /// SLO burn-tracker observation ticks (one per storm unit).
    pub slo_observations: u64,
    /// Worst per-window latency burn seen at any unit (fraction of the
    /// latency error budget consumed per unit of budgeted time).
    pub worst_latency_burn: f64,
    /// Worst per-window error burn (dropped-stamp fraction over budget).
    pub worst_error_burn: f64,
}

/// SLO bounds asserted over a [`StormReport`].  Latency stamps are host
/// time (the simulation's own compute), so the ns bounds are generous
/// catastrophe detectors; the structural checks (conservation, hit rate,
/// hops) are exact.
pub struct Slo {
    pub min_hit_rate: f64,
    pub max_queue_p99_ns: u64,
    pub max_exec_p99_ns: u64,
    pub max_hops_p99: u64,
}

impl Default for Slo {
    fn default() -> Self {
        Slo {
            min_hit_rate: 1.0,
            max_queue_p99_ns: 4_000_000_000,
            max_exec_p99_ns: 500_000_000,
            max_hops_p99: 8,
        }
    }
}

impl StormReport {
    /// Every SLO or proof obligation the run failed (empty = pass).
    pub fn slo_failures(&self, slo: &Slo) -> Vec<String> {
        let mut f = Vec::new();
        if !self.conservation_ok {
            f.push("conservation violated: enqueued != executed".into());
        }
        if !self.trace_ok {
            f.push("trace ledger violated: stamped != traced + dropped".into());
        }
        if self.hit_rate < slo.min_hit_rate {
            f.push(format!(
                "hit rate {:.6} below {:.6}: recovery lost keys",
                self.hit_rate, slo.min_hit_rate
            ));
        }
        if self.rebalance_cycles == 0 {
            f.push("balancer never ran a cycle".into());
        }
        for op in ["lookup", "upsert"] {
            if !self.latencies.iter().any(|l| l.op == op && l.traced > 0) {
                f.push(format!("no traced {op} latencies"));
            }
        }
        for l in &self.latencies {
            if l.traced == 0 {
                continue;
            }
            if l.queue_p50_ns > l.queue_p99_ns || l.exec_p50_ns > l.exec_p99_ns {
                f.push(format!("{}: p50 above p99", l.op));
            }
            if l.queue_p99_ns > slo.max_queue_p99_ns {
                f.push(format!(
                    "{}: queue-wait p99 {}ns over {}ns",
                    l.op, l.queue_p99_ns, slo.max_queue_p99_ns
                ));
            }
            if l.exec_p99_ns > slo.max_exec_p99_ns {
                f.push(format!(
                    "{}: exec p99 {}ns over {}ns",
                    l.op, l.exec_p99_ns, slo.max_exec_p99_ns
                ));
            }
            if l.hops_p99 > slo.max_hops_p99 {
                f.push(format!(
                    "{}: hops p99 {} over {}",
                    l.op, l.hops_p99, slo.max_hops_p99
                ));
            }
        }
        if self.crashed_at_unit.is_some() && !self.recovered {
            f.push("crash injected but recovery did not complete".into());
        }
        if self.slo_observations == 0 {
            f.push("SLO burn tracker never observed a unit".into());
        }
        if self.worst_latency_burn > 1.0 {
            f.push(format!(
                "engine latency budget burned at {:.2}x in some window",
                self.worst_latency_burn
            ));
        }
        if self.worst_error_burn > 1.0 {
            f.push(format!(
                "engine error budget (dropped stamps) burned at {:.2}x in some window",
                self.worst_error_burn
            ));
        }
        f
    }
}

/// Parameters the driver publishes to the per-AEU generators, plus the
/// open-loop token pool.  All accesses are `Relaxed`: the cooperative
/// runtime is single-threaded, and the counters are independent.
struct Control {
    generation: AtomicU64,
    phase: AtomicU64,
    hot_lo: AtomicU64,
    hot_hi: AtomicU64,
    theta_bits: AtomicU64,
    hot_frac_bits: AtomicU64,
    write_frac_bits: AtomicU64,
    /// Arrival tokens, denominated in single-key operations.
    tokens: AtomicU64,
    /// 0 = closed loop (capacity calibration), 1 = metered open loop.
    open_loop: AtomicU64,
}

impl Control {
    fn new(initial: &StormParams) -> Self {
        let c = Control {
            generation: AtomicU64::new(0),
            phase: AtomicU64::new(0),
            hot_lo: AtomicU64::new(0),
            hot_hi: AtomicU64::new(0),
            theta_bits: AtomicU64::new(0),
            hot_frac_bits: AtomicU64::new(0),
            write_frac_bits: AtomicU64::new(0),
            tokens: AtomicU64::new(0),
            open_loop: AtomicU64::new(0),
        };
        c.publish(initial);
        c
    }

    fn publish(&self, p: &StormParams) {
        self.phase.store(p.phase as u64, Relaxed);
        self.hot_lo.store(p.hot_lo, Relaxed);
        self.hot_hi.store(p.hot_hi, Relaxed);
        self.theta_bits.store(p.theta.to_bits(), Relaxed);
        self.hot_frac_bits.store(p.hot_fraction.to_bits(), Relaxed);
        self.write_frac_bits
            .store(p.write_fraction.to_bits(), Relaxed);
        self.generation.fetch_add(1, Relaxed);
    }

    fn params(&self) -> StormParams {
        StormParams {
            phase: self.phase.load(Relaxed) as usize,
            hot_lo: self.hot_lo.load(Relaxed),
            hot_hi: self.hot_hi.load(Relaxed),
            hot_fraction: f64::from_bits(self.hot_frac_bits.load(Relaxed)),
            theta: f64::from_bits(self.theta_bits.load(Relaxed)),
            write_fraction: f64::from_bits(self.write_frac_bits.load(Relaxed)),
            load: 1.0,
        }
    }

    /// Claim up to `want` arrival tokens; returns how many were granted.
    fn claim(&self, want: u64) -> u64 {
        let mut got = 0;
        let _ = self.tokens.fetch_update(Relaxed, Relaxed, |t| {
            got = t.min(want);
            if got == 0 {
                None
            } else {
                Some(t - got)
            }
        });
        got
    }
}

fn machine(quick: bool) -> eris_numa::Topology {
    if quick {
        // The CI squall: 2 nodes x 4 cores = 8 AEUs.
        eris_numa::machines::custom_machine("storm-smoke", 2, 4, 20.0, 100.0, 10.0, 60.0)
    } else {
        eris_numa::sgi_machine()
    }
}

fn engine_config(scale: u64) -> EngineConfig {
    EngineConfig {
        size_scale: scale,
        transfer_scale: Some((scale / TIME_COMPRESSION).max(1)),
        balancer: BalancerConfig {
            enabled: true,
            algorithm: BalanceAlgorithm::MovingAverage(8),
            threshold_cv: 0.12,
            period_s: 0.5 * UNIT_S,
            ..Default::default()
        },
        routing: RoutingConfig {
            // Denser than the default 1-in-64 so the short CI squall still
            // populates every per-op histogram.
            trace_sample_every: 16,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Attach a storm generator to every AEU: each epoch the AEU claims one
/// command's worth of arrival tokens and emits a lookup or upsert batch
/// drawn from the current storm parameters.  Upserts write `key → f(key)`
/// (idempotent), so journal replay after a crash is harmless.
fn attach_storm_gens(
    e: &mut Engine,
    idx: DataObjectId,
    ctl: &Arc<Control>,
    storm: &Storm,
    scale: u64,
) {
    let initial = storm.params_at(0.0);
    for a in e.aeu_ids() {
        let ctl = Arc::clone(ctl);
        let mut s = StormSampler::new(
            0x5707 + a.0 as u64 * 0x9E37_79B9,
            storm.domain(),
            CLIENTS,
            initial,
        );
        let mut my_gen = 0u64;
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                let g = ctl.generation.load(Relaxed);
                if g != my_gen {
                    my_gen = g;
                    s.retarget(ctl.params(), g);
                }
                let write = s.draw_write();
                let want = if write { WRITE_BATCH } else { READ_BATCH };
                let got = if ctl.open_loop.load(Relaxed) == 1 {
                    ctl.claim(want)
                } else {
                    want
                };
                if got == 0 {
                    return;
                }
                let client = s.draw_client();
                if write {
                    let pairs: Vec<(u64, u64)> = (0..got)
                        .map(|_| {
                            let k = (s.draw_key() / scale) * scale;
                            (k, k.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
                        })
                        .collect();
                    out.push(DataCommand {
                        object: idx,
                        ticket: client,
                        payload: Payload::Upsert { pairs },
                    });
                } else {
                    let keys: Vec<u64> = (0..got).map(|_| (s.draw_key() / scale) * scale).collect();
                    out.push(DataCommand {
                        object: idx,
                        ticket: client,
                        payload: Payload::Lookup { keys },
                    });
                }
            })),
        );
    }
}

fn detach_gens(e: &mut Engine) {
    for a in e.aeu_ids() {
        e.set_generator(a, None);
    }
}

/// One virtual time unit's traffic accounting.
struct UnitSample {
    phase: usize,
    ops: u64,
    cycles_delta: u64,
}

/// Drive `units` of storm traffic on one engine (one process lifetime).
/// Publishes parameters and credits arrival tokens per unit; calibrates
/// the open-loop base rate at the end of the warmup phase.  Returns the
/// unit at which an armed fail point was detected, if any.
#[allow(clippy::too_many_arguments)]
fn run_units(
    e: &mut Engine,
    storm: &Storm,
    ctl: &Control,
    units: std::ops::Range<u64>,
    warmup_until: u64,
    base_rate: &mut Option<f64>,
    fail: Option<&FailPoints>,
    samples: &mut Vec<UnitSample>,
    slo: &mut SloTrack,
) -> Option<u64> {
    let t0 = e.clock().now_secs();
    let base = e.results().counts();
    let mut last_ops = 0u64;
    let tel0 = e.telemetry();
    let mut last_cycles = tel0.balancer.cycles;
    slo.begin_lifetime(e, &tel0);
    let first = units.start;
    for unit in units {
        let p = storm.params_at(unit as f64);
        ctl.publish(&p);
        if unit >= warmup_until {
            if base_rate.is_none() {
                // Calibrate capacity from the closed-loop warmup phase.
                let warmup_ops: u64 = samples.iter().map(|s| s.ops).sum();
                let per_unit = warmup_ops as f64 / warmup_until.max(1) as f64;
                *base_rate = Some(per_unit * TARGET_UTILIZATION);
                ctl.open_loop.store(1, Relaxed);
            }
            let credit = base_rate.unwrap() * storm.load_between(unit as f64, (unit + 1) as f64);
            ctl.tokens.fetch_add(credit.ceil() as u64, Relaxed);
        }
        let end = t0 + (unit - first + 1) as f64 * UNIT_S;
        while e.clock().now_secs() < end {
            e.run_epoch();
        }
        let c = e.results().counts() - base;
        let total = c.lookups + c.upserts;
        let tel = e.telemetry();
        let cycles = tel.balancer.cycles;
        samples.push(UnitSample {
            phase: p.phase,
            ops: total - last_ops,
            cycles_delta: cycles - last_cycles,
        });
        slo.observe_unit(e, &tel, unit);
        last_ops = total;
        last_cycles = cycles;
        if fail.is_some_and(|f| f.crashed()) {
            return Some(unit);
        }
    }
    None
}

/// Merge per-(object, op) latency series into per-op-tag series,
/// accumulating across process lifetimes.
fn merge_latency(into: &mut Vec<(u8, LatencySeries)>, tel: &TelemetrySnapshot) {
    fn add_hist(a: &mut LogHistogram, b: &LogHistogram) {
        for (x, y) in a.buckets.iter_mut().zip(b.buckets.iter()) {
            *x += *y;
        }
        a.count += b.count;
        a.sum += b.sum;
    }
    for ((_, op), series) in &tel.latency {
        let slot = match into.iter_mut().find(|(o, _)| o == op) {
            Some((_, s)) => s,
            None => {
                into.push((*op, LatencySeries::default()));
                &mut into.last_mut().unwrap().1
            }
        };
        add_hist(&mut slot.queue_wait, &series.queue_wait);
        add_hist(&mut slot.exec, &series.exec);
        add_hist(&mut slot.hops, &series.hops);
    }
}

/// Run one storm end to end; with `cfg.chaos` the run spans two process
/// lifetimes separated by a fail-point crash and a recovery.
pub fn run_storm(cfg: &StormConfig) -> StormReport {
    let virtual_keys: u64 = if cfg.quick { 1 << 22 } else { 512 << 20 };
    let real_keys: u64 = if cfg.quick { 1 << 16 } else { 1 << 18 };
    let scale = scale_for(virtual_keys, real_keys);
    let storm = Storm::paper_storm(virtual_keys, cfg.time_div);
    let units = storm.duration_s();
    let warmup_until = storm.phases()[0].until_s;
    // Crash mid-drift (phase 2), once the balancer has chased the hotspot.
    let crash_unit = (storm.phases()[1].until_s + storm.phases()[2].until_s) / 2;

    let dir = cfg
        .dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("eris-storm-{}", std::process::id())));
    if cfg.chaos && dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }

    let mut e = Engine::new(machine(cfg.quick), engine_config(scale));
    let aeus = e.num_aeus();
    let idx = e.create_index("storm-keys", virtual_keys);
    load_strided_index(&mut e, idx, real_keys, scale);

    let ctl = Arc::new(Control::new(&storm.params_at(0.0)));
    let fail = Arc::new(FailPoints::new());
    let mut dura = if cfg.chaos {
        let d = Durability::open_with(&dir, aeus, fail.clone()).unwrap();
        d.attach(&mut e);
        Some(d)
    } else {
        None
    };
    if let Some(d) = dura.as_mut() {
        // The checkpoint is the durable base: the full loaded domain.
        d.checkpoint(&mut e).unwrap();
    }

    attach_storm_gens(&mut e, idx, &ctl, &storm, scale);

    let mut samples = Vec::new();
    let mut slo_track = SloTrack::new();
    let mut base_rate = None;
    let mut merged: Vec<(u8, LatencySeries)> = Vec::new();
    let mut crashed_at = None;
    let mut recovered = false;
    let mut replayed = 0u64;
    let (mut lookups, mut hits) = (0u64, 0u64);
    let (mut conservation_ok, mut trace_ok) = (true, true);
    let (mut cycles, mut keys_moved, mut forwarded) = (0u64, 0u64, 0u64);
    let (mut stamped, mut traced, mut dropped) = (0u64, 0u64, 0u64);

    let mut finish_segment = |e: &mut Engine, samples_done: bool| {
        // Drain the engine so conservation is exact, then account this
        // process lifetime.  A post-crash drain models the dying process
        // finishing its in-memory work with a dead journal sink — its
        // unsynced tail is what recovery is allowed to lose.
        let _ = samples_done;
        detach_gens(e);
        e.run_until_drained();
        let tel = e.telemetry();
        conservation_ok &= tel.conservation_holds();
        trace_ok &= tel.trace.balances();
        cycles += tel.balancer.cycles;
        keys_moved += tel.balancer.keys_moved;
        forwarded += tel.totals.forwarded;
        stamped += tel.trace.stamped;
        traced += tel.trace.traced;
        dropped += tel.trace.dropped;
        merge_latency(&mut merged, &tel);
        let c = e.results().counts();
        lookups += c.lookups;
        hits += c.lookup_hits;
    };

    if cfg.chaos {
        // Pre-crash storm: warmup, hotspot, and the first half of the
        // drift phase run journaled and crash-free.
        let pre = run_units(
            &mut e,
            &storm,
            &ctl,
            0..crash_unit,
            warmup_until,
            &mut base_rate,
            None,
            &mut samples,
            &mut slo_track,
        );
        assert!(pre.is_none());
        // Arm mid-drift: one of the next group commits kills the process.
        fail.arm(FP_JOURNAL_PRE_SYNC, 8);
        let crashed = run_units(
            &mut e,
            &storm,
            &ctl,
            crash_unit..units,
            warmup_until,
            &mut base_rate,
            Some(&fail),
            &mut samples,
            &mut slo_track,
        );
        let at = crashed
            .unwrap_or_else(|| panic!("armed {FP_JOURNAL_PRE_SYNC} never fired during the storm"));
        crashed_at = Some(at);
        finish_segment(&mut e, true);
        drop(e);
        drop(dura.take());

        // Phase B: recover into a fresh engine and resume the storm.
        let mut r = Engine::new(machine(cfg.quick), engine_config(scale));
        let report = Durability::recover(&mut r, &dir).unwrap();
        recovered = report.checkpoint == Some(0);
        replayed = report.replayed_records;
        let redura = Durability::open(&dir, aeus).unwrap();
        redura.attach(&mut r);
        attach_storm_gens(&mut r, idx, &ctl, &storm, scale);
        let crashed = run_units(
            &mut r,
            &storm,
            &ctl,
            at + 1..units,
            warmup_until,
            &mut base_rate,
            None,
            &mut samples,
            &mut slo_track,
        );
        assert!(crashed.is_none());
        finish_segment(&mut r, true);
        std::fs::remove_dir_all(&dir).ok();
    } else {
        let crashed = run_units(
            &mut e,
            &storm,
            &ctl,
            0..units,
            warmup_until,
            &mut base_rate,
            None,
            &mut samples,
            &mut slo_track,
        );
        assert!(crashed.is_none());
        finish_segment(&mut e, true);
    }

    // Fold unit samples into per-phase stats.
    let n_phases = storm.phases().len();
    let mut phases: Vec<PhaseStat> = (0..n_phases)
        .map(|phase| PhaseStat {
            phase,
            units: 0,
            ops: 0,
            mops: 0.0,
            rebalance_cycles: 0,
        })
        .collect();
    for s in &samples {
        let p = &mut phases[s.phase];
        p.units += 1;
        p.ops += s.ops;
        p.rebalance_cycles += s.cycles_delta;
    }
    for p in &mut phases {
        if p.units > 0 {
            p.mops = p.ops as f64 / (p.units as f64 * UNIT_S) / 1e6;
        }
    }

    let latencies = merged
        .iter()
        .map(|(op, s)| OpLatency {
            op: StorageOp::from_tag(*op).map_or("?", |o| o.name()),
            traced: s.queue_wait.count,
            queue_p50_ns: s.queue_wait.p50(),
            queue_p99_ns: s.queue_wait.p99(),
            exec_p50_ns: s.exec.p50(),
            exec_p99_ns: s.exec.p99(),
            hops_p99: s.hops.p99(),
        })
        .collect();

    StormReport {
        aeus,
        units,
        virtual_keys,
        real_keys,
        phases,
        latencies,
        hit_rate: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
        conservation_ok,
        trace_ok,
        rebalance_cycles: cycles,
        keys_moved,
        forwarded,
        stamped,
        traced,
        dropped_stamps: dropped,
        recovered: if cfg.chaos { recovered } else { false },
        replayed_records: replayed,
        crashed_at_unit: crashed_at,
        slo_observations: slo_track.observations,
        worst_latency_burn: slo_track.worst_latency_burn,
        worst_error_burn: slo_track.worst_error_burn,
    }
}

const PHASE_NAMES: [&str; 6] = [
    "warmup",
    "hotspot",
    "drift",
    "write surge",
    "flash crowd",
    "cooldown",
];

const PHASE_MOPS_KEYS: [&str; 6] = [
    "phase0_mops",
    "phase1_mops",
    "phase2_mops",
    "phase3_mops",
    "phase4_mops",
    "phase5_mops",
];

fn metrics(r: &StormReport, cfg: &StormConfig) -> Metrics {
    let b = |ok: bool| if ok { 1.0 } else { 0.0 };
    let mut m = Metrics(Vec::new());
    m.put("aeus", r.aeus as f64);
    m.put("units", r.units as f64);
    m.put("hit_rate", r.hit_rate);
    m.put("conservation", b(r.conservation_ok));
    m.put("trace_conservation", b(r.trace_ok));
    m.put("rebalanced", b(r.rebalance_cycles > 0));
    m.put("recovered", b(!cfg.chaos || r.recovered));
    let warm = r.phases.first().map_or(0.0, |p| p.mops);
    let flash = r.phases.get(4).map_or(0.0, |p| p.mops);
    m.put(
        "flash_over_warmup",
        if warm > 0.0 { flash / warm } else { 0.0 },
    );
    for (i, p) in r.phases.iter().enumerate().take(PHASE_MOPS_KEYS.len()) {
        m.put(PHASE_MOPS_KEYS[i], p.mops);
    }
    m.put("rebalance_cycles", r.rebalance_cycles as f64);
    m.put("keys_moved", r.keys_moved as f64);
    m.put("forwarded", r.forwarded as f64);
    m.put("stamped", r.stamped as f64);
    m.put("traced", r.traced as f64);
    m.put("dropped_stamps", r.dropped_stamps as f64);
    m.put("replayed_records", r.replayed_records as f64);
    m.put("slo_observations", r.slo_observations as f64);
    m.put("worst_latency_burn", r.worst_latency_burn);
    m.put("worst_error_burn", r.worst_error_burn);
    m.put(
        "slo_burn_ok",
        b(r.slo_observations > 0 && r.worst_latency_burn <= 1.0 && r.worst_error_burn <= 1.0),
    );
    for l in &r.latencies {
        match l.op {
            "lookup" => {
                m.put("lookup_queue_p50_ns", l.queue_p50_ns as f64);
                m.put("lookup_queue_p99_ns", l.queue_p99_ns as f64);
                m.put("lookup_exec_p50_ns", l.exec_p50_ns as f64);
                m.put("lookup_exec_p99_ns", l.exec_p99_ns as f64);
                m.put("lookup_hops_p99", l.hops_p99 as f64);
            }
            "upsert" => {
                m.put("upsert_queue_p50_ns", l.queue_p50_ns as f64);
                m.put("upsert_queue_p99_ns", l.queue_p99_ns as f64);
                m.put("upsert_exec_p50_ns", l.exec_p50_ns as f64);
                m.put("upsert_exec_p99_ns", l.exec_p99_ns as f64);
                m.put("upsert_hops_p99", l.hops_p99 as f64);
            }
            _ => {}
        }
    }
    m
}

fn to_json(m: &Metrics, quick: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    for (i, (k, v)) in m.0.iter().enumerate() {
        let comma = if i + 1 < m.0.len() { "," } else { "" };
        s.push_str(&format!("  \"{k}\": {v:.3}{comma}\n"));
    }
    s.push_str("}\n");
    s
}

pub fn run(quick: bool) {
    let cfg = if quick {
        StormConfig::quick()
    } else {
        StormConfig::full()
    };
    println!(
        "Storm scenario: {} AEUs, {}-unit schedule, MA-8 balancer, chaos {}",
        if quick { 8 } else { 512 },
        Storm::paper_storm(1 << 20, cfg.time_div).duration_s(),
        if cfg.chaos { "on" } else { "off" },
    );
    println!("(six phases: warmup, hotspot, drift, write surge, flash crowd, cooldown)\n");

    let r = run_storm(&cfg);

    let mut t = TextTable::new(&["phase", "units", "throughput", "rebalances"]);
    for p in &r.phases {
        t.row(vec![
            format!("{} ({})", p.phase, PHASE_NAMES.get(p.phase).unwrap_or(&"?")),
            format!("{}", p.units),
            fmt_rate(p.mops * 1e6),
            format!("{}", p.rebalance_cycles),
        ]);
    }
    t.print();

    println!("\nlatency attribution (host time, log2-bucket p50/p99):");
    let mut lt = TextTable::new(&[
        "op",
        "traced",
        "queue p50",
        "queue p99",
        "exec p50",
        "exec p99",
        "hops p99",
    ]);
    for l in &r.latencies {
        lt.row(vec![
            l.op.into(),
            format!("{}", l.traced),
            format!("{:.1}us", l.queue_p50_ns as f64 / 1e3),
            format!("{:.1}us", l.queue_p99_ns as f64 / 1e3),
            format!("{:.1}us", l.exec_p50_ns as f64 / 1e3),
            format!("{:.1}us", l.exec_p99_ns as f64 / 1e3),
            format!("{}", l.hops_p99),
        ]);
    }
    lt.print();

    println!(
        "\nconservation: objects {} trace {} | hit rate {:.6} | rebalance cycles {} (keys moved {}) | forwarded {}",
        if r.conservation_ok { "ok" } else { "VIOLATED" },
        if r.trace_ok { "ok" } else { "VIOLATED" },
        r.hit_rate,
        r.rebalance_cycles,
        r.keys_moved,
        r.forwarded,
    );
    if let Some(u) = r.crashed_at_unit {
        println!(
            "chaos: crashed at unit {u}, recovered from checkpoint (replayed {} records)",
            r.replayed_records
        );
    }
    println!(
        "SLO burn: {} observation ticks, worst latency burn {:.3}x, worst error burn {:.3}x",
        r.slo_observations, r.worst_latency_burn, r.worst_error_burn
    );

    let failures = r.slo_failures(&Slo::default());
    let m = metrics(&r, &cfg);
    let json = to_json(&m, quick);
    let out = "BENCH_storm.json";
    std::fs::write(out, &json).expect("write BENCH_storm.json");
    println!("\nwrote {out}");

    if let Ok(path) = std::env::var("ERIS_STORM_BASELINE") {
        let tolerance: f64 = std::env::var("ERIS_STORM_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.5);
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
        println!("baseline gate: {path} (tolerance {tolerance})");
        let mut gate_failed = false;
        for key in GATED {
            let Some(want) = extract(&baseline, key) else {
                println!("  {key}: not in baseline, skipped");
                continue;
            };
            let got = m.get(key);
            let floor = want * (1.0 - tolerance);
            let ok = got >= floor;
            println!(
                "  {key}: measured {got:.3} vs baseline {want:.3} (floor {floor:.3}) {}",
                if ok { "ok" } else { "REGRESSION" }
            );
            gate_failed |= !ok;
        }
        if gate_failed {
            eprintln!("storm benchmark regressed beyond tolerance");
            std::process::exit(1);
        }
    }

    if !failures.is_empty() {
        eprintln!("\nSLO FAILURES:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("all SLOs met");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_json_roundtrips_through_the_extractor() {
        let r = StormReport {
            aeus: 8,
            units: 22,
            virtual_keys: 1 << 22,
            real_keys: 1 << 16,
            phases: vec![PhaseStat {
                phase: 0,
                units: 2,
                ops: 1000,
                mops: 0.5,
                rebalance_cycles: 3,
            }],
            latencies: vec![
                OpLatency {
                    op: "lookup",
                    traced: 10,
                    queue_p50_ns: 100,
                    queue_p99_ns: 1000,
                    exec_p50_ns: 50,
                    exec_p99_ns: 500,
                    hops_p99: 1,
                },
                OpLatency {
                    op: "upsert",
                    traced: 4,
                    queue_p50_ns: 200,
                    queue_p99_ns: 2000,
                    exec_p50_ns: 80,
                    exec_p99_ns: 800,
                    hops_p99: 0,
                },
            ],
            hit_rate: 1.0,
            conservation_ok: true,
            trace_ok: true,
            rebalance_cycles: 3,
            keys_moved: 77,
            forwarded: 5,
            stamped: 12,
            traced: 12,
            dropped_stamps: 0,
            recovered: true,
            replayed_records: 40,
            crashed_at_unit: Some(8),
            slo_observations: 22,
            worst_latency_burn: 0.0,
            worst_error_burn: 0.2,
        };
        let m = metrics(&r, &StormConfig::quick());
        let json = to_json(&m, true);
        assert_eq!(extract(&json, "hit_rate"), Some(1.0));
        assert_eq!(extract(&json, "conservation"), Some(1.0));
        assert_eq!(extract(&json, "recovered"), Some(1.0));
        assert_eq!(extract(&json, "phase0_mops"), Some(0.5));
        assert_eq!(extract(&json, "lookup_queue_p99_ns"), Some(1000.0));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n}"), "no trailing comma: {json}");
        // Every gated key must be present in what we emit.
        for key in GATED {
            assert!(extract(&json, key).is_some(), "gated key {key} missing");
        }
        assert!(r.slo_failures(&Slo::default()).is_empty());
    }

    #[test]
    fn slo_failures_catch_violations() {
        let mut r = StormReport {
            aeus: 8,
            units: 22,
            virtual_keys: 1 << 22,
            real_keys: 1 << 16,
            phases: vec![],
            latencies: vec![OpLatency {
                op: "lookup",
                traced: 10,
                queue_p50_ns: 100,
                queue_p99_ns: u64::MAX,
                exec_p50_ns: 50,
                exec_p99_ns: 500,
                hops_p99: 99,
            }],
            hit_rate: 0.5,
            conservation_ok: false,
            trace_ok: false,
            rebalance_cycles: 0,
            keys_moved: 0,
            forwarded: 0,
            stamped: 0,
            traced: 0,
            dropped_stamps: 0,
            recovered: false,
            replayed_records: 0,
            crashed_at_unit: Some(1),
            slo_observations: 0,
            worst_latency_burn: 2.0,
            worst_error_burn: 3.0,
        };
        let f = r.slo_failures(&Slo::default());
        for needle in [
            "conservation",
            "trace ledger",
            "hit rate",
            "balancer",
            "queue-wait p99",
            "hops p99",
            "recovery did not complete",
            "no traced upsert",
            "burn tracker never observed",
            "latency budget burned",
            "error budget (dropped stamps) burned",
        ] {
            assert!(
                f.iter().any(|m| m.contains(needle)),
                "missing failure for {needle}: {f:?}"
            );
        }
        r.conservation_ok = true;
        assert!(r.slo_failures(&Slo::default()).len() < f.len());
    }

    /// A miniature storm (cooperative runtime, no chaos) exercising the
    /// full driver: calibration, open-loop metering, phase publication,
    /// drain, and the conservation proofs.
    #[test]
    fn mini_storm_conserves_and_hits() {
        let cfg = StormConfig {
            quick: true,
            chaos: false,
            time_div: 10,
            dir: None,
        };
        let r = run_storm(&cfg);
        assert_eq!(r.aeus, 8);
        assert!(r.conservation_ok, "enqueued == executed");
        assert!(r.trace_ok, "stamped == traced + dropped");
        assert!((r.hit_rate - 1.0).abs() < 1e-12, "hit rate {}", r.hit_rate);
        assert!(r.phases.iter().all(|p| p.units > 0));
        assert!(r.phases[0].ops > 0, "warmup produced traffic");
        // Open-loop phases produce traffic too (tokens were credited).
        assert!(r.phases[4].ops > 0, "flash crowd produced traffic");
        // The engine-wide SLO tracker ran and the healthy storm did not
        // burn its budgets.
        assert!(r.slo_observations > 0, "SLO tracker never ticked");
        assert!(
            r.worst_latency_burn <= 1.0 && r.worst_error_burn <= 1.0,
            "healthy mini-storm burned an SLO budget: latency {:.3}x errors {:.3}x",
            r.worst_latency_burn,
            r.worst_error_burn
        );
    }
}
