//! Shared experiment plumbing: generators and throughput measurement.

use eris_core::prelude::*;
use eris_core::DataObjectId;

/// A tiny xorshift so generators are cheap, seedable, and `Send`.
#[derive(Clone)]
pub struct XorShift(pub u64);

impl XorShift {
    pub fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Load an index with `real` keys spread over its domain at stride `scale`
/// (the scale-model loading scheme: key `i*scale` stands for the i-th of
/// `real*scale` dense keys).
pub fn load_strided_index(e: &mut Engine, object: DataObjectId, real: u64, scale: u64) {
    e.bulk_load_index(object, (0..real).map(move |i| (i * scale, i)));
}

/// Attach uniform lookup generators to every AEU: `batch` keys per epoch,
/// drawn from the loaded strided key set.
pub fn attach_lookup_gens(
    e: &mut Engine,
    object: DataObjectId,
    real: u64,
    scale: u64,
    batch: usize,
) {
    for a in e.aeu_ids() {
        let mut rng = XorShift::new(a.0 as u64 + 1);
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                let keys: Vec<u64> = (0..batch).map(|_| rng.below(real) * scale).collect();
                out.push(DataCommand {
                    object,
                    ticket: 0,
                    payload: Payload::Lookup { keys },
                });
            })),
        );
    }
}

/// Attach uniform upsert generators (updates of loaded keys).
pub fn attach_upsert_gens(
    e: &mut Engine,
    object: DataObjectId,
    real: u64,
    scale: u64,
    batch: usize,
) {
    for a in e.aeu_ids() {
        let mut rng = XorShift::new(a.0 as u64 + 101);
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                let pairs: Vec<(u64, u64)> = (0..batch)
                    .map(|_| (rng.below(real) * scale, rng.next()))
                    .collect();
                out.push(DataCommand {
                    object,
                    ticket: 0,
                    payload: Payload::Upsert { pairs },
                });
            })),
        );
    }
}

/// Attach a full-scan generator to AEU 0 (one multicast scan per epoch,
/// keeping the scan pipeline full).
pub fn attach_scan_gen(e: &mut Engine, object: DataObjectId) {
    e.set_generator(
        AeuId(0),
        Some(Box::new(move |epoch, out| {
            out.push(DataCommand {
                object,
                ticket: epoch,
                payload: Payload::Scan {
                    pred: Predicate::All,
                    agg: Aggregate::Sum,
                    snapshot: u64::MAX,
                },
            });
        })),
    );
}

/// Run a warmup then a measured window; returns the operation tallies and
/// the virtual seconds actually elapsed in the window.
pub fn measure(e: &mut Engine, warmup_s: f64, window_s: f64) -> (OpCounts, f64) {
    e.run_for_virtual_secs(warmup_s);
    // Drop warmup traffic from both the router counters and the telemetry
    // shards so the window reports steady-state rates only.
    e.reset_counters();
    let t0 = e.clock().now_secs();
    let ops = e.run_for_virtual_secs(window_s);
    let elapsed = e.clock().now_secs() - t0;
    (ops, elapsed)
}
