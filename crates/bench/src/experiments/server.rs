//! The serving-layer scenario: storm-style open-loop traffic against the
//! network front end, proving shedding engages *before* the SLO breaks.
//!
//! Two runs on identical engines:
//!
//! 1. **Calibration** (closed loop): the provisioned fleet sends as fast
//!    as its credit windows allow with the overload watermark disabled —
//!    the accepted rate per pump is the serving capacity, and the
//!    steady-state in-flight backlog at that rate (sub-commands that
//!    lag one epoch in the routing double buffers) sets the overload
//!    watermark with [`WATERMARK_HEADROOM`] on top.
//! 2. **Storm** (open loop): three times as many connections arrive and
//!    tokens are credited at [`OVERSUBSCRIPTION`] × capacity regardless
//!    of the service rate, with the derived watermark armed.  The server
//!    must shed (typed `Shed` responses with retry hints) rather than
//!    queue without bound, and the commands it *does* accept must keep
//!    their network-queue wait inside the SLO — overload degrades
//!    politely instead of collapsing.
//!
//! Proof obligations, gated against `ci/BENCH_server.baseline.json` via
//! `ERIS_SERVER_BASELINE` (like the kernels/storm gates):
//!
//! * shedding engaged (`shed > 0`) under > 1× load;
//! * accepted p99 network-queue wait within the SLO while shedding;
//! * zero silent drops (`offered == accepted + shed + quota_denied +
//!   rejected`, client and server agree);
//! * the combined serving + engine conservation ledger holds after a
//!   mid-traffic graceful shutdown.
//!
//! Results land in `BENCH_server.json`; the per-tenant telemetry is also
//! exported to `server_telemetry.jsonl` and `server_metrics.prom` (the CI
//! artifact, like obs-smoke).

use super::kernels::{extract, Metrics};
use crate::{fmt_rate, TextTable};
use eris_core::prelude::*;
use eris_server::{
    loopback_pair, AdmissionConfig, Client, ClockSource, EngineServer, PipeTransport, ServerConfig,
};

/// Open-loop arrival rate over calibrated capacity (> 1 = overload).
const OVERSUBSCRIPTION: f64 = 1.5;

/// Storm fleet size over the provisioned (calibration) fleet — the extra
/// connections are what let the open loop actually exceed capacity, since
/// per-connection credit windows cap each client at its fair share.
const STORM_FLEET_FACTOR: u32 = 3;

/// The shed watermark sits this far above the calibrated steady-state
/// backlog, so 1× load never sheds and sustained oversubscription does.
const WATERMARK_HEADROOM: f64 = 1.25;

/// Accepted commands must clear the server inside this many epochs of
/// network-queue wait at p99 (wait is virtual time; epochs are the batch
/// cadence, so the bound is machine-portable).
const SLO_P99_EPOCHS: f64 = 64.0;

/// Metrics gated against the committed baseline: exact booleans plus the
/// shed ratio floor.  Wait percentiles are recorded but not gated (they
/// track epoch length, which shifts with engine tuning).
const GATED: &[&str] = &[
    "shed_engaged",
    "slo_met",
    "zero_silent_drops",
    "conservation",
    "quiesce_clean",
    "trace_ledger_balanced",
    "exemplar_ok",
    "phases_ok",
    "slo_burn_exported",
];

/// Serving-side trace sampling for the storm run: low enough that tail
/// buckets retain exemplars, high enough not to distort the measured
/// path.
const TRACE_SAMPLE_EVERY: u32 = 8;

struct BenchShape {
    aeus_nodes: u16,
    aeus_cores: u16,
    conns: u32,
    tenants: u32,
    warmup_pumps: u32,
    storm_pumps: u32,
    keys: u64,
}

fn shape(quick: bool) -> BenchShape {
    if quick {
        BenchShape {
            aeus_nodes: 2,
            aeus_cores: 4,
            conns: 8,
            tenants: 2,
            warmup_pumps: 60,
            storm_pumps: 150,
            keys: 1 << 16,
        }
    } else {
        BenchShape {
            aeus_nodes: 4,
            aeus_cores: 8,
            conns: 32,
            tenants: 4,
            warmup_pumps: 200,
            storm_pumps: 600,
            keys: 1 << 18,
        }
    }
}

const DOMAIN: u64 = 1 << 20;

fn build_engine(s: &BenchShape) -> (Engine, DataObjectId) {
    let mut e = Engine::new(
        eris_numa::machines::custom_machine(
            "server-bench",
            s.aeus_nodes,
            s.aeus_cores,
            20.0,
            100.0,
            10.0,
            60.0,
        ),
        EngineConfig {
            balancer: BalancerConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let idx = e.create_index("kv", DOMAIN);
    let stride = DOMAIN / s.keys;
    e.bulk_load_index(idx, (0..s.keys).map(|k| (k * stride, k)));
    (e, idx)
}

/// `watermark = None` disables overload shedding (calibration); `Some(w)`
/// arms the in-flight backlog watermark (storm).  Quotas stay effectively
/// unlimited in both — this scenario isolates the overload path.
fn admission(watermark: Option<u64>) -> AdmissionConfig {
    AdmissionConfig {
        credit_limit: 16,
        quota_capacity_ops: 1 << 24,
        quota_refill_ops_per_sec: 1 << 24,
        shed_occupancy: f64::INFINITY,
        shed_in_flight: watermark.unwrap_or(u64::MAX),
        shed_retry_after_ms: 10,
    }
}

fn mk_command(idx: DataObjectId, seed: u64) -> DataCommand {
    // 7:1 lookup:upsert mix, 8 keys per command, xorshift-scattered.
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut draw = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x % DOMAIN
    };
    if seed % 8 == 7 {
        let pairs = (0..8).map(|_| (draw(), seed)).collect();
        DataCommand {
            object: idx,
            ticket: seed,
            payload: Payload::Upsert { pairs },
        }
    } else {
        let keys = (0..8).map(|_| draw()).collect();
        DataCommand {
            object: idx,
            ticket: seed,
            payload: Payload::Lookup { keys },
        }
    }
}

struct Fleet {
    clients: Vec<Client<PipeTransport>>,
    next_seed: u64,
}

impl Fleet {
    fn new(server: &mut EngineServer, conns: u32, tenants: u32) -> Fleet {
        let clients = (0..conns)
            .map(|i| {
                let (server_side, client_side) = loopback_pair();
                server.attach(Box::new(server_side));
                Client::connect(client_side, i % tenants)
            })
            .collect();
        Fleet {
            clients,
            next_seed: 1,
        }
    }

    /// One client-side cycle: poll responses, then try to send up to
    /// `budget` commands spread round-robin.  Returns how many went out.
    fn drive(&mut self, idx: DataObjectId, budget: u64) -> u64 {
        let mut sent = 0;
        for c in self.clients.iter_mut() {
            c.poll();
        }
        let n = self.clients.len();
        let mut stalled = vec![false; n];
        'outer: while sent < budget {
            let mut all_stalled = true;
            for (i, c) in self.clients.iter_mut().enumerate() {
                if stalled[i] {
                    continue;
                }
                if sent >= budget {
                    break 'outer;
                }
                let cmd = mk_command(idx, self.next_seed);
                if c.try_send(&cmd) {
                    self.next_seed += 1;
                    sent += 1;
                    all_stalled = false;
                } else {
                    stalled[i] = true;
                }
            }
            if all_stalled {
                break;
            }
        }
        for c in self.clients.iter_mut() {
            c.poll();
        }
        sent
    }

    fn poll_all(&mut self) {
        for c in self.clients.iter_mut() {
            c.poll();
        }
    }

    fn totals(&self) -> (u64, u64, u64, u64, u64) {
        let mut t = (0, 0, 0, 0, 0);
        for c in &self.clients {
            let s = c.stats();
            t.0 += s.sent;
            t.1 += s.accepted;
            t.2 += s.shed;
            t.3 += s.quota_denied;
            t.4 += s.rejected;
        }
        t
    }
}

pub struct ServerBenchReport {
    pub aeus: usize,
    pub conns: u32,
    /// Accepted commands per pump under closed-loop calibration.
    pub capacity_per_pump: f64,
    /// Steady-state in-flight backlog at capacity (watermark basis).
    pub calibrated_backlog: u64,
    /// Armed `shed_in_flight` watermark for the storm run.
    pub shed_watermark: u64,
    pub offered: u64,
    pub accepted: u64,
    pub shed: u64,
    pub quota_denied: u64,
    pub rejected: u64,
    pub accepted_p50_wait_ns: u64,
    pub accepted_p99_wait_ns: u64,
    /// Mean epoch length during the storm, the SLO's unit.
    pub mean_epoch_ns: f64,
    pub slo_met: bool,
    pub zero_silent_drops: bool,
    pub conservation_ok: bool,
    pub quiesce_clean: bool,
    /// `stamped == traced + dropped` on the engine's trace ledger after
    /// drain, with stamps actually issued — the full-path tracing proof
    /// under forced shedding.
    pub trace_stamped: u64,
    pub trace_traced: u64,
    pub trace_dropped: u64,
    pub trace_ledger_balanced: bool,
    /// At least one histogram-bucket exemplar resolved to a full-path
    /// serving trace with a nonzero admission span.
    pub exemplar_ok: bool,
    /// Every active AEU's epoch-phase fractions sum to 1 (±1%).
    pub phases_ok: bool,
    /// Worst per-tenant error burn rate over the shortest window at the
    /// end of the storm (> 1 means the error budget is burning faster
    /// than the objective allows — expected while shedding).
    pub worst_error_burn: f64,
    /// Burn-rate gauges made it into the Prometheus export.
    pub slo_burn_exported: bool,
    pub prometheus: String,
    pub jsonl: String,
}

pub fn run_bench(quick: bool) -> ServerBenchReport {
    let s = shape(quick);

    // Phase 1: closed-loop calibration, watermark off.
    let (engine, idx) = build_engine(&s);
    let aeus = engine.num_aeus();
    let mut cal = EngineServer::new(
        engine,
        ServerConfig {
            tenants: s.tenants,
            admission: admission(None),
            clock: ClockSource::Virtual,
            ..Default::default()
        },
    );
    let mut fleet = Fleet::new(&mut cal, s.conns, s.tenants);
    // Let Hellos settle before measuring.
    fleet.poll_all();
    cal.pump();
    fleet.poll_all();
    let accepted_before = cal.snapshot().accepted_total();
    // The in-flight backlog at a pump boundary is where the storm's
    // admission control will look; its steady-state level at capacity is
    // the calibration's second output.
    let mut calibrated_backlog = 0u64;
    for p in 0..s.warmup_pumps {
        fleet.drive(idx, u64::MAX);
        if p >= s.warmup_pumps / 2 {
            calibrated_backlog = calibrated_backlog.max(cal.engine().in_flight_commands());
        }
        cal.pump();
    }
    cal.pump_until_quiet(64);
    fleet.poll_all();
    let calibrated = cal.snapshot().accepted_total() - accepted_before;
    let capacity_per_pump = calibrated as f64 / s.warmup_pumps as f64;
    drop(cal);

    // Phase 2: open-loop storm at OVERSUBSCRIPTION × capacity from an
    // over-provisioned fleet, with the derived watermark armed.
    let shed_watermark = ((calibrated_backlog as f64 * WATERMARK_HEADROOM).ceil() as u64).max(8);
    let (engine, idx) = build_engine(&s);
    let mut server = EngineServer::new(
        engine,
        ServerConfig {
            tenants: s.tenants,
            admission: admission(Some(shed_watermark)),
            clock: ClockSource::Virtual,
            trace_sample_every: TRACE_SAMPLE_EVERY,
            ..Default::default()
        },
    );
    let mut fleet = Fleet::new(&mut server, s.conns * STORM_FLEET_FACTOR, s.tenants);
    fleet.poll_all();
    server.pump();
    fleet.poll_all();

    let rate = (capacity_per_pump * OVERSUBSCRIPTION).max(1.0);
    let mut carry = 0.0f64;
    let mut epochs_ns = 0.0f64;
    let mut epochs = 0u64;
    for _ in 0..s.storm_pumps {
        // Open loop: the arrival process does not care how the server is
        // doing — tokens accrue at the fixed oversubscribed rate and
        // undelivered budget carries over (bounded by client credit).
        carry += rate;
        let budget = carry.floor() as u64;
        let sent = fleet.drive(idx, budget);
        carry -= sent as f64;
        // Bound the backlog the arrival process itself can accumulate:
        // clients model impatient users, not an infinite queue.
        carry = carry.min(rate * 4.0);
        let r = server.pump();
        epochs_ns += r.epoch_duration_ns;
        epochs += 1;
    }
    server.pump_until_quiet(128);
    fleet.poll_all();

    let (sent, c_accepted, c_shed, c_quota, c_rejected) = fleet.totals();
    let snap = server.snapshot();
    let mean_epoch_ns = epochs_ns / epochs.max(1) as f64;

    // Merge per-tenant wait histograms for whole-server percentiles.
    let mut wait = eris_obs::LogHistogram::default();
    for h in &snap.net_wait {
        for (a, b) in wait.buckets.iter_mut().zip(h.buckets.iter()) {
            *a += *b;
        }
        wait.count += h.count;
        wait.sum += h.sum;
    }
    let p50 = wait.p50();
    let p99 = wait.p99();
    let slo_ns = mean_epoch_ns * SLO_P99_EPOCHS;
    let slo_met = (p99 as f64) <= slo_ns;

    let zero_silent_drops = snap.counters.commands_received == sent
        && sent == c_accepted + c_shed + c_quota + c_rejected
        && snap.accepted_total() == c_accepted
        && snap.shed_total() == c_shed;

    // Per-tenant burn rates at the end of the storm (the tracker was fed
    // once per pump; while shedding, the error budget must be burning).
    let slo_now = server.now_ns();
    let worst_error_burn = server
        .slo()
        .tenants()
        .iter()
        .flat_map(|t| server.slo().burn_rates(*t, slo_now))
        .map(|b| b.error_burn)
        .fold(0.0f64, f64::max);

    let ledger = server.ledger();
    let outcome = server.shutdown();

    // The engine-side observability proofs: trace ledger conservation,
    // tail-bucket exemplars with full-path spans, per-AEU phase
    // attribution.  All read after drain so nothing is in flight.
    let tel = outcome.engine.telemetry();
    let trace_ledger_balanced =
        tel.trace.stamped > 0 && tel.trace.stamped == tel.trace.traced + tel.trace.dropped;
    let exemplar_ok = tel
        .exemplars
        .iter()
        .flatten()
        .any(|e| e.tenant != eris_obs::TENANT_NONE && e.admit_ns > 0 && e.trace_id != 0);
    let phases_ok = tel.phases.iter().any(|p| p.total_ns() > 0) && tel.phases_sum_to_one(0.01);

    // One artifact: serving-layer metrics (admission, SLO burn) plus the
    // engine's (exemplars, phases, links), so the export self-contains
    // the full request path.
    let mut all_metrics = outcome.snapshot.to_metrics();
    all_metrics.extend(tel.to_metrics());
    let prometheus = eris_obs::render_prometheus(&all_metrics);
    let jsonl = eris_obs::render_jsonl(&all_metrics, eris_obs::now_ns());
    let slo_burn_exported = prometheus.contains("eris_slo_burn_rate");

    ServerBenchReport {
        aeus,
        conns: s.conns * STORM_FLEET_FACTOR,
        capacity_per_pump,
        calibrated_backlog,
        shed_watermark,
        offered: sent,
        accepted: c_accepted,
        shed: c_shed,
        quota_denied: c_quota,
        rejected: c_rejected,
        accepted_p50_wait_ns: p50,
        accepted_p99_wait_ns: p99,
        mean_epoch_ns,
        slo_met,
        zero_silent_drops,
        conservation_ok: ledger.holds() && outcome.ledger.holds(),
        quiesce_clean: outcome.quiesce.clean(),
        trace_stamped: tel.trace.stamped,
        trace_traced: tel.trace.traced,
        trace_dropped: tel.trace.dropped,
        trace_ledger_balanced,
        exemplar_ok,
        phases_ok,
        worst_error_burn,
        slo_burn_exported,
        prometheus,
        jsonl,
    }
}

fn metrics(r: &ServerBenchReport) -> Metrics {
    let b = |ok: bool| if ok { 1.0 } else { 0.0 };
    let mut m = Metrics(Vec::new());
    m.put("aeus", r.aeus as f64);
    m.put("conns", r.conns as f64);
    m.put("capacity_per_pump", r.capacity_per_pump);
    m.put("calibrated_backlog", r.calibrated_backlog as f64);
    m.put("shed_watermark", r.shed_watermark as f64);
    m.put("offered", r.offered as f64);
    m.put("accepted", r.accepted as f64);
    m.put("shed", r.shed as f64);
    m.put("quota_denied", r.quota_denied as f64);
    m.put("rejected", r.rejected as f64);
    m.put(
        "shed_ratio",
        if r.offered > 0 {
            r.shed as f64 / r.offered as f64
        } else {
            0.0
        },
    );
    m.put("shed_engaged", b(r.shed > 0));
    m.put("accepted_p50_wait_ns", r.accepted_p50_wait_ns as f64);
    m.put("accepted_p99_wait_ns", r.accepted_p99_wait_ns as f64);
    m.put("mean_epoch_ns", r.mean_epoch_ns);
    m.put("slo_met", b(r.slo_met));
    m.put("zero_silent_drops", b(r.zero_silent_drops));
    m.put("conservation", b(r.conservation_ok));
    m.put("quiesce_clean", b(r.quiesce_clean));
    m.put("trace_stamped", r.trace_stamped as f64);
    m.put("trace_traced", r.trace_traced as f64);
    m.put("trace_dropped", r.trace_dropped as f64);
    m.put("trace_ledger_balanced", b(r.trace_ledger_balanced));
    m.put("exemplar_ok", b(r.exemplar_ok));
    m.put("phases_ok", b(r.phases_ok));
    m.put("worst_error_burn", r.worst_error_burn);
    m.put("slo_burn_exported", b(r.slo_burn_exported));
    m
}

fn to_json(m: &Metrics, quick: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    for (i, (k, v)) in m.0.iter().enumerate() {
        let comma = if i + 1 < m.0.len() { "," } else { "" };
        s.push_str(&format!("  \"{k}\": {v:.3}{comma}\n"));
    }
    s.push_str("}\n");
    s
}

pub fn run(quick: bool) {
    let s = shape(quick);
    println!(
        "Serving-layer overload scenario: {} connections, {} tenants, {}x open-loop load",
        s.conns, s.tenants, OVERSUBSCRIPTION
    );
    let r = run_bench(quick);

    let mut t = TextTable::new(&["metric", "value"]);
    t.row(vec!["AEUs".into(), format!("{}", r.aeus)]);
    t.row(vec![
        "calibrated capacity".into(),
        format!("{:.1} cmds/pump", r.capacity_per_pump),
    ]);
    t.row(vec![
        "backlog watermark".into(),
        format!(
            "{} in-flight (steady state {})",
            r.shed_watermark, r.calibrated_backlog
        ),
    ]);
    t.row(vec!["offered".into(), format!("{}", r.offered)]);
    t.row(vec![
        "accepted".into(),
        format!(
            "{} ({:.1}%)",
            r.accepted,
            100.0 * r.accepted as f64 / r.offered.max(1) as f64
        ),
    ]);
    t.row(vec![
        "shed (typed, retry hints)".into(),
        format!(
            "{} ({:.1}%)",
            r.shed,
            100.0 * r.shed as f64 / r.offered.max(1) as f64
        ),
    ]);
    t.row(vec!["quota denied".into(), format!("{}", r.quota_denied)]);
    t.row(vec!["rejected".into(), format!("{}", r.rejected)]);
    t.row(vec![
        "accepted net-queue wait p50/p99".into(),
        format!(
            "{:.1}us / {:.1}us (virtual)",
            r.accepted_p50_wait_ns as f64 / 1e3,
            r.accepted_p99_wait_ns as f64 / 1e3
        ),
    ]);
    t.row(vec![
        "SLO (p99 within N epochs)".into(),
        format!(
            "{:.1}us budget -> {}",
            r.mean_epoch_ns * SLO_P99_EPOCHS / 1e3,
            if r.slo_met { "met" } else { "VIOLATED" }
        ),
    ]);
    t.print();
    println!(
        "\nledger: conservation {} | zero silent drops {} | quiesce {}",
        if r.conservation_ok { "ok" } else { "VIOLATED" },
        if r.zero_silent_drops {
            "ok"
        } else {
            "VIOLATED"
        },
        if r.quiesce_clean { "clean" } else { "DIRTY" },
    );
    println!(
        "tracing: {} stamped = {} traced + {} dropped ({}) | exemplar {} | phases {}",
        r.trace_stamped,
        r.trace_traced,
        r.trace_dropped,
        if r.trace_ledger_balanced {
            "balanced"
        } else {
            "UNBALANCED"
        },
        if r.exemplar_ok { "ok" } else { "MISSING" },
        if r.phases_ok { "ok" } else { "INCONSISTENT" },
    );
    println!(
        "SLO burn: worst tenant error burn {:.2}x budget (shedding is expected to burn)",
        r.worst_error_burn
    );
    println!(
        "throughput while shedding: {}",
        fmt_rate(r.accepted as f64 / (r.mean_epoch_ns * 1e-9 * 150.0).max(1e-9))
    );

    let m = metrics(&r);
    let json = to_json(&m, quick);
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    std::fs::write("server_telemetry.jsonl", &r.jsonl).expect("write server_telemetry.jsonl");
    std::fs::write("server_metrics.prom", &r.prometheus).expect("write server_metrics.prom");
    println!("\nwrote BENCH_server.json, server_telemetry.jsonl, server_metrics.prom");

    if let Ok(path) = std::env::var("ERIS_SERVER_BASELINE") {
        let tolerance: f64 = std::env::var("ERIS_SERVER_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.5);
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
        println!("baseline gate: {path} (tolerance {tolerance})");
        let mut gate_failed = false;
        for key in GATED {
            let Some(want) = extract(&baseline, key) else {
                println!("  {key}: not in baseline, skipped");
                continue;
            };
            let got = m.get(key);
            let floor = want * (1.0 - tolerance);
            let ok = got >= floor;
            println!(
                "  {key}: measured {got:.3} vs baseline {want:.3} (floor {floor:.3}) {}",
                if ok { "ok" } else { "REGRESSION" }
            );
            gate_failed |= !ok;
        }
        if gate_failed {
            eprintln!("server benchmark regressed beyond tolerance");
            std::process::exit(1);
        }
    }

    let mut failures = Vec::new();
    if r.shed == 0 {
        failures.push("no shedding under oversubscribed open-loop load".to_string());
    }
    if !r.slo_met {
        failures.push(format!(
            "accepted p99 wait {}ns over the {:.0}ns SLO while shedding",
            r.accepted_p99_wait_ns,
            r.mean_epoch_ns * SLO_P99_EPOCHS
        ));
    }
    if !r.zero_silent_drops {
        failures.push("silent drops: offered != settled responses".to_string());
    }
    if !r.conservation_ok {
        failures.push("serving conservation ledger violated".to_string());
    }
    if !r.quiesce_clean {
        failures.push("engine did not quiesce cleanly".to_string());
    }
    if !r.prometheus.contains("eris_server_shed_total") {
        failures.push("shed counters missing from Prometheus export".to_string());
    }
    if !r.trace_ledger_balanced {
        failures.push(format!(
            "trace ledger unbalanced under shedding: {} stamped != {} traced + {} dropped",
            r.trace_stamped, r.trace_traced, r.trace_dropped
        ));
    }
    if !r.exemplar_ok {
        failures.push("no tail-bucket exemplar with a full-path serving trace".to_string());
    }
    if !r.phases_ok {
        failures.push("per-AEU epoch-phase fractions do not sum to 1 (±1%)".to_string());
    }
    if !r.slo_burn_exported {
        failures.push("SLO burn-rate gauges missing from Prometheus export".to_string());
    }
    if !failures.is_empty() {
        eprintln!("\nSERVING FAILURES:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("shedding engaged before SLO violation; all serving proofs hold");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick scenario end to end: overload sheds, SLO holds, ledgers
    /// balance.  This is the bench-crate arm of the e2e suite.
    #[test]
    fn quick_bench_sheds_before_slo_violation() {
        let r = run_bench(true);
        assert!(r.capacity_per_pump > 0.0);
        assert!(r.shed > 0, "oversubscribed load must shed");
        assert!(r.slo_met, "p99 {} over budget", r.accepted_p99_wait_ns);
        assert!(r.zero_silent_drops);
        assert!(r.conservation_ok);
        assert!(r.quiesce_clean);
        assert!(r.prometheus.contains("eris_server_shed_total"));
        assert!(r.jsonl.contains("eris_server_accepted_total"));
        // The observability proofs ride the same storm.
        assert!(
            r.trace_ledger_balanced,
            "trace ledger: {} != {} + {}",
            r.trace_stamped, r.trace_traced, r.trace_dropped
        );
        assert!(
            r.trace_dropped > 0,
            "forced shedding must drop sampled stamps"
        );
        assert!(r.exemplar_ok, "full-path exemplar with admission span");
        assert!(r.phases_ok, "phase fractions sum to 1");
        assert!(r.slo_burn_exported);
        assert!(
            r.worst_error_burn > 1.0,
            "shedding under 1.5x oversubscription must burn the error budget: {}",
            r.worst_error_burn
        );
        assert!(r.prometheus.contains("eris_latency_exemplar_ns"));
        assert!(r.prometheus.contains("eris_aeu_phase_ns_total"));
    }

    #[test]
    fn bench_json_roundtrips_through_the_extractor() {
        let r = ServerBenchReport {
            aeus: 8,
            conns: 8,
            capacity_per_pump: 10.0,
            calibrated_backlog: 20,
            shed_watermark: 25,
            offered: 100,
            accepted: 60,
            shed: 40,
            quota_denied: 0,
            rejected: 0,
            accepted_p50_wait_ns: 10,
            accepted_p99_wait_ns: 100,
            mean_epoch_ns: 1000.0,
            slo_met: true,
            zero_silent_drops: true,
            conservation_ok: true,
            quiesce_clean: true,
            trace_stamped: 12,
            trace_traced: 7,
            trace_dropped: 5,
            trace_ledger_balanced: true,
            exemplar_ok: true,
            phases_ok: true,
            worst_error_burn: 3.5,
            slo_burn_exported: true,
            prometheus: String::new(),
            jsonl: String::new(),
        };
        let json = to_json(&metrics(&r), true);
        assert_eq!(extract(&json, "shed_engaged"), Some(1.0));
        assert_eq!(extract(&json, "shed"), Some(40.0));
        assert_eq!(extract(&json, "slo_met"), Some(1.0));
        assert!(!json.contains(",\n}"), "no trailing comma: {json}");
        for key in GATED {
            assert!(extract(&json, key).is_some(), "gated key {key} missing");
        }
    }
}
