//! Figure 13 — load balancer experiments on the AMD machine.
//!
//! Section 4.3: lookups over 512 M keys; after 10 time units the workload
//! collapses to half the key range (128M..384M), then shifts left by 8 M
//! keys four more times, 20 units apart.  Four configurations: no load
//! balancer, One-Shot, MA-1, and MA-8.  Expected shapes: One-Shot dips
//! deepest but recovers fastest after each change; MA-1 dips least but
//! recovers slowest; MA-8 is the best compromise; without balancing the
//! throughput stays degraded.
//!
//! Virtual time is scaled: one paper second = one millisecond here, and the
//! data volume is scaled by the same factor (256K keys instead of 512M), so
//! transfer times and phase lengths keep the paper's *ratio* — a One-Shot
//! repartitioning costs a dip of roughly one time unit, exactly like the
//! paper's seconds-long dip against 20-second phases.

use super::driver::{load_strided_index, XorShift};
use crate::{fmt_rate, scale_for, TextTable};
use eris_core::prelude::*;
use eris_core::DataObjectId;
use eris_workloads::DynamicWorkload;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One throughput sample.
pub struct Sample {
    /// Time in scaled units (1 unit = 1 paper second = 1 virtual ms).
    pub t_units: f64,
    pub mops: f64,
}

/// Balancer configurations compared in the figure.
pub fn configs() -> Vec<(&'static str, Option<BalanceAlgorithm>)> {
    vec![
        ("no balancing", None),
        ("One-Shot", Some(BalanceAlgorithm::OneShot)),
        ("MA-1", Some(BalanceAlgorithm::MovingAverage(1))),
        ("MA-8", Some(BalanceAlgorithm::MovingAverage(8))),
    ]
}

/// Run one configuration over the Section 4.3 timeline; returns samples
/// per time unit.
pub fn run_config(algorithm: Option<BalanceAlgorithm>, quick: bool) -> Vec<Sample> {
    const UNIT_S: f64 = 1e-3; // one paper second, scaled 1000x
    const TIME_COMPRESSION: u64 = 1000;
    let virtual_keys: u64 = 512 << 20;
    let real_keys: u64 = if quick { 1 << 16 } else { 1 << 18 };
    let scale = scale_for(virtual_keys, real_keys);
    let schedule = DynamicWorkload::paper_schedule(virtual_keys);
    let duration_units = if quick { 35 } else { schedule.duration_s() };

    let mut e = Engine::new(
        eris_numa::amd_machine(),
        EngineConfig {
            size_scale: scale,
            // Transfers move time-compressed volumes (see module docs).
            transfer_scale: Some((scale / TIME_COMPRESSION).max(1)),
            balancer: BalancerConfig {
                enabled: algorithm.is_some(),
                algorithm: algorithm.unwrap_or(BalanceAlgorithm::OneShot),
                threshold_cv: 0.12,
                period_s: 0.5 * UNIT_S,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let idx = e.create_index("keys", virtual_keys);
    load_strided_index(&mut e, idx, real_keys, scale);

    // The hot range is shared with the generators through two atomics the
    // harness updates as virtual time crosses phase boundaries.
    let hot_lo = Arc::new(AtomicU64::new(0));
    let hot_hi = Arc::new(AtomicU64::new(virtual_keys));
    for a in e.aeu_ids() {
        let mut rng = XorShift::new(a.0 as u64 + 31);
        let (lo, hi) = (Arc::clone(&hot_lo), Arc::clone(&hot_hi));
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                let lo = lo.load(Ordering::Relaxed);
                let hi = hi.load(Ordering::Relaxed);
                // Draw loaded (strided) keys within the hot range.
                let lo_i = lo / scale;
                let hi_i = (hi / scale).max(lo_i + 1);
                let keys: Vec<u64> = (0..64)
                    .map(|_| (lo_i + rng.below(hi_i - lo_i)) * scale)
                    .collect();
                out.push(DataCommand {
                    object: DataObjectId(0),
                    ticket: 0,
                    payload: Payload::Lookup { keys },
                });
            })),
        );
    }

    let mut samples = Vec::new();
    let mut last_ops = 0u64;
    for unit in 0..duration_units {
        let (lo, hi) = schedule.range_at(unit as f64);
        hot_lo.store(lo, Ordering::Relaxed);
        hot_hi.store(hi, Ordering::Relaxed);
        let end = (unit + 1) as f64 * UNIT_S;
        while e.clock().now_secs() < end {
            e.run_epoch();
        }
        let ops = e.results().counts().lookups;
        let window_ops = ops - last_ops;
        last_ops = ops;
        samples.push(Sample {
            t_units: (unit + 1) as f64,
            mops: window_ops as f64 / UNIT_S / 1e6,
        });
    }
    samples
}

pub fn run(quick: bool) {
    println!("Figure 13: Load Balancer Experiments on the AMD Machine");
    println!("(scale model of 512M keys; hot range halves at t=10, then shifts left by 1/64 of the domain every 20 units)\n");
    let mut all: Vec<(&'static str, Vec<Sample>)> = Vec::new();
    for (name, algo) in configs() {
        all.push((name, run_config(algo, quick)));
    }
    let mut t = TextTable::new(&["t", "no balancing", "One-Shot", "MA-1", "MA-8"]);
    let len = all[0].1.len();
    for i in 0..len {
        t.row(vec![
            format!("{:.0}", all[0].1[i].t_units),
            fmt_rate(all[0].1[i].mops * 1e6),
            fmt_rate(all[1].1[i].mops * 1e6),
            fmt_rate(all[2].1[i].mops * 1e6),
            fmt_rate(all[3].1[i].mops * 1e6),
        ]);
    }
    t.print();

    // Summary: steady-state throughput in the last phase window.
    println!("\nmean throughput over the final 10 units:");
    for (name, s) in &all {
        let tail: f64 = s[s.len() - 10..].iter().map(|x| x.mops).sum::<f64>() / 10.0;
        println!("  {name:13} {}", fmt_rate(tail * 1e6));
    }
}
