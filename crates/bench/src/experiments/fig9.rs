//! Figure 9 — scan bandwidth of ERIS against naive allocation strategies
//! on the SGI machine.
//!
//! An 8-billion-entry column is scanned by all workers, with the column
//! memory (1) on a single multiprocessor (*Single RAM*), (2) interleaved
//! across all multiprocessors (*Interleaved*), or (3) NUMA-local per AEU
//! (*ERIS*).  Expected shapes: Single RAM bound by one memory controller,
//! Interleaved bound by the link mesh, ERIS ≈6.6× Interleaved and ≈93.6%
//! of the system's accumulated local memory bandwidth.
//!
//! The paper uses 61 multiprocessors / 488 cores (the largest batch-system
//! working set on their machine); we mirror that.

use super::driver::{attach_scan_gen, measure};
use crate::{scale_for, TextTable};
use eris_core::baseline::{ScanPlacement, SharedScanBench};
use eris_core::prelude::*;
use eris_numa::NodeId;

const ACTIVE_NODES: usize = 61;

pub struct Result {
    pub single_ram_gbps: f64,
    pub interleaved_gbps: f64,
    pub eris_gbps: f64,
    pub aggregate_local_gbps: f64,
}

pub fn run_measurement(quick: bool) -> Result {
    let virtual_rows: u64 = 8u64 << 30;
    let real_rows: usize = if quick { 1 << 18 } else { 1 << 21 };
    let scale = scale_for(virtual_rows, real_rows as u64);

    // Baselines: one shared column, workers on the active nodes.
    let mut single = SharedScanBench::new(
        eris_numa::sgi_machine(),
        ScanPlacement::SingleRam(NodeId(0)),
        CostParams::default(),
        real_rows,
        scale,
    );
    let (b, d) = single.scan_once();
    let single_ram_gbps = b as f64 / d;

    let mut inter = SharedScanBench::new(
        eris_numa::sgi_machine(),
        ScanPlacement::Interleaved,
        CostParams::default(),
        real_rows,
        scale,
    );
    let (b, d) = inter.scan_once();
    let interleaved_gbps = b as f64 / d;

    // ERIS: the engine with NUMA-local partitions.
    let mut e = Engine::new(
        eris_numa::sgi_machine(),
        EngineConfig {
            active_nodes: Some(ACTIVE_NODES),
            size_scale: scale,
            ..Default::default()
        },
    );
    let col = e.create_column("col");
    e.bulk_load_column(col, 0..real_rows as u64);
    attach_scan_gen(&mut e, col);
    let (ops, secs) = measure(&mut e, 2e-4, if quick { 5e-4 } else { 2e-3 });
    let eris_gbps = ops.scan_rows as f64 * 8.0 / (secs * 1e9);

    let aggregate_local_gbps = eris_numa::sgi_machine()
        .nodes()
        .take(ACTIVE_NODES)
        .map(|n| eris_numa::sgi_machine().node_spec(n).local_bandwidth_gbps)
        .sum();

    Result {
        single_ram_gbps,
        interleaved_gbps,
        eris_gbps,
        aggregate_local_gbps,
    }
}

pub fn run(quick: bool) {
    println!("Figure 9: Scan Bandwidth of ERIS vs. Naive Memory Allocation (SGI machine)");
    println!("(8B-entry column, {ACTIVE_NODES} multiprocessors)\n");
    let r = run_measurement(quick);
    let mut t = TextTable::new(&[
        "strategy",
        "scan bandwidth",
        "vs. interleaved",
        "% of local aggregate",
    ]);
    for (name, gbps) in [
        ("Single RAM", r.single_ram_gbps),
        ("Interleaved", r.interleaved_gbps),
        ("ERIS (NUMA-local)", r.eris_gbps),
    ] {
        t.row(vec![
            name.into(),
            format!("{gbps:.1} GB/s"),
            format!("{:.1}x", gbps / r.interleaved_gbps),
            format!("{:.1}%", 100.0 * gbps / r.aggregate_local_gbps),
        ]);
    }
    t.print();
    println!(
        "\naccumulated local memory bandwidth of the system: {:.1} GB/s",
        r.aggregate_local_gbps
    );
}
