//! Figure 1 — index lookup and column scan scalability on the SGI UV 2000.
//!
//! The paper scales from 1 to 64 multiprocessors with a 1-billion-key index
//! (lookups) and full-column scans, reporting *more than linear* lookup
//! speedup — smaller per-AEU partitions keep more of each tree in cache —
//! and scan bandwidth limited only by each multiprocessor's local memory
//! bandwidth.

use super::driver::{attach_lookup_gens, attach_scan_gen, load_strided_index, measure};
use crate::{fmt_rate, scale_for, TextTable};
use eris_core::prelude::*;

/// One measured point.
pub struct Row {
    pub nodes: usize,
    pub lookup_mops: f64,
    pub lookup_speedup: f64,
    pub scan_gbps: f64,
    pub scan_speedup: f64,
}

pub fn sweep(quick: bool) -> Vec<Row> {
    let node_counts: &[usize] = if quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let virtual_keys: u64 = 1 << 30; // 1B keys
    let real_keys: u64 = if quick { 1 << 17 } else { 1 << 20 };
    let scale = scale_for(virtual_keys, real_keys);
    let virtual_rows: u64 = 8u64 << 30; // 8B column entries
    let real_rows: u64 = if quick { 1 << 18 } else { 1 << 21 };
    let row_scale = scale_for(virtual_rows, real_rows);

    let mut rows = Vec::new();
    let (mut base_lookup, mut base_scan) = (0.0f64, 0.0f64);
    for &m in node_counts {
        // Lookup arm.
        let mut e = Engine::new(
            eris_numa::sgi_machine(),
            EngineConfig {
                active_nodes: Some(m),
                size_scale: scale,
                ..Default::default()
            },
        );
        let idx = e.create_index("keys", virtual_keys);
        load_strided_index(&mut e, idx, real_keys, scale);
        attach_lookup_gens(&mut e, idx, real_keys, scale, 1536);
        let (ops, secs) = measure(&mut e, 2e-4, 1e-3);
        let lookup_rate = ops.lookups as f64 / secs;

        // Scan arm.
        let mut e = Engine::new(
            eris_numa::sgi_machine(),
            EngineConfig {
                active_nodes: Some(m),
                size_scale: row_scale,
                ..Default::default()
            },
        );
        let col = e.create_column("col");
        e.bulk_load_column(col, 0..real_rows);
        attach_scan_gen(&mut e, col);
        let (ops, secs) = measure(&mut e, 2e-4, 1e-3);
        let scan_gbps = ops.scan_rows as f64 * 8.0 / (secs * 1e9);

        if base_lookup == 0.0 {
            base_lookup = lookup_rate;
            base_scan = scan_gbps;
        }
        rows.push(Row {
            nodes: m,
            lookup_mops: lookup_rate / 1e6,
            lookup_speedup: lookup_rate / base_lookup,
            scan_gbps,
            scan_speedup: scan_gbps / base_scan,
        });
    }
    rows
}

pub fn run(quick: bool) {
    println!("Figure 1: Index Lookup and Column Scan Scalability of ERIS on the SGI UV 2000");
    println!("(1B-key index lookups; 8B-entry column scans; x = active multiprocessors)\n");
    let rows = sweep(quick);
    let mut t = TextTable::new(&[
        "multiprocessors",
        "lookup throughput",
        "lookup speedup",
        "scan bandwidth",
        "scan speedup",
    ]);
    for r in &rows {
        t.row(vec![
            r.nodes.to_string(),
            fmt_rate(r.lookup_mops * 1e6),
            format!("{:.2}x", r.lookup_speedup),
            format!("{:.1} GB/s", r.scan_gbps),
            format!("{:.2}x", r.scan_speedup),
        ]);
    }
    t.print();
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        let linear = last.nodes as f64 / first.nodes as f64;
        println!(
            "\nlookup speedup at {} nodes: {:.1}x (linear would be {:.0}x) — {}",
            last.nodes,
            last.lookup_speedup,
            linear,
            if last.lookup_speedup >= 0.95 * linear {
                "≈ linear or better"
            } else {
                "sublinear"
            }
        );
    }
}
