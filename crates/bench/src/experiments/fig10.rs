//! Figure 10 — L3 cache miss ratio on the AMD machine.
//!
//! The paper computes misses / requests from the AMD hardware counters
//! while running lookups against ERIS and the shared index at different
//! index sizes.  Here the MESIF cache simulator replays the *actual* node
//! paths of lookups (via `trace_path`) against the per-node LLCs.
//!
//! Scale model: a tree of `real × s` keys against a cache of `C` bytes has
//! the same miss ratio as a tree of `real` keys against `C / s` bytes, so
//! each x-axis point scales the simulated cache instead of materializing
//! billions of keys (both axes shrink by the same factor; see DESIGN.md).

use super::driver::XorShift;
use crate::{fmt_size, TextTable};
use eris_index::{PrefixTree, PrefixTreeConfig, SharedPrefixTree};
use eris_numa::{CacheConfig, CacheSim, NodeId, Topology};

pub struct Row {
    pub keys: u64,
    pub eris_miss_ratio: f64,
    pub shared_miss_ratio: f64,
}

/// Build per-AEU ERIS trees: `aeus` partitions of `real/aeus` keys each,
/// at well-separated synthetic bases.
fn build_eris_trees(real: u64, aeus: usize, cfg: PrefixTreeConfig) -> Vec<PrefixTree> {
    let per = real / aeus as u64;
    (0..aeus)
        .map(|a| {
            let mut t = PrefixTree::with_config(cfg, (a as u64) << 36);
            let lo = a as u64 * per;
            for k in lo..lo + per {
                t.upsert(k, k);
            }
            t
        })
        .collect()
}

/// Replay lookups through the cache simulator; returns the miss ratio.
fn simulate(
    topo: &Topology,
    cache_bytes: u64,
    lookups: u64,
    mut path_of: impl FnMut(&mut XorShift, &mut Vec<u64>) -> NodeId,
) -> f64 {
    let cfg = CacheConfig {
        llc_bytes: cache_bytes.max(16 * 1024),
        ways: 16,
        line_size: 64,
        sample_shift: 0,
    };
    let mut sim = CacheSim::new(topo.num_nodes(), cfg);
    let mut rng = XorShift::new(99);
    let mut trace = Vec::with_capacity(8);
    // Warmup pass fills the caches, then the measured pass.
    for phase in 0..2 {
        if phase == 1 {
            sim.reset_stats();
        }
        for _ in 0..lookups {
            trace.clear();
            let node = path_of(&mut rng, &mut trace);
            for &addr in &trace {
                sim.access(node, addr, false);
            }
        }
    }
    sim.stats().miss_ratio()
}

pub fn sweep(quick: bool) -> Vec<Row> {
    let topo = eris_numa::amd_machine();
    let cfg = PrefixTreeConfig::new(8, 32);
    let real: u64 = if quick { 1 << 16 } else { 1 << 20 };
    let aeus = topo.num_cores();
    let nodes = topo.num_nodes() as u64;
    let aeus_per_node = aeus / topo.num_nodes();
    let llc = topo.node_spec(NodeId(0)).llc_mib as u64 * 1048576;
    let lookups: u64 = if quick { 20_000 } else { 150_000 };

    let eris_trees = build_eris_trees(real, aeus, cfg);
    let shared = {
        let t = SharedPrefixTree::new(cfg, 0);
        for k in 0..real {
            t.upsert(k, k);
        }
        t
    };

    let sizes: &[u64] = if quick {
        &[16 << 20, 2 << 30]
    } else {
        &[16 << 20, 64 << 20, 256 << 20, 1 << 30, 2 << 30]
    };
    sizes
        .iter()
        .map(|&keys| {
            let scale = (keys / real).max(1);
            let scaled_llc = (llc / scale).max(16 * 1024);
            let eris = simulate(&topo, scaled_llc, lookups, |rng, trace| {
                let a = rng.below(aeus as u64) as usize;
                let per = real / aeus as u64;
                let key = a as u64 * per + rng.below(per);
                eris_trees[a].trace_path(key, trace);
                NodeId((a / aeus_per_node) as u16)
            });
            let shared_ratio = simulate(&topo, scaled_llc, lookups, |rng, trace| {
                let key = rng.below(real);
                shared.trace_path(key, trace);
                NodeId(rng.below(nodes) as u16)
            });
            Row {
                keys,
                eris_miss_ratio: eris,
                shared_miss_ratio: shared_ratio,
            }
        })
        .collect()
}

pub fn run(quick: bool) {
    println!("Figure 10: L3 Cache Miss Ratio on the AMD Machine");
    println!("(MESIF cache simulation over real lookup paths; scale-model sizes)\n");
    let rows = sweep(quick);
    let mut t = TextTable::new(&["index size", "ERIS miss ratio", "shared miss ratio"]);
    for r in &rows {
        t.row(vec![
            fmt_size(r.keys),
            format!("{:.1}%", 100.0 * r.eris_miss_ratio),
            format!("{:.1}%", 100.0 * r.shared_miss_ratio),
        ]);
    }
    t.print();
    let small = &rows[0];
    println!(
        "\nat {}: shared misses {:.1}x more than ERIS (the Figure 10 gap)",
        fmt_size(small.keys),
        small.shared_miss_ratio / small.eris_miss_ratio.max(1e-6),
    );
}
