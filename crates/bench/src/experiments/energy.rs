//! Energy-awareness exploration (beyond the paper's evaluation): the
//! future-work question of Section 6.
//!
//! *"Another important research direction is how to realize energy
//! awareness on such a data-oriented architecture, because AEUs always run
//! at full speed and are thus consuming a high amount of energy.  Here, we
//! want to investigate the impact of frequency scaling ... on the energy
//! consumption."*
//!
//! The experiment runs a CPU-bound workload (small, cache-resident index:
//! lookups dominated by traversal work) and a memory-bound workload (a
//! full-column scan at the IMC bandwidth limit) while sweeping the AEU core
//! frequency.  Energy per operation uses the classic DVFS proxy
//! `P ∝ P_static + f³`: memory-bound AEUs barely lose throughput at lower
//! frequency, so their energy per row *drops* — the headroom the paper
//! hypothesizes a data-oriented balancer could exploit.

use super::driver::{attach_lookup_gens, attach_scan_gen, load_strided_index, measure};
use crate::{fmt_rate, TextTable};
use eris_core::prelude::*;

/// Relative dynamic+static power at relative frequency `f` (nominal = 1).
fn relative_power(f: f64) -> f64 {
    const STATIC_SHARE: f64 = 0.3;
    STATIC_SHARE + (1.0 - STATIC_SHARE) * f * f * f
}

pub struct Row {
    pub freq: f64,
    pub lookup_rate: f64,
    pub lookup_energy: f64,
    pub scan_gbps: f64,
    pub scan_energy: f64,
}

pub fn sweep(quick: bool) -> Vec<Row> {
    let freqs: &[f64] = if quick {
        &[1.0, 0.6]
    } else {
        &[1.0, 0.8, 0.6, 0.4]
    };
    let window = if quick { 3e-4 } else { 1e-3 };
    let mut rows = Vec::new();
    for &freq in freqs {
        let params = CostParams {
            frequency_scale: freq,
            ..Default::default()
        };

        // CPU-bound: small cache-resident index, lookups are traversal work.
        let real_keys: u64 = 1 << 16;
        let mut e = Engine::new(
            eris_numa::amd_machine(),
            EngineConfig {
                params,
                ..Default::default()
            },
        );
        let idx = e.create_index("keys", real_keys);
        load_strided_index(&mut e, idx, real_keys, 1);
        attach_lookup_gens(&mut e, idx, real_keys, 1, 256);
        let (ops, secs) = measure(&mut e, 1e-4, window);
        let lookup_rate = ops.lookups as f64 / secs;

        // Memory-bound: full-column scan, 8 GB modelled.
        let real_rows: u64 = if quick { 1 << 17 } else { 1 << 20 };
        let scale = (1u64 << 30) / real_rows;
        let mut e = Engine::new(
            eris_numa::amd_machine(),
            EngineConfig {
                params,
                size_scale: scale,
                ..Default::default()
            },
        );
        let col = e.create_column("col");
        e.bulk_load_column(col, 0..real_rows);
        attach_scan_gen(&mut e, col);
        let (ops, secs) = measure(&mut e, 1e-4, window);
        let scan_gbps = ops.scan_rows as f64 * 8.0 / (secs * 1e9);

        rows.push(Row {
            freq,
            lookup_rate,
            lookup_energy: relative_power(freq) / lookup_rate,
            scan_gbps,
            scan_energy: relative_power(freq) / scan_gbps,
        });
    }
    rows
}

pub fn run(quick: bool) {
    println!("Energy exploration (Section 6 future work): AEU frequency scaling");
    println!("(CPU-bound: cache-resident lookups; memory-bound: full-column scan; AMD machine)\n");
    let rows = sweep(quick);
    let base = &rows[0];
    let mut t = TextTable::new(&[
        "frequency",
        "lookup throughput",
        "lookup energy/op",
        "scan bandwidth",
        "scan energy/row",
    ]);
    for r in &rows {
        t.row(vec![
            format!("{:.0}%", r.freq * 100.0),
            format!(
                "{} ({:.0}%)",
                fmt_rate(r.lookup_rate),
                100.0 * r.lookup_rate / base.lookup_rate
            ),
            format!("{:.2}x", r.lookup_energy / base.lookup_energy),
            format!(
                "{:.1} GB/s ({:.0}%)",
                r.scan_gbps,
                100.0 * r.scan_gbps / base.scan_gbps
            ),
            format!("{:.2}x", r.scan_energy / base.scan_energy),
        ]);
    }
    t.print();
    let last = rows.last().unwrap();
    println!(
        "\nat {:.0}% frequency: CPU-bound lookups keep {:.0}% of their throughput, \
         memory-bound scans keep {:.0}% — scans save {:.0}% energy per row",
        last.freq * 100.0,
        100.0 * last.lookup_rate / base.lookup_rate,
        100.0 * last.scan_gbps / base.scan_gbps,
        100.0 * (1.0 - last.scan_energy / base.scan_energy),
    );
}
