//! Table 2 — memory read bandwidth and latency per distance class.
//!
//! The paper measures these with BenchIT; here they come back out of the
//! calibrated cost model, and the bandwidth column is additionally
//! *re-measured* through the flow solver (a single saturating reader per
//! class), so the table validates the simulation stack end to end.

use crate::TextTable;
use eris_numa::{CostModel, Flow, FlowSolver, Topology};

pub fn run() {
    println!("Table 2: Memory Read Bandwidth (GB/s) and Read Latency (ns)\n");
    for topo in [
        eris_numa::intel_machine(),
        eris_numa::amd_machine(),
        eris_numa::sgi_machine(),
    ] {
        print_machine(&topo);
        println!();
    }
}

fn print_machine(topo: &Topology) {
    println!("{}:", topo.name());
    let cm = CostModel::new(topo);
    let mut t = TextTable::new(&[
        "distance",
        "bandwidth (GB/s)",
        "latency (ns)",
        "solver (GB/s)",
    ]);
    let solver = FlowSolver::new(topo);
    for row in cm.table2_rows() {
        // Find a representative (src, home) pair of this class and push one
        // full-rate flow through the solver.
        let pair = topo
            .nodes()
            .flat_map(|a| topo.nodes().map(move |b| (a, b)))
            .find(|&(a, b)| cm.distance_class(a, b) == row.class)
            .expect("class came from some pair");
        let solved = solver.solve(&[Flow::new(pair.0, pair.1, 1 << 30)]).rates[0];
        t.row(vec![
            row.class.label(),
            format!("{:.1}", row.bandwidth_gbps),
            format!("{:.0}", row.latency_ns),
            format!("{solved:.1}"),
        ]);
    }
    t.print();
}
