//! Figure 8 — lookup/upsert throughput vs. index size, ERIS against the
//! NUMA-agnostic shared index, on all three machines.
//!
//! Expected shapes (Section 4.2.1): the shared index wins for small
//! indexes on the small Intel machine (ERIS pays its routing overhead);
//! as indexes and machines grow, ERIS takes over — ≈1.6× on the AMD
//! machine at 1 B keys and ≈3.5× on the SGI machine at 16 B keys — and
//! upserts behave like lookups at lower absolute rates.

use super::driver::{attach_lookup_gens, attach_upsert_gens, load_strided_index, measure};
use crate::{fmt_rate, fmt_size, scale_for, TextTable};
use eris_core::baseline::SharedIndexBench;
use eris_core::prelude::*;
use eris_numa::Topology;

pub struct Row {
    pub keys: u64,
    pub eris_lookup: f64,
    pub shared_lookup: f64,
    pub eris_upsert: f64,
    pub shared_upsert: f64,
}

fn machine(name: &str) -> Topology {
    match name {
        "intel" => eris_numa::intel_machine(),
        "amd" => eris_numa::amd_machine(),
        "sgi" => eris_numa::sgi_machine(),
        _ => unreachable!(),
    }
}

fn eris_rates(name: &str, virtual_keys: u64, real_keys: u64, quick: bool) -> (f64, f64) {
    let scale = scale_for(virtual_keys, real_keys);
    let window = if quick { 3e-4 } else { 1e-3 };
    let mut rates = (0.0, 0.0);
    for upsert in [false, true] {
        let mut e = Engine::new(
            machine(name),
            EngineConfig {
                size_scale: scale,
                ..Default::default()
            },
        );
        let idx = e.create_index("keys", virtual_keys.max(real_keys * scale));
        load_strided_index(&mut e, idx, real_keys, scale);
        if upsert {
            attach_upsert_gens(&mut e, idx, real_keys, scale, 128);
        } else {
            attach_lookup_gens(&mut e, idx, real_keys, scale, 128);
        }
        let (ops, secs) = measure(&mut e, 1e-4, window);
        if upsert {
            rates.1 = ops.upserts as f64 / secs;
        } else {
            rates.0 = ops.lookups as f64 / secs;
        }
    }
    rates
}

fn shared_rates(name: &str, virtual_keys: u64, real_keys: u64, quick: bool) -> (f64, f64) {
    let scale = scale_for(virtual_keys, real_keys);
    let window = if quick { 3e-4 } else { 1e-3 };
    let mut b = SharedIndexBench::new(
        machine(name),
        PrefixTreeConfig::new(8, 64),
        CostParams::default(),
        real_keys,
        scale,
        42,
    );
    b.load_dense(real_keys);
    // Paper order: insert phase first, then lookup phase.
    let up = b.run_upsert_phase(window).ops_per_sec();
    let lk = b.run_lookup_phase(window).ops_per_sec();
    (lk, up)
}

pub fn sweep(name: &str, quick: bool) -> Vec<Row> {
    let sizes: &[u64] = match (name, quick) {
        ("sgi", false) => &[16 << 20, 256 << 20, 1 << 30, 4 << 30, 16 << 30, 32 << 30],
        ("sgi", true) => &[16 << 20, 16 << 30],
        (_, false) => &[16 << 20, 64 << 20, 256 << 20, 1 << 30, 2 << 30],
        (_, true) => &[16 << 20, 1 << 30],
    };
    let real_keys: u64 = if quick { 1 << 16 } else { 1 << 19 };
    sizes
        .iter()
        .map(|&keys| {
            let (el, eu) = eris_rates(name, keys, real_keys, quick);
            let (sl, su) = shared_rates(name, keys, real_keys, quick);
            Row {
                keys,
                eris_lookup: el,
                shared_lookup: sl,
                eris_upsert: eu,
                shared_upsert: su,
            }
        })
        .collect()
}

pub fn run(quick: bool) {
    println!("Figure 8: Lookup/Upsert Throughput Depending on Index Size");
    println!("(ERIS vs. NUMA-agnostic shared index; uniform keys over a dense domain)\n");
    for name in ["intel", "amd", "sgi"] {
        println!("--- {} ---", machine(name).name());
        let rows = sweep(name, quick);
        let mut t = TextTable::new(&[
            "index size",
            "ERIS lookup",
            "shared lookup",
            "lookup ratio",
            "ERIS upsert",
            "shared upsert",
        ]);
        for r in &rows {
            t.row(vec![
                fmt_size(r.keys),
                fmt_rate(r.eris_lookup),
                fmt_rate(r.shared_lookup),
                format!("{:.2}x", r.eris_lookup / r.shared_lookup),
                fmt_rate(r.eris_upsert),
                fmt_rate(r.shared_upsert),
            ]);
        }
        t.print();
        println!();
    }
}
