//! Figure 5 — data command routing throughput as a function of the local
//! (outgoing) buffer size, on the AMD machine.
//!
//! Two curves: **raw** routing (AEUs skip the processing phase) and
//! **with processing** (index-lookup commands executed).  The paper
//! observes the raw throughput doubling with the buffer size until the
//! interconnect saturates, while the processing curve plateaus around a
//! buffer of 128 commands, because execution dominates from there on.

use super::driver::{load_strided_index, measure};
use crate::{fmt_rate, scale_for, TextTable};
use eris_core::prelude::*;
use eris_core::routing::RoutingConfig;

/// Approximate encoded size of a single-key lookup command.
const CMD_BYTES: usize = 29;

pub struct Row {
    pub buffer_cmds: usize,
    pub raw_mcmds: f64,
    pub processing_mcmds: f64,
    /// Routing telemetry of the with-processing run (engine totals).
    pub telemetry: CounterSnapshot,
}

fn one_run(buffer_cmds: usize, raw: bool, quick: bool) -> (f64, CounterSnapshot) {
    let virtual_keys: u64 = 512 << 20;
    let real_keys: u64 = if quick { 1 << 16 } else { 1 << 19 };
    let scale = scale_for(virtual_keys, real_keys);
    let mut e = Engine::new(
        eris_numa::amd_machine(),
        EngineConfig {
            size_scale: scale,
            routing: RoutingConfig {
                outgoing_capacity: buffer_cmds * CMD_BYTES,
                incoming_capacity: 1 << 22,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let idx = e.create_index("keys", virtual_keys);
    load_strided_index(&mut e, idx, real_keys, scale);
    // Single-key commands maximize routing stress.
    for a in e.aeu_ids() {
        let mut rng = super::driver::XorShift::new(a.0 as u64 + 7);
        let batch = if quick { 512 } else { 4096 };
        e.set_generator(
            a,
            Some(Box::new(move |_, out| {
                for _ in 0..batch {
                    out.push(DataCommand {
                        object: DataObjectId(0),
                        ticket: 0,
                        payload: Payload::Lookup {
                            keys: vec![rng.below(real_keys) * scale],
                        },
                    });
                }
            })),
        );
    }
    if raw {
        for a in e.aeu_ids() {
            e.aeu_mut(a).set_discard_incoming(true);
        }
    }
    let (ops, secs) = measure(&mut e, 2e-4, if quick { 5e-4 } else { 2e-3 });
    (ops.commands_routed as f64 / secs, e.telemetry().totals)
}

use eris_core::DataObjectId;

pub fn sweep(quick: bool) -> Vec<Row> {
    let sizes: &[usize] = if quick {
        &[1, 8, 64, 512]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
    };
    sizes
        .iter()
        .map(|&s| {
            let (raw, _) = one_run(s, true, quick);
            let (processing, telemetry) = one_run(s, false, quick);
            Row {
                buffer_cmds: s,
                raw_mcmds: raw / 1e6,
                processing_mcmds: processing / 1e6,
                telemetry,
            }
        })
        .collect()
}

pub fn run(quick: bool) {
    println!("Figure 5: Data Command Routing Throughput vs. Local Buffer Size (AMD machine)");
    println!("(single-key index-lookup data commands; raw = processing phase skipped)\n");
    let rows = sweep(quick);
    let mut t = TextTable::new(&["buffer (commands)", "raw routing", "with processing"]);
    for r in &rows {
        t.row(vec![
            r.buffer_cmds.to_string(),
            fmt_rate(r.raw_mcmds * 1e6),
            fmt_rate(r.processing_mcmds * 1e6),
        ]);
    }
    t.print();
    let first = &rows[0];
    let last = &rows[rows.len() - 1];
    println!(
        "\nraw gain from buffering: {:.1}x; processing curve plateau: {}",
        last.raw_mcmds / first.raw_mcmds,
        fmt_rate(last.processing_mcmds * 1e6),
    );
    // Routing telemetry behind the headline numbers (largest buffer,
    // with-processing run): where the commands went and how they moved.
    let tel = &last.telemetry;
    println!(
        "\nrouting telemetry @ {} commands/buffer (with processing):",
        last.buffer_cmds
    );
    println!(
        "  routed {} (unicast {}, multicast {}), executed {}",
        tel.commands_routed, tel.commands_unicast, tel.commands_multicast, tel.commands_executed
    );
    println!(
        "  flushes {} ({} cmds, {} bytes, {} stalls), swaps {} ({} bytes)",
        tel.flushes,
        tel.flush_commands,
        tel.flush_bytes,
        tel.flush_stalls,
        tel.buffer_swaps,
        tel.swapped_bytes
    );
    println!(
        "  peak pending: outgoing {} B, incoming {} B; mean cmds/flush {:.1}, mean cmds/swap {:.1}",
        tel.peak_outgoing_bytes,
        tel.peak_incoming_bytes,
        tel.flush_commands as f64 / tel.flushes.max(1) as f64,
        tel.commands_executed as f64 / tel.buffer_swaps.max(1) as f64
    );
}
