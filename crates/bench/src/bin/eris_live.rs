//! `eris-live` — the paper's live monitoring demo as a terminal dashboard.
//!
//! The SIGMOD demo shows ERIS running a skewed workload while the
//! balancer adapts, with per-AEU utilization, per-partition heat, and
//! migration activity updating in real time.  This binary reproduces
//! that view on top of the `eris-obs` plumbing:
//!
//! * per-AEU utilization bars from telemetry counter deltas,
//! * a per-object partition heat map from the monitor's access samples,
//! * a migration ticker fed by the per-AEU trace rings,
//! * the balancer's latest audit verdict with the CVs it saw,
//! * sampled end-to-end latency means (queue-wait / exec / hops),
//! * per-AEU epoch-phase wall-time shares and interconnect link bytes.
//!
//! ```sh
//! cargo run --release -p eris-bench --bin eris-live            # live TUI
//! cargo run --release -p eris-bench --bin eris-live -- --once  # CI smoke
//! ```
//!
//! `--once` runs a short scripted scenario under **both** runtimes
//! (cooperative virtual-time, then real threads), drains, self-checks
//! the observability invariants (ring conservation, trace-ledger
//! balance, audit-vs-partition-table agreement, epoch-profiler phase
//! shares summing to one, SLO burn-rate rendering, JSON round-trips),
//! writes the JSONL trace and collapsed-stack profile artifacts, and
//! exits non-zero on any failure.

use eris_bench::fmt_size;
use eris_core::prelude::*;
use eris_core::BalanceVerdict;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    once: bool,
    interval_ms: u64,
    duration_s: f64,
    sample_every: u64,
    jsonl: Option<String>,
    prom: Option<String>,
    collapsed: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        once: false,
        interval_ms: 500,
        duration_s: 10.0,
        sample_every: 32,
        jsonl: None,
        prom: None,
        collapsed: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--once" => args.once = true,
            "--interval-ms" => args.interval_ms = val("--interval-ms").parse().unwrap(),
            "--duration-s" => args.duration_s = val("--duration-s").parse().unwrap(),
            "--sample-every" => args.sample_every = val("--sample-every").parse().unwrap(),
            "--jsonl" => args.jsonl = Some(val("--jsonl")),
            "--prom" => args.prom = Some(val("--prom")),
            "--collapsed" => args.collapsed = Some(val("--collapsed")),
            "--help" | "-h" => {
                println!(
                    "eris-live [--once] [--interval-ms N] [--duration-s S] \
                     [--sample-every N] [--jsonl PATH] [--prom PATH] \
                     [--collapsed PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

const DOMAIN: u64 = 1 << 20;

/// Build the demo engine: one bulk-loaded index, per-AEU generators
/// drawing lookups (and a trickle of upserts) from a hot key range
/// published through atomics, One-Shot balancer armed.
fn build_engine(sample_every: u64) -> (Engine, DataObjectId, Arc<AtomicU64>, Arc<AtomicU64>) {
    let mut engine = Engine::new(
        eris_numa::amd_machine(),
        EngineConfig {
            balancer: BalancerConfig {
                enabled: true,
                algorithm: BalanceAlgorithm::OneShot,
                threshold_cv: 0.2,
                period_s: 1e-4,
                ..Default::default()
            },
            routing: RoutingConfig {
                trace_sample_every: sample_every,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let idx = engine.create_index("events", DOMAIN);
    engine.bulk_load_index(idx, (0..DOMAIN).map(|k| (k, k)));

    let hot_lo = Arc::new(AtomicU64::new(0));
    let hot_hi = Arc::new(AtomicU64::new(DOMAIN));
    for a in engine.aeu_ids() {
        let (lo, hi) = (Arc::clone(&hot_lo), Arc::clone(&hot_hi));
        let mut x = (a.0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut batch = 0u64;
        engine.set_generator(
            a,
            Some(Box::new(move |_, out| {
                let (lo, hi) = (lo.load(Ordering::Relaxed), hi.load(Ordering::Relaxed));
                let mut draw = || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    lo + x % (hi - lo)
                };
                batch += 1;
                // Mostly lookups, some upsert batches so the latency
                // table sees more than one command kind.  The choice is
                // RNG-driven: a fixed period would alias with the
                // deterministic 1-in-N latency sampler and hide one op.
                let payload = if draw().is_multiple_of(4) {
                    Payload::Upsert {
                        pairs: (0..32).map(|_| (draw(), batch)).collect(),
                    }
                } else {
                    Payload::Lookup {
                        keys: (0..64).map(|_| draw()).collect(),
                    }
                };
                out.push(DataCommand {
                    object: idx,
                    ticket: 0,
                    payload,
                });
            })),
        );
    }
    (engine, idx, hot_lo, hot_hi)
}

fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

fn heat_ramp(frac: f64) -> char {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let i = (frac.clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[i] as char
}

/// One rendered frame of the dashboard, as plain text (the live loop
/// prepends a clear-screen escape; `--once` prints it verbatim).
fn render_frame(
    engine: &Engine,
    idx: DataObjectId,
    prev: &TelemetrySnapshot,
    snap: &TelemetrySnapshot,
) -> String {
    let mut out = String::new();
    let n = snap.per_aeu.len();
    out.push_str(&format!(
        "eris-live · {} AEUs · {} commands executed · {} migrated keys\n\n",
        n, snap.totals.commands_executed, snap.balancer.keys_moved,
    ));

    // Per-AEU utilization: executed-command delta since the last frame,
    // normalized by the busiest AEU in the window.
    let deltas: Vec<u64> = snap
        .per_aeu
        .iter()
        .zip(&prev.per_aeu)
        .map(|(now, was)| now.commands_executed.saturating_sub(was.commands_executed))
        .collect();
    let max_delta = deltas.iter().copied().max().unwrap_or(0).max(1);
    out.push_str("AEU utilization (commands this frame)\n");
    for (i, d) in deltas.iter().enumerate() {
        out.push_str(&format!(
            "  aeu {i:>2} |{}| {d}\n",
            bar(*d as f64 / max_delta as f64, 40)
        ));
    }

    // Partition heat map: the monitor's latest access sample if the
    // balancer has taken one, partition sizes otherwise.
    let sample = engine.monitor().latest(idx);
    let heat: Vec<f64> = match sample {
        Some(s) if !s.accesses.is_empty() => s.accesses.iter().map(|&a| a as f64).collect(),
        _ => engine
            .aeu_ids()
            .iter()
            .map(|a| {
                engine
                    .aeu(*a)
                    .partition(idx)
                    .map_or(0.0, |p| p.data.len() as f64)
            })
            .collect(),
    };
    let peak = heat.iter().cloned().fold(1.0f64, f64::max);
    out.push_str("\npartition heat (object 0, one cell per AEU)\n  [");
    for h in &heat {
        out.push(heat_ramp(h / peak));
    }
    out.push_str("]\n");

    // Balancer audit: the latest decision with its CVs and verdict.
    if let Some(d) = engine.monitor().last_decision(idx) {
        out.push_str(&format!(
            "\nbalancer audit @ {:.4}s · cv access {:.3} exec {:.3} size {:.3} (threshold {:.2}) → {:?}, {} migration(s)\n",
            d.at_secs, d.access_cv, d.exec_cv, d.size_cv, d.threshold_cv,
            d.verdict, d.migrations.len(),
        ));
    }

    // Migration ticker: the most recent ring-recorded moves.
    let migrations: Vec<_> = engine
        .trace_events()
        .into_iter()
        .filter(|e| matches!(e.event, eris_obs::TraceEvent::Migration { .. }))
        .collect();
    out.push_str(&format!(
        "\nmigrations ({} total in rings)\n",
        migrations.len()
    ));
    for e in migrations.iter().rev().take(5) {
        if let eris_obs::TraceEvent::Migration {
            object,
            src,
            dst,
            keys,
            bytes,
        } = e.event
        {
            out.push_str(&format!(
                "  obj {object}: aeu {src} → {dst}  {keys} keys, {}\n",
                fmt_size(bytes)
            ));
        }
    }

    // Sampled latency attribution, per (object, command-kind).
    out.push_str(&format!(
        "\nsampled latency (stamped {} · traced {} · dropped {})\n",
        snap.trace.stamped, snap.trace.traced, snap.trace.dropped,
    ));
    for ((obj, op), series) in snap.latency.iter().take(6) {
        let name = StorageOp::from_tag(*op).map_or("?", |o| o.name());
        out.push_str(&format!(
            "  obj {obj} {name:<8} n={:<6} queue {:>9.0} ns · exec {:>9.0} ns · hops {:.2}\n",
            series.queue_wait.count,
            series.queue_wait.mean(),
            series.exec.mean(),
            series.hops.mean(),
        ));
    }

    // Epoch-phase profile: where each AEU's wall time went this run.
    // The breakdown is cumulative, so the panel shows lifetime shares;
    // `Idle` is the unattributed remainder of each epoch.
    if snap.phases.iter().any(|p| p.total_ns() > 0) {
        out.push_str("\nepoch phases (% of attributed wall time)\n");
        for (i, p) in snap.phases.iter().enumerate() {
            if p.total_ns() == 0 {
                continue;
            }
            out.push_str(&format!("  aeu {i:>2} "));
            for ph in eris_obs::Phase::ALL {
                let pct = p.fraction(ph) * 100.0;
                if pct >= 0.5 {
                    out.push_str(&format!(" {} {pct:.0}%", ph.name()));
                }
            }
            out.push('\n');
        }
    }

    // Cross-node interconnect traffic, when the runtime carries the
    // hardware-counter model.
    if !snap.links.is_empty() {
        out.push_str("\ninterconnect links (bytes per direction)\n");
        for l in &snap.links {
            out.push_str(&format!(
                "  node {} <-> node {}  ->{}  <-{}\n",
                l.a,
                l.b,
                fmt_size(l.bytes_ab),
                fmt_size(l.bytes_ba),
            ));
        }
    }

    // Ring accounting roll-up.
    let (emitted, retained, dropped) = snap.rings.iter().fold((0, 0, 0), |acc, r| {
        (acc.0 + r.emitted, acc.1 + r.retained, acc.2 + r.dropped)
    });
    out.push_str(&format!(
        "\ntrace rings: {emitted} emitted = {retained} retained + {dropped} overwritten\n"
    ));
    out
}

/// Live mode: advance virtual time a slice per frame, shift the hotspot
/// periodically, redraw.
fn run_live(args: &Args) {
    let (mut engine, idx, hot_lo, hot_hi) = build_engine(args.sample_every);
    let frames = ((args.duration_s * 1000.0) / args.interval_ms as f64).ceil() as u64;
    let mut prev = engine.telemetry();
    for frame in 0..frames {
        // Every 8 frames the hotspot jumps to a new 5% slice of the
        // domain, so the balancer has something to chase.
        if frame % 8 == 4 {
            let lo = (frame % 16) * (DOMAIN / 16);
            hot_lo.store(lo, Ordering::Relaxed);
            hot_hi.store(lo + DOMAIN / 20, Ordering::Relaxed);
        } else if frame % 8 == 0 {
            hot_lo.store(0, Ordering::Relaxed);
            hot_hi.store(DOMAIN, Ordering::Relaxed);
        }
        engine.run_for_virtual_secs(3e-4);
        let snap = engine.telemetry();
        print!("\x1b[2J\x1b[H{}", render_frame(&engine, idx, &prev, &snap));
        prev = snap;
        std::thread::sleep(Duration::from_millis(args.interval_ms));
    }
    if let Some(path) = &args.jsonl {
        std::fs::write(path, eris_obs::render_events_jsonl(&engine.trace_events())).unwrap();
    }
    if let Some(path) = &args.prom {
        std::fs::write(path, engine.telemetry().to_prometheus()).unwrap();
    }
    if let Some(path) = &args.collapsed {
        std::fs::write(path, engine.telemetry().collapsed_stack()).unwrap();
    }
}

/// `--once`: scripted scenario + self-checks, for CI.  Exits non-zero
/// (via the failure list) if any observability invariant is violated.
fn run_once(args: &Args) -> Vec<String> {
    let mut failures = Vec::new();
    let mut check = |ok: bool, what: &str| {
        println!("  [{}] {}", if ok { "ok" } else { "FAIL" }, what);
        if !ok {
            failures.push(what.to_string());
        }
    };

    let (mut engine, idx, hot_lo, hot_hi) = build_engine(args.sample_every);
    let baseline = engine.telemetry();

    // Cooperative runtime: uniform warm-up, then a hotspot that forces
    // the balancer to migrate.
    engine.run_for_virtual_secs(1e-3);
    hot_lo.store(0, Ordering::Relaxed);
    hot_hi.store(DOMAIN / 20, Ordering::Relaxed);
    engine.run_for_virtual_secs(4e-3);
    hot_lo.store(0, Ordering::Relaxed);
    hot_hi.store(DOMAIN, Ordering::Relaxed);

    // Real-thread runtime over the same engine and rings.
    engine.run_threaded_for(Duration::from_millis(200));

    // Detach the generators, then drain: conservation invariants hold
    // exactly at quiescence.
    for a in engine.aeu_ids() {
        engine.set_generator(a, None);
    }
    engine.run_until_drained();

    let snap = engine.telemetry();
    println!("{}", render_frame(&engine, idx, &baseline, &snap));
    println!("self-checks:");

    check(snap.totals.commands_executed > 0, "commands executed");
    check(snap.conservation_holds(), "enqueued == executed (drained)");
    check(snap.trace.stamped > 0, "latency sampling stamped commands");
    check(
        snap.trace.balances(),
        "trace ledger balances: stamped == traced + dropped",
    );
    check(
        snap.rings
            .iter()
            .all(|r| r.emitted == r.retained + r.dropped),
        "every ring conserves: emitted == retained + dropped",
    );
    check(
        snap.rings.iter().any(|r| r.emitted > 0),
        "trace rings saw events",
    );

    // Epoch profiler invariants: wall time was attributed and every
    // AEU's phase shares sum to one (the Idle phase absorbs the
    // remainder, so this holds by construction unless charging is
    // double-counted or lost).
    check(
        snap.phases.iter().any(|p| p.total_ns() > 0),
        "epoch profiler attributed wall time",
    );
    check(
        snap.phases_sum_to_one(0.01),
        "per-AEU phase fractions sum to 1 (±1%)",
    );
    check(
        snap.exemplars.iter().flatten().any(|e| e.total_ns > 0),
        "latency histogram retained at least one exemplar",
    );

    // SLO burn-rate pipeline: feed the engine-side totals through the
    // same SloEngine the serving layer uses and make sure burn metrics
    // render.  Engine-born traces have no admission verdicts, so the
    // error numerator is the trace ledger's dropped count.
    let slo = eris_obs::SloEngine::new(eris_obs::SloConfig::default());
    let threshold = slo.config().latency_threshold_ns;
    let scale = args.sample_every.max(1);
    let bad: u64 = snap
        .latency
        .iter()
        .map(|(_, s)| s.exec.count_over(threshold))
        .sum::<u64>()
        * scale;
    slo.observe(
        0,
        eris_obs::now_ns(),
        eris_obs::SloTotals {
            requests: snap.totals.commands_executed,
            bad_latency: bad.min(snap.totals.commands_executed),
            errors: snap.trace.dropped,
        },
    );
    let slo_now = eris_obs::now_ns();
    let slo_prom = eris_obs::render_prometheus(&slo.to_metrics(slo_now));
    check(
        slo_prom.contains("eris_slo_burn_rate"),
        "SLO burn-rate metrics render",
    );
    check(
        slo.worst_burn(0, slo_now).is_finite(),
        "SLO burn rates are finite",
    );

    // The hotspot phase must have produced balancer activity, and every
    // audited migration must agree with the live partition table: after
    // the dust settles the audit log's final rebalance decision moved
    // ranges whose keys are now owned by *some* AEU (ownership is total)
    // and the table covers the whole domain.
    let audit = engine.monitor().audit_log();
    check(!audit.is_empty(), "balancer audit log is non-empty");
    let rebalances = audit
        .iter()
        .filter(|d| d.verdict == BalanceVerdict::Rebalanced)
        .count();
    check(rebalances > 0, "at least one rebalance audited");
    let audited_moves: u64 = audit
        .iter()
        .flat_map(|d| &d.migrations)
        .map(|m| m.keys)
        .sum();
    let ring_moves: u64 = engine
        .trace_events()
        .iter()
        .filter_map(|e| match e.event {
            eris_obs::TraceEvent::Migration { keys, .. } => Some(keys),
            _ => None,
        })
        .sum();
    check(
        audited_moves == snap.balancer.keys_moved,
        "audit log keys == balancer keys_moved counter",
    );
    check(
        ring_moves == audited_moves,
        "ring migration events == audit log",
    );
    check(
        (0..DOMAIN)
            .step_by((DOMAIN / 256) as usize)
            .all(|k| engine.owner_of(idx, k).is_some()),
        "partition table covers the domain after migrations",
    );

    // JSON round-trips through the serde-free parser.
    let json = snap.to_json();
    let parsed = eris_obs::json::parse(&json).ok();
    check(
        parsed
            .as_ref()
            .and_then(|v| v.get("totals"))
            .and_then(|t| t.get("commands_executed"))
            .and_then(|c| c.as_u64())
            == Some(snap.totals.commands_executed),
        "telemetry JSON parses and round-trips totals",
    );
    let events = engine.trace_events();
    let jsonl = eris_obs::render_events_jsonl(&events);
    check(
        jsonl.lines().count() == events.len()
            && jsonl.lines().all(|l| eris_obs::json::parse(l).is_ok()),
        "every trace event renders as parseable JSONL",
    );
    let prom = snap.to_prometheus();
    check(
        prom.contains("# TYPE") && prom.contains("eris_commands_executed"),
        "prometheus exposition renders",
    );

    // Artifacts.
    let jsonl_path = args
        .jsonl
        .clone()
        .unwrap_or_else(|| "eris-live-trace.jsonl".into());
    std::fs::write(&jsonl_path, &jsonl).unwrap();
    println!("  wrote {} ({} events)", jsonl_path, events.len());
    if let Some(path) = &args.prom {
        std::fs::write(path, &prom).unwrap();
        println!("  wrote {path}");
    }
    let collapsed = snap.collapsed_stack();
    check(
        !collapsed.is_empty() && collapsed.lines().all(|l| l.contains(';')),
        "collapsed stack renders aeu;phase frames",
    );
    let collapsed_path = args
        .collapsed
        .clone()
        .unwrap_or_else(|| "eris-live-profile.collapsed".into());
    std::fs::write(&collapsed_path, &collapsed).unwrap();
    println!(
        "  wrote {} ({} frames)",
        collapsed_path,
        collapsed.lines().count()
    );
    failures
}

fn main() {
    let args = parse_args();
    if args.once {
        let failures = run_once(&args);
        if failures.is_empty() {
            println!("\neris-live --once: OK");
        } else {
            eprintln!("\neris-live --once: {} check(s) FAILED:", failures.len());
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
    } else {
        run_live(&args);
    }
}
