//! Regenerate the tables and figures of the ERIS paper.
//!
//! ```text
//! experiments <id>... [--quick]
//! experiments all [--quick]
//! ```
//!
//! Ids: table1 table2 fig1 fig5 fig8 fig9 fig10 fig11 fig12 fig13 energy
//! zipf kernels.  `--quick` shrinks sweeps for CI smoke runs.  The
//! `kernels` id also writes `BENCH_kernels.json` and honours the
//! `ERIS_BENCH_BASELINE` / `ERIS_BENCH_TOLERANCE` regression gate.

use eris_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    if ids.is_empty() {
        eprintln!(
            "usage: experiments <id>... [--quick]   (ids: all {:?})",
            experiments::ALL
        );
        std::process::exit(2);
    }
    let run_list: Vec<&str> = if ids == ["all"] {
        experiments::ALL.to_vec()
    } else {
        ids
    };
    for (i, id) in run_list.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(78));
        }
        let t = std::time::Instant::now();
        experiments::run(id, quick);
        eprintln!("[{} finished in {:.1}s]", id, t.elapsed().as_secs_f64());
    }
}
