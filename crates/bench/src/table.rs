//! Minimal aligned text-table printer for experiment output.

/// A simple left-aligned text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a        "));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        TextTable::new(&["a", "b"]).row(vec!["only-one".into()]);
    }
}
