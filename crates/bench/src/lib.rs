//! # eris-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation (see DESIGN.md for
//! the experiment index).  Every module exposes a `run()` that executes the
//! experiment on the simulated machines and prints the same rows/series the
//! paper reports; the `experiments` binary dispatches by id.
//!
//! Absolute numbers are simulator-scale; the reproduction targets the
//! *shapes*: who wins, by what factor, and where the crossovers fall.
//! EXPERIMENTS.md records paper-vs-measured for every artifact.

pub mod experiments;
pub mod table;

pub use table::TextTable;

/// Scale-model helper: the paper's experiments run at tera-scale; this
/// harness loads `real` elements and models `virtual_size` of them, so the
/// cost model sees paper-scale structures while the wall-clock stays
/// laptop-scale (see DESIGN.md "Hardware substitution").
pub fn scale_for(virtual_size: u64, real: u64) -> u64 {
    (virtual_size / real).max(1)
}

/// Pretty-print a size like `16M`, `2B`.
pub fn fmt_size(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{}B", n / 1_000_000_000)
    } else if n >= 1_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000 {
        format!("{}K", n / 1_000)
    } else {
        n.to_string()
    }
}

/// Pretty-print ops/s like `12.3 M/s`.
pub fn fmt_rate(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1e9 {
        format!("{:.2} G/s", ops_per_sec / 1e9)
    } else if ops_per_sec >= 1e6 {
        format!("{:.2} M/s", ops_per_sec / 1e6)
    } else if ops_per_sec >= 1e3 {
        format!("{:.2} K/s", ops_per_sec / 1e3)
    } else {
        format!("{ops_per_sec:.2} /s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_size(16_000_000), "16M");
        assert_eq!(fmt_size(2_000_000_000), "2B");
        assert_eq!(fmt_size(512), "512");
        assert_eq!(fmt_rate(12_300_000.0), "12.30 M/s");
        assert_eq!(scale_for(1 << 30, 1 << 20), 1024);
        assert_eq!(scale_for(100, 1000), 1);
    }
}
