//! The dynamic workload of Section 4.3 (Figure 13).
//!
//! *"a workload that randomly accesses the full key range (lookup) of 512
//! million keys for an initial period of 10 seconds.  After this period, the
//! workload changes drastically such that only half of all keys (in the
//! range from 128M to 384M) are accessed afterwards.  In the remaining time
//! of the experiment, the workload is changed 4 more times with 20 seconds
//! between any two changes.  These remaining changes are only slight changes
//! which are simulated by shifting the key range of interest by 8 million to
//! the left."*

/// One phase of a dynamic workload: a hot key range active until `until_s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Phase end, in (virtual) seconds since experiment start.
    pub until_s: u64,
    /// Inclusive lower bound of the accessed key range.
    pub lo: u64,
    /// Exclusive upper bound of the accessed key range.
    pub hi: u64,
}

/// A timeline of hot ranges.
#[derive(Debug, Clone)]
pub struct DynamicWorkload {
    phases: Vec<Phase>,
}

impl DynamicWorkload {
    /// Build from explicit phases (monotone `until_s`).
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty());
        assert!(
            phases.windows(2).all(|w| w[0].until_s < w[1].until_s),
            "phases must have increasing end times"
        );
        assert!(phases.iter().all(|p| p.lo < p.hi));
        DynamicWorkload { phases }
    }

    /// The exact Section 4.3 schedule, parameterized by the key count so
    /// scaled-down runs keep the same shape.  With `keys = 512 << 20` this
    /// is the paper's configuration (phase ends at 10 s, then every 20 s;
    /// half-range from keys/4 to 3*keys/4; shifts of keys/64 = 8 M).
    pub fn paper_schedule(keys: u64) -> Self {
        let half_lo = keys / 4;
        let half_hi = 3 * keys / 4;
        let shift = keys / 64;
        let mut phases = vec![Phase {
            until_s: 10,
            lo: 0,
            hi: keys,
        }];
        for i in 0..5u64 {
            phases.push(Phase {
                until_s: 10 + 20 * (i + 1),
                lo: half_lo - i * shift,
                hi: half_hi - i * shift,
            });
        }
        DynamicWorkload::new(phases)
    }

    /// The hot range at time `t_s`; the last phase extends to infinity.
    pub fn range_at(&self, t_s: f64) -> (u64, u64) {
        for p in &self.phases {
            if t_s < p.until_s as f64 {
                return (p.lo, p.hi);
            }
        }
        let last = self.phases.last().unwrap();
        (last.lo, last.hi)
    }

    /// Total scheduled duration in seconds.
    pub fn duration_s(&self) -> u64 {
        self.phases.last().unwrap().until_s
    }

    /// The phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Times at which the workload changes (phase boundaries except the end).
    pub fn change_times(&self) -> Vec<u64> {
        self.phases[..self.phases.len() - 1]
            .iter()
            .map(|p| p.until_s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_matches_section_4_3() {
        let w = DynamicWorkload::paper_schedule(512 << 20);
        assert_eq!(w.duration_s(), 110, "10s + 5 phases x 20s");
        assert_eq!(w.range_at(0.0), (0, 512 << 20));
        assert_eq!(w.range_at(9.9), (0, 512 << 20));
        // First change: half of all keys, 128M..384M.
        assert_eq!(w.range_at(10.0), (128 << 20, 384 << 20));
        // Each further change shifts left by 8M.
        assert_eq!(w.range_at(30.0), ((128 - 8) << 20, (384 - 8) << 20));
        assert_eq!(w.range_at(50.0), ((128 - 16) << 20, (384 - 16) << 20));
        assert_eq!(w.range_at(109.0), ((128 - 32) << 20, (384 - 32) << 20));
        // Beyond the schedule, the last phase persists.
        assert_eq!(w.range_at(1000.0), ((128 - 32) << 20, (384 - 32) << 20));
        assert_eq!(w.change_times(), vec![10, 30, 50, 70, 90]);
    }

    #[test]
    fn scaled_schedule_keeps_shape() {
        let w = DynamicWorkload::paper_schedule(1 << 20);
        let (lo, hi) = w.range_at(15.0);
        assert_eq!(hi - lo, (1 << 20) / 2);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn non_monotone_phases_rejected() {
        DynamicWorkload::new(vec![
            Phase {
                until_s: 10,
                lo: 0,
                hi: 1,
            },
            Phase {
                until_s: 10,
                lo: 0,
                hi: 1,
            },
        ]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::keygen::{KeyGen, Uniform};
    use proptest::prelude::*;

    /// Build a valid workload from `(duration, lo, width)` triples —
    /// durations are at least 1, so `until_s` is strictly increasing by
    /// construction and every phase is at least one second wide.
    fn workload(spec: &[(u64, u64, u64)]) -> DynamicWorkload {
        let mut until = 0;
        DynamicWorkload::new(
            spec.iter()
                .map(|&(d, lo, w)| {
                    until += d;
                    Phase {
                        until_s: until,
                        lo,
                        hi: lo + w,
                    }
                })
                .collect(),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The boundary rule: at exactly `until_s` the *next* phase
        /// applies; half a second earlier the current one still does;
        /// past the schedule the last phase persists forever.
        #[test]
        fn boundary_at_until_s_switches_to_the_next_phase(
            spec in proptest::collection::vec((1u64..50, 0u64..1000, 1u64..1000), 1..8),
        ) {
            let w = workload(&spec);
            let phases = w.phases().to_vec();
            let last = phases[phases.len() - 1];
            for (i, p) in phases.iter().enumerate() {
                let at = phases.get(i + 1).copied().unwrap_or(last);
                prop_assert_eq!(w.range_at(p.until_s as f64), (at.lo, at.hi));
                prop_assert_eq!(w.range_at(p.until_s as f64 - 0.5), (p.lo, p.hi));
            }
            prop_assert_eq!(w.range_at(last.until_s as f64 + 1e9), (last.lo, last.hi));
        }

        /// `range_at` agrees with the spec's linear-scan oracle (first
        /// phase whose end lies beyond `t`), and the active phase index
        /// is monotone in time.
        #[test]
        fn range_at_matches_the_linear_scan_oracle_and_is_monotone(
            spec in proptest::collection::vec((1u64..50, 0u64..1000, 1u64..1000), 1..8),
            times in proptest::collection::vec(0u64..2000, 1..32),
        ) {
            let w = workload(&spec);
            let phases = w.phases();
            let mut sorted = times.clone();
            sorted.sort_unstable();
            let mut last_idx = 0usize;
            for t in sorted {
                // Oracle: first phase with t < until_s, else the last.
                let idx = phases
                    .iter()
                    .position(|p| (t as f64) < p.until_s as f64)
                    .unwrap_or(phases.len() - 1);
                prop_assert_eq!(w.range_at(t as f64), (phases[idx].lo, phases[idx].hi));
                prop_assert!(idx >= last_idx, "phase index went backwards");
                last_idx = idx;
            }
        }

        /// Hot-range membership: keys generated for the active phase all
        /// fall inside that phase's declared `[lo, hi)` range — the
        /// contract the balancer experiments rely on when they retarget
        /// generators at phase boundaries.
        #[test]
        fn keys_drawn_for_the_active_phase_stay_in_its_range(
            spec in proptest::collection::vec((1u64..50, 0u64..1000, 1u64..1000), 1..8),
            t in 0u64..500,
            seed in proptest::prelude::any::<u64>(),
        ) {
            let w = workload(&spec);
            let (lo, hi) = w.range_at(t as f64);
            prop_assert!(lo < hi, "active range must be non-empty");
            prop_assert!(
                w.phases().iter().any(|p| p.lo == lo && p.hi == hi),
                "returned range must be one of the declared phases"
            );
            let mut g = Uniform::new(seed, lo, hi);
            for _ in 0..64 {
                let k = g.next_key();
                prop_assert!((lo..hi).contains(&k), "key {k} outside [{lo}, {hi})");
            }
        }
    }
}
