//! The "storm" scenario: sustained skewed traffic with shifting hotspots.
//!
//! [`DynamicWorkload`](crate::dynamic::DynamicWorkload) models the paper's
//! Figure 13 timeline: a hot *range* that jumps at phase boundaries.  A storm
//! extends each phase with the knobs a population of millions of clients
//! actually turns:
//!
//! * **skew** — a Zipf exponent applied *inside* the hot range, so the range
//!   is not just hot but unevenly hot;
//! * **drift** — the hot range slides continuously (keys/second) instead of
//!   teleporting at boundaries;
//! * **mix** — a per-phase upsert fraction (read-mostly warmup, write surges);
//! * **load** — an open-loop arrival-rate multiplier relative to a base rate
//!   the driver calibrates, so flash crowds oversubscribe the engine instead
//!   of politely waiting for it.
//!
//! The module is pure policy: it computes *what the traffic looks like at
//! virtual time t*.  The storm experiment in `eris-bench` owns the engine,
//! publishes [`StormParams`] to per-AEU generators, and meters arrivals with
//! [`Storm::load_between`].

use crate::dynamic::{DynamicWorkload, Phase};
use crate::keygen::{KeyGen, Uniform, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One phase of a storm: the Figure 13 hot range plus skew/mix/load knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormPhase {
    /// Phase end, in (virtual) seconds since storm start.
    pub until_s: u64,
    /// Hot range at phase *start* (drift moves it afterwards).
    pub hot_lo: u64,
    /// Exclusive upper bound of the hot range at phase start.
    pub hot_hi: u64,
    /// Fraction of accesses drawn from the hot range; the rest are uniform
    /// over the full domain.  `0.0` means the phase is uniform.
    pub hot_fraction: f64,
    /// Zipf exponent *within* the hot range (`0.0` = uniform inside it).
    pub theta: f64,
    /// Signed hot-range drift in keys per virtual second.  The range keeps
    /// its width and clamps at the domain edges.
    pub drift_per_s: i64,
    /// Fraction of commands that are upserts (the rest are lookups).
    pub write_fraction: f64,
    /// Open-loop arrival-rate multiplier relative to the driver's base rate.
    pub load: f64,
}

/// The storm parameters in effect at one instant, drift already applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormParams {
    /// Index of the active phase.
    pub phase: usize,
    /// Hot range lower bound after drift.
    pub hot_lo: u64,
    /// Hot range upper bound after drift (width is preserved).
    pub hot_hi: u64,
    /// See [`StormPhase::hot_fraction`].
    pub hot_fraction: f64,
    /// See [`StormPhase::theta`].
    pub theta: f64,
    /// See [`StormPhase::write_fraction`].
    pub write_fraction: f64,
    /// See [`StormPhase::load`].
    pub load: f64,
}

/// A full storm timeline over a dense key domain `[0, domain)`.
#[derive(Debug, Clone)]
pub struct Storm {
    domain: u64,
    phases: Vec<StormPhase>,
}

impl Storm {
    /// Build from explicit phases.  Panics on non-monotone end times, hot
    /// ranges outside the domain, fractions outside `[0, 1]`, or Zipf
    /// exponents outside `[0,1)∪(1,2)`.
    pub fn new(domain: u64, phases: Vec<StormPhase>) -> Self {
        assert!(domain > 0);
        assert!(!phases.is_empty());
        assert!(
            phases.windows(2).all(|w| w[0].until_s < w[1].until_s),
            "phases must have increasing end times"
        );
        for p in &phases {
            assert!(
                p.hot_lo < p.hot_hi && p.hot_hi <= domain,
                "hot range in domain"
            );
            assert!(
                (0.0..=1.0).contains(&p.hot_fraction),
                "hot_fraction in [0,1]"
            );
            assert!(
                (0.0..=1.0).contains(&p.write_fraction),
                "write_fraction in [0,1]"
            );
            assert!(
                (0.0..2.0).contains(&p.theta) && p.theta != 1.0,
                "theta in [0,1)∪(1,2)"
            );
            assert!(p.load >= 0.0, "load is a non-negative multiplier");
        }
        Storm { domain, phases }
    }

    /// A six-phase schedule patterned on the Section 4.3 timeline, with the
    /// storm knobs layered on.  `keys` sets the domain; `time_div` divides
    /// every phase length (1 = the paper's 110 s shape, 5 = a 22 s squall
    /// for CI).  Phases:
    ///
    /// 1. uniform warmup over the full domain, read-mostly;
    /// 2. a Zipf hotspot over the middle half, arrival surge begins;
    /// 3. the hotspot *drifts* left by `keys/64` over the phase;
    /// 4. a write surge (50% upserts) on the drifted range;
    /// 5. a flash crowd: a narrow (`keys/16`) near-0.99-Zipf spike at 1.6×
    ///    the base arrival rate;
    /// 6. cooldown: uniform again at 0.6× load.
    pub fn paper_storm(keys: u64, time_div: u64) -> Self {
        assert!(time_div >= 1);
        let shift = keys / 64;
        // Phase ends at 10,30,..,110 s divided by time_div, kept monotone.
        let mut ends = [10u64, 30, 50, 70, 90, 110].map(|e| e / time_div);
        for i in 1..ends.len() {
            ends[i] = ends[i].max(ends[i - 1] + 1);
        }
        let drift_len = (ends[2] - ends[1]).max(1);
        let phases = vec![
            StormPhase {
                until_s: ends[0],
                hot_lo: 0,
                hot_hi: keys,
                hot_fraction: 0.0,
                theta: 0.0,
                drift_per_s: 0,
                write_fraction: 0.05,
                load: 1.0,
            },
            StormPhase {
                until_s: ends[1],
                hot_lo: keys / 4,
                hot_hi: 3 * keys / 4,
                hot_fraction: 0.9,
                theta: 0.8,
                drift_per_s: 0,
                write_fraction: 0.10,
                load: 1.0,
            },
            StormPhase {
                until_s: ends[2],
                hot_lo: keys / 4,
                hot_hi: 3 * keys / 4,
                hot_fraction: 0.9,
                theta: 0.8,
                drift_per_s: -((shift / drift_len) as i64),
                write_fraction: 0.20,
                load: 1.0,
            },
            StormPhase {
                until_s: ends[3],
                hot_lo: keys / 4 - shift,
                hot_hi: 3 * keys / 4 - shift,
                hot_fraction: 0.9,
                theta: 0.6,
                drift_per_s: 0,
                write_fraction: 0.50,
                load: 0.9,
            },
            StormPhase {
                until_s: ends[4],
                hot_lo: 3 * keys / 8,
                hot_hi: 3 * keys / 8 + keys / 16,
                hot_fraction: 0.95,
                theta: 0.99,
                drift_per_s: 0,
                write_fraction: 0.10,
                load: 1.6,
            },
            StormPhase {
                until_s: ends[5],
                hot_lo: 0,
                hot_hi: keys,
                hot_fraction: 0.0,
                theta: 0.0,
                drift_per_s: 0,
                write_fraction: 0.10,
                load: 0.6,
            },
        ];
        Storm::new(keys, phases)
    }

    /// The key domain `[0, domain)`.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// The phases.
    pub fn phases(&self) -> &[StormPhase] {
        &self.phases
    }

    /// Total scheduled duration in virtual seconds.
    pub fn duration_s(&self) -> u64 {
        self.phases.last().unwrap().until_s
    }

    /// The parameters in effect at virtual time `t_s`, drift applied and
    /// clamped so the range keeps its width inside the domain.  Matches the
    /// [`DynamicWorkload::range_at`] boundary rule: at exactly `until_s` the
    /// *next* phase applies; past the end the last phase persists (with its
    /// drift frozen at the phase boundary).
    pub fn params_at(&self, t_s: f64) -> StormParams {
        let mut start = 0u64;
        let mut idx = self.phases.len() - 1;
        for (i, p) in self.phases.iter().enumerate() {
            if t_s < p.until_s as f64 {
                idx = i;
                break;
            }
            start = p.until_s;
        }
        let p = &self.phases[idx];
        if idx == self.phases.len() - 1 {
            // `start` walked past the last phase when t_s >= duration; its
            // real start is the previous phase's end.
            start = if self.phases.len() >= 2 {
                self.phases[self.phases.len() - 2].until_s
            } else {
                0
            };
        }
        let dt = (t_s - start as f64)
            .max(0.0)
            .min((p.until_s - start) as f64);
        let width = p.hot_hi - p.hot_lo;
        let off = (p.drift_per_s as f64 * dt) as i64;
        let max_lo = (self.domain - width) as i64;
        let lo = (p.hot_lo as i64).saturating_add(off).clamp(0, max_lo) as u64;
        StormParams {
            phase: idx,
            hot_lo: lo,
            hot_hi: lo + width,
            hot_fraction: p.hot_fraction,
            theta: p.theta,
            write_fraction: p.write_fraction,
            load: p.load,
        }
    }

    /// Integral of the load multiplier over `[t0_s, t1_s)` in load-seconds.
    /// The open-loop driver multiplies this by its calibrated base rate to
    /// credit arrival tokens for a slice of virtual time.
    pub fn load_between(&self, t0_s: f64, t1_s: f64) -> f64 {
        assert!(t0_s <= t1_s);
        let mut total = 0.0;
        let mut cursor = t0_s;
        let mut start = 0u64;
        for p in &self.phases {
            let end = p.until_s as f64;
            if cursor < end {
                let slice = (t1_s.min(end) - cursor).max(0.0);
                total += slice * p.load;
                cursor += slice;
                if cursor >= t1_s {
                    return total;
                }
            }
            start = p.until_s;
        }
        let _ = start;
        // Past the schedule the last phase persists.
        total + (t1_s - cursor) * self.phases.last().unwrap().load
    }

    /// Project the storm down to its hot-range timeline (the Figure 13
    /// shape), e.g. to reuse balancer-era tooling that speaks
    /// [`DynamicWorkload`].  Drift is ignored; each phase contributes its
    /// starting range.
    pub fn to_dynamic(&self) -> DynamicWorkload {
        DynamicWorkload::new(
            self.phases
                .iter()
                .map(|p| Phase {
                    until_s: p.until_s,
                    lo: p.hot_lo,
                    hi: p.hot_hi,
                })
                .collect(),
        )
    }
}

/// A deterministic per-generator sampler for one storm.
///
/// Each AEU generator owns one sampler.  The driver publishes the current
/// [`StormParams`] (plus a generation counter) through shared atomics; the
/// generator calls [`retarget`](StormSampler::retarget) when the generation
/// changes, then draws keys, op kinds, and client ids.  Rebuilding the hot
/// Zipf on retarget keeps every draw reproducible from `(seed, generation)`.
pub struct StormSampler {
    seed: u64,
    rng: StdRng,
    domain: u64,
    cold: Uniform,
    hot: Zipf,
    params: StormParams,
    generation: u64,
    clients: Zipf,
    client_count: u64,
}

impl StormSampler {
    /// `clients` models the user population: client ids are Zipf-skewed
    /// (a few heavy hitters, a long tail), stable across phases.
    pub fn new(seed: u64, domain: u64, clients: u64, initial: StormParams) -> Self {
        assert!(domain > 0 && clients > 0);
        let width = initial.hot_hi - initial.hot_lo;
        StormSampler {
            seed,
            rng: StdRng::seed_from_u64(seed ^ 0x5707_1111),
            domain,
            cold: Uniform::new(seed ^ 0xC01D, 0, domain),
            hot: Zipf::new(seed, width.max(1), initial.theta, true),
            params: initial,
            generation: 0,
            clients: Zipf::new(seed ^ 0x00C1_1E57, clients, 0.9, true),
            client_count: clients,
        }
    }

    /// Adopt newly published parameters.  Cheap no-op when the generation is
    /// unchanged; otherwise the hot-range Zipf is rebuilt (seeded from
    /// `(seed, generation)` so the stream stays deterministic).
    pub fn retarget(&mut self, params: StormParams, generation: u64) {
        if generation == self.generation {
            return;
        }
        let width = params.hot_hi - params.hot_lo;
        let rebuild =
            width != self.params.hot_hi - self.params.hot_lo || params.theta != self.params.theta;
        if rebuild {
            self.hot = Zipf::new(
                self.seed ^ generation.wrapping_mul(0x9E37_79B9),
                width.max(1),
                params.theta,
                true,
            );
        }
        self.params = params;
        self.generation = generation;
    }

    /// The parameters currently in effect.
    pub fn params(&self) -> StormParams {
        self.params
    }

    /// Draw the next key: hot-range Zipf with probability `hot_fraction`,
    /// uniform over the full domain otherwise.
    #[inline]
    pub fn draw_key(&mut self) -> u64 {
        if self.params.hot_fraction > 0.0 && self.rng.gen::<f64>() < self.params.hot_fraction {
            let k = self.params.hot_lo + self.hot.next_key();
            debug_assert!(k < self.domain);
            k
        } else {
            self.cold.next_key()
        }
    }

    /// Fill a batch of keys.
    pub fn fill_keys(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.draw_key();
        }
    }

    /// Whether the next command is an upsert.
    #[inline]
    pub fn draw_write(&mut self) -> bool {
        self.rng.gen::<f64>() < self.params.write_fraction
    }

    /// The client issuing the next command (Zipf-skewed population).
    #[inline]
    pub fn draw_client(&mut self) -> u64 {
        let c = self.clients.next_key();
        debug_assert!(c < self.client_count);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm() -> Storm {
        Storm::paper_storm(1 << 20, 1)
    }

    #[test]
    fn paper_storm_keeps_the_figure_13_skeleton() {
        let s = storm();
        assert_eq!(s.duration_s(), 110);
        let d = s.to_dynamic();
        assert_eq!(d.change_times(), vec![10, 30, 50, 70, 90]);
        // Warmup is uniform over the full domain.
        let p0 = s.params_at(0.0);
        assert_eq!((p0.hot_lo, p0.hot_hi), (0, 1 << 20));
        assert_eq!(p0.hot_fraction, 0.0);
        // The hotspot phase covers the middle half, like the paper.
        let p1 = s.params_at(10.0);
        assert_eq!((p1.hot_lo, p1.hot_hi), ((1 << 20) / 4, 3 * (1 << 20) / 4));
        assert!(p1.hot_fraction > 0.5);
    }

    #[test]
    fn boundary_rule_matches_dynamic_workload() {
        let s = storm();
        // At exactly until_s the next phase applies, same as range_at.
        assert_eq!(s.params_at(9.999).phase, 0);
        assert_eq!(s.params_at(10.0).phase, 1);
        // Past the schedule the last phase persists.
        assert_eq!(s.params_at(110.0).phase, 5);
        assert_eq!(s.params_at(1e9).phase, 5);
    }

    #[test]
    fn drift_slides_the_range_and_preserves_width() {
        let keys = 1u64 << 20;
        let s = storm();
        let start = s.params_at(30.0);
        let end = s.params_at(49.999);
        assert_eq!(start.hot_hi - start.hot_lo, end.hot_hi - end.hot_lo);
        assert!(end.hot_lo < start.hot_lo, "drift is leftward");
        // Over the full phase the drift amounts to ~keys/64 (the paper's 8M
        // shift, applied continuously).
        let moved = start.hot_lo - end.hot_lo;
        let target = keys / 64;
        assert!(
            moved >= target * 9 / 10 && moved <= target,
            "moved {moved}, target {target}"
        );
    }

    #[test]
    fn drift_clamps_at_the_domain_edge() {
        let s = Storm::new(
            1000,
            vec![StormPhase {
                until_s: 100,
                hot_lo: 100,
                hot_hi: 200,
                hot_fraction: 1.0,
                theta: 0.0,
                drift_per_s: -50,
                write_fraction: 0.0,
                load: 1.0,
            }],
        );
        let p = s.params_at(99.0);
        assert_eq!((p.hot_lo, p.hot_hi), (0, 100));
        let up = Storm::new(
            1000,
            vec![StormPhase {
                until_s: 100,
                hot_lo: 100,
                hot_hi: 200,
                hot_fraction: 1.0,
                theta: 0.0,
                drift_per_s: 50,
                write_fraction: 0.0,
                load: 1.0,
            }],
        );
        let p = up.params_at(99.0);
        assert_eq!((p.hot_lo, p.hot_hi), (900, 1000));
    }

    #[test]
    fn load_integral_crosses_phase_boundaries() {
        let s = Storm::new(
            1 << 10,
            vec![
                StormPhase {
                    until_s: 10,
                    hot_lo: 0,
                    hot_hi: 1 << 10,
                    hot_fraction: 0.0,
                    theta: 0.0,
                    drift_per_s: 0,
                    write_fraction: 0.0,
                    load: 1.0,
                },
                StormPhase {
                    until_s: 20,
                    hot_lo: 0,
                    hot_hi: 1 << 10,
                    hot_fraction: 0.0,
                    theta: 0.0,
                    drift_per_s: 0,
                    write_fraction: 0.0,
                    load: 2.0,
                },
            ],
        );
        assert!((s.load_between(0.0, 10.0) - 10.0).abs() < 1e-9);
        assert!((s.load_between(5.0, 15.0) - (5.0 + 10.0)).abs() < 1e-9);
        assert!((s.load_between(10.0, 20.0) - 20.0).abs() < 1e-9);
        // Past the schedule the last phase's load persists.
        assert!((s.load_between(20.0, 25.0) - 10.0).abs() < 1e-9);
        // Summing slices equals the whole.
        let whole = s.load_between(0.0, 20.0);
        let slices: f64 = (0..20)
            .map(|u| s.load_between(u as f64, (u + 1) as f64))
            .sum();
        assert!((whole - slices).abs() < 1e-9);
    }

    #[test]
    fn sampler_respects_hot_fraction_and_membership() {
        let s = storm();
        let p = s.params_at(15.0); // hotspot phase, 90% hot
        let mut g = StormSampler::new(42, s.domain(), 1 << 20, p);
        let mut hot = 0u64;
        let n = 20_000;
        for _ in 0..n {
            let k = g.draw_key();
            assert!(k < s.domain());
            if (p.hot_lo..p.hot_hi).contains(&k) {
                hot += 1;
            }
        }
        // 90% land in the hot range plus ~half the cold 10% (the range is
        // half the domain), so ~95% total; leave slack for randomness.
        assert!(hot > n * 88 / 100, "hot hits {hot}/{n}");
    }

    #[test]
    fn sampler_skews_inside_the_hot_range() {
        // Flash-crowd phase: narrow range, theta 0.99 — the hottest slice of
        // *ranks* must dominate.  Scrambling spreads ranks over the range,
        // so measure via per-key counts instead of positions.
        let s = storm();
        let p = s.params_at(75.0);
        assert!(p.theta > 0.9);
        let width = (p.hot_hi - p.hot_lo) as usize;
        let mut g = StormSampler::new(7, s.domain(), 1 << 20, p);
        let mut counts = vec![0u32; width];
        let n = 200_000;
        for _ in 0..n {
            let k = g.draw_key();
            if (p.hot_lo..p.hot_hi).contains(&k) {
                counts[(k - p.hot_lo) as usize] += 1;
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let head: u64 = counts[..width / 100].iter().map(|&c| c as u64).sum();
        assert!(
            head > n * 30 / 100,
            "top 1% of keys must draw >30% of accesses, got {head}/{n}"
        );
    }

    #[test]
    fn sampler_is_deterministic_and_retarget_is_stable() {
        let s = storm();
        let p = s.params_at(15.0);
        let mut a = StormSampler::new(9, s.domain(), 1000, p);
        let mut b = StormSampler::new(9, s.domain(), 1000, p);
        for _ in 0..500 {
            assert_eq!(a.draw_key(), b.draw_key());
            assert_eq!(a.draw_write(), b.draw_write());
            assert_eq!(a.draw_client(), b.draw_client());
        }
        // Same-generation retarget is a no-op; new generation changes phase.
        let q = s.params_at(75.0);
        a.retarget(q, 1);
        b.retarget(q, 1);
        for _ in 0..500 {
            assert_eq!(a.draw_key(), b.draw_key());
        }
        assert_eq!(a.params(), q);
    }

    #[test]
    fn write_fraction_controls_the_mix() {
        let s = storm();
        let p = s.params_at(60.0); // write-surge phase, 50% upserts
        assert!((p.write_fraction - 0.5).abs() < 1e-9);
        let mut g = StormSampler::new(3, s.domain(), 1000, p);
        let writes = (0..10_000).filter(|_| g.draw_write()).count();
        assert!((4_000..6_000).contains(&writes), "writes {writes}");
    }

    #[test]
    fn client_population_is_skewed() {
        let s = storm();
        let mut g = StormSampler::new(5, s.domain(), 1 << 20, s.params_at(0.0));
        let mut seen = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *seen.entry(g.draw_client()).or_insert(0u64) += 1;
        }
        let mut counts: Vec<u64> = seen.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Heavy hitters exist: the top client alone is well above uniform
        // expectation (50k draws over a million clients ≈ 0.05 each).
        assert!(counts[0] > 100, "top client drew {}", counts[0]);
    }

    #[test]
    #[should_panic(expected = "hot range in domain")]
    fn out_of_domain_phase_rejected() {
        Storm::new(
            100,
            vec![StormPhase {
                until_s: 1,
                hot_lo: 50,
                hot_hi: 200,
                hot_fraction: 0.5,
                theta: 0.0,
                drift_per_s: 0,
                write_fraction: 0.0,
                load: 1.0,
            }],
        );
    }
}
