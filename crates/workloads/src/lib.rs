//! # eris-workloads — workload generators for the ERIS evaluation
//!
//! * [`keygen`] — key streams: uniform over a dense domain (the paper's
//!   static workloads), Zipf-skewed, and sequential.
//! * [`dynamic`] — the Section 4.3 dynamic workload: a timeline of hot key
//!   ranges that shifts under the engine while the load balancer adapts.
//! * [`storm`] — the dynamic workload scaled into a storm: per-phase Zipf
//!   skew, hotspot drift, read/write mix shifts, and an open-loop arrival
//!   schedule for millions of simulated clients.

pub mod dynamic;
pub mod keygen;
pub mod storm;

pub use dynamic::{DynamicWorkload, Phase};
pub use keygen::{KeyGen, Sequential, Uniform, Zipf};
pub use storm::{Storm, StormParams, StormPhase, StormSampler};
