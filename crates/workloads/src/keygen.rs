//! Key stream generators.
//!
//! The paper's static workloads draw keys *"uniformly distributed across the
//! dense key domain"*; skewed access is what triggers the load balancer.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible stream of keys.
pub trait KeyGen {
    /// The next key.
    fn next_key(&mut self) -> u64;

    /// Fill a batch of keys.
    fn fill(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_key();
        }
    }
}

/// Uniform keys over `[lo, hi)`.
pub struct Uniform {
    rng: StdRng,
    lo: u64,
    hi: u64,
}

impl Uniform {
    pub fn new(seed: u64, lo: u64, hi: u64) -> Self {
        assert!(lo < hi, "empty key range");
        Uniform {
            rng: StdRng::seed_from_u64(seed),
            lo,
            hi,
        }
    }

    /// Retarget the range (dynamic workload phase changes).
    pub fn set_range(&mut self, lo: u64, hi: u64) {
        assert!(lo < hi);
        self.lo = lo;
        self.hi = hi;
    }
}

impl KeyGen for Uniform {
    #[inline]
    fn next_key(&mut self) -> u64 {
        self.rng.gen_range(self.lo..self.hi)
    }
}

/// Sequential keys from a start value (dense bulk loads).
pub struct Sequential {
    next: u64,
}

impl Sequential {
    pub fn new(start: u64) -> Self {
        Sequential { next: start }
    }
}

impl KeyGen for Sequential {
    #[inline]
    fn next_key(&mut self) -> u64 {
        let k = self.next;
        self.next += 1;
        k
    }
}

/// Zipf-distributed keys over `[0, n)` with exponent `theta`, mapped through
/// a multiplicative hash so the hot keys are spread over the domain (rank 1
/// is the hottest *rank*, not the smallest key).
pub struct Zipf {
    rng: StdRng,
    dist: ZipfDistribution,
    n: u64,
    scramble: bool,
}

impl Zipf {
    pub fn new(seed: u64, n: u64, theta: f64, scramble: bool) -> Self {
        assert!(n > 0);
        Zipf {
            rng: StdRng::seed_from_u64(seed),
            dist: ZipfDistribution::new(n, theta),
            n,
            scramble,
        }
    }
}

impl KeyGen for Zipf {
    fn next_key(&mut self) -> u64 {
        let rank = self.dist.sample(&mut self.rng);
        if self.scramble {
            // Fibonacci hashing keeps the value in [0, n).
            (rank.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % self.n
        } else {
            rank
        }
    }
}

/// Rejection-free Zipf sampler (Gray et al., "Quickly generating
/// billion-record synthetic databases").
struct ZipfDistribution {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfDistribution {
    fn new(n: u64, theta: f64) -> Self {
        assert!(
            (0.0..2.0).contains(&theta) && theta != 1.0,
            "theta in [0,1)∪(1,2)"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        ZipfDistribution {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; Euler–Maclaurin style approximation above.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let tail = ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }
}

impl Distribution<u64> for ZipfDistribution {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64 % self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stays_in_range_and_is_seed_deterministic() {
        let mut a = Uniform::new(7, 100, 200);
        let mut b = Uniform::new(7, 100, 200);
        for _ in 0..1000 {
            let ka = a.next_key();
            assert_eq!(ka, b.next_key());
            assert!((100..200).contains(&ka));
        }
    }

    #[test]
    fn uniform_covers_the_domain() {
        let mut g = Uniform::new(3, 0, 16);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[g.next_key() as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn set_range_retargets() {
        let mut g = Uniform::new(1, 0, 10);
        g.set_range(50, 60);
        for _ in 0..100 {
            assert!((50..60).contains(&g.next_key()));
        }
    }

    #[test]
    fn sequential_counts_up() {
        let mut g = Sequential::new(5);
        let mut batch = [0u64; 4];
        g.fill(&mut batch);
        assert_eq!(batch, [5, 6, 7, 8]);
    }

    #[test]
    fn zipf_is_skewed() {
        let mut g = Zipf::new(11, 10_000, 0.99, false);
        let mut counts = vec![0u64; 10_000];
        for _ in 0..100_000 {
            counts[g.next_key() as usize] += 1;
        }
        let head: u64 = counts[..100].iter().sum();
        assert!(
            head > 30_000,
            "first 1% of ranks must draw >30% of accesses, got {head}"
        );
    }

    #[test]
    fn zipf_scrambled_spreads_hot_keys() {
        let mut g = Zipf::new(11, 1 << 20, 0.99, true);
        for _ in 0..1000 {
            assert!(g.next_key() < 1 << 20);
        }
    }
}
