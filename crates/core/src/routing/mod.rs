//! The NUMA-optimized high-throughput data command routing layer.
//!
//! Routing of a command happens in three steps (Figure 4 of the paper):
//!
//! 1. **Batch target lookup** in the object's partition table (a CSB+-tree
//!    for range-partitioned objects, a bitmap for size-partitioned ones);
//!    commands whose data segments span partitions are split.
//! 2. **Local pre-buffering**: per-target unicast buffers, a multicast
//!    buffer plus per-target reference buffers — all in the source AEU's
//!    local memory.
//! 3. **Flush**: when a buffer fills or the AEU loop starts over, the whole
//!    buffer is copied with one reservation into the target's latch-free
//!    incoming double buffer.

pub mod incoming;
pub mod outgoing;
pub mod partition_table;

pub use incoming::{BufferFull, IncomingBuffers, IncomingStats};
pub use outgoing::{FlushInfo, OutgoingBuffers};
pub use partition_table::{BitmapTable, PartitionTable, RangeTable};

use crate::command::{AeuId, DataCommand, DataObjectId, Payload};
use crate::telemetry::{CounterSnapshot, ObjectCounters, Telemetry, TelemetryShard};
use eris_numa::NodeId;
use eris_obs::{now_ns, LatencyTable, TraceStamp};
use parking_lot::RwLock;
// ordering: Relaxed is the only ordering this module imports — every
// atomic here is a monotonic routing/telemetry counter; delivery
// synchronization lives in the incoming-buffer descriptor protocol.
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

/// A command the routing layer cannot deliver.  Surfaced through
/// `Engine::submit` so callers see a typed error instead of a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingError {
    /// The command names an object id that was never registered.
    UnknownObject(DataObjectId),
    /// Point lookups need a range-partitioned object; this object is
    /// size-partitioned (a column), where keys carry no placement.
    PointOpOnSizePartitioned(DataObjectId),
}

impl std::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingError::UnknownObject(id) => {
                write!(f, "data object {} is not registered", id.0)
            }
            RoutingError::PointOpOnSizePartitioned(id) => {
                write!(
                    f,
                    "point lookups need a range-partitioned object, but object {} is size-partitioned",
                    id.0
                )
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// Sizing of the routing buffers and trace sampling.
#[derive(Debug, Clone, Copy)]
pub struct RoutingConfig {
    /// Flush threshold per outgoing target buffer, in bytes.
    pub outgoing_capacity: usize,
    /// Capacity of each of the two incoming buffers, in bytes.
    pub incoming_capacity: usize,
    /// Stamp every N-th routed command with an end-to-end trace marker
    /// (0 disables sampling entirely).
    pub trace_sample_every: u64,
    /// Capacity of each AEU's trace-event ring (rounded up to a power
    /// of two).
    pub trace_ring_capacity: usize,
}

impl Default for RoutingConfig {
    fn default() -> Self {
        // 128 single-key lookup commands (~29 bytes each) is the paper's
        // sweet spot for processing-bound routing (Figure 5).
        RoutingConfig {
            outgoing_capacity: 128 * 29,
            incoming_capacity: 1 << 20,
            trace_sample_every: 64,
            trace_ring_capacity: 1024,
        }
    }
}

/// Shared routing state: the partition tables and every AEU's incoming
/// buffers.  Tables are read on every routed command and written only
/// during load balancing, mirroring the paper's "rarely updated, frequently
/// read" design.
pub struct RoutingShared {
    tables: RwLock<Vec<Option<PartitionTable>>>,
    incoming: Vec<Arc<IncomingBuffers>>,
    telemetry: Telemetry,
}

impl RoutingShared {
    pub fn new(num_aeus: usize, cfg: RoutingConfig) -> Self {
        RoutingShared {
            tables: RwLock::new(Vec::new()),
            incoming: (0..num_aeus)
                .map(|_| Arc::new(IncomingBuffers::new(cfg.incoming_capacity)))
                .collect(),
            telemetry: Telemetry::with_ring_capacity(num_aeus, cfg.trace_ring_capacity),
        }
    }

    /// Register a data object's partition table; its id indexes the slot.
    pub fn register_object(&self, id: DataObjectId, table: PartitionTable) {
        let mut tables = self.tables.write();
        if tables.len() <= id.0 as usize {
            tables.resize_with(id.0 as usize + 1, || None);
        }
        assert!(
            tables[id.0 as usize].is_none(),
            "object {id:?} already registered"
        );
        tables[id.0 as usize] = Some(table);
        // Pre-create the object's conservation ledger.
        let _ = self.telemetry.object(id);
    }

    /// Read access to an object's partition table.
    pub fn with_table<R>(
        &self,
        id: DataObjectId,
        f: impl FnOnce(&PartitionTable) -> R,
    ) -> Result<R, RoutingError> {
        let tables = self.tables.read();
        match tables.get(id.0 as usize).and_then(|t| t.as_ref()) {
            Some(t) => Ok(f(t)),
            None => Err(RoutingError::UnknownObject(id)),
        }
    }

    /// Write access (load balancer only).
    pub fn with_table_mut<R>(
        &self,
        id: DataObjectId,
        f: impl FnOnce(&mut PartitionTable) -> R,
    ) -> Result<R, RoutingError> {
        let mut tables = self.tables.write();
        match tables.get_mut(id.0 as usize).and_then(|t| t.as_mut()) {
            Some(t) => Ok(f(t)),
            None => Err(RoutingError::UnknownObject(id)),
        }
    }

    /// The incoming buffers of one AEU.
    pub fn incoming(&self, aeu: AeuId) -> &Arc<IncomingBuffers> {
        // BOUNDS: AeuId is constructed by the router/engine from the
        // configured AEU count, which sized this vector.
        &self.incoming[aeu.index()]
    }

    /// Number of AEUs.
    pub fn num_aeus(&self) -> usize {
        self.incoming.len()
    }

    /// The engine-wide telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Patch one AEU's incoming-buffer counters into its shard snapshot
    /// (the incoming side is owned by `IncomingBuffers`, not the shard).
    fn fill_incoming(&self, aeu: usize, c: &mut CounterSnapshot) {
        let s = self.incoming[aeu].stats();
        c.incoming_writes = s.writes;
        c.incoming_rejects = s.rejects;
        c.buffer_swaps = s.swaps;
        c.swapped_bytes = s.swapped_bytes;
        c.peak_incoming_bytes = c.peak_incoming_bytes.max(s.peak_pending_bytes);
    }

    /// Engine-wide counter totals (cheap; used for per-epoch deltas).
    pub fn telemetry_totals(&self) -> CounterSnapshot {
        self.telemetry.totals_with(|i, c| self.fill_incoming(i, c))
    }

    /// A full [`crate::telemetry::TelemetrySnapshot`]: per-AEU counters
    /// with the incoming-buffer side patched in, rolled up per node via
    /// `node_of`, plus the per-object conservation ledger and histograms.
    pub fn telemetry_snapshot(&self, node_of: &[NodeId]) -> crate::telemetry::TelemetrySnapshot {
        self.telemetry
            .snapshot_with(node_of, |i, c| self.fill_incoming(i, c))
    }
}

/// Routing statistics of one source AEU.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Commands handed to `route`.
    pub commands_in: u64,
    /// Commands written to buffers after splitting (>= commands_in).
    pub commands_out: u64,
    /// Commands that had to be split across partitions.
    pub splits: u64,
    /// Successful flushes into incoming buffers.
    pub flushes: u64,
    /// Bytes moved by flushes.
    pub flush_bytes: u64,
    /// Flush attempts rejected because the target's buffer was full.
    pub flush_stalls: u64,
}

/// The per-AEU routing front end.
pub struct Router {
    src: AeuId,
    shared: Arc<RoutingShared>,
    out: OutgoingBuffers,
    /// Round-robin cursor for appends to bitmap-partitioned objects.
    rr_cursor: usize,
    pub stats: RouterStats,
    /// This AEU's telemetry shard (routing-side counters).
    tel: Arc<TelemetryShard>,
    /// Per-object conservation ledgers, cached to keep the hot path off
    /// the registry lock.
    tel_objects: Vec<Option<Arc<ObjectCounters>>>,
    /// Stamp every N-th routed command (0 disables).
    trace_sample_every: u64,
    /// Commands seen by the sampler so far.
    trace_counter: u64,
    /// The engine-wide latency table (stamp accounting).
    latency: Arc<LatencyTable>,
}

impl Router {
    pub fn new(src: AeuId, shared: Arc<RoutingShared>, cfg: RoutingConfig) -> Self {
        let n = shared.num_aeus();
        let tel = Arc::clone(shared.telemetry().shard(src));
        let latency = Arc::clone(shared.telemetry().latency());
        Router {
            src,
            shared,
            out: OutgoingBuffers::new(n, cfg.outgoing_capacity),
            rr_cursor: src.index(),
            stats: RouterStats::default(),
            tel,
            tel_objects: Vec::new(),
            trace_sample_every: cfg.trace_sample_every,
            trace_counter: 0,
            latency,
        }
    }

    /// The source AEU this router belongs to.
    pub fn src(&self) -> AeuId {
        self.src
    }

    /// The telemetry shard shared with this router's AEU.
    pub(crate) fn telemetry_shard(&self) -> &Arc<TelemetryShard> {
        &self.tel
    }

    /// The shared routing state (telemetry registry access for the AEU).
    pub(crate) fn shared(&self) -> &Arc<RoutingShared> {
        &self.shared
    }

    /// The cached conservation ledger of `id`.
    // HOT-PATH-CUT: first-touch ledger registration, as Aeu::object_ledger.
    fn object_ledger(&mut self, id: DataObjectId) -> Arc<ObjectCounters> {
        let i = id.0 as usize;
        if self.tel_objects.len() <= i {
            self.tel_objects.resize_with(i + 1, || None);
        }
        match &self.tel_objects[i] {
            Some(c) => Arc::clone(c),
            None => {
                let c = self.shared.telemetry().object(id);
                self.tel_objects[i] = Some(Arc::clone(&c));
                c
            }
        }
    }

    /// The trace stamp for the next routed command, if the deterministic
    /// 1-in-N sampler selects it.
    fn maybe_stamp(&mut self) -> Option<TraceStamp> {
        if self.trace_sample_every == 0 {
            return None;
        }
        self.trace_counter += 1;
        if self.trace_counter.is_multiple_of(self.trace_sample_every) {
            Some(TraceStamp::engine(now_ns()))
        } else {
            None
        }
    }

    /// Route one command: split by partition table, buffer, flush full
    /// targets.  Returns the flushes performed (for traffic accounting),
    /// or a [`RoutingError`] if the command is undeliverable — in which
    /// case nothing was enqueued.  Every N-th command is stamped with an
    /// end-to-end trace marker (see [`RoutingConfig::trace_sample_every`]).
    pub fn route(&mut self, cmd: DataCommand) -> Result<Vec<FlushInfo>, RoutingError> {
        let stamp = self.maybe_stamp();
        self.route_with(cmd, stamp, true)
    }

    /// Route a command stamped *by the serving layer*: the stamp was
    /// born at frame decode (it carries the `(tenant, conn, seq)`
    /// identity and the net-queue/admission spans) rather than by the
    /// router's own sampler, so this charges stamp accounting like a
    /// fresh stamp and bypasses the 1-in-N counter entirely.
    pub fn route_stamped(
        &mut self,
        cmd: DataCommand,
        stamp: TraceStamp,
    ) -> Result<Vec<FlushInfo>, RoutingError> {
        self.route_with(cmd, Some(stamp), true)
    }

    /// Route a command that already carries a trace stamp (stray
    /// forwarding): the stamp is preserved — with the caller-bumped hop
    /// count — and no new sampling happens.
    pub fn route_traced(
        &mut self,
        cmd: DataCommand,
        stamp: Option<TraceStamp>,
    ) -> Result<Vec<FlushInfo>, RoutingError> {
        self.route_with(cmd, stamp, false)
    }

    fn route_with(
        &mut self,
        cmd: DataCommand,
        mut stamp: Option<TraceStamp>,
        fresh: bool,
    ) -> Result<Vec<FlushInfo>, RoutingError> {
        self.stats.commands_in += 1;
        let had_stamp = stamp.is_some();
        let object = cmd.object;
        // Telemetry tallies of this call, published in one batch below.
        let (mut uni, mut multi, mut split) = (0u64, 0u64, 0u64);
        let mut full_targets: Vec<AeuId> = Vec::new();
        match &cmd.payload {
            Payload::Lookup { keys } => {
                let groups = self.shared.with_table(cmd.object, |t| match t {
                    PartitionTable::Range(r) => Ok(r.split_by_owner(keys)),
                    PartitionTable::Bitmap(_) => {
                        Err(RoutingError::PointOpOnSizePartitioned(cmd.object))
                    }
                })??;
                if groups.len() > 1 {
                    self.stats.splits += 1;
                    split += 1;
                }
                for (owner, group_keys) in groups {
                    let sub = DataCommand {
                        object: cmd.object,
                        ticket: cmd.ticket,
                        payload: Payload::Lookup { keys: group_keys },
                    };
                    self.stats.commands_out += 1;
                    uni += 1;
                    if self.out.push_unicast_traced(owner, &sub, stamp.take()) {
                        // ALLOC-OK: full-target list is bounded by the AEU count and
                        // lives for one routing call.
                        full_targets.push(owner);
                    }
                }
            }
            Payload::Upsert { pairs } => {
                let groups = self.shared.with_table(cmd.object, |t| match t {
                    PartitionTable::Range(r) => Some(r.split_pairs_by_owner(pairs)),
                    PartitionTable::Bitmap(_) => None,
                })?;
                match groups {
                    Some(groups) => {
                        if groups.len() > 1 {
                            self.stats.splits += 1;
                            split += 1;
                        }
                        for (owner, group_pairs) in groups {
                            let sub = DataCommand {
                                object: cmd.object,
                                ticket: cmd.ticket,
                                payload: Payload::Upsert { pairs: group_pairs },
                            };
                            self.stats.commands_out += 1;
                            uni += 1;
                            if self.out.push_unicast_traced(owner, &sub, stamp.take()) {
                                // ALLOC-OK: full-target list is bounded by the AEU count and
                                // lives for one routing call.
                                full_targets.push(owner);
                            }
                        }
                    }
                    None => {
                        // Size-partitioned object: appends round-robin over
                        // the member set (NUMA-aware materialization of
                        // intermediate results).
                        let members = self.shared.with_table(cmd.object, |t| t.scan_targets())?;
                        self.rr_cursor = (self.rr_cursor + 1) % members.len();
                        // BOUNDS: the cursor was just reduced modulo `members.len()`,
                        // which `with_table` guarantees non-empty for a provisioned object.
                        let owner = members[self.rr_cursor];
                        self.stats.commands_out += 1;
                        uni += 1;
                        if self.out.push_unicast_traced(owner, &cmd, stamp.take()) {
                            // ALLOC-OK: full-target list is bounded by the AEU count and
                            // lives for one routing call.
                            full_targets.push(owner);
                        }
                    }
                }
            }
            Payload::Scan { pred, .. }
            | Payload::JoinProbe { pred, .. }
            | Payload::Materialize { pred, .. } => {
                // Scans (and the scan-shaped join-probe / materialize
                // operators) multicast to every owner intersecting the
                // predicate.
                let targets = self.shared.with_table(cmd.object, |t| match (t, pred) {
                    (PartitionTable::Range(r), eris_column::Predicate::Range { lo, hi }) => {
                        r.owners_in_range(*lo, *hi)
                    }
                    (PartitionTable::Range(r), eris_column::Predicate::Equals(x)) => {
                        // A point predicate has exactly one owner; going
                        // through `owners_in_range(x, x + 1)` would lose
                        // `x == u64::MAX` to bound saturation.
                        // ALLOC-OK: one-element owner list for the point-predicate fast
                        // path, shaped like the general multicast target set.
                        vec![r.owner(*x)]
                    }
                    (t, _) => t.scan_targets(),
                })?;
                self.stats.commands_out += targets.len() as u64;
                multi += targets.len() as u64;
                // ALLOC-OK: extends the per-call full-target list (bounded by the
                // AEU count).
                full_targets.extend(self.out.push_multicast(&targets, &cmd));
            }
        }
        // Stamp accounting at the emission point: a fresh stamp enters
        // the `stamped == traced + dropped` ledger only when its marker
        // actually hit a unicast buffer (multicast deliveries are never
        // stamped).  A *forwarded* stamp was counted at its original
        // stamping; if it could not be re-emitted here it is charged as
        // dropped so the ledger stays exact.
        if had_stamp {
            if stamp.is_none() {
                if fresh {
                    self.latency.on_stamped();
                }
            } else if !fresh {
                self.latency.on_dropped(1);
            }
        }
        let c = &self.tel.counters;
        c.commands_routed.fetch_add(1, Relaxed);
        if uni > 0 {
            c.commands_unicast.fetch_add(uni, Relaxed);
        }
        if multi > 0 {
            c.commands_multicast.fetch_add(multi, Relaxed);
        }
        if split > 0 {
            c.command_splits.fetch_add(split, Relaxed);
        }
        c.peak_outgoing_bytes
            .fetch_max(self.out.peak_pending_bytes() as u64, Relaxed);
        // Conservation ledger: every sub-command enqueued towards an owner
        // must eventually be counted as executed by that owner.
        let enqueued = uni + multi;
        if enqueued > 0 {
            self.object_ledger(object)
                .enqueued
                .fetch_add(enqueued, Relaxed);
        }
        let mut flushed = Vec::new();
        for t in full_targets {
            self.flush_target(t, &mut flushed);
        }
        Ok(flushed)
    }

    fn flush_target(&mut self, target: AeuId, flushed: &mut Vec<FlushInfo>) {
        match self.out.flush_into(target, self.shared.incoming(target)) {
            Ok(Some(info)) => {
                self.stats.flushes += 1;
                self.stats.flush_bytes += info.bytes;
                let c = &self.tel.counters;
                c.flushes.fetch_add(1, Relaxed);
                c.flush_commands.fetch_add(info.commands, Relaxed);
                c.flush_bytes.fetch_add(info.bytes, Relaxed);
                // ALLOC-OK: flush summaries accumulate into the caller's reusable
                // report vector, one entry per flushed target.
                flushed.push(info);
            }
            Ok(None) => {}
            Err(BufferFull) => {
                self.stats.flush_stalls += 1;
                self.tel.counters.flush_stalls.fetch_add(1, Relaxed);
            }
        }
    }

    /// End-of-loop flush of every pending target (routing step 3 "or the
    /// AEU starts over its processing loop").  Targets whose incoming
    /// buffer is full stay pending for the next round.
    pub fn flush_all(&mut self) -> Vec<FlushInfo> {
        let mut flushed = Vec::new();
        for t in self.out.pending_targets() {
            self.flush_target(t, &mut flushed);
        }
        self.out.reclaim_multicast();
        flushed
    }

    /// True when nothing is waiting in the outgoing buffers.
    pub fn is_drained(&self) -> bool {
        self.out.is_drained()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eris_column::{Aggregate, Predicate};

    fn setup(num_aeus: u32, domain: u64) -> (Arc<RoutingShared>, Router) {
        let shared = Arc::new(RoutingShared::new(
            num_aeus as usize,
            RoutingConfig::default(),
        ));
        let owners: Vec<AeuId> = (0..num_aeus).map(AeuId).collect();
        shared.register_object(
            DataObjectId(0),
            PartitionTable::Range(RangeTable::even(domain, &owners)),
        );
        let router = Router::new(AeuId(0), Arc::clone(&shared), RoutingConfig::default());
        (shared, router)
    }

    fn drain(shared: &RoutingShared, aeu: AeuId) -> Vec<DataCommand> {
        let mut out = Vec::new();
        shared
            .incoming(aeu)
            .swap_and_consume(|d| out = DataCommand::decode_all(d));
        out
    }

    #[test]
    fn lookup_splits_across_owners() {
        let (shared, mut router) = setup(4, 400);
        router
            .route(DataCommand {
                object: DataObjectId(0),
                ticket: 5,
                payload: Payload::Lookup {
                    keys: vec![10, 110, 210, 310, 20],
                },
            })
            .unwrap();
        assert_eq!(router.stats.splits, 1);
        assert_eq!(router.stats.commands_out, 4);
        router.flush_all();
        assert!(router.is_drained());
        let c0 = drain(&shared, AeuId(0));
        assert_eq!(c0[0].payload, Payload::Lookup { keys: vec![10, 20] });
        let c3 = drain(&shared, AeuId(3));
        assert_eq!(c3[0].payload, Payload::Lookup { keys: vec![310] });
    }

    #[test]
    fn scan_multicasts_to_overlapping_owners() {
        let (shared, mut router) = setup(4, 400);
        router
            .route(DataCommand {
                object: DataObjectId(0),
                ticket: 1,
                payload: Payload::Scan {
                    pred: Predicate::Range { lo: 150, hi: 250 },
                    agg: Aggregate::Count,
                    snapshot: 0,
                },
            })
            .unwrap();
        router.flush_all();
        assert!(drain(&shared, AeuId(0)).is_empty());
        assert_eq!(drain(&shared, AeuId(1)).len(), 1);
        assert_eq!(drain(&shared, AeuId(2)).len(), 1);
        assert!(drain(&shared, AeuId(3)).is_empty());
    }

    #[test]
    fn full_scan_reaches_everyone() {
        let (shared, mut router) = setup(3, 300);
        router
            .route(DataCommand {
                object: DataObjectId(0),
                ticket: 1,
                payload: Payload::Scan {
                    pred: Predicate::All,
                    agg: Aggregate::Sum,
                    snapshot: 9,
                },
            })
            .unwrap();
        router.flush_all();
        for a in 0..3 {
            assert_eq!(drain(&shared, AeuId(a)).len(), 1, "AEU{a}");
        }
    }

    #[test]
    fn bitmap_appends_round_robin() {
        let shared = Arc::new(RoutingShared::new(3, RoutingConfig::default()));
        shared.register_object(
            DataObjectId(0),
            PartitionTable::Bitmap(BitmapTable::new(vec![AeuId(0), AeuId(1), AeuId(2)])),
        );
        let mut router = Router::new(AeuId(0), Arc::clone(&shared), RoutingConfig::default());
        for i in 0..6 {
            router
                .route(DataCommand {
                    object: DataObjectId(0),
                    ticket: i,
                    payload: Payload::Upsert {
                        pairs: vec![(i, i)],
                    },
                })
                .unwrap();
        }
        router.flush_all();
        for a in 0..3 {
            assert_eq!(drain(&shared, AeuId(a)).len(), 2, "even spread");
        }
    }

    #[test]
    fn sampler_stamps_every_nth_command() {
        let shared = Arc::new(RoutingShared::new(1, RoutingConfig::default()));
        shared.register_object(
            DataObjectId(0),
            PartitionTable::Range(RangeTable::even(100, &[AeuId(0)])),
        );
        let cfg = RoutingConfig {
            trace_sample_every: 4,
            ..Default::default()
        };
        let mut router = Router::new(AeuId(0), Arc::clone(&shared), cfg);
        for i in 0..8 {
            router
                .route(DataCommand {
                    object: DataObjectId(0),
                    ticket: i,
                    payload: Payload::Lookup { keys: vec![i] },
                })
                .unwrap();
        }
        router.flush_all();
        let mut decoded = Vec::new();
        shared
            .incoming(AeuId(0))
            .swap_and_consume(|d| decoded = DataCommand::decode_all_traced(d));
        assert_eq!(decoded.len(), 8);
        let stamped_at: Vec<usize> = decoded
            .iter()
            .enumerate()
            .filter(|(_, (_, s))| s.is_some())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(stamped_at, vec![3, 7], "1-in-4 stamps the 4th and 8th");
        assert!(decoded
            .iter()
            .filter_map(|(_, s)| *s)
            .all(|s| s.hops == 0 && s.submit_ns > 0));
        let (stamped, traced, dropped) = shared.telemetry().latency().ledger();
        assert_eq!((stamped, traced, dropped), (2, 0, 0));
    }

    #[test]
    fn forwarded_stamps_keep_their_hop_count() {
        let (shared, mut router) = setup(2, 100);
        let stamp = Some(TraceStamp {
            hops: 3,
            ..TraceStamp::engine(42)
        });
        router
            .route_traced(
                DataCommand {
                    object: DataObjectId(0),
                    ticket: 9,
                    payload: Payload::Lookup { keys: vec![60] },
                },
                stamp,
            )
            .unwrap();
        router.flush_all();
        let mut decoded = Vec::new();
        shared
            .incoming(AeuId(1))
            .swap_and_consume(|d| decoded = DataCommand::decode_all_traced(d));
        assert_eq!(decoded.len(), 1);
        assert_eq!(
            decoded[0].1,
            Some(TraceStamp {
                hops: 3,
                ..TraceStamp::engine(42)
            }),
            "the stamp rides along unchanged"
        );
        let (stamped, _, _) = shared.telemetry().latency().ledger();
        assert_eq!(stamped, 0, "re-emission never double-counts stamping");
    }

    #[test]
    fn serving_stamps_charge_the_ledger_and_carry_context() {
        let (shared, mut router) = setup(2, 100);
        let stamp = TraceStamp {
            tenant: 9,
            conn: 3,
            seq: 77,
            net_ns: 1_000,
            admit_ns: 50,
            ..TraceStamp::engine(1234)
        };
        router
            .route_stamped(
                DataCommand {
                    object: DataObjectId(0),
                    ticket: 1,
                    payload: Payload::Lookup { keys: vec![60] },
                },
                stamp,
            )
            .unwrap();
        router.flush_all();
        let mut decoded = Vec::new();
        shared
            .incoming(AeuId(1))
            .swap_and_consume(|d| decoded = DataCommand::decode_all_traced(d));
        assert_eq!(decoded.len(), 1);
        assert_eq!(
            decoded[0].1,
            Some(stamp),
            "identity and serving spans survive the wire"
        );
        let (stamped, traced, dropped) = shared.telemetry().latency().ledger();
        assert_eq!(
            (stamped, traced, dropped),
            (1, 0, 0),
            "a serving stamp enters the ledger at marker emission"
        );
    }

    #[test]
    fn threshold_crossing_flushes_inline() {
        let shared = Arc::new(RoutingShared::new(
            2,
            RoutingConfig {
                // Sampling off: `flush_bytes % 29 == 0` below relies on
                // an unstamped 29-byte-per-command byte stream.
                trace_sample_every: 0,
                outgoing_capacity: 64,
                incoming_capacity: 4096,
                ..Default::default()
            },
        ));
        shared.register_object(
            DataObjectId(0),
            PartitionTable::Range(RangeTable::even(100, &[AeuId(0), AeuId(1)])),
        );
        let mut router = Router::new(
            AeuId(0),
            Arc::clone(&shared),
            RoutingConfig {
                // Sampling off: `flush_bytes % 29 == 0` below relies on
                // an unstamped 29-byte-per-command byte stream.
                trace_sample_every: 0,
                outgoing_capacity: 64,
                incoming_capacity: 4096,
                ..Default::default()
            },
        );
        let mut flushed = Vec::new();
        for i in 0..10 {
            flushed.extend(
                router
                    .route(DataCommand {
                        object: DataObjectId(0),
                        ticket: i,
                        payload: Payload::Lookup { keys: vec![60 + i] },
                    })
                    .unwrap(),
            );
        }
        assert!(!flushed.is_empty(), "auto-flush on threshold");
        assert!(router.stats.flushes > 0);
        assert_eq!(router.stats.flush_bytes % 29, 0, "whole commands only");
    }

    #[test]
    fn unknown_object_is_a_typed_error() {
        let (_, mut router) = setup(2, 100);
        let err = router
            .route(DataCommand {
                object: DataObjectId(7),
                ticket: 0,
                payload: Payload::Lookup { keys: vec![1] },
            })
            .unwrap_err();
        assert_eq!(err, RoutingError::UnknownObject(DataObjectId(7)));
        assert!(err.to_string().contains("not registered"));
        assert!(router.is_drained(), "nothing enqueued on error");
    }

    #[test]
    fn point_lookup_on_column_is_a_typed_error() {
        let shared = Arc::new(RoutingShared::new(2, RoutingConfig::default()));
        shared.register_object(
            DataObjectId(0),
            PartitionTable::Bitmap(BitmapTable::new(vec![AeuId(0), AeuId(1)])),
        );
        let mut router = Router::new(AeuId(0), Arc::clone(&shared), RoutingConfig::default());
        let err = router
            .route(DataCommand {
                object: DataObjectId(0),
                ticket: 0,
                payload: Payload::Lookup { keys: vec![1] },
            })
            .unwrap_err();
        assert_eq!(err, RoutingError::PointOpOnSizePartitioned(DataObjectId(0)));
        let snap = shared.telemetry_snapshot(&[]);
        assert!(
            snap.conservation_holds(),
            "rejected command enqueued nothing"
        );
    }

    #[test]
    fn version_visible_after_rebuild() {
        let (shared, _) = setup(2, 100);
        shared
            .with_table_mut(DataObjectId(0), |t| {
                t.as_range_mut()
                    .unwrap()
                    .rebuild(vec![(0, AeuId(1)), (90, AeuId(0))]);
            })
            .unwrap();
        shared
            .with_table(DataObjectId(0), |t| {
                let r = t.as_range().unwrap();
                assert_eq!(r.version(), 1);
                assert_eq!(r.owner(50), AeuId(1));
            })
            .unwrap();
    }
}
