//! Partition tables: who owns which part of a data object.
//!
//! Section 3.2: *"In the clustered case, the routing table stores the
//! attribute range to AEU mapping (range partition table).  If the data
//! object is not partitioned on any attribute, the routing table only saves
//! whether or not an AEU stores a partition of that data object (bitmap
//! partition table)."*  Range tables are CSB+-trees (Section 4).

use crate::command::AeuId;
use eris_index::CsbTree;

/// Range partition table: sorted range boundaries → owning AEU.
pub struct RangeTable {
    csb: CsbTree<AeuId>,
    /// Bumped on every rebalance; AEUs use it to detect stale commands.
    version: u64,
}

impl RangeTable {
    /// Build from `(boundary, owner)` entries with strictly increasing
    /// boundaries; the first boundary is the domain minimum.
    pub fn new(entries: Vec<(u64, AeuId)>, version: u64) -> Self {
        RangeTable {
            csb: CsbTree::build(entries),
            version,
        }
    }

    /// Evenly partition `[0, domain)` over `owners` (initial partitioning).
    pub fn even(domain: u64, owners: &[AeuId]) -> Self {
        assert!(!owners.is_empty());
        let n = owners.len() as u64;
        let entries = owners
            .iter()
            .enumerate()
            .map(|(i, &a)| (domain / n * i as u64, a))
            .collect();
        Self::new(entries, 0)
    }

    /// The AEU owning `key`.
    #[inline]
    pub fn owner(&self, key: u64) -> AeuId {
        *self.csb.lookup(key)
    }

    /// Current `(boundary, owner)` pairs in key order.
    pub fn ranges(&self) -> Vec<(u64, AeuId)> {
        // ALLOC-OK: materializes the boundary list (bounded by the
        // partition count, typically tens of entries).
        self.csb.iter().map(|(b, a)| (b, *a)).collect()
    }

    /// The half-open range owned by partition index `i`, given the domain
    /// end `domain` for the last partition.
    pub fn range_of(&self, i: usize, domain: u64) -> (u64, u64) {
        let ranges = self.ranges();
        let lo = ranges[i].0;
        let hi = if i + 1 < ranges.len() {
            ranges[i + 1].0
        } else {
            domain
        };
        (lo, hi)
    }

    /// Number of ranges.
    pub fn len(&self) -> usize {
        self.csb.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Table version (bumped per rebalance).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Replace the partitioning (load balancer only).
    pub fn rebuild(&mut self, entries: Vec<(u64, AeuId)>) {
        self.csb = CsbTree::build(entries);
        self.version += 1;
    }

    /// Group `keys` by owner: returns `(owner, keys)` groups — the batch
    /// lookup + command splitting of routing step 1.
    pub fn split_by_owner(&self, keys: &[u64]) -> Vec<(AeuId, Vec<u64>)> {
        let mut groups: Vec<(AeuId, Vec<u64>)> = Vec::new();
        for &k in keys {
            let owner = self.owner(k);
            // ALLOC-OK: the split groups own their key vectors by design —
            // each becomes the payload of a per-owner sub-command.
            // ALLOC-OK: group count is bounded by the owner count.
            match groups.iter_mut().find(|(a, _)| *a == owner) {
                Some((_, v)) => v.push(k),
                None => groups.push((owner, vec![k])),
            }
        }
        groups
    }

    /// Group `(key, value)` pairs by owner.
    pub fn split_pairs_by_owner(&self, pairs: &[(u64, u64)]) -> Vec<(AeuId, Vec<(u64, u64)>)> {
        let mut groups: Vec<(AeuId, Vec<(u64, u64)>)> = Vec::new();
        for &(k, v) in pairs {
            let owner = self.owner(k);
            // ALLOC-OK: the split groups own their pair vectors by design —
            // each becomes the payload of a per-owner sub-command.
            // ALLOC-OK: group count is bounded by the owner count.
            match groups.iter_mut().find(|(a, _)| *a == owner) {
                Some((_, g)) => g.push((k, v)),
                None => groups.push((owner, vec![(k, v)])),
            }
        }
        groups
    }

    /// Owners whose range intersects `[lo, hi)` — except that
    /// `hi == u64::MAX` means unbounded-above (matching
    /// [`eris_column::Predicate::Range`]'s sentinel), so a query for
    /// `[u64::MAX, u64::MAX)` still reaches the last partition instead
    /// of silently targeting nobody: the last partition is closed at the
    /// top of the domain, there is no key beyond it.
    pub fn owners_in_range(&self, lo: u64, hi: u64) -> Vec<AeuId> {
        let ranges = self.ranges();
        let unbounded = hi == u64::MAX;
        let mut out = Vec::new();
        for (i, &(b, a)) in ranges.iter().enumerate() {
            let below_hi = unbounded || b < hi;
            let above_lo = match ranges.get(i + 1) {
                Some(r) => r.0 > lo,
                // The last partition owns everything from its boundary
                // up, u64::MAX included.
                None => true,
            };
            if below_hi && above_lo {
                // ALLOC-OK: owner list bounded by the partition count.
                out.push(a);
            }
        }
        out
    }
}

/// Bitmap partition table: the set of AEUs holding a partition.
pub struct BitmapTable {
    members: Vec<AeuId>,
    version: u64,
}

impl BitmapTable {
    pub fn new(members: Vec<AeuId>) -> Self {
        assert!(!members.is_empty());
        BitmapTable {
            members,
            version: 0,
        }
    }

    /// All AEUs storing a partition of the object (multicast target set).
    pub fn members(&self) -> &[AeuId] {
        &self.members
    }

    pub fn contains(&self, aeu: AeuId) -> bool {
        self.members.contains(&aeu)
    }

    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn set_members(&mut self, members: Vec<AeuId>) {
        assert!(!members.is_empty());
        self.members = members;
        self.version += 1;
    }
}

/// A data object's partition table.
pub enum PartitionTable {
    Range(RangeTable),
    Bitmap(BitmapTable),
}

impl PartitionTable {
    /// The owner set for a whole-object scan.
    pub fn scan_targets(&self) -> Vec<AeuId> {
        match self {
            // ALLOC-OK: scan-target lists are bounded by the owner count and
            // become the multicast target set.
            PartitionTable::Range(r) => r.ranges().iter().map(|(_, a)| *a).collect(),
            // ALLOC-OK: same — a copy of the (small) member set.
            PartitionTable::Bitmap(b) => b.members().to_vec(),
        }
    }

    /// The range table, when range partitioned.
    pub fn as_range(&self) -> Option<&RangeTable> {
        match self {
            PartitionTable::Range(r) => Some(r),
            PartitionTable::Bitmap(_) => None,
        }
    }

    pub fn as_range_mut(&mut self) -> Option<&mut RangeTable> {
        match self {
            PartitionTable::Range(r) => Some(r),
            PartitionTable::Bitmap(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aeus(n: u32) -> Vec<AeuId> {
        (0..n).map(AeuId).collect()
    }

    #[test]
    fn even_partitioning_covers_domain() {
        let t = RangeTable::even(1000, &aeus(4));
        assert_eq!(t.len(), 4);
        assert_eq!(t.owner(0), AeuId(0));
        assert_eq!(t.owner(249), AeuId(0));
        assert_eq!(t.owner(250), AeuId(1));
        assert_eq!(t.owner(999), AeuId(3));
        assert_eq!(
            t.owner(u64::MAX),
            AeuId(3),
            "keys beyond domain go to the last"
        );
        assert_eq!(t.range_of(1, 1000), (250, 500));
        assert_eq!(t.range_of(3, 1000), (750, 1000));
    }

    #[test]
    fn split_by_owner_groups_keys() {
        let t = RangeTable::even(100, &aeus(2));
        let groups = t.split_by_owner(&[1, 60, 2, 70, 3]);
        assert_eq!(groups.len(), 2);
        let g0 = groups.iter().find(|(a, _)| *a == AeuId(0)).unwrap();
        let g1 = groups.iter().find(|(a, _)| *a == AeuId(1)).unwrap();
        assert_eq!(g0.1, vec![1, 2, 3]);
        assert_eq!(g1.1, vec![60, 70]);
    }

    #[test]
    fn owners_in_range_finds_overlaps() {
        let t = RangeTable::even(100, &aeus(4));
        assert_eq!(t.owners_in_range(0, 100), aeus(4));
        assert_eq!(t.owners_in_range(30, 60), vec![AeuId(1), AeuId(2)]);
        assert_eq!(t.owners_in_range(25, 26), vec![AeuId(1)]);
        assert_eq!(t.owners_in_range(90, u64::MAX), vec![AeuId(3)]);
    }

    #[test]
    fn owners_in_range_reaches_the_top_of_the_domain() {
        let t = RangeTable::even(100, &aeus(4));
        // The top key always has an owner, however the range is phrased.
        assert_eq!(t.owners_in_range(u64::MAX, u64::MAX), vec![AeuId(3)]);
        assert_eq!(t.owners_in_range(99, u64::MAX), vec![AeuId(3)]);
        // A full-domain table (domain == u64::MAX) behaves the same at
        // its top boundary.
        let full = RangeTable::even(u64::MAX, &aeus(2));
        assert_eq!(full.owner(u64::MAX), AeuId(1));
        assert_eq!(full.owners_in_range(u64::MAX, u64::MAX), vec![AeuId(1)]);
        assert_eq!(full.owners_in_range(0, u64::MAX), aeus(2));
        // Bounded queries are unchanged by the sentinel handling.
        assert_eq!(t.owners_in_range(0, 25), vec![AeuId(0)]);
        assert_eq!(t.owners_in_range(25, 25), Vec::<AeuId>::new());
    }

    #[test]
    fn rebuild_bumps_version() {
        let mut t = RangeTable::even(100, &aeus(2));
        assert_eq!(t.version(), 0);
        t.rebuild(vec![(0, AeuId(1)), (10, AeuId(0))]);
        assert_eq!(t.version(), 1);
        assert_eq!(t.owner(5), AeuId(1));
        assert_eq!(t.owner(15), AeuId(0));
    }

    #[test]
    fn bitmap_table_members() {
        let mut b = BitmapTable::new(aeus(3));
        assert!(b.contains(AeuId(2)));
        assert!(!b.contains(AeuId(5)));
        b.set_members(vec![AeuId(5)]);
        assert!(b.contains(AeuId(5)));
        assert_eq!(b.version(), 1);
    }

    #[test]
    fn scan_targets_for_both_kinds() {
        let r = PartitionTable::Range(RangeTable::even(100, &aeus(3)));
        assert_eq!(r.scan_targets(), aeus(3));
        let b = PartitionTable::Bitmap(BitmapTable::new(aeus(2)));
        assert_eq!(b.scan_targets(), aeus(2));
    }
}
