//! Per-AEU outgoing buffers: unicast, multicast, and multicast references.
//!
//! Section 3.2: *"Each AEU uses a set of outgoing buffers — one unicast
//! buffer and one multicast reference buffer for each running AEU in the
//! system —, a multicast buffer, and two bigger incoming buffers. ...  Data
//! commands for a single AEU are written to the corresponding outgoing
//! buffer of the source AEU.  If multiple AEUs are responsible for a data
//! command, the command itself is written to the multicast buffer and
//! references to this data command are stored in the individual multicast
//! reference buffers.  If an outgoing buffer is either full or the AEU
//! starts over its processing loop, the specific outgoing buffer including
//! its multicast data commands is copied to the incoming buffer of the
//! target AEU."*
//!
//! This local pre-buffering is the throughput mechanism of Figure 5:
//! contention on the remote incoming buffer drops to one reservation per
//! *flush* instead of one per command, and the copied bytes stream
//! sequentially over the interconnect.

use super::incoming::{BufferFull, IncomingBuffers};
use crate::command::{encode_trace_marker, AeuId, DataCommand};
use eris_obs::TraceStamp;

/// Result of flushing one outgoing buffer into a target's incoming buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushInfo {
    pub target: AeuId,
    pub bytes: u64,
    pub commands: u64,
}

struct PerTarget {
    unicast: Vec<u8>,
    unicast_cmds: u64,
    /// `(offset, len)` references into the multicast buffer.
    refs: Vec<(u32, u32)>,
}

/// The outgoing side of one AEU's routing state.
pub struct OutgoingBuffers {
    targets: Vec<PerTarget>,
    multicast: Vec<u8>,
    /// Flush threshold per target, in bytes.
    capacity: usize,
    /// Commands buffered since the last flush round (for stats).
    pub commands_routed: u64,
    /// High-water mark of bytes pending towards any single target.
    peak_pending_bytes: usize,
}

impl OutgoingBuffers {
    /// Buffers towards `num_aeus` targets with a per-target flush threshold
    /// of `capacity` bytes.
    pub fn new(num_aeus: usize, capacity: usize) -> Self {
        assert!(capacity > 0);
        OutgoingBuffers {
            targets: (0..num_aeus)
                .map(|_| PerTarget {
                    unicast: Vec::new(),
                    unicast_cmds: 0,
                    refs: Vec::new(),
                })
                .collect(),
            multicast: Vec::new(),
            capacity,
            commands_routed: 0,
            peak_pending_bytes: 0,
        }
    }

    /// The flush threshold in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buffer a command for a single target.  Returns `true` when the
    /// target's buffer crossed the flush threshold.
    pub fn push_unicast(&mut self, target: AeuId, cmd: &DataCommand) -> bool {
        self.push_unicast_traced(target, cmd, None)
    }

    /// [`OutgoingBuffers::push_unicast`], optionally preceded by an
    /// in-band trace marker.  The marker and its command are appended in
    /// one call and the whole unicast run is flushed as one contiguous
    /// copy, so the pair stays adjacent all the way into the target's
    /// incoming buffer.  Markers are not counted as commands — flush and
    /// delivery accounting see the identical stream either way.
    pub fn push_unicast_traced(
        &mut self,
        target: AeuId,
        cmd: &DataCommand,
        trace: Option<TraceStamp>,
    ) -> bool {
        // BOUNDS: `targets` is sized to the AEU count at construction and
        // AeuId indexes come from the same topology.
        let t = &mut self.targets[target.index()];
        if let Some(stamp) = trace {
            encode_trace_marker(cmd.object, stamp, &mut t.unicast);
        }
        cmd.encode(&mut t.unicast);
        t.unicast_cmds += 1;
        self.commands_routed += 1;
        let pending = self.pending_bytes(target);
        self.peak_pending_bytes = self.peak_pending_bytes.max(pending);
        pending >= self.capacity
    }

    /// Buffer one command for many targets: the command body is stored once
    /// in the multicast buffer, each target gets a reference.
    /// Returns the targets that crossed the flush threshold.
    pub fn push_multicast(&mut self, targets: &[AeuId], cmd: &DataCommand) -> Vec<AeuId> {
        let off = self.multicast.len() as u32;
        cmd.encode(&mut self.multicast);
        let len = self.multicast.len() as u32 - off;
        // ALLOC-OK: per-call list of targets that crossed the flush
        // threshold — bounded by the multicast fan-out.
        let mut full = Vec::new();
        for &t in targets {
            // BOUNDS: `targets` is sized to the AEU count at construction.
            // ALLOC-OK: multicast reference lists grow amortized with the
            // batch and are drained every flush.
            self.targets[t.index()].refs.push((off, len));
            self.commands_routed += 1;
            let pending = self.pending_bytes(t);
            self.peak_pending_bytes = self.peak_pending_bytes.max(pending);
            if pending >= self.capacity {
                full.push(t);
            }
        }
        full
    }

    /// High-water mark of bytes pending towards any single target since
    /// construction (telemetry gauge).
    pub fn peak_pending_bytes(&self) -> usize {
        self.peak_pending_bytes
    }

    /// Bytes currently pending towards `target` (unicast + referenced
    /// multicast commands).
    pub fn pending_bytes(&self, target: AeuId) -> usize {
        // BOUNDS: `targets` is sized to the AEU count at construction and
        // AeuId indexes come from the same topology.
        let t = &self.targets[target.index()];
        t.unicast.len() + t.refs.iter().map(|&(_, l)| l as usize).sum::<usize>()
    }

    /// Pending command count towards `target`.
    pub fn pending_commands(&self, target: AeuId) -> u64 {
        // BOUNDS: `targets` is sized to the AEU count at construction and
        // AeuId indexes come from the same topology.
        let t = &self.targets[target.index()];
        t.unicast_cmds + t.refs.len() as u64
    }

    /// Targets with anything pending.
    pub fn pending_targets(&self) -> Vec<AeuId> {
        (0..self.targets.len() as u32)
            .map(AeuId)
            .filter(|t| self.pending_bytes(*t) > 0)
            .collect()
    }

    /// Copy everything pending for `target` into its incoming buffer as one
    /// contiguous write (routing step 3).  On success the outgoing buffer is
    /// cleared; on [`BufferFull`] it is kept for a later retry.
    pub fn flush_into(
        &mut self,
        target: AeuId,
        incoming: &IncomingBuffers,
    ) -> Result<Option<FlushInfo>, BufferFull> {
        let bytes = self.pending_bytes(target);
        if bytes == 0 {
            return Ok(None);
        }
        let commands = self.pending_commands(target);
        // Assemble unicast bytes + referenced multicast commands.
        // BOUNDS: `targets` is sized to the AEU count at construction and
        // AeuId indexes come from the same topology.
        let t = &self.targets[target.index()];
        // ALLOC-OK: one exactly-sized assembly buffer per flush; flushes
        // are batched, not per-command.
        // ALLOC-OK: extend copies below stage into that same buffer.
        let mut assembled = Vec::with_capacity(bytes);
        assembled.extend_from_slice(&t.unicast);
        for &(off, len) in &t.refs {
            // BOUNDS: (off, len) was recorded from `multicast.len()` when the
            // command was encoded; the buffer only grows until the flush.
            // ALLOC-OK: extends the pre-sized assembly buffer.
            assembled.extend_from_slice(&self.multicast[off as usize..(off + len) as usize]);
        }
        incoming.write(&assembled)?;
        // BOUNDS: `targets` is sized to the AEU count at construction and
        // AeuId indexes come from the same topology.
        let t = &mut self.targets[target.index()];
        t.unicast.clear();
        t.unicast_cmds = 0;
        t.refs.clear();
        Ok(Some(FlushInfo {
            target,
            bytes: bytes as u64,
            commands,
        }))
    }

    /// Drop the multicast buffer once no target references it anymore.
    /// Called by the AEU when it starts over its processing loop.
    pub fn reclaim_multicast(&mut self) {
        if self.targets.iter().all(|t| t.refs.is_empty()) {
            self.multicast.clear();
        }
    }

    /// True when nothing is pending anywhere.
    pub fn is_drained(&self) -> bool {
        self.targets
            .iter()
            .all(|t| t.unicast.is_empty() && t.refs.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{DataObjectId, Payload};

    fn lookup_cmd(keys: Vec<u64>) -> DataCommand {
        DataCommand {
            object: DataObjectId(1),
            ticket: 9,
            payload: Payload::Lookup { keys },
        }
    }

    #[test]
    fn unicast_flush_delivers_commands() {
        let mut out = OutgoingBuffers::new(2, 1024);
        let inc = IncomingBuffers::new(4096);
        out.push_unicast(AeuId(1), &lookup_cmd(vec![1, 2]));
        out.push_unicast(AeuId(1), &lookup_cmd(vec![3]));
        let info = out.flush_into(AeuId(1), &inc).unwrap().unwrap();
        assert_eq!(info.commands, 2);
        assert!(out.is_drained());
        let mut decoded = Vec::new();
        inc.swap_and_consume(|d| decoded = DataCommand::decode_all(d));
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], lookup_cmd(vec![1, 2]));
    }

    #[test]
    fn traced_push_keeps_command_accounting_and_carries_the_stamp() {
        let mut out = OutgoingBuffers::new(2, 1024);
        let inc = IncomingBuffers::new(4096);
        let stamp = TraceStamp {
            hops: 1,
            ..TraceStamp::engine(777)
        };
        out.push_unicast_traced(AeuId(1), &lookup_cmd(vec![1, 2]), Some(stamp));
        out.push_unicast_traced(AeuId(1), &lookup_cmd(vec![3]), None);
        assert_eq!(out.pending_commands(AeuId(1)), 2, "markers aren't commands");
        let info = out.flush_into(AeuId(1), &inc).unwrap().unwrap();
        assert_eq!(info.commands, 2);
        let mut traced = Vec::new();
        inc.swap_and_consume(|d| traced = DataCommand::decode_all_traced(d));
        assert_eq!(traced.len(), 2);
        assert_eq!(traced[0].1, Some(stamp), "stamp rides with its command");
        assert_eq!(traced[1].1, None);
    }

    #[test]
    fn threshold_reports_full() {
        let mut out = OutgoingBuffers::new(1, 40);
        assert!(!out.push_unicast(AeuId(0), &lookup_cmd(vec![1])));
        assert!(
            out.push_unicast(AeuId(0), &lookup_cmd(vec![2])),
            "40 bytes crossed"
        );
    }

    #[test]
    fn multicast_stores_body_once() {
        let mut out = OutgoingBuffers::new(3, 1024);
        let cmd = lookup_cmd(vec![7, 8, 9]);
        let full = out.push_multicast(&[AeuId(0), AeuId(2)], &cmd);
        assert!(full.is_empty());
        assert_eq!(out.multicast.len(), cmd.encoded_len(), "one body");
        assert_eq!(out.pending_bytes(AeuId(0)), cmd.encoded_len());
        assert_eq!(out.pending_bytes(AeuId(1)), 0);
        assert_eq!(out.pending_bytes(AeuId(2)), cmd.encoded_len());

        // Both targets receive the full command.
        let inc0 = IncomingBuffers::new(1024);
        let inc2 = IncomingBuffers::new(1024);
        out.flush_into(AeuId(0), &inc0).unwrap().unwrap();
        out.flush_into(AeuId(2), &inc2).unwrap().unwrap();
        for inc in [&inc0, &inc2] {
            let mut decoded = Vec::new();
            inc.swap_and_consume(|d| decoded = DataCommand::decode_all(d));
            assert_eq!(decoded, vec![cmd.clone()]);
        }
        out.reclaim_multicast();
        assert_eq!(out.multicast.len(), 0);
    }

    #[test]
    fn multicast_not_reclaimed_while_referenced() {
        let mut out = OutgoingBuffers::new(2, 1024);
        out.push_multicast(&[AeuId(0), AeuId(1)], &lookup_cmd(vec![1]));
        let inc = IncomingBuffers::new(1024);
        out.flush_into(AeuId(0), &inc).unwrap();
        out.reclaim_multicast();
        assert!(
            !out.multicast.is_empty(),
            "AEU1's reference is still pending"
        );
    }

    #[test]
    fn full_incoming_keeps_outgoing_intact() {
        let mut out = OutgoingBuffers::new(1, 1024);
        out.push_unicast(AeuId(0), &lookup_cmd(vec![1, 2, 3]));
        let tiny = IncomingBuffers::new(64);
        // Fill the incoming buffer first.
        tiny.write(&[0; 60]).unwrap();
        let r = out.flush_into(AeuId(0), &tiny);
        assert_eq!(r, Err(BufferFull));
        assert_eq!(out.pending_commands(AeuId(0)), 1, "kept for retry");
        // After the owner drains, the retry succeeds.
        tiny.swap_and_consume(|_| {});
        assert!(out.flush_into(AeuId(0), &tiny).unwrap().is_some());
    }

    #[test]
    fn flush_of_empty_target_is_none() {
        let mut out = OutgoingBuffers::new(1, 64);
        let inc = IncomingBuffers::new(64);
        assert_eq!(out.flush_into(AeuId(0), &inc).unwrap(), None);
    }

    #[test]
    fn mixed_unicast_and_multicast_arrive_together() {
        let mut out = OutgoingBuffers::new(2, 4096);
        out.push_unicast(AeuId(0), &lookup_cmd(vec![1]));
        out.push_multicast(&[AeuId(0), AeuId(1)], &lookup_cmd(vec![2]));
        let inc = IncomingBuffers::new(4096);
        let info = out.flush_into(AeuId(0), &inc).unwrap().unwrap();
        assert_eq!(info.commands, 2);
        let mut decoded = Vec::new();
        inc.swap_and_consume(|d| decoded = DataCommand::decode_all(d));
        assert_eq!(decoded.len(), 2);
    }
}

/// Model-checked interleaving exploration of the outgoing→incoming
/// handoff (routing step 3).
///
/// The outgoing buffer itself is single-owner (`&mut self`); what races
/// is its `flush_into` against the target owner's `swap_and_consume`
/// and against flushes from other source AEUs.  Under a plain
/// `cargo test` the model runs once with real threads; under
/// `RUSTFLAGS="--cfg loom"` every schedule within the preemption bound
/// is explored.  Run with `cargo test -p eris-core --lib loom_`.
#[cfg(test)]
mod loom_models {
    use super::*;
    use crate::command::{DataObjectId, Payload};
    use eris_sync::sync::Arc;
    use eris_sync::{model, thread};

    fn cmd(ticket: u64) -> DataCommand {
        DataCommand {
            object: DataObjectId(1),
            ticket,
            payload: Payload::Lookup { keys: vec![ticket] },
        }
    }

    /// Two source AEUs flush their outgoing buffers into one target's
    /// incoming buffer (sized to hold exactly one flush, forcing the
    /// keep-and-retry path) while the target owner swaps concurrently:
    /// every flushed command is consumed exactly once and decodes
    /// intact — the handoff never tears or duplicates a flush.
    #[test]
    fn loom_flush_handoff_delivers_every_command_exactly_once() {
        model(|| {
            // Room for exactly one assembled flush, so concurrent
            // flushers collide on BufferFull and retry across swaps.
            let inc = Arc::new(IncomingBuffers::new(cmd(0).encoded_len()));
            let handles: Vec<_> = [10u64, 20u64]
                .into_iter()
                .map(|ticket| {
                    let inc = Arc::clone(&inc);
                    thread::spawn(move || {
                        let mut out = OutgoingBuffers::new(1, 64);
                        out.push_unicast(AeuId(0), &cmd(ticket));
                        loop {
                            match out.flush_into(AeuId(0), &inc) {
                                Ok(info) => {
                                    assert_eq!(info.unwrap().commands, 1);
                                    assert!(out.is_drained(), "flush cleared the buffer");
                                    return;
                                }
                                Err(BufferFull) => thread::yield_now(),
                            }
                        }
                    })
                })
                .collect();
            let mut tickets = Vec::new();
            while tickets.len() < 2 {
                inc.swap_and_consume(|d| {
                    for c in DataCommand::decode_all(d) {
                        assert_eq!(c, cmd(c.ticket), "command decodes intact");
                        tickets.push(c.ticket);
                    }
                });
                thread::yield_now();
            }
            for h in handles {
                h.join().unwrap();
            }
            tickets.sort_unstable();
            assert_eq!(tickets, vec![10, 20], "each flush delivered exactly once");
        });
    }
}
