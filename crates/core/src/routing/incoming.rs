//! The latch-free incoming double buffer of an AEU.
//!
//! Section 3.2, adapted from LLAMA's multi-buffer: *"Each AEU has two
//! incoming buffers of an equal size.  One buffer is currently writable for
//! all AEUs and the other one is currently the processed data command buffer
//! of the owning AEU.  To implement incoming buffers latch-free, each of
//! them contains a 64bit wide buffer descriptor that uses 1bit for
//! determining whether the buffer is still active or not, 32bit to save the
//! current offset inside the buffer, and the remaining 31bit for storing the
//! number of active writers to the buffer."*
//!
//! Writers reserve a byte range and increment the writer count in a single
//! CAS on the descriptor; after copying their commands they decrement the
//! writer count.  The owner swaps buffers by activating the drained buffer,
//! republishing the writable index, clearing the old buffer's active bit,
//! and spinning until its writer count reaches zero — at which point every
//! reserved range has been fully written and can be processed.
//!
//! Concurrency note: this module is written against the `eris-sync`
//! facade, so a build with `RUSTFLAGS="--cfg loom"` model-checks the
//! exact shipping protocol (see the `loom_models` test module and
//! DESIGN.md § Concurrency model).

use eris_sync::cell::UnsafeCell;
use eris_sync::hint;
use eris_sync::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Descriptor bit layout: `[active:1][offset:32][writers:31]`.
const WRITERS_BITS: u32 = 31;
const WRITERS_MASK: u64 = (1 << WRITERS_BITS) - 1;
const OFFSET_SHIFT: u32 = WRITERS_BITS;
const OFFSET_MASK: u64 = 0xFFFF_FFFF;
const ACTIVE_BIT: u64 = 1 << 63;

#[inline]
fn pack(active: bool, offset: u64, writers: u64) -> u64 {
    debug_assert!(offset <= OFFSET_MASK);
    debug_assert!(writers <= WRITERS_MASK);
    (if active { ACTIVE_BIT } else { 0 }) | (offset << OFFSET_SHIFT) | writers
}

#[inline]
fn is_active(d: u64) -> bool {
    d & ACTIVE_BIT != 0
}

#[inline]
fn offset(d: u64) -> u64 {
    (d >> OFFSET_SHIFT) & OFFSET_MASK
}

#[inline]
fn writers(d: u64) -> u64 {
    d & WRITERS_MASK
}

/// Error returned when the writable buffer lacks space; the writer keeps
/// its outgoing buffer and retries after the owner's next swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferFull;

struct Slot {
    desc: AtomicU64,
    bytes: Box<[UnsafeCell<u8>]>,
}

// SAFETY: byte ranges are reserved exclusively through the descriptor CAS,
// so concurrent writers never alias; the owner only reads a buffer after
// clearing its active bit and draining the writer count.
unsafe impl Sync for Slot {}
// SAFETY: the slot owns its buffer; moving it between threads moves plain
// bytes and an atomic descriptor, neither of which is thread-bound.
unsafe impl Send for Slot {}

/// Live write/swap counters of one incoming double buffer, updated with
/// relaxed atomics from both the writer and the owner side.
#[derive(Debug, Default)]
struct LiveIncomingStats {
    writes: AtomicU64,
    rejects: AtomicU64,
    swaps: AtomicU64,
    swapped_bytes: AtomicU64,
    peak_pending_bytes: AtomicU64,
}

/// A point-in-time copy of an incoming buffer's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncomingStats {
    /// Successful reservations (one per flushed outgoing buffer).
    pub writes: u64,
    /// Writes rejected with [`BufferFull`] (the writer retries later).
    pub rejects: u64,
    /// Owner-side buffer swaps.
    pub swaps: u64,
    /// Bytes handed to the owner by those swaps.
    pub swapped_bytes: u64,
    /// High-water mark of bytes pending in the writable buffer.
    pub peak_pending_bytes: u64,
}

/// The double incoming buffer of one AEU.
pub struct IncomingBuffers {
    slots: [Slot; 2],
    writable: AtomicUsize,
    capacity: usize,
    stats: LiveIncomingStats,
}

impl IncomingBuffers {
    /// Two buffers of `capacity` bytes each.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0 && capacity as u64 <= OFFSET_MASK);
        let mk = || Slot {
            desc: AtomicU64::new(pack(false, 0, 0)),
            bytes: (0..capacity).map(|_| UnsafeCell::new(0)).collect(),
        };
        let b = IncomingBuffers {
            slots: [mk(), mk()],
            writable: AtomicUsize::new(0),
            capacity,
            stats: LiveIncomingStats::default(),
        };
        // ordering: Release publishes the zeroed buffer bytes before any
        // writer can observe the slot as active;
        // pairs-with: incoming-slot-activate.
        b.slots[0].desc.store(pack(true, 0, 0), Ordering::Release);
        b
    }

    /// Buffer capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Telemetry counters accumulated since construction.
    pub fn stats(&self) -> IncomingStats {
        // ordering: Relaxed throughout — monotonic telemetry counters
        // carry no payload and synchronize nothing.
        IncomingStats {
            writes: self.stats.writes.load(Ordering::Relaxed),
            rejects: self.stats.rejects.load(Ordering::Relaxed),
            swaps: self.stats.swaps.load(Ordering::Relaxed),
            swapped_bytes: self.stats.swapped_bytes.load(Ordering::Relaxed),
            peak_pending_bytes: self.stats.peak_pending_bytes.load(Ordering::Relaxed),
        }
    }

    /// Zero the accumulated counters (start of a measurement window).
    /// Buffered command bytes are untouched.
    pub fn reset_stats(&self) {
        // ordering: Relaxed — counter zeroing needs no synchronization
        // with concurrent bumps; the window boundary is approximate by
        // design.
        self.stats.writes.store(0, Ordering::Relaxed);
        self.stats.rejects.store(0, Ordering::Relaxed);
        self.stats.swaps.store(0, Ordering::Relaxed);
        self.stats.swapped_bytes.store(0, Ordering::Relaxed);
        self.stats.peak_pending_bytes.store(0, Ordering::Relaxed);
    }

    /// Bytes pending in the currently writable buffer.
    pub fn pending_bytes(&self) -> usize {
        // ordering: Acquire on both loads — observe the writable index
        // and descriptor no older than the owner's last publication;
        // pairs-with: incoming-writable, incoming-reserve.
        let w = self.writable.load(Ordering::Acquire);
        // BOUNDS: the writable index is only ever stored as 0 or 1 over
        // the fixed two-slot array.
        offset(self.slots[w].desc.load(Ordering::Acquire)) as usize
    }

    /// Write `data` into the writable buffer (any thread).
    ///
    /// Implements the paper's writer protocol: reserve offset + increment
    /// writer count in one CAS, copy, decrement writer count.
    // HOT-PATH-ROOT: the paper's writer protocol — every producer
    // thread runs this per command; it must never panic, allocate,
    // or block.
    pub fn write(&self, data: &[u8]) -> Result<(), BufferFull> {
        if data.len() > self.capacity {
            // A record no swap could ever make room for: rejecting it as
            // BufferFull (rather than asserting) keeps the writer
            // protocol total — the caller already handles full buffers.
            // ordering: Relaxed — telemetry counter, no payload.
            self.stats.rejects.fetch_add(1, Ordering::Relaxed);
            return Err(BufferFull);
        }
        loop {
            // ordering: Acquire pairs with the owner's Release store of
            // the republished writable index during a swap;
            // pairs-with: incoming-writable.
            let w = self.writable.load(Ordering::Acquire);
            // BOUNDS: the writable index is only ever stored as 0 or 1 over
            // the fixed two-slot array.
            let slot = &self.slots[w];
            // ordering: Acquire pairs with the owner's Release
            // (re)activation store so a writer that sees the active bit
            // also sees a fully initialized descriptor;
            // pairs-with: incoming-slot-activate, incoming-retire, incoming-slot-recycle.
            let d = slot.desc.load(Ordering::Acquire);
            if !is_active(d) {
                // The owner is mid-swap; the writable index will move.
                hint::spin_loop();
                continue;
            }
            let off = offset(d);
            if off as usize + data.len() > self.capacity {
                // ordering: Relaxed — telemetry counter, no payload.
                self.stats.rejects.fetch_add(1, Ordering::Relaxed);
                return Err(BufferFull);
            }
            let nd = pack(true, off + data.len() as u64, writers(d) + 1);
            // ordering: AcqRel — the Acquire half keeps our byte copy
            // below from floating above the reservation; the Release
            // half makes the claimed range visible to the owner's
            // retire CAS.  Failure reloads with Acquire for the retry;
            // pairs-with: incoming-reserve, incoming-slot-activate.
            if slot
                .desc
                .compare_exchange_weak(d, nd, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // Range [off, off+len) is exclusively ours.
            // BOUNDS: the descriptor CAS reserved [off, off+len) with
            // off + len <= capacity == bytes.len().
            slot.bytes[off as usize].with_mut(|dst| {
                // SAFETY: the descriptor CAS reserved [off, off+len)
                // exclusively for this writer; cells are
                // repr(transparent), so the pointer walks contiguous
                // bytes that stay in bounds (off + len <= capacity).
                unsafe {
                    std::ptr::copy_nonoverlapping(data.as_ptr(), dst, data.len());
                }
            });
            // Publish completion: writers -= 1 (offset/active untouched).
            // ordering: the Release half pairs with the owner's Acquire
            // drain-loop load so a writer count of zero proves every
            // reserved byte range is fully copied; AcqRel (not plain
            // Release) also keeps the decrement ordered against the
            // copy above on the writer side;
            // pairs-with: incoming-writer-done.
            slot.desc.fetch_sub(1, Ordering::AcqRel);
            // ordering: Relaxed — telemetry counters, no payload.
            self.stats.writes.fetch_add(1, Ordering::Relaxed);
            self.stats
                .peak_pending_bytes
                .fetch_max(off + data.len() as u64, Ordering::Relaxed);
            return Ok(());
        }
    }

    /// Owner-side swap: activate the drained buffer, retire the filled one,
    /// wait for its writers, and hand its contents to `consume`.
    ///
    /// Returns the number of bytes consumed.
    // HOT-PATH-ROOT: the owner-side swap, once per AEU step; the
    // spin-drain makes any blocking call here a latency cliff.
    pub fn swap_and_consume(&self, mut consume: impl FnMut(&[u8])) -> usize {
        // ordering: Acquire — the owner rereads its own last Release
        // store; Relaxed would do, Acquire keeps the invariant simple:
        // every `writable` load in this module is Acquire;
        // pairs-with: incoming-writable.
        let old = self.writable.load(Ordering::Acquire);
        let new = 1 - old;
        // The other buffer was fully drained by the previous swap.
        debug_assert_eq!(
            // ordering: Acquire — see the drain loop below;
            // pairs-with: incoming-writer-done, incoming-slot-recycle.
            writers(self.slots[new].desc.load(Ordering::Acquire)),
            0,
            "drained buffer must have no writers"
        );
        // Activate the fresh buffer, then republish the writable index.
        // ordering: Release on both stores, and activation strictly
        // before republication — a writer that reaches the fresh slot
        // through the new index must observe it active, and a writer
        // that reaches it early (stale CAS on a zeroed descriptor)
        // must see the zeroed offset, not a stale one;
        // pairs-with: incoming-slot-activate, incoming-writable.
        self.slots[new]
            .desc
            .store(pack(true, 0, 0), Ordering::Release);
        self.writable.store(new, Ordering::Release);
        // Retire the old buffer: clear its active bit so late CAS attempts
        // fail and writers move over to the new buffer.
        // ordering: Acquire load + AcqRel CAS — the retire must observe
        // every reservation that won its CAS before the bit flips, and
        // its Release half publishes the cleared bit to spinning writers;
        // pairs-with: incoming-retire, incoming-reserve.
        let mut d = self.slots[old].desc.load(Ordering::Acquire);
        loop {
            match self.slots[old].desc.compare_exchange_weak(
                d,
                d & !ACTIVE_BIT,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(cur) => d = cur,
            }
        }
        // Drain: every writer that reserved a range has to finish copying.
        loop {
            // ordering: Acquire pairs with each writer's AcqRel
            // `fetch_sub`; once the count reads zero, every reserved
            // range's bytes happened-before this load;
            // pairs-with: incoming-writer-done, incoming-reserve.
            let d = self.slots[old].desc.load(Ordering::Acquire);
            if writers(d) == 0 {
                break;
            }
            hint::spin_loop();
        }
        // ordering: Acquire — same pairing as the drain loop; re-read
        // for the final offset after the active bit was cleared;
        // pairs-with: incoming-writer-done, incoming-reserve.
        let filled = offset(self.slots[old].desc.load(Ordering::Acquire)) as usize;
        if filled > 0 {
            self.slots[old].bytes[0].with(|base| {
                // SAFETY: the buffer is inactive and writer-free, so no
                // writer can alias it; cells are repr(transparent) and
                // `filled <= capacity`, so the slice stays in bounds.
                let data = unsafe { std::slice::from_raw_parts(base, filled) };
                consume(data);
            });
        }
        // Leave the old buffer empty and inactive, ready for the next swap.
        // ordering: Release — the next activation of this slot must not
        // be observable before the owner is done reading its bytes;
        // pairs-with: incoming-slot-recycle.
        self.slots[old]
            .desc
            .store(pack(false, 0, 0), Ordering::Release);
        // ordering: Relaxed — telemetry counters, no payload.
        self.stats.swaps.fetch_add(1, Ordering::Relaxed);
        self.stats
            .swapped_bytes
            .fetch_add(filled as u64, Ordering::Relaxed);
        filled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn descriptor_packing_roundtrips() {
        let d = pack(true, 12345, 17);
        assert!(is_active(d));
        assert_eq!(offset(d), 12345);
        assert_eq!(writers(d), 17);
        let d = pack(false, OFFSET_MASK, WRITERS_MASK);
        assert!(!is_active(d));
        assert_eq!(offset(d), OFFSET_MASK);
        assert_eq!(writers(d), WRITERS_MASK);
    }

    #[test]
    fn write_then_consume() {
        let b = IncomingBuffers::new(1024);
        b.write(b"hello").unwrap();
        b.write(b"world").unwrap();
        assert_eq!(b.pending_bytes(), 10);
        let mut got = Vec::new();
        let n = b.swap_and_consume(|d| got.extend_from_slice(d));
        assert_eq!(n, 10);
        assert_eq!(got, b"helloworld");
        assert_eq!(b.pending_bytes(), 0);
    }

    #[test]
    fn consume_empty_is_noop() {
        let b = IncomingBuffers::new(64);
        let mut called = false;
        assert_eq!(b.swap_and_consume(|_| called = true), 0);
        assert!(!called);
    }

    #[test]
    fn full_buffer_reports_and_recovers_after_swap() {
        let b = IncomingBuffers::new(8);
        b.write(&[1; 6]).unwrap();
        assert_eq!(b.write(&[2; 4]), Err(BufferFull));
        b.swap_and_consume(|_| {});
        assert_eq!(b.write(&[2; 4]), Ok(()));
    }

    #[test]
    fn double_buffering_alternates() {
        let b = IncomingBuffers::new(64);
        for round in 0..10u8 {
            b.write(&[round; 3]).unwrap();
            let mut got = Vec::new();
            b.swap_and_consume(|d| got.extend_from_slice(d));
            assert_eq!(got, vec![round; 3]);
        }
    }

    #[test]
    fn concurrent_writers_with_spinning_owner() {
        // The real protocol under real parallelism: writers publish
        // length-prefixed records; the owner swaps continuously and must
        // recover every record intact.
        let b = Arc::new(IncomingBuffers::new(4096));
        let writers = 4;
        let per = 2000u32;
        let mut handles = Vec::new();
        for t in 0..writers {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let val = (t as u32) << 24 | i;
                    let mut rec = Vec::with_capacity(8);
                    rec.extend_from_slice(&4u32.to_le_bytes());
                    rec.extend_from_slice(&val.to_le_bytes());
                    while b.write(&rec).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut seen: Vec<u32> = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while seen.len() < (writers as usize) * per as usize {
            assert!(std::time::Instant::now() < deadline, "stalled protocol");
            b.swap_and_consume(|mut d| {
                while !d.is_empty() {
                    let len = u32::from_le_bytes(d[..4].try_into().unwrap()) as usize;
                    assert_eq!(len, 4, "record framing intact");
                    let val = u32::from_le_bytes(d[4..8].try_into().unwrap());
                    seen.push(val);
                    d = &d[8..];
                }
            });
        }
        for h in handles {
            h.join().unwrap();
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            (writers as usize) * per as usize,
            "no loss, no dup"
        );
        for t in 0..writers as u32 {
            for i in 0..per {
                assert!(seen.binary_search(&(t << 24 | i)).is_ok());
            }
        }
    }

    #[test]
    fn oversized_write_is_rejected_not_panicking() {
        // A record larger than a whole buffer can never fit, even after
        // a swap: the writer gets BufferFull (counted as a reject), and
        // the buffer stays fully usable for sane records.
        let b = IncomingBuffers::new(8);
        assert_eq!(b.write(&[0; 9]), Err(BufferFull));
        assert_eq!(b.stats().rejects, 1);
        assert_eq!(b.write(&[7; 8]), Ok(()));
        assert_eq!(b.pending_bytes(), 8);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn capacity_beyond_the_32_bit_offset_field_is_rejected() {
        // The offset field is 32 bits wide; a buffer it cannot index is
        // refused up front (the assert fires before any allocation).
        IncomingBuffers::new((OFFSET_MASK as usize) + 1);
    }

    #[test]
    fn write_at_the_exact_full_buffer_boundary() {
        // The reservation arithmetic at `offset == capacity`: a record
        // that lands exactly on the boundary is accepted, the very next
        // byte is rejected, and the swap hands back precisely
        // `capacity` bytes with the descriptor reset to zero.
        let b = IncomingBuffers::new(8);
        b.write(&[0xAA; 5]).unwrap();
        b.write(&[0xBB; 3]).unwrap(); // offset is now exactly 8 == capacity
        assert_eq!(b.pending_bytes(), 8, "offset sits on the boundary");
        assert_eq!(b.write(&[0xCC]), Err(BufferFull), "no room for one byte");
        assert_eq!(b.stats().rejects, 1);
        let mut got = Vec::new();
        let n = b.swap_and_consume(|d| got.extend_from_slice(d));
        assert_eq!(n, 8);
        assert_eq!(got, [[0xAA; 5].as_slice(), [0xBB; 3].as_slice()].concat());
        assert_eq!(b.pending_bytes(), 0, "descriptor reset after the swap");
        // The freshly activated buffer accepts a full-capacity record.
        b.write(&[0xDD; 8]).unwrap();
        assert_eq!(b.write(&[0xEE]), Err(BufferFull));
        let mut got = Vec::new();
        b.swap_and_consume(|d| got.extend_from_slice(d));
        assert_eq!(got, [0xDD; 8]);
    }

    #[test]
    fn live_writer_count_is_bounded_by_the_thread_count() {
        // A silent wrap of the 31-bit writer-count field needs either
        // >2^31 concurrent writers (impossible) or a stray decrement
        // borrowing into the offset bits.  Sample the live descriptors of
        // both slots under real contention: the observed writer count
        // must never exceed the number of writer threads — a borrow would
        // read as a count near WRITERS_MASK.
        let b = Arc::new(IncomingBuffers::new(1 << 13));
        let writers_n = 6u64;
        let per = 3000u32;
        let mut handles = Vec::new();
        for t in 0..writers_n as u32 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let rec = (t << 16 | i).to_le_bytes();
                    while b.write(&rec).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut consumed = 0usize;
        let want = writers_n as usize * per as usize * 4;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while consumed < want {
            assert!(std::time::Instant::now() < deadline, "stalled protocol");
            for s in &b.slots {
                let w = writers(s.desc.load(Ordering::Acquire));
                assert!(
                    w <= writers_n,
                    "writer count {w} exceeds {writers_n} live writers: wrapped"
                );
            }
            consumed += b.swap_and_consume(|d| assert_eq!(d.len() % 4, 0));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(consumed, want, "every record delivered");
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The descriptor pack/unpack functions round-trip every field over
        /// its full legal range: `[active:1][offset:32][writers:31]`.
        #[test]
        fn descriptor_fields_roundtrip(
            active in proptest::bool::ANY,
            off in 0u64..=OFFSET_MASK,
            wr in 0u64..=WRITERS_MASK,
        ) {
            let d = pack(active, off, wr);
            prop_assert_eq!(is_active(d), active);
            prop_assert_eq!(offset(d), off);
            prop_assert_eq!(writers(d), wr);
        }

        /// The three fields occupy disjoint bit ranges: changing one never
        /// bleeds into another, even at the saturation points of the 32-bit
        /// offset and 31-bit writer-count masks.
        #[test]
        fn descriptor_fields_are_independent(
            off_any in 0u64..=OFFSET_MASK,
            wr_any in 0u64..=WRITERS_MASK,
            off_edge in 0usize..5,
            wr_edge in 0usize..5,
        ) {
            // Bias towards the saturation points of both masks.
            let off = [0, 1, OFFSET_MASK - 1, OFFSET_MASK, off_any][off_edge];
            let wr = [0, 1, WRITERS_MASK - 1, WRITERS_MASK, wr_any][wr_edge];
            // Saturating the offset must leave writers and the active bit
            // untouched, and vice versa.
            let d = pack(false, off, wr);
            prop_assert!(!is_active(d));
            prop_assert_eq!(offset(d), off);
            prop_assert_eq!(writers(d), wr);
            // Setting the active bit changes exactly one bit.
            let da = pack(true, off, wr);
            prop_assert_eq!(d ^ da, 1u64 << 63);
            // The CAS fast paths mutate the packed word directly: writers
            // live in the low bits (fetch_sub(1) on completion) and a
            // reservation adds both an offset delta and one writer.
            if wr > 0 {
                let done = da - 1;
                prop_assert!(is_active(done));
                prop_assert_eq!(offset(done), off);
                prop_assert_eq!(writers(done), wr - 1);
            }
            if off < OFFSET_MASK && wr < WRITERS_MASK {
                let reserved = pack(true, off + 1, wr + 1);
                prop_assert_eq!(offset(reserved), off + 1);
                prop_assert_eq!(writers(reserved), wr + 1);
            }
        }

        /// The descriptor arithmetic the protocol actually performs —
        /// `pack(active, off + len, writers + 1)` on reservation, a raw
        /// `desc - 1` on completion (the `fetch_sub`) — stays exact with
        /// the writer count at the brink of its 31-bit field: no carry
        /// into the offset on the way up, no borrow out of it on the way
        /// down, and a full reserve/complete cycle restores the
        /// descriptor bit-for-bit.
        #[test]
        fn writer_count_is_exact_at_the_31_bit_brink(
            off0 in 0u64..=(OFFSET_MASK - 512),
            lens in proptest::collection::vec(1u64..16, 1..30),
        ) {
            let n = lens.len() as u64;
            for base in [0, 1, WRITERS_MASK - 30 - n, WRITERS_MASK - n] {
                let start = pack(true, off0, base);
                let mut d = start;
                let mut off = off0;
                for (i, &l) in lens.iter().enumerate() {
                    off += l;
                    d = pack(true, off, writers(d) + 1);
                    prop_assert_eq!(writers(d), base + i as u64 + 1);
                    prop_assert_eq!(offset(d), off, "no carry into the offset");
                    prop_assert!(is_active(d));
                }
                for i in 0..n {
                    d -= 1; // exactly what `desc.fetch_sub(1)` publishes
                    prop_assert_eq!(writers(d), base + n - i - 1);
                    prop_assert_eq!(offset(d), off, "no borrow out of the offset");
                    prop_assert!(is_active(d));
                }
                prop_assert_eq!(d, pack(true, off, base), "cycle restores the descriptor");
            }
        }

        /// Any interleaving of writes and swaps preserves every byte:
        /// length-framed records come out exactly once, intact, in
        /// per-producer order.
        #[test]
        fn fuzz_write_swap_sequences(
            capacity in 64usize..512,
            script in proptest::collection::vec(
                // (is_swap, record_len)
                (proptest::bool::ANY, 1usize..40),
                1..120,
            ),
        ) {
            let buf = IncomingBuffers::new(capacity);
            let mut seq = 0u8;
            let mut written: Vec<Vec<u8>> = Vec::new();
            let mut consumed: Vec<u8> = Vec::new();
            for (is_swap, len) in script {
                if is_swap {
                    buf.swap_and_consume(|d| consumed.extend_from_slice(d));
                } else {
                    let len = len.min(capacity - 2);
                    let mut rec = Vec::with_capacity(len + 2);
                    rec.push(len as u8);
                    rec.push(seq);
                    rec.extend(std::iter::repeat_n(seq ^ 0xA5, len));
                    if buf.write(&rec).is_ok() {
                        written.push(rec);
                        seq = seq.wrapping_add(1);
                    }
                }
            }
            // Final drains (double buffer: two swaps flush everything).
            buf.swap_and_consume(|d| consumed.extend_from_slice(d));
            buf.swap_and_consume(|d| consumed.extend_from_slice(d));

            // Reassemble records and compare with what was accepted.
            let mut out: Vec<Vec<u8>> = Vec::new();
            let mut rest = consumed.as_slice();
            while !rest.is_empty() {
                let len = rest[0] as usize;
                prop_assert!(rest.len() >= len + 2, "framing intact");
                out.push(rest[..len + 2].to_vec());
                rest = &rest[len + 2..];
            }
            prop_assert_eq!(out, written, "every accepted record delivered once, in order");
        }
    }
}

/// Model-checked interleaving exploration of the descriptor protocol.
///
/// Under a plain `cargo test` each model runs once with real threads (a
/// smoke test); under `RUSTFLAGS="--cfg loom"` the `eris-sync` facade
/// swaps in the loom shim and every schedule within the preemption
/// bound (`LOOM_MAX_PREEMPTIONS`, default 2) is explored exhaustively.
/// Run with `cargo test -p eris-core --lib loom_`.
#[cfg(test)]
mod loom_models {
    use super::*;
    use eris_sync::sync::Arc;
    use eris_sync::{model, thread};

    /// No write is ever lost or duplicated across a concurrent buffer
    /// swap: two writers race one swapping owner; every accepted byte
    /// comes back out exactly once.
    #[test]
    fn loom_no_lost_writes_across_buffer_swap() {
        model(|| {
            let b = Arc::new(IncomingBuffers::new(8));
            let handles: Vec<_> = [1u8, 2u8]
                .into_iter()
                .map(|tag| {
                    let b = Arc::clone(&b);
                    thread::spawn(move || {
                        while b.write(&[tag]).is_err() {
                            thread::yield_now();
                        }
                    })
                })
                .collect();
            let mut got = Vec::new();
            // One swap races the in-flight writers...
            b.swap_and_consume(|d| got.extend_from_slice(d));
            for h in handles {
                h.join().unwrap();
            }
            // ...and two quiescent swaps drain both buffers.
            b.swap_and_consume(|d| got.extend_from_slice(d));
            b.swap_and_consume(|d| got.extend_from_slice(d));
            got.sort_unstable();
            assert_eq!(
                got,
                vec![1, 2],
                "every accepted write consumed exactly once"
            );
            let st = b.stats();
            assert_eq!(st.writes, 2);
            assert_eq!(st.swapped_bytes, 2, "byte conservation across swaps");
        });
    }

    /// The 31-bit writer count never exceeds the number of live writer
    /// threads at any point the owner can observe, and never borrows
    /// into the offset field — checked at every interleaving of two
    /// writers against a swapping owner.
    #[test]
    fn loom_writer_count_stays_bounded_at_every_interleaving() {
        model(|| {
            let b = Arc::new(IncomingBuffers::new(2));
            let writers_n = 2u64;
            let handles: Vec<_> = (0..writers_n)
                .map(|t| {
                    let b = Arc::clone(&b);
                    thread::spawn(move || {
                        // Each record fills the buffer exactly, forcing
                        // the full-buffer reject path and retries across
                        // swaps.
                        while b.write(&[t as u8; 2]).is_err() {
                            thread::yield_now();
                        }
                    })
                })
                .collect();
            let mut consumed = 0usize;
            while consumed < (writers_n as usize) * 2 {
                for s in &b.slots {
                    // ordering: Acquire — observe the freshest count the
                    // protocol can publish at this point.
                    let w = writers(s.desc.load(Ordering::Acquire));
                    assert!(w <= writers_n, "writer count {w} exceeds {writers_n}");
                }
                consumed += b.swap_and_consume(|d| {
                    assert!(d.len() <= 2, "no range beyond the boundary");
                });
                thread::yield_now();
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(consumed, 4, "both boundary-filling records delivered");
        });
    }

    /// A reservation landing exactly on `offset == capacity` stays
    /// intact across a concurrent swap: the boundary write is either in
    /// the drained buffer or the fresh one, never torn between them.
    #[test]
    fn loom_full_buffer_boundary_survives_concurrent_swap() {
        model(|| {
            let b = Arc::new(IncomingBuffers::new(4));
            let w = {
                let b = Arc::clone(&b);
                thread::spawn(move || {
                    // Fills a buffer to the boundary in one reservation.
                    while b.write(&[7, 8, 9, 10]).is_err() {
                        thread::yield_now();
                    }
                })
            };
            let mut got = Vec::new();
            b.swap_and_consume(|d| got.extend_from_slice(d));
            w.join().unwrap();
            b.swap_and_consume(|d| got.extend_from_slice(d));
            b.swap_and_consume(|d| got.extend_from_slice(d));
            assert_eq!(got, vec![7, 8, 9, 10], "boundary record intact");
        });
    }
}
