//! The ERIS engine: AEU construction, the cooperative virtual-time
//! runtime, the load-balancer adaption loop, and a threaded runtime that
//! exercises the routing protocol under real parallelism.

use crate::aeu::{Aeu, AeuConfig, CommandGen, OpCounts};
use crate::balancer::{
    needs_balancing, size_balance_moves, target_boundaries, transfer_plan, BalancerConfig,
};
use crate::command::{AeuId, DataCommand, DataObjectId};
use crate::cost::CostParams;
use crate::durability::{ObjectClass, ObjectDescriptor, RedoOp, RedoSink};
use crate::monitor::{BalanceDecision, BalanceVerdict, MigrationRecord, Monitor, Sample};
use crate::results::ResultCollector;
use crate::routing::{
    BitmapTable, PartitionTable, RangeTable, Router, RoutingConfig, RoutingError, RoutingShared,
};
use crate::telemetry::{CounterSnapshot, TelemetrySnapshot};
use eris_column::ScanKernel;
use eris_index::PrefixTreeConfig;
use eris_mem::{MemoryManager, ThreadCache};
use eris_numa::{CoreId, FlowSolver, HwCounters, NodeId, Topology, VirtualClock};
use eris_obs::{now_ns, Stamped, TraceEvent, TraceStamp};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Engine configuration.
#[derive(Clone)]
pub struct EngineConfig {
    /// AEUs per node; `None` = one per core (the paper's deployment).
    pub aeus_per_node: Option<u16>,
    /// Restrict the engine to the first `k` nodes (scalability sweeps).
    pub active_nodes: Option<usize>,
    pub routing: RoutingConfig,
    pub params: CostParams,
    /// Virtual keys/rows per real key/row: experiments model paper-scale
    /// data with a real subsample (see DESIGN.md).
    pub size_scale: u64,
    /// Scale applied to partition-transfer volumes; defaults to
    /// `size_scale`.  Experiments that compress the *time* axis (Figure 13)
    /// compress moved data volume by the same factor to keep transfer
    /// durations proportional to phase lengths.
    pub transfer_scale: Option<u64>,
    /// Collect full results (tests) instead of counters only.
    pub collect_results: bool,
    pub balancer: BalancerConfig,
    /// Shape of index partitions.
    pub tree: PrefixTreeConfig,
    /// Kernel used for coalesced column sweeps: explicit SIMD (default;
    /// AVX2 lanes where detected, portable fallback otherwise), portable
    /// chunked, or the row-at-a-time scalar oracle — kept selectable for
    /// A/B checks and regression benchmarks.
    pub scan_kernel: ScanKernel,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            aeus_per_node: None,
            active_nodes: None,
            routing: RoutingConfig::default(),
            params: CostParams::default(),
            size_scale: 1,
            transfer_scale: None,
            collect_results: false,
            balancer: BalancerConfig::default(),
            tree: PrefixTreeConfig::new(8, 64),
            scan_kernel: ScanKernel::default(),
        }
    }
}

/// Oscillation-backoff state of one data object.
#[derive(Debug, Clone, Copy, Default)]
struct BackoffState {
    /// Imbalance measured when the last balancing cycle was decided.
    last_cv: f64,
    /// Current backoff length in periods.
    skip: u32,
    /// Periods left to skip.
    skip_left: u32,
    /// Fraction of the object's keys moved by the last cycle.
    last_moved_frac: f64,
    /// Virtual time the last cycle's transfers cost, in ns.
    last_cost_ns: f64,
}

/// Standard deviation over mean of a weight histogram (0 when degenerate).
fn coefficient_of_variation(weights: &[f64]) -> f64 {
    let n = weights.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mean = weights.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = weights.iter().map(|w| (w - mean) * (w - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// Kind of a data object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// Range-partitioned index over `[0, domain)`.
    Index { domain: u64 },
    /// Size-partitioned column.
    Column,
}

struct ObjectMeta {
    id: DataObjectId,
    kind: ObjectKind,
    name: String,
}

/// Aggregated outcome of one epoch.
#[derive(Debug, Clone, Default)]
pub struct EpochReport {
    /// Virtual duration of the epoch in ns.
    pub duration_ns: f64,
    pub ops: OpCounts,
    /// Virtual time spent balancing in this epoch (charged to AEUs).
    pub balance_ns: f64,
    /// Engine-wide telemetry delta of this epoch (peak gauges carry the
    /// all-time high-water mark, see `CounterSnapshot::since`).
    pub telemetry: CounterSnapshot,
}

/// Outcome of a typed graceful shutdown ([`Engine::drain_and_quiesce`]).
///
/// The report is the serving layer's proof obligation: a front end that
/// stops accepting, drains, and then observes `conservation_ok` knows
/// every admitted command was executed — nothing was silently dropped
/// between routing and execution.
#[derive(Debug, Clone)]
pub struct QuiesceReport {
    /// Epochs run to reach the drained state.
    pub epochs: u64,
    /// Per-object conservation at quiesce: enqueued == executed for
    /// every registered data object.
    pub conservation_ok: bool,
    /// Latency-trace conservation at quiesce: stamped == traced + dropped.
    pub trace_ok: bool,
    /// Commands executed over the engine's lifetime (post-drain total).
    pub commands_executed: u64,
    /// Bytes still pending in incoming buffers (must be 0 when drained).
    pub pending_bytes: usize,
}

impl QuiesceReport {
    /// True when the engine quiesced cleanly: buffers empty and both
    /// conservation ledgers balanced.
    pub fn clean(&self) -> bool {
        self.conservation_ok && self.trace_ok && self.pending_bytes == 0
    }
}

/// The ERIS storage engine on a simulated NUMA machine.
pub struct Engine {
    topo: Arc<Topology>,
    cfg: EngineConfig,
    shared: Arc<RoutingShared>,
    mem: Arc<MemoryManager>,
    results: Arc<ResultCollector>,
    aeus: Vec<Aeu>,
    node_of: Arc<Vec<NodeId>>,
    clock: VirtualClock,
    counters: HwCounters,
    objects: Vec<ObjectMeta>,
    last_balance_s: f64,
    /// Per-object oscillation backoff: when a balancing cycle moved a
    /// substantial amount of data *without* improving the imbalance — the
    /// signature of an indivisible hotspot, e.g. one scorching key that no
    /// range split can divide — the balancer backs off exponentially
    /// instead of thrashing with futile transfers.
    balance_backoff: Vec<BackoffState>,
    monitor: Monitor,
    stop: Arc<AtomicBool>,
    /// Durability sink shared with every AEU (None = volatile engine).
    sink: Option<Arc<dyn RedoSink>>,
}

impl Engine {
    /// Build an engine with one AEU per (active) core.
    pub fn new(topo: Topology, cfg: EngineConfig) -> Self {
        let topo = Arc::new(topo);
        let active_nodes = cfg
            .active_nodes
            .unwrap_or(topo.num_nodes())
            .min(topo.num_nodes());
        assert!(active_nodes > 0, "need at least one active node");

        // AEU placement: cores of the first `active_nodes` nodes.
        let mut placement: Vec<(NodeId, CoreId)> = Vec::new();
        for node in topo.nodes().take(active_nodes) {
            let cores = topo.cores_of_node(node);
            let take = cfg
                .aeus_per_node
                .map(|k| k as usize)
                .unwrap_or(cores.len())
                .min(cores.len());
            for c in cores.take(take) {
                placement.push((node, CoreId(c)));
            }
        }
        let num_aeus = placement.len();
        let node_of: Arc<Vec<NodeId>> = Arc::new(placement.iter().map(|(n, _)| *n).collect());

        let shared = Arc::new(RoutingShared::new(num_aeus, cfg.routing));
        let mem = Arc::new(MemoryManager::new(&topo));
        let results = Arc::new(if cfg.collect_results {
            ResultCollector::collecting()
        } else {
            ResultCollector::new()
        });

        let counters = HwCounters::new(&topo);
        let mut aeus = Vec::with_capacity(num_aeus);
        for (i, (node, core)) in placement.into_iter().enumerate() {
            let id = AeuId(i as u32);
            let aeus_on_node = node_of.iter().filter(|n| **n == node).count() as f64;
            let spec = topo.node_spec(node);
            let aeu_cfg = AeuConfig {
                params: cfg.params,
                llc_share_bytes: (spec.llc_mib as f64) * 1048576.0 / aeus_on_node,
                size_scale: cfg.size_scale,
                local_latency_ns: spec.local_latency_ns,
                node_of: Arc::clone(&node_of),
                scan_kernel: cfg.scan_kernel,
            };
            let router = Router::new(id, Arc::clone(&shared), cfg.routing);
            let incoming = Arc::clone(shared.incoming(id));
            let cache = ThreadCache::new(Arc::clone(mem.node(node)));
            aeus.push(Aeu::new(
                id,
                node,
                core,
                aeu_cfg,
                router,
                incoming,
                Arc::clone(&results),
                cache,
            ));
        }

        Engine {
            topo,
            cfg,
            shared,
            mem,
            results,
            aeus,
            node_of,
            clock: VirtualClock::new(),
            counters,
            objects: Vec::new(),
            last_balance_s: 0.0,
            balance_backoff: Vec::new(),
            monitor: Monitor::new(64),
            stop: Arc::new(AtomicBool::new(false)),
            sink: None,
        }
    }

    /// Attach (or detach) a durability sink.  Every AEU reports its
    /// applied mutations there; object creations and balancing barriers
    /// are reported by the engine itself.  Attach only while quiesced
    /// (freshly built or drained) — mutations applied before the sink was
    /// attached are not retroactively journaled.
    pub fn set_redo_sink(&mut self, sink: Option<Arc<dyn RedoSink>>) {
        for aeu in self.aeus.iter_mut() {
            aeu.set_redo_sink(sink.clone());
        }
        self.sink = sink;
    }

    /// True when a durability sink is attached.
    pub fn has_redo_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// The platform the engine runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of AEUs.
    pub fn num_aeus(&self) -> usize {
        self.aeus.len()
    }

    /// All AEU ids.
    pub fn aeu_ids(&self) -> Vec<AeuId> {
        (0..self.aeus.len() as u32).map(AeuId).collect()
    }

    /// The node an AEU runs on.
    pub fn node_of(&self, aeu: AeuId) -> NodeId {
        self.node_of[aeu.index()]
    }

    /// The shared result sink.
    pub fn results(&self) -> &Arc<ResultCollector> {
        &self.results
    }

    /// The virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Hardware counters accumulated so far.
    pub fn counters(&self) -> &HwCounters {
        &self.counters
    }

    /// Reset the traffic counters *and* the telemetry shards (start of a
    /// measurement window).
    pub fn reset_counters(&mut self) {
        self.counters.reset();
        self.reset_telemetry();
    }

    /// Zero every per-AEU telemetry shard, histogram, and incoming-buffer
    /// statistic so a measurement window starts from a clean slate.  The
    /// per-object conservation ledgers are left untouched — commands in
    /// flight at reset time would otherwise unbalance them forever.
    pub fn reset_telemetry(&mut self) {
        self.shared.telemetry().reset_shards();
        for i in 0..self.shared.num_aeus() {
            self.shared.incoming(AeuId(i as u32)).reset_stats();
        }
    }

    /// The per-node memory manager.
    pub fn memory(&self) -> &Arc<MemoryManager> {
        &self.mem
    }

    /// A consistent point-in-time snapshot of the engine's telemetry:
    /// per-AEU, per-node and engine-wide counters, merged histograms, and
    /// the per-object enqueued-equals-executed conservation ledger.
    /// Cross-node link traffic from the hardware-counter model is
    /// attributed per link and direction.
    // HOT-PATH-CUT: report assembly — snapshots every counter into an
    // owned struct; called by harnesses and the stats endpoint only.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut snap = self.shared.telemetry_snapshot(&self.node_of);
        snap.links = self
            .topo
            .links()
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let d = self.counters.link_bytes(i);
                crate::telemetry::LinkTraffic {
                    a: l.a.0 as u32,
                    b: l.b.0 as u32,
                    bytes_ab: d[0],
                    bytes_ba: d[1],
                }
            })
            .collect();
        snap
    }

    /// All retained trace events across every AEU's ring, merged in
    /// emission-time order (the `eris-live` dashboard's raw feed).
    pub fn trace_events(&self) -> Vec<Stamped> {
        let tel = self.shared.telemetry();
        let mut events: Vec<Stamped> = (0..self.aeus.len())
            .flat_map(|i| tel.shard(AeuId(i as u32)).ring.snapshot())
            .collect();
        events.sort_by_key(|e| e.at_ns);
        events
    }

    /// The partition-table owner of `key` in a range-partitioned object
    /// (`None` for columns and unregistered objects).
    pub fn owner_of(&self, object: DataObjectId, key: u64) -> Option<AeuId> {
        self.shared
            .with_table(object, |t| {
                t.as_range().map(|r| {
                    let ranges = r.ranges();
                    match ranges.binary_search_by(|(b, _)| b.cmp(&key)) {
                        Ok(i) => ranges[i].1,
                        Err(0) => ranges[0].1,
                        Err(i) => ranges[i - 1].1,
                    }
                })
            })
            .ok()
            .flatten()
    }

    /// Direct access to an AEU (benchmarks, tests).
    pub fn aeu(&self, id: AeuId) -> &Aeu {
        &self.aeus[id.index()]
    }

    /// Mutable access to an AEU (benchmarks, tests).
    pub fn aeu_mut(&mut self, id: AeuId) -> &mut Aeu {
        &mut self.aeus[id.index()]
    }

    /// Create a range-partitioned index over `[0, domain)`, evenly split
    /// across all AEUs.
    pub fn create_index(&mut self, name: &str, domain: u64) -> DataObjectId {
        let id = DataObjectId(self.objects.len() as u32);
        let owners = self.aeu_ids();
        let table = RangeTable::even(domain, &owners);
        for (i, aeu) in self.aeus.iter_mut().enumerate() {
            let (lo, hi) = table.range_of(i, domain);
            aeu.create_index_partition(id, self.cfg.tree, (lo, hi));
        }
        self.shared
            .register_object(id, PartitionTable::Range(table));
        self.objects.push(ObjectMeta {
            id,
            kind: ObjectKind::Index { domain },
            name: name.into(),
        });
        self.balance_backoff.push(BackoffState::default());
        self.journal_create(ObjectClass::Tree, id, domain, name);
        id
    }

    /// Create a range-partitioned object stored as per-partition hash
    /// tables: O(1) point access, no ordered range scans (Section 3.1).
    /// Routing is identical to [`Engine::create_index`]; only the in-
    /// partition structure differs, and each partition draws its own hash
    /// function seed.
    pub fn create_hash_index(&mut self, name: &str, domain: u64) -> DataObjectId {
        let id = DataObjectId(self.objects.len() as u32);
        let owners = self.aeu_ids();
        let table = RangeTable::even(domain, &owners);
        for (i, aeu) in self.aeus.iter_mut().enumerate() {
            let (lo, hi) = table.range_of(i, domain);
            aeu.create_hash_partition(id, (lo, hi));
        }
        self.shared
            .register_object(id, PartitionTable::Range(table));
        self.objects.push(ObjectMeta {
            id,
            kind: ObjectKind::Index { domain },
            name: name.into(),
        });
        self.balance_backoff.push(BackoffState::default());
        self.journal_create(ObjectClass::Hash, id, domain, name);
        id
    }

    /// Create a size-partitioned column held by all AEUs.
    pub fn create_column(&mut self, name: &str) -> DataObjectId {
        let id = DataObjectId(self.objects.len() as u32);
        let owners = self.aeu_ids();
        for aeu in self.aeus.iter_mut() {
            aeu.create_column_partition(id);
        }
        self.shared
            .register_object(id, PartitionTable::Bitmap(BitmapTable::new(owners)));
        self.objects.push(ObjectMeta {
            id,
            kind: ObjectKind::Column,
            name: name.into(),
        });
        self.balance_backoff.push(BackoffState::default());
        self.journal_create(ObjectClass::Column, id, 0, name);
        id
    }

    /// Journal an object creation on AEU 0's log — creations are engine
    /// operations, but replay needs them ordered before AEU 0's data ops.
    fn journal_create(&self, class: ObjectClass, id: DataObjectId, domain: u64, name: &str) {
        if let Some(s) = &self.sink {
            s.append(
                AeuId(0),
                RedoOp::CreateObject {
                    class,
                    object: id,
                    domain,
                    name,
                },
            );
            // An object must never be referenced by a journal tail without
            // its creation record being durable first.
            s.barrier();
        }
    }

    /// Describe every data object for checkpoint manifests: id, storage
    /// class, key domain, and name.
    pub fn describe_objects(&self) -> Vec<ObjectDescriptor> {
        self.objects
            .iter()
            .map(|o| {
                let (class, domain) = match o.kind {
                    ObjectKind::Column => (ObjectClass::Column, 0),
                    ObjectKind::Index { domain } => {
                        // `ObjectKind` conflates the two range-partitioned
                        // layouts; partition 0's storage distinguishes them.
                        let class = match self.aeus[0].partition(o.id).map(|p| &p.data) {
                            Some(crate::aeu::PartitionData::Hash(_)) => ObjectClass::Hash,
                            _ => ObjectClass::Tree,
                        };
                        (class, domain)
                    }
                };
                ObjectDescriptor {
                    id: o.id,
                    class,
                    domain,
                    name: o.name.clone(),
                }
            })
            .collect()
    }

    /// Rebuild a range-partitioned object's routing table from restored
    /// per-AEU lower bounds (recovery only; mirrors the balancer's
    /// table-rebuild + `set_range` sequence).
    pub fn restore_partition_bounds(&mut self, object: DataObjectId, bounds: &[u64]) {
        assert_eq!(bounds.len(), self.aeus.len(), "one bound per AEU");
        let domain = match self.objects[object.0 as usize].kind {
            ObjectKind::Index { domain } => domain,
            ObjectKind::Column => return,
        };
        let owners = self.aeu_ids();
        self.shared
            .with_table_mut(object, |t| {
                t.as_range_mut()
                    .expect("range object")
                    .rebuild(bounds.iter().copied().zip(owners.iter().copied()).collect())
            })
            .expect("restored object is registered");
        for (i, aeu) in self.aeus.iter_mut().enumerate() {
            let lo = bounds[i];
            let hi = if i + 1 < bounds.len() {
                bounds[i + 1]
            } else {
                domain
            };
            aeu.set_range(object, (lo, hi));
        }
    }

    /// Overwrite one object's conservation ledger from a checkpoint
    /// manifest (recovery only).
    pub fn restore_object_ledger(&self, object: DataObjectId, enqueued: u64, executed: u64) {
        self.shared
            .telemetry()
            .restore_object_ledger(object, enqueued, executed);
    }

    /// One AEU's telemetry shard (durability-layer counter updates).
    pub fn telemetry_shard(&self, aeu: AeuId) -> &Arc<crate::telemetry::TelemetryShard> {
        self.shared.telemetry().shard(aeu)
    }

    /// The engine-wide live latency table.  The serving layer charges
    /// stamps it drops at admission (shed / quota-denied / rejected)
    /// directly against this `stamped == traced + dropped` ledger so the
    /// trace conservation law holds across the full request path.
    pub fn latency(&self) -> &Arc<eris_obs::LatencyTable> {
        self.shared.telemetry().latency()
    }

    /// Object name (diagnostics).
    pub fn object_name(&self, id: DataObjectId) -> &str {
        &self.objects[id.0 as usize].name
    }

    /// Bulk-load an index directly into the owning partitions (setup path;
    /// routed upserts are the measured path).
    pub fn bulk_load_index(
        &mut self,
        object: DataObjectId,
        pairs: impl IntoIterator<Item = (u64, u64)>,
    ) {
        let ranges = self
            .shared
            .with_table(object, |t| t.as_range().expect("index object").ranges())
            .expect("bulk-loaded object is registered");
        let domain = match self.objects[object.0 as usize].kind {
            ObjectKind::Index { domain } => domain,
            ObjectKind::Column => panic!("bulk_load_index on a column"),
        };
        // Group into per-owner batches, then absorb.
        let mut batches: Vec<Vec<(u64, u64)>> = vec![Vec::new(); self.aeus.len()];
        for (k, v) in pairs {
            assert!(k < domain, "key {k} outside domain {domain}");
            let idx = match ranges.binary_search_by(|(b, _)| b.cmp(&k)) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            batches[ranges[idx].1.index()].push((k, v));
        }
        for (i, batch) in batches.into_iter().enumerate() {
            if !batch.is_empty() {
                self.aeus[i].absorb_pairs(object, &batch);
            }
        }
    }

    /// Bulk-load a column round-robin across AEUs (setup path).
    pub fn bulk_load_column(
        &mut self,
        object: DataObjectId,
        values: impl IntoIterator<Item = u64>,
    ) {
        let n = self.aeus.len();
        let mut batches: Vec<Vec<u64>> = vec![Vec::new(); n];
        for (i, v) in values.into_iter().enumerate() {
            batches[i % n].push(v);
        }
        for (i, batch) in batches.into_iter().enumerate() {
            if !batch.is_empty() {
                self.aeus[i]
                    .absorb_rows(object, &batch)
                    .expect("load targets a provisioned column");
            }
        }
    }

    /// Attach a command generator to one AEU.
    pub fn set_generator(&mut self, aeu: AeuId, gen: Option<CommandGen>) {
        self.aeus[aeu.index()].set_generator(gen);
    }

    /// Submit one command through an AEU's router (client path for tests
    /// and examples; generators are the benchmark path).  Undeliverable
    /// commands — unknown object, point op on a size-partitioned object —
    /// are rejected with a [`RoutingError`] and enqueue nothing.
    pub fn submit(&mut self, via: AeuId, cmd: DataCommand) -> Result<(), RoutingError> {
        let node = self.node_of[via.index()];
        let mut w = crate::aeu::WorkSummary::new(node);
        self.aeus[via.index()].route_external(cmd, &mut w)?;
        // Submission costs are charged to the next epoch via pending ns.
        self.aeus[via.index()].add_pending_ns(w.cpu_ns + w.latency_ns);
        Ok(())
    }

    /// Submit one command carrying a serving-layer trace stamp born at
    /// frame decode (full-path tracing: identity + net/admit spans ride
    /// to the executing AEU).  Otherwise identical to [`Self::submit`].
    pub fn submit_traced(
        &mut self,
        via: AeuId,
        cmd: DataCommand,
        stamp: TraceStamp,
    ) -> Result<(), RoutingError> {
        let node = self.node_of[via.index()];
        let mut w = crate::aeu::WorkSummary::new(node);
        self.aeus[via.index()].route_external_traced(cmd, stamp, &mut w)?;
        self.aeus[via.index()].add_pending_ns(w.cpu_ns + w.latency_ns);
        Ok(())
    }

    /// Run one cooperative epoch: step every AEU, fair-share the traffic,
    /// advance the virtual clock, and run the balancer when due.
    pub fn run_epoch(&mut self) -> EpochReport {
        let mut report = EpochReport::default();
        let tel_before = self.shared.telemetry_totals();
        let mut summaries = Vec::with_capacity(self.aeus.len());
        for aeu in self.aeus.iter_mut() {
            let mut s = aeu.step();
            s.coalesce_flows();
            summaries.push(s);
        }
        // Fair-share all memory traffic of the epoch.
        let mut flows = Vec::new();
        let mut kinds = Vec::new();
        let mut spans = Vec::with_capacity(summaries.len());
        for s in &summaries {
            let start = flows.len();
            for (f, k) in &s.flows {
                flows.push(f.clone());
                kinds.push(*k);
            }
            spans.push(start..flows.len());
        }
        let rates = FlowSolver::new(&self.topo).solve(&flows);
        for f in &flows {
            self.counters.record(&self.topo, f.src, f.home, f.bytes);
        }
        let mut duration: f64 = 0.0;
        for (s, span) in summaries.iter().zip(spans) {
            // Streaming (serial) flows add up; posted (overlapped) flows
            // proceed concurrently and share the worker's aggregate rate:
            // time = total posted bytes / summed fair-share rates.
            let mut serial_ns = 0.0f64;
            let mut over_bytes = 0.0f64;
            let mut over_rate = 0.0f64;
            for i in span {
                match kinds[i] {
                    crate::aeu::FlowKind::Serial => {
                        serial_ns += flows[i].bytes as f64 / rates.rates[i];
                    }
                    crate::aeu::FlowKind::Overlapped => {
                        over_bytes += flows[i].bytes as f64;
                        over_rate += rates.rates[i];
                    }
                }
            }
            let overlapped_ns = if over_rate > 0.0 {
                over_bytes / over_rate
            } else {
                0.0
            };
            let bw_ns = serial_ns + overlapped_ns;
            let cpu_ns = s.cpu_ns / self.cfg.params.frequency_scale;
            let t = cpu_ns + s.latency_ns.max(bw_ns);
            if std::env::var_os("ERIS_DEBUG_EPOCH").is_some() && t > duration {
                eprintln!(
                    "  max-AEU so far: cpu={:.1}us lat={:.1}us serial_bw={:.1}us overl_bw={:.1}us",
                    cpu_ns / 1e3,
                    s.latency_ns / 1e3,
                    serial_ns / 1e3,
                    overlapped_ns / 1e3
                );
            }
            duration = duration.max(t);
            report.ops.add(&s.ops);
        }
        // An idle epoch still advances a scheduling quantum.
        report.duration_ns = duration.max(1_000.0);
        self.clock.advance_ns(report.duration_ns);

        // Balancer adaption loop.
        if self.cfg.balancer.enabled
            && self.clock.now_secs() - self.last_balance_s >= self.cfg.balancer.period_s
        {
            self.last_balance_s = self.clock.now_secs();
            report.balance_ns = self.run_balancer();
        }
        report.telemetry = self.shared.telemetry_totals().since(&tel_before);
        report
    }

    /// Run epochs until `virtual_secs` have elapsed; returns aggregate ops.
    pub fn run_for_virtual_secs(&mut self, virtual_secs: f64) -> OpCounts {
        let end = self.clock.now_secs() + virtual_secs;
        let mut ops = OpCounts::default();
        while self.clock.now_secs() < end {
            let r = self.run_epoch();
            ops.add(&r.ops);
        }
        ops
    }

    /// Run epochs until every AEU's buffers are drained and no new work
    /// appeared (command completion for synchronous callers).
    pub fn run_until_drained(&mut self) {
        loop {
            let r = self.run_epoch();
            let idle = r.ops.lookups == 0
                && r.ops.upserts == 0
                && r.ops.scans == 0
                && r.ops.commands_routed == 0
                && r.ops.forwarded == 0;
            if idle && self.aeus.iter().all(|a| a.is_drained()) {
                break;
            }
        }
    }

    /// Bytes pending across every AEU's incoming buffers, plus the total
    /// capacity of those buffers.  The serving layer's overload watermark
    /// reads this at batch boundaries: occupancy = pending / capacity.
    pub fn incoming_occupancy(&self) -> (usize, usize) {
        let mut pending = 0;
        let mut capacity = 0;
        for i in 0..self.shared.num_aeus() {
            let buf = self.shared.incoming(AeuId(i as u32));
            pending += buf.pending_bytes();
            capacity += buf.capacity();
        }
        (pending, capacity)
    }

    /// Sub-commands enqueued by routing but not yet executed, summed over
    /// every object's conservation ledger.  A queue-depth signal for
    /// admission control (exact at epoch boundaries, approximate while
    /// AEUs are stepping).
    pub fn in_flight_commands(&self) -> u64 {
        self.telemetry()
            .objects
            .iter()
            .map(|o| o.enqueued.saturating_sub(o.executed))
            .sum()
    }

    /// Typed graceful shutdown: detach every command generator, run
    /// epochs until all buffers drain and no AEU holds deferred work,
    /// then audit both conservation ledgers.  Callers that stop feeding
    /// [`Engine::submit`] before invoking this get a proof that every
    /// accepted command executed (see [`QuiesceReport`]).
    pub fn drain_and_quiesce(&mut self) -> QuiesceReport {
        for aeu in self.aeus.iter_mut() {
            aeu.set_generator(None);
        }
        let mut epochs = 0u64;
        loop {
            let r = self.run_epoch();
            epochs += 1;
            let idle = r.ops.lookups == 0
                && r.ops.upserts == 0
                && r.ops.scans == 0
                && r.ops.commands_routed == 0
                && r.ops.forwarded == 0;
            if idle && self.aeus.iter().all(|a| a.is_drained()) {
                break;
            }
        }
        let snap = self.telemetry();
        let (stamped, traced, dropped) = self.shared.telemetry().latency().ledger();
        let (pending_bytes, _) = self.incoming_occupancy();
        QuiesceReport {
            epochs,
            conservation_ok: snap.conservation_holds(),
            trace_ok: stamped == traced + dropped,
            commands_executed: snap.totals.commands_executed,
            pending_bytes,
        }
    }

    // ------------------------------------------------------------------
    // Load balancing (engine-orchestrated, Section 3.3)
    // ------------------------------------------------------------------

    /// The per-object sampling history collected by the adaption loop.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Check every object for imbalance and rebalance as configured.
    /// Returns the total virtual time charged for transfers.
    pub fn run_balancer(&mut self) -> f64 {
        let mut total_ns = 0.0;
        let object_ids: Vec<(DataObjectId, ObjectKind)> =
            self.objects.iter().map(|o| (o.id, o.kind)).collect();
        let now = self.clock.now_secs();
        for (id, kind) in object_ids {
            // Sample every partition (table order: partition i ↔ AEU i)
            // and feed the monitoring component before deciding.
            let mut sample = Sample {
                at_secs: now,
                ..Default::default()
            };
            for i in 0..self.aeus.len() {
                let (accesses, exec_ns, len, bytes) = self.aeus[i].take_sample(id);
                sample.accesses.push(accesses);
                sample.exec_ns.push(exec_ns);
                sample.lens.push(len);
                sample.bytes.push(bytes);
            }
            total_ns += match kind {
                ObjectKind::Index { domain } => self.balance_index(id, domain, &sample),
                ObjectKind::Column => self.balance_column(id, &sample),
            };
            self.monitor.record(id, sample);
        }
        // A transfer's remove/absorb records live on two different AEU
        // logs; sync them together so a crash cannot split the pair.
        if let Some(s) = &self.sink {
            s.barrier();
        }
        total_ns
    }

    fn balance_index(&mut self, object: DataObjectId, domain: u64, sample: &Sample) -> f64 {
        // The configured metric drives the balancing decision.
        let metric = self.cfg.balancer.metric;
        let mut weights: Vec<f64> = match metric {
            crate::balancer::BalanceMetric::AccessFrequency => {
                sample.accesses.iter().map(|&a| a as f64).collect()
            }
            crate::balancer::BalanceMetric::ExecutionTime => sample.exec_ns.clone(),
        };
        // Every evaluation leaves an audit entry: the CVs as seen, the
        // threshold judged against, and why the balancer did what it did.
        let mut decision = BalanceDecision {
            at_secs: sample.at_secs,
            object,
            access_cv: sample.access_cv(),
            exec_cv: sample.exec_cv(),
            size_cv: sample.size_cv(),
            threshold_cv: self.cfg.balancer.threshold_cv,
            verdict: BalanceVerdict::BelowThreshold,
            migrations: Vec::new(),
        };
        // Oscillation backoff: while cooling down, only accumulate samples.
        let backoff = &mut self.balance_backoff[object.0 as usize];
        if backoff.skip_left > 0 {
            backoff.skip_left -= 1;
            decision.verdict = BalanceVerdict::CoolingDown;
            self.monitor.record_decision(decision);
            return 0.0;
        }
        let cv = coefficient_of_variation(&weights);
        if !needs_balancing(&weights, self.cfg.balancer.threshold_cv) {
            // Balanced again: reset the backoff state.
            *backoff = BackoffState::default();
            self.monitor.record_decision(decision);
            return 0.0;
        }
        let period_ns = self.cfg.balancer.period_s * 1e9;
        let costly = backoff.last_cost_ns > 0.5 * period_ns || backoff.last_moved_frac > 0.02;
        if std::env::var_os("ERIS_DEBUG_BALANCE").is_some() {
            eprintln!(
                "balance check obj={} cv={cv:.3} last_cv={:.3} costly={costly} moved={:.4} cost_ms={:.3}",
                object.0, backoff.last_cv, backoff.last_moved_frac, backoff.last_cost_ns / 1e6
            );
        }
        if backoff.last_cv > 0.0 && cv >= 0.9 * backoff.last_cv && costly {
            // The previous cycle paid real transfer cost without improving
            // the imbalance — an indivisible hotspot (e.g. one scorching
            // key).  Back off exponentially, capped so a genuine workload
            // change is picked up again within a few periods.
            let skip = (backoff.skip.max(1) * 2).min(16);
            *backoff = BackoffState {
                last_cv: cv,
                skip,
                skip_left: skip,
                ..Default::default()
            };
            decision.verdict = BalanceVerdict::OscillationDetected;
            self.monitor.record_decision(decision);
            return 0.0;
        }
        backoff.last_cv = cv;
        // Additive smoothing: a small weight floor keeps completely cold
        // partitions from collapsing to one-key ranges, which would dump
        // the entire cold region's data onto the partitions bordering the
        // hot range and make later boundary moves disproportionately
        // expensive.
        let mean = weights.iter().sum::<f64>() / weights.len() as f64;
        for w in &mut weights {
            *w = w.max(0.02 * mean);
        }
        let old_bounds: Vec<u64> = self
            .shared
            .with_table(object, |t| t.as_range().unwrap().ranges())
            .expect("balanced object is registered")
            .iter()
            .map(|(b, _)| *b)
            .collect();
        let new_bounds =
            target_boundaries(&old_bounds, domain, &weights, self.cfg.balancer.algorithm);
        if new_bounds == old_bounds {
            decision.verdict = BalanceVerdict::NoBoundaryChange;
            self.monitor.record_decision(decision);
            return 0.0;
        }
        let plan = transfer_plan(&old_bounds, &new_bounds, domain);
        let num_moves = plan.len() as u64;
        let mut moved_keys_total = 0usize;

        // All involved AEUs synchronize on the routing-table update first,
        // then execute their transfer commands.
        let owners = self.aeu_ids();
        self.shared
            .with_table_mut(object, |t| {
                t.as_range_mut().unwrap().rebuild(
                    new_bounds
                        .iter()
                        .copied()
                        .zip(owners.iter().copied())
                        .collect(),
                )
            })
            .expect("balanced object is registered");
        for (i, aeu) in self.aeus.iter_mut().enumerate() {
            let lo = new_bounds[i];
            let hi = if i + 1 < new_bounds.len() {
                new_bounds[i + 1]
            } else {
                domain
            };
            aeu.set_range(object, (lo, hi));
        }

        // Execute transfers: link within a node, copy across nodes.
        let params = self.cfg.params;
        let scale = self.cfg.transfer_scale.unwrap_or(self.cfg.size_scale) as f64;
        let mut total_ns = 0.0;
        for t in plan {
            let moved = self.aeus[t.from].extract_range(object, t.lo, t.hi);
            let keys = moved.len() as f64 * scale;
            let from_node = self.node_of[t.from];
            let to_node = self.node_of[t.to];
            let (src_ns, dst_ns) = if from_node == to_node {
                // Link: unlink + relink inside one memory-management domain.
                (params.link_transfer_ns, params.link_transfer_ns)
            } else {
                // Copy: flatten, stream, rebuild.
                let bytes = keys * params.transfer_bytes_per_key as f64;
                let route = self.topo.route(from_node, to_node).expect("connected");
                let stream_ns = route.latency_ns + bytes / route.bandwidth_gbps;
                self.counters
                    .record(&self.topo, to_node, from_node, bytes as u64);
                (stream_ns, stream_ns + keys * params.rebuild_ns_per_key)
            };
            moved_keys_total += moved.len();
            if !moved.is_empty() {
                self.aeus[t.to].absorb_pairs(object, &moved);
            }
            self.aeus[t.from].add_pending_ns(src_ns);
            self.aeus[t.to].add_pending_ns(dst_ns);
            total_ns += src_ns + dst_ns;
            let moved_bytes = moved.len() as u64 * params.transfer_bytes_per_key;
            decision.migrations.push(MigrationRecord {
                src: t.from,
                dst: t.to,
                lo: t.lo,
                hi: t.hi,
                keys: moved.len() as u64,
                bytes: moved_bytes,
            });
            self.shared
                .telemetry()
                .shard(AeuId(t.from as u32))
                .ring
                .emit(Stamped {
                    at_ns: now_ns(),
                    aeu: t.from as u32,
                    event: TraceEvent::Migration {
                        object: object.0,
                        src: t.from as u32,
                        dst: t.to as u32,
                        keys: moved.len() as u64,
                        bytes: moved_bytes,
                    },
                });
        }
        let total_keys: usize = (0..self.aeus.len())
            .map(|i| self.aeus[i].partition(object).map_or(0, |p| p.data.len()))
            .sum();
        let backoff = &mut self.balance_backoff[object.0 as usize];
        backoff.last_moved_frac = moved_keys_total as f64 / total_keys.max(1) as f64;
        backoff.last_cost_ns = total_ns;
        let tel = self.shared.telemetry();
        tel.balancer_cycles.fetch_add(1, Ordering::Relaxed);
        tel.balancer_moves.fetch_add(num_moves, Ordering::Relaxed);
        tel.balancer_keys_moved
            .fetch_add(moved_keys_total as u64, Ordering::Relaxed);
        decision.verdict = BalanceVerdict::Rebalanced;
        self.monitor.record_decision(decision);
        total_ns
    }

    fn balance_column(&mut self, object: DataObjectId, sample: &Sample) -> f64 {
        let lens = &sample.lens;
        let weights: Vec<f64> = lens.iter().map(|l| *l as f64).collect();
        let mut decision = BalanceDecision {
            at_secs: sample.at_secs,
            object,
            access_cv: sample.access_cv(),
            exec_cv: sample.exec_cv(),
            size_cv: sample.size_cv(),
            threshold_cv: self.cfg.balancer.threshold_cv,
            verdict: BalanceVerdict::BelowThreshold,
            migrations: Vec::new(),
        };
        if !needs_balancing(&weights, self.cfg.balancer.threshold_cv) {
            self.monitor.record_decision(decision);
            return 0.0;
        }
        let params = self.cfg.params;
        let scale = self.cfg.transfer_scale.unwrap_or(self.cfg.size_scale) as f64;
        let mut total_ns = 0.0;
        let moves = size_balance_moves(lens);
        let mut moved_rows = 0u64;
        let num_moves = moves.len() as u64;
        for (from, to, n) in moves {
            let rows = self.aeus[from].extract_tail_rows(object, n);
            moved_rows += rows.len() as u64;
            let from_node = self.node_of[from];
            let to_node = self.node_of[to];
            let ns = if from_node == to_node {
                params.link_transfer_ns
            } else {
                let bytes = rows.len() as f64 * scale * 8.0;
                let route = self.topo.route(from_node, to_node).expect("connected");
                self.counters
                    .record(&self.topo, to_node, from_node, bytes as u64);
                route.latency_ns + bytes / route.bandwidth_gbps
            };
            self.aeus[to]
                .absorb_rows(object, &rows)
                .expect("migration lands on the freshly provisioned column");
            self.aeus[from].add_pending_ns(ns);
            self.aeus[to].add_pending_ns(ns);
            total_ns += 2.0 * ns;
            let row_bytes = rows.len() as u64 * 8;
            decision.migrations.push(MigrationRecord {
                src: from,
                dst: to,
                lo: 0,
                hi: 0,
                keys: rows.len() as u64,
                bytes: row_bytes,
            });
            self.shared
                .telemetry()
                .shard(AeuId(from as u32))
                .ring
                .emit(Stamped {
                    at_ns: now_ns(),
                    aeu: from as u32,
                    event: TraceEvent::Migration {
                        object: object.0,
                        src: from as u32,
                        dst: to as u32,
                        keys: rows.len() as u64,
                        bytes: row_bytes,
                    },
                });
        }
        decision.verdict = if num_moves > 0 {
            BalanceVerdict::Rebalanced
        } else {
            // Over threshold but integer row-averaging found nothing to
            // shift — the column analogue of an unchanged boundary set.
            BalanceVerdict::NoBoundaryChange
        };
        self.monitor.record_decision(decision);
        if num_moves > 0 {
            let tel = self.shared.telemetry();
            tel.balancer_cycles.fetch_add(1, Ordering::Relaxed);
            tel.balancer_moves.fetch_add(num_moves, Ordering::Relaxed);
            tel.balancer_keys_moved
                .fetch_add(moved_rows, Ordering::Relaxed);
        }
        total_ns
    }

    // ------------------------------------------------------------------
    // Threaded runtime
    // ------------------------------------------------------------------

    /// Run every AEU as a real OS thread (pinned round-robin to host
    /// cores) for `wall` time.  Virtual time does not advance; this mode
    /// exists to exercise the latch-free routing protocol under true
    /// parallelism — correctness is asserted through the result collector.
    pub fn run_threaded_for(&mut self, wall: std::time::Duration) {
        let stop = Arc::clone(&self.stop);
        stop.store(false, Ordering::Relaxed);
        let aeus = std::mem::take(&mut self.aeus);
        let mut done: Vec<Option<Aeu>> = (0..aeus.len()).map(|_| None).collect();
        crossbeam::thread::scope(|s| {
            let mut handles = Vec::new();
            for aeu in aeus {
                let stop = Arc::clone(&stop);
                handles.push(s.spawn(move |_| {
                    let _ = eris_numa::affinity::pin_current_thread(aeu.core.index());
                    let mut aeu = aeu;
                    while !stop.load(Ordering::Relaxed) {
                        aeu.step();
                    }
                    // Drain before exiting so no commands are stranded.
                    for _ in 0..32 {
                        aeu.step();
                    }
                    aeu
                }));
            }
            std::thread::sleep(wall);
            stop.store(true, Ordering::Relaxed);
            for h in handles {
                let aeu = h.join().expect("AEU thread panicked");
                let idx = aeu.id.index();
                done[idx] = Some(aeu);
            }
        })
        .expect("thread scope");
        self.aeus = done
            .into_iter()
            .map(|a| a.expect("all AEUs returned"))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Payload;
    use eris_column::scan::AggregateResult;
    use eris_column::{Aggregate, Predicate};
    use eris_numa::machines::custom_machine;

    fn small_engine(collect: bool) -> Engine {
        Engine::new(
            custom_machine("m", 4, 2, 20.0, 100.0, 10.0, 60.0),
            EngineConfig {
                collect_results: collect,
                tree: PrefixTreeConfig::new(8, 32),
                ..Default::default()
            },
        )
    }

    #[test]
    fn engine_places_one_aeu_per_core() {
        let e = small_engine(false);
        assert_eq!(e.num_aeus(), 8);
        assert_eq!(e.node_of(AeuId(0)), NodeId(0));
        assert_eq!(e.node_of(AeuId(7)), NodeId(3));
    }

    #[test]
    fn active_nodes_restricts_placement() {
        let e = Engine::new(
            custom_machine("m", 4, 2, 20.0, 100.0, 10.0, 60.0),
            EngineConfig {
                active_nodes: Some(2),
                ..Default::default()
            },
        );
        assert_eq!(e.num_aeus(), 4);
    }

    #[test]
    fn aeus_per_node_restricts_placement() {
        let e = Engine::new(
            custom_machine("m", 4, 4, 20.0, 100.0, 10.0, 60.0),
            EngineConfig {
                aeus_per_node: Some(2),
                ..Default::default()
            },
        );
        assert_eq!(e.num_aeus(), 8);
    }

    #[test]
    fn routed_lookups_return_correct_values() {
        let mut e = small_engine(true);
        let idx = e.create_index("t", 1 << 16);
        e.bulk_load_index(idx, (0..5000u64).map(|k| (k, k + 7)));
        e.submit(
            AeuId(3),
            DataCommand {
                object: idx,
                ticket: 42,
                payload: Payload::Lookup {
                    keys: vec![0, 4999, 5000, 60000],
                },
            },
        )
        .unwrap();
        e.run_until_drained();
        let mut got = e.results().take_lookup_values();
        got.sort();
        assert_eq!(
            got,
            vec![
                (42, 0, Some(7)),
                (42, 4999, Some(5006)),
                (42, 5000, None),
                (42, 60000, None),
            ]
        );
    }

    #[test]
    fn routed_upserts_are_visible_to_later_lookups() {
        let mut e = small_engine(true);
        let idx = e.create_index("t", 1 << 16);
        e.submit(
            AeuId(0),
            DataCommand {
                object: idx,
                ticket: 1,
                payload: Payload::Upsert {
                    pairs: vec![(100, 1), (40000, 2), (100, 3)],
                },
            },
        )
        .unwrap();
        e.run_until_drained();
        let c = e.results().counts();
        assert_eq!(c.upserts, 3);
        assert_eq!(c.inserted_new, 2, "(100,3) overwrote");
        e.submit(
            AeuId(5),
            DataCommand {
                object: idx,
                ticket: 2,
                payload: Payload::Lookup {
                    keys: vec![100, 40000],
                },
            },
        )
        .unwrap();
        e.run_until_drained();
        let mut got = e.results().take_lookup_values();
        got.sort();
        assert_eq!(got, vec![(2, 100, Some(3)), (2, 40000, Some(2))]);
    }

    #[test]
    fn multicast_scan_covers_all_partitions() {
        let mut e = small_engine(true);
        let col = e.create_column("c");
        e.bulk_load_column(col, 0..1000u64);
        e.submit(
            AeuId(0),
            DataCommand {
                object: col,
                ticket: 9,
                payload: Payload::Scan {
                    pred: Predicate::All,
                    agg: Aggregate::Count,
                    snapshot: u64::MAX,
                },
            },
        )
        .unwrap();
        e.run_until_drained();
        assert_eq!(
            e.results().combine_scan(9),
            Some(AggregateResult::Count(1000))
        );
    }

    #[test]
    fn index_range_scan_aggregates() {
        let mut e = small_engine(true);
        let idx = e.create_index("t", 1 << 16);
        e.bulk_load_index(idx, (0..1000u64).map(|k| (k, k)));
        e.submit(
            AeuId(1),
            DataCommand {
                object: idx,
                ticket: 3,
                payload: Payload::Scan {
                    pred: Predicate::Range { lo: 100, hi: 200 },
                    agg: Aggregate::Sum,
                    snapshot: u64::MAX,
                },
            },
        )
        .unwrap();
        e.run_until_drained();
        assert_eq!(
            e.results().combine_scan(3),
            Some(AggregateResult::Sum((100..200).sum()))
        );
    }

    #[test]
    fn clock_advances_and_counters_record_traffic() {
        let mut e = small_engine(false);
        let idx = e.create_index("t", 1 << 16);
        e.bulk_load_index(idx, (0..(1u64 << 16)).map(|k| (k, k)));
        e.submit(
            AeuId(0),
            DataCommand {
                object: idx,
                ticket: 1,
                // Keys spread over the domain so remote AEUs are involved.
                payload: Payload::Lookup {
                    keys: (0..(1u64 << 16)).step_by(97).collect(),
                },
            },
        )
        .unwrap();
        e.run_until_drained();
        assert!(e.clock().now_ns() > 0.0);
        assert!(e.counters().total_imc_bytes() > 0, "misses produce traffic");
        assert!(
            e.counters().total_link_bytes() > 0,
            "routing flushes cross the interconnect"
        );
    }

    #[test]
    fn generators_drive_sustained_throughput() {
        let mut e = small_engine(false);
        let idx = e.create_index("t", 1 << 16);
        e.bulk_load_index(idx, (0..(1 << 16) as u64).map(|k| (k, k)));
        for a in e.aeu_ids() {
            let seed = a.0 as u64;
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            e.set_generator(
                a,
                Some(Box::new(move |_, out| {
                    let mut keys = Vec::with_capacity(64);
                    for _ in 0..64 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        keys.push(x % (1 << 16));
                    }
                    out.push(DataCommand {
                        object: DataObjectId(0),
                        ticket: 0,
                        payload: Payload::Lookup { keys },
                    });
                })),
            );
        }
        let ops = e.run_for_virtual_secs(0.0005);
        assert!(ops.lookups > 1000, "sustained lookups: {}", ops.lookups);
        let c = e.results().counts();
        assert_eq!(
            c.lookups, c.lookup_hits,
            "keys drawn from the loaded domain"
        );
    }

    #[test]
    fn balancer_rebalances_skewed_lookups() {
        let mut e = Engine::new(
            custom_machine("m", 4, 2, 20.0, 100.0, 10.0, 60.0),
            EngineConfig {
                collect_results: false,
                tree: PrefixTreeConfig::new(8, 32),
                balancer: BalancerConfig {
                    enabled: true,
                    algorithm: crate::balancer::BalanceAlgorithm::OneShot,
                    threshold_cv: 0.2,
                    period_s: 0.0001,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let domain = 1u64 << 16;
        let idx = e.create_index("t", domain);
        e.bulk_load_index(idx, (0..domain).map(|k| (k, k)));
        // Hot range: only the first eighth of the domain (AEU 0's range).
        for a in e.aeu_ids() {
            let seed = a.0 as u64 + 1;
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            e.set_generator(
                a,
                Some(Box::new(move |_, out| {
                    let mut keys = Vec::with_capacity(32);
                    for _ in 0..32 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        keys.push(x % (1 << 13));
                    }
                    out.push(DataCommand {
                        object: DataObjectId(0),
                        ticket: 0,
                        payload: Payload::Lookup { keys },
                    });
                })),
            );
        }
        e.run_for_virtual_secs(0.01);
        // After balancing, the hot range must be spread over several AEUs.
        let ranges = e
            .shared
            .with_table(idx, |t| t.as_range().unwrap().ranges())
            .unwrap();
        let hot_owners = ranges.iter().filter(|(b, _)| *b < (1 << 13)).count();
        assert!(
            hot_owners >= 4,
            "hot range split across {hot_owners} owners: {ranges:?}"
        );
        // No data was lost in the transfers.
        let total: usize = e
            .aeu_ids()
            .iter()
            .map(|a| e.aeu(*a).partition(idx).map_or(0, |p| p.data.len()))
            .sum();
        assert_eq!(total, domain as usize);
    }

    #[test]
    fn column_balancer_equalizes_sizes() {
        let mut e = Engine::new(
            custom_machine("m", 2, 2, 20.0, 100.0, 10.0, 60.0),
            EngineConfig {
                balancer: BalancerConfig {
                    enabled: true,
                    threshold_cv: 0.2,
                    period_s: 0.0001,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let col = e.create_column("c");
        // Load everything onto AEU 0.
        e.aeu_mut(AeuId(0))
            .absorb_rows(col, &(0..10_000u64).collect::<Vec<_>>())
            .unwrap();
        e.run_for_virtual_secs(0.001);
        let lens: Vec<usize> = e
            .aeu_ids()
            .iter()
            .map(|a| e.aeu(*a).partition(col).map_or(0, |p| p.data.len()))
            .collect();
        assert_eq!(lens.iter().sum::<usize>(), 10_000, "no rows lost");
        let max = *lens.iter().max().unwrap();
        let min = *lens.iter().min().unwrap();
        assert!(max - min <= 2500, "balanced: {lens:?}");
    }

    #[test]
    fn threaded_runtime_processes_commands_correctly() {
        let mut e = small_engine(false);
        let idx = e.create_index("t", 1 << 16);
        e.bulk_load_index(idx, (0..(1 << 16) as u64).map(|k| (k, k)));
        for a in e.aeu_ids() {
            let seed = a.0 as u64 + 99;
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            e.set_generator(
                a,
                Some(Box::new(move |_, out| {
                    let mut keys = Vec::with_capacity(16);
                    for _ in 0..16 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        keys.push(x % (1 << 16));
                    }
                    out.push(DataCommand {
                        object: DataObjectId(0),
                        ticket: 0,
                        payload: Payload::Lookup { keys },
                    });
                })),
            );
        }
        e.run_threaded_for(std::time::Duration::from_millis(200));
        let c = e.results().counts();
        assert!(c.lookups > 0, "threaded AEUs processed lookups");
        assert_eq!(
            c.lookups, c.lookup_hits,
            "every key is in the domain: no lost or corrupted commands"
        );
    }

    #[test]
    fn run_until_drained_is_idempotent() {
        let mut e = small_engine(false);
        e.run_until_drained();
        e.run_until_drained();
    }
}

#[cfg(test)]
mod hash_partition_tests {
    use super::*;
    use crate::command::Payload;
    use eris_column::scan::AggregateResult;
    use eris_column::{Aggregate, Predicate};
    use eris_numa::machines::custom_machine;

    fn engine() -> Engine {
        Engine::new(
            custom_machine("m", 4, 2, 20.0, 100.0, 10.0, 60.0),
            EngineConfig {
                collect_results: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn hash_index_routes_lookups_and_upserts() {
        let mut e = engine();
        let idx = e.create_hash_index("h", 1 << 16);
        e.submit(
            AeuId(0),
            DataCommand {
                object: idx,
                ticket: 1,
                payload: Payload::Upsert {
                    pairs: vec![(5, 50), (40_000, 77), (5, 51)],
                },
            },
        )
        .unwrap();
        e.run_until_drained();
        let c = e.results().counts();
        assert_eq!(c.upserts, 3);
        assert_eq!(c.inserted_new, 2);
        e.submit(
            AeuId(6),
            DataCommand {
                object: idx,
                ticket: 2,
                payload: Payload::Lookup {
                    keys: vec![5, 40_000, 9],
                },
            },
        )
        .unwrap();
        e.run_until_drained();
        let mut got = e.results().take_lookup_values();
        got.sort();
        assert_eq!(
            got,
            vec![(2, 5, Some(51)), (2, 9, None), (2, 40_000, Some(77))]
        );
    }

    #[test]
    fn hash_partitions_use_distinct_seeds() {
        let mut e = engine();
        let idx = e.create_hash_index("h", 1 << 16);
        let seeds: std::collections::BTreeSet<u64> = e
            .aeu_ids()
            .iter()
            .map(|a| match &e.aeu(*a).partition(idx).unwrap().data {
                crate::aeu::PartitionData::Hash(h) => h.seed(),
                _ => panic!("hash partition expected"),
            })
            .collect();
        assert_eq!(seeds.len(), e.num_aeus(), "one hash function per partition");
    }

    #[test]
    fn hash_index_scans_sweep_unordered_partitions() {
        let mut e = engine();
        let idx = e.create_hash_index("h", 1 << 16);
        e.submit(
            AeuId(0),
            DataCommand {
                object: idx,
                ticket: 1,
                payload: Payload::Upsert {
                    pairs: (0..1000u64).map(|k| (k * 65, k)).collect(),
                },
            },
        )
        .unwrap();
        e.run_until_drained();
        e.submit(
            AeuId(1),
            DataCommand {
                object: idx,
                ticket: 2,
                payload: Payload::Scan {
                    pred: Predicate::All,
                    agg: Aggregate::Count,
                    snapshot: u64::MAX,
                },
            },
        )
        .unwrap();
        e.run_until_drained();
        assert_eq!(
            e.results().combine_scan(2),
            Some(AggregateResult::Count(1000))
        );
    }

    #[test]
    fn balancer_moves_hash_partitions() {
        let mut e = Engine::new(
            custom_machine("m", 4, 2, 20.0, 100.0, 10.0, 60.0),
            EngineConfig {
                balancer: BalancerConfig {
                    enabled: true,
                    algorithm: crate::balancer::BalanceAlgorithm::OneShot,
                    threshold_cv: 0.2,
                    period_s: 1e-4,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let domain = 1u64 << 16;
        let idx = e.create_hash_index("h", domain);
        for a in e.aeu_ids() {
            let batch: Vec<(u64, u64)> = (0..domain)
                .filter(|k| k % e.num_aeus() as u64 == a.0 as u64)
                .map(|k| (k, k))
                .collect();
            // Load through the owning route: absorb directly by range owner.
            let _ = batch; // loaded below via bulk path
        }
        // Direct absorb by current owner.
        let owners: Vec<(u64, AeuId)> = e
            .shared
            .with_table(idx, |t| t.as_range().unwrap().ranges())
            .unwrap();
        for k in 0..domain {
            let idx_owner = match owners.binary_search_by(|(b, _)| b.cmp(&k)) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            let owner = owners[idx_owner].1;
            e.aeu_mut(owner).absorb_pairs(idx, &[(k, k ^ 0xF0F0)]);
        }
        // Skewed traffic into the first AEU's range.
        for a in e.aeu_ids() {
            let mut x = (a.0 as u64 + 1) | 1;
            e.set_generator(
                a,
                Some(Box::new(move |_, out| {
                    let keys = (0..32)
                        .map(|_| {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            x % (1 << 13)
                        })
                        .collect();
                    out.push(DataCommand {
                        object: DataObjectId(0),
                        ticket: 0,
                        payload: Payload::Lookup { keys },
                    });
                })),
            );
        }
        e.run_for_virtual_secs(2e-3);
        let total: usize = e
            .aeu_ids()
            .iter()
            .map(|a| e.aeu(*a).partition(idx).map_or(0, |p| p.data.len()))
            .sum();
        assert_eq!(
            total as u64, domain,
            "no key lost while balancing hash partitions"
        );
        let hot_owners = e
            .shared
            .with_table(idx, |t| t.as_range().unwrap().owners_in_range(0, 1 << 13))
            .unwrap()
            .len();
        assert!(hot_owners >= 4, "hot range split {hot_owners} ways");
    }
}

#[cfg(test)]
mod balance_metric_tests {
    use super::*;
    use crate::balancer::{BalanceAlgorithm, BalanceMetric};
    use crate::command::Payload;
    use eris_numa::machines::custom_machine;

    /// With the execution-time metric, AEUs whose partitions are slower per
    /// access shed range even when access *counts* are even.
    #[test]
    fn execution_time_metric_balances_work_not_requests() {
        let domain: u64 = 1 << 16;
        let mut e = Engine::new(
            custom_machine("m", 4, 2, 20.0, 100.0, 10.0, 60.0),
            EngineConfig {
                tree: PrefixTreeConfig::new(8, 32),
                // Model huge partitions so misses (and exec time) matter.
                size_scale: 1 << 14,
                balancer: BalancerConfig {
                    enabled: true,
                    algorithm: BalanceAlgorithm::OneShot,
                    metric: BalanceMetric::ExecutionTime,
                    threshold_cv: 0.2,
                    period_s: 1e-4,
                },
                ..Default::default()
            },
        );
        let idx = e.create_index("t", domain);
        e.bulk_load_index(idx, (0..domain).map(|k| (k, k)));
        // Scans hammer one AEU's range (scan exec time is size-driven),
        // lookups spread evenly: exec time is skewed, access counts less so.
        for a in e.aeu_ids() {
            let mut x = (a.0 as u64 + 3) | 1;
            e.set_generator(
                a,
                Some(Box::new(move |_, out| {
                    let keys = (0..16)
                        .map(|_| {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            x % (1 << 13) // hot eighth of the domain
                        })
                        .collect();
                    out.push(DataCommand {
                        object: DataObjectId(0),
                        ticket: 0,
                        payload: Payload::Lookup { keys },
                    });
                })),
            );
        }
        e.run_for_virtual_secs(2e-3);
        let ranges = e
            .shared
            .with_table(idx, |t| t.as_range().unwrap().ranges())
            .unwrap();
        let hot_owners = ranges.iter().filter(|(b, _)| *b < (1 << 13)).count();
        assert!(
            hot_owners >= 4,
            "exec-time metric split the hot range: {ranges:?}"
        );
        let total: usize = e
            .aeu_ids()
            .iter()
            .map(|a| e.aeu(*a).partition(idx).map_or(0, |p| p.data.len()))
            .sum();
        assert_eq!(total as u64, domain);
    }
}
