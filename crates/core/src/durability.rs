//! Engine-side durability hooks.
//!
//! ERIS is an in-memory engine and the paper leaves persistence out of
//! scope; this module is the narrow seam the `eris-durability` crate
//! plugs into.  The engine stays free of any file I/O: AEUs report every
//! *local state mutation* to an attached [`RedoSink`] as a [`RedoOp`],
//! and the sink (a per-AEU write-ahead journal) makes it durable.
//!
//! Ops are recorded **post-routing** — an AEU only reports the pairs it
//! actually applied to its own partition, never the strays it forwarded —
//! so replay is purely local and needs no re-routing: each AEU's log can
//! be re-applied to its own partitions independently and in order.
//! Balancing transfers decompose into a [`RedoOp::RemoveRange`] on the
//! source AEU and an [`RedoOp::UpsertPairs`] on the destination, which
//! touch disjoint partitions and therefore commute across logs.

use crate::command::{AeuId, DataObjectId};

/// The storage layout of a data object, as needed to re-create it during
/// recovery (`ObjectKind` conflates tree- and hash-backed range objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectClass {
    /// Range-partitioned prefix tree (`Engine::create_index`).
    Tree,
    /// Range-partitioned per-AEU hash tables (`Engine::create_hash_index`).
    Hash,
    /// Size-partitioned column (`Engine::create_column`).
    Column,
}

impl ObjectClass {
    /// Stable one-byte tag for manifests and journal records.
    pub fn tag(self) -> u8 {
        match self {
            ObjectClass::Tree => 0,
            ObjectClass::Hash => 1,
            ObjectClass::Column => 2,
        }
    }

    /// Inverse of [`ObjectClass::tag`].
    pub fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(ObjectClass::Tree),
            1 => Some(ObjectClass::Hash),
            2 => Some(ObjectClass::Column),
            _ => None,
        }
    }
}

/// Metadata of one data object, for checkpoint manifests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectDescriptor {
    pub id: DataObjectId,
    pub class: ObjectClass,
    /// Key domain of range-partitioned objects (0 for columns).
    pub domain: u64,
    pub name: String,
}

/// One local state mutation, reported to the sink *after* it was applied
/// in memory.  Borrowed payloads keep the hot path allocation-free; a
/// sink that needs to retain them encodes immediately.
#[derive(Debug, Clone, Copy)]
pub enum RedoOp<'a> {
    /// A data object came into existence (always reported via AEU 0's
    /// log, before any data op references the object).
    CreateObject {
        class: ObjectClass,
        object: DataObjectId,
        domain: u64,
        name: &'a str,
    },
    /// Pairs applied to this AEU's index/hash partition (routed upserts
    /// that passed the range validity check, bulk loads, or the absorb
    /// side of a balancing transfer).
    UpsertPairs {
        object: DataObjectId,
        pairs: &'a [(u64, u64)],
    },
    /// Rows appended to this AEU's column partition.
    AppendRows {
        object: DataObjectId,
        rows: &'a [u64],
    },
    /// Keys of `[lo, hi)` removed (the shrink side of a transfer).
    RemoveRange {
        object: DataObjectId,
        lo: u64,
        hi: u64,
    },
    /// Last `n` rows removed from a column partition.
    RemoveTail { object: DataObjectId, n: u64 },
    /// The AEU's responsibility range changed (routing-table rebuild).
    SetRange {
        object: DataObjectId,
        lo: u64,
        hi: u64,
    },
}

/// Where AEUs push their redo stream.  Implemented by the per-AEU
/// write-ahead journal in `eris-durability`; all methods may be called
/// concurrently from different AEU threads (each AEU only ever passes its
/// own id).
pub trait RedoSink: Send + Sync {
    /// Record one applied mutation of `aeu`'s state.
    fn append(&self, aeu: AeuId, op: RedoOp<'_>);

    /// The AEU finished one loop iteration — a natural group-commit
    /// boundary for buffered records.
    fn end_of_step(&self, _aeu: AeuId) {}

    /// Engine-orchestrated multi-AEU mutation (a balancing cycle)
    /// completed: make every log durable so the transfer's remove/absorb
    /// record pair cannot be split by a crash.
    fn barrier(&self) {}
}
