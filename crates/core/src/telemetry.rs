//! Engine-wide telemetry: live counters and fixed-bucket histograms.
//!
//! Every AEU owns one [`TelemetryShard`] — a cache-friendly block of
//! relaxed atomic counters updated from the routing and processing hot
//! paths.  Shards live in the engine's [`RoutingShared`] state, so the
//! same registry serves the cooperative single-threaded runtime and the
//! threaded runtime without any extra synchronization: writers touch only
//! their own shard, readers fold shards into a consistent-enough
//! [`TelemetrySnapshot`] on demand.
//!
//! The design invariant backing the test suite is a conservation law:
//! for every data object, the number of sub-commands *enqueued* by the
//! routing layer equals the number of commands *executed* (decoded and
//! delivered to the processing stage) once the engine is drained.
//! Forwarded strays re-enter the routing layer, incrementing both sides
//! symmetrically, so the books balance in the steady state.
//!
//! [`RoutingShared`]: crate::routing::RoutingShared

use crate::command::{AeuId, DataObjectId};
use eris_numa::NodeId;
use eris_obs::{
    Exemplar, LatencyKey, LatencySeries, LatencyTable, LogHistogram, Metric, MetricKind, Phase,
    PhaseBreakdown, PhaseProfiler, RingStats, TraceRing,
};
use parking_lot::RwLock;
use std::fmt;
// ordering: Relaxed is the only ordering this module imports — every
// counter is monotonic telemetry with no payload to publish; snapshots
// tolerate transient skew between counters by design.
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

macro_rules! counter_fields {
    (
        sum { $($(#[$smeta:meta])* $sum:ident,)* }
        max { $($(#[$mmeta:meta])* $max:ident,)* }
    ) => {
        /// The live atomic counters of one telemetry shard.  All updates
        /// use relaxed ordering: counters are monotonic diagnostics, not
        /// synchronization points.
        #[derive(Debug, Default)]
        pub struct LiveCounters {
            $($(#[$smeta])* pub $sum: AtomicU64,)*
            $($(#[$mmeta])* pub $max: AtomicU64,)*
        }

        /// A point-in-time copy of [`LiveCounters`].
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct CounterSnapshot {
            /// Reset-epoch stamp: [`Telemetry`] bumps it on every
            /// counter reset and stamps it into the snapshots it hands
            /// out.  [`CounterSnapshot::since`] uses it to detect that a
            /// baseline predates a reset instead of silently clamping
            /// every delta to zero.  Not a counter — excluded from
            /// [`CounterSnapshot::fields`].
            pub generation: u64,
            $($(#[$smeta])* pub $sum: u64,)*
            $($(#[$mmeta])* pub $max: u64,)*
        }

        impl LiveCounters {
            pub fn snapshot(&self) -> CounterSnapshot {
                CounterSnapshot {
                    generation: 0,
                    $($sum: self.$sum.load(Relaxed),)*
                    $($max: self.$max.load(Relaxed),)*
                }
            }

            /// Zero every counter and peak gauge (measurement-window reset).
            pub fn reset(&self) {
                $(self.$sum.store(0, Relaxed);)*
                $(self.$max.store(0, Relaxed);)*
            }
        }

        impl CounterSnapshot {
            /// Fold another AEU's counters in: monotonic counters add,
            /// peak gauges take the maximum.
            pub fn merge(&mut self, o: &CounterSnapshot) {
                self.generation = self.generation.max(o.generation);
                $(self.$sum += o.$sum;)*
                $(self.$max = self.$max.max(o.$max);)*
            }

            /// Delta since `earlier`: monotonic counters subtract, peak
            /// gauges keep the current high-water mark.  When a counter
            /// reset landed between the two snapshots (the generation
            /// stamps differ), the `earlier` baseline no longer exists
            /// inside the live counters — the post-reset absolute values
            /// *are* the delta since the reset, so they are returned
            /// as-is instead of being clamped against a stale baseline.
            pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
                if self.generation != earlier.generation {
                    return *self;
                }
                CounterSnapshot {
                    generation: self.generation,
                    $($sum: self.$sum.saturating_sub(earlier.$sum),)*
                    $($max: self.$max,)*
                }
            }

            /// `(name, value)` pairs in declaration order, for renderers.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![
                    $((stringify!($sum), self.$sum),)*
                    $((stringify!($max), self.$max),)*
                ]
            }
        }
    };
}

counter_fields! {
    sum {
        /// Commands handed to `Router::route`.
        commands_routed,
        /// Unicast sub-commands pushed after partition splitting.
        commands_unicast,
        /// Multicast command deliveries (one per target AEU).
        commands_multicast,
        /// Commands that spanned partitions and were split.
        command_splits,
        /// Successful outgoing-buffer flushes into incoming buffers.
        flushes,
        /// Commands delivered by those flushes.
        flush_commands,
        /// Bytes copied by those flushes.
        flush_bytes,
        /// Flush attempts rejected by a full incoming buffer (retried).
        flush_stalls,
        /// Reservations written into this AEU's incoming buffers.
        incoming_writes,
        /// Incoming-buffer writes rejected with `BufferFull`.
        incoming_rejects,
        /// Incoming double-buffer swaps performed by this AEU.
        buffer_swaps,
        /// Bytes handed to the processing stage by those swaps.
        swapped_bytes,
        /// Commands decoded and delivered to the processing stage.
        commands_executed,
        /// Coalesced `(object, op)` execution batches.
        exec_batches,
        /// Scan batches that shared one sweep over two or more commands.
        coalesced_scans,
        /// Keys looked up.
        lookups,
        /// Pairs upserted.
        upserts,
        /// Scan commands executed.
        scans,
        /// Rows examined by scans.
        scan_rows,
        /// Shared column sweeps dispatched to the explicit-SIMD kernels
        /// (AVX2 lanes where detected, portable fallback otherwise).
        simd_sweeps,
        /// Shared column sweeps dispatched to the portable chunked kernels.
        chunked_sweeps,
        /// Shared column sweeps dispatched to the scalar oracle path.
        scalar_sweeps,
        /// Keys probed through the batched hash-lookup entry point.
        batched_probe_keys,
        /// Keys/commands forwarded after partition moves (Section 3.3.2).
        forwarded,
        /// Redo records appended to this AEU's journal.
        journal_records,
        /// Journal bytes made durable (payload + framing).
        journal_bytes,
        /// Explicit journal syncs (group commits + barriers).
        journal_fsyncs,
        /// Redo records re-applied during recovery.
        replayed_records,
    }
    max {
        /// High-water mark of bytes pending in the outgoing buffers.
        peak_outgoing_bytes,
        /// High-water mark of bytes pending in the incoming buffers.
        peak_incoming_bytes,
    }
}

/// Number of buckets in every [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 17;

#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Human-readable range of one bucket.
pub fn bucket_label(i: usize) -> String {
    match i {
        0 => "0".to_string(),
        1 => "1".to_string(),
        i if i < HISTOGRAM_BUCKETS - 1 => format!("{}..{}", 1u64 << (i - 1), 1u64 << i),
        _ => format!(">={}", 1u64 << (HISTOGRAM_BUCKETS - 2)),
    }
}

/// A log2-bucketed histogram with a fixed bucket count, updated with one
/// relaxed `fetch_add` per sample.  Bucket 0 counts zero-valued samples,
/// bucket `i` (1..=15) counts values in `[2^(i-1), 2^i)`, and the last
/// bucket collects everything at or above `2^15`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Relaxed)),
            sum: self.sum.load(Relaxed),
        }
    }

    /// Zero every bucket (measurement-window reset).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.sum.store(0, Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn merge(&mut self, o: &HistogramSnapshot) {
        for (b, ob) in self.buckets.iter_mut().zip(&o.buckets) {
            *b += ob;
        }
        self.sum += o.sum;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of all recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }
}

impl fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.1}", self.count(), self.mean())?;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                write!(f, " [{}]={c}", bucket_label(i))?;
            }
        }
        Ok(())
    }
}

/// The conservation-law ledger of one data object: sub-commands enqueued
/// by the routing layer vs. commands executed by the owning AEUs.
#[derive(Debug, Default)]
pub struct ObjectCounters {
    /// Unicast pushes + multicast target deliveries for this object.
    pub enqueued: AtomicU64,
    /// Commands decoded and handed to the processing stage.
    pub executed: AtomicU64,
}

/// One AEU's telemetry: counters plus hot-path histograms and the
/// bounded trace-event ring.
#[derive(Debug, Default)]
pub struct TelemetryShard {
    pub counters: LiveCounters,
    /// Commands delivered per incoming-buffer swap.
    pub swap_batch: Histogram,
    /// Commands per coalesced `(object, op)` execution group.
    pub exec_group: Histogram,
    /// Virtual nanoseconds charged per AEU step.
    pub step_ns: Histogram,
    /// The structured trace events of this AEU (overwrite-oldest).
    pub ring: TraceRing,
    /// Epoch wall time attributed to execution phases (the per-AEU
    /// epoch profiler; idle is charged as the unattributed remainder,
    /// so phase fractions sum to 1 by construction).
    pub profiler: PhaseProfiler,
}

impl TelemetryShard {
    fn with_ring_capacity(cap: usize) -> Self {
        TelemetryShard {
            ring: TraceRing::new(cap),
            ..Default::default()
        }
    }

    /// Zero the shard's counters and histograms.  The trace ring is left
    /// alone: it is a log of the recent past, not a measurement window.
    pub fn reset(&self) {
        self.counters.reset();
        self.swap_batch.reset();
        self.exec_group.reset();
        self.step_ns.reset();
        self.profiler.reset();
    }
}

/// The engine-wide registry: one shard per AEU, one conservation ledger
/// per data object, plus balancer-cycle counters.
pub struct Telemetry {
    shards: Vec<Arc<TelemetryShard>>,
    objects: RwLock<Vec<Arc<ObjectCounters>>>,
    /// Bumped by [`Telemetry::reset_shards`]; stamped into every
    /// snapshot so [`CounterSnapshot::since`] can tell whether its
    /// baseline predates a reset.
    reset_generation: AtomicU64,
    /// Balancing cycles that moved data.
    pub balancer_cycles: AtomicU64,
    /// Individual partition transfers executed by those cycles.
    pub balancer_moves: AtomicU64,
    /// Keys/rows moved by those transfers.
    pub balancer_keys_moved: AtomicU64,
    /// The sampled end-to-end command-latency table (engine-wide: stamps
    /// are recorded wherever the command finally executes).
    latency: Arc<LatencyTable>,
}

impl Telemetry {
    pub fn new(num_aeus: usize) -> Self {
        Self::with_ring_capacity(num_aeus, 1024)
    }

    /// Like [`Telemetry::new`] with an explicit per-AEU trace-ring
    /// capacity (rounded up to a power of two by the ring).
    pub fn with_ring_capacity(num_aeus: usize, ring_capacity: usize) -> Self {
        Telemetry {
            shards: (0..num_aeus)
                .map(|_| Arc::new(TelemetryShard::with_ring_capacity(ring_capacity)))
                .collect(),
            objects: RwLock::new(Vec::new()),
            reset_generation: AtomicU64::new(0),
            balancer_cycles: AtomicU64::new(0),
            balancer_moves: AtomicU64::new(0),
            balancer_keys_moved: AtomicU64::new(0),
            latency: Arc::new(LatencyTable::default()),
        }
    }

    /// The shard of one AEU.
    pub fn shard(&self, aeu: AeuId) -> &Arc<TelemetryShard> {
        &self.shards[aeu.index()]
    }

    /// The engine-wide sampled-latency table.
    pub fn latency(&self) -> &Arc<LatencyTable> {
        &self.latency
    }

    /// The conservation ledger of one data object.  Slots are created on
    /// first use so stand-alone routers (benchmarks) need no registration
    /// step; `RoutingShared::register_object` pre-creates them.
    // HOT-PATH-CUT: object-counter registration under the allowlisted
    // RwLock; per-command bumps use the returned arc's relaxed atomics.
    pub fn object(&self, id: DataObjectId) -> Arc<ObjectCounters> {
        {
            let objects = self.objects.read();
            if let Some(c) = objects.get(id.0 as usize) {
                return Arc::clone(c);
            }
        }
        let mut objects = self.objects.write();
        while objects.len() <= id.0 as usize {
            objects.push(Arc::new(ObjectCounters::default()));
        }
        Arc::clone(&objects[id.0 as usize])
    }

    /// Reset every per-AEU shard and the balancer counters.  The
    /// per-object conservation ledgers are deliberately left alone:
    /// commands in flight at reset time would permanently unbalance
    /// `enqueued == executed` if the ledgers were zeroed mid-stream.
    /// The latency table's `stamped == traced + dropped` ledger survives
    /// resets for the same reason (stamps may be in flight).
    pub fn reset_shards(&self) {
        // Bump first: a snapshot racing with the reset may mix pre- and
        // post-reset counters either way; stamping the new generation
        // before zeroing means `since` never trusts such a baseline.
        self.reset_generation.fetch_add(1, Relaxed);
        for s in &self.shards {
            s.reset();
        }
        self.balancer_cycles.store(0, Relaxed);
        self.balancer_moves.store(0, Relaxed);
        self.balancer_keys_moved.store(0, Relaxed);
    }

    /// Number of shard resets so far (the current snapshot generation).
    pub fn reset_generation(&self) -> u64 {
        self.reset_generation.load(Relaxed)
    }

    /// Overwrite one object's conservation ledger (recovery only: the
    /// checkpoint manifest carries the ledger of the quiesced engine).
    pub fn restore_object_ledger(&self, id: DataObjectId, enqueued: u64, executed: u64) {
        let c = self.object(id);
        c.enqueued.store(enqueued, Relaxed);
        c.executed.store(executed, Relaxed);
    }

    /// Engine-wide counter totals.  `fill` patches per-AEU externals
    /// (incoming-buffer counters) into each shard's snapshot before it is
    /// folded in.
    pub fn totals_with(&self, fill: impl Fn(usize, &mut CounterSnapshot)) -> CounterSnapshot {
        let mut total = CounterSnapshot::default();
        for (i, shard) in self.shards.iter().enumerate() {
            let mut c = shard.counters.snapshot();
            fill(i, &mut c);
            total.merge(&c);
        }
        total.generation = self.reset_generation();
        total
    }

    /// A full snapshot: per-AEU counters, per-node and engine-wide
    /// rollups, the per-object conservation ledger, and merged histograms.
    pub fn snapshot_with(
        &self,
        node_of: &[NodeId],
        fill: impl Fn(usize, &mut CounterSnapshot),
    ) -> TelemetrySnapshot {
        let generation = self.reset_generation();
        let per_aeu: Vec<CounterSnapshot> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut c = s.counters.snapshot();
                fill(i, &mut c);
                c.generation = generation;
                c
            })
            .collect();

        let mut per_node: Vec<(NodeId, CounterSnapshot)> = Vec::new();
        let mut totals = CounterSnapshot::default();
        for (i, c) in per_aeu.iter().enumerate() {
            totals.merge(c);
            let node = node_of.get(i).copied().unwrap_or(NodeId(0));
            match per_node.iter_mut().find(|(n, _)| *n == node) {
                Some((_, agg)) => agg.merge(c),
                None => per_node.push((node, *c)),
            }
        }
        per_node.sort_by_key(|(n, _)| n.0);

        let objects: Vec<ObjectFlow> = self
            .objects
            .read()
            .iter()
            .enumerate()
            .map(|(i, c)| ObjectFlow {
                object: DataObjectId(i as u32),
                enqueued: c.enqueued.load(Relaxed),
                executed: c.executed.load(Relaxed),
            })
            .collect();

        let mut swap_batch = HistogramSnapshot::default();
        let mut exec_group = HistogramSnapshot::default();
        let mut step_ns = HistogramSnapshot::default();
        for s in &self.shards {
            swap_batch.merge(&s.swap_batch.snapshot());
            exec_group.merge(&s.exec_group.snapshot());
            step_ns.merge(&s.step_ns.snapshot());
        }

        let (stamped, traced, dropped) = self.latency.ledger();

        TelemetrySnapshot {
            per_aeu,
            per_node,
            totals,
            objects,
            balancer: BalancerCounters {
                cycles: self.balancer_cycles.load(Relaxed),
                moves: self.balancer_moves.load(Relaxed),
                keys_moved: self.balancer_keys_moved.load(Relaxed),
            },
            swap_batch,
            exec_group,
            step_ns,
            trace: TraceLedger {
                stamped,
                traced,
                dropped,
            },
            latency: self.latency.snapshot(),
            tenant_latency: self.latency.tenant_snapshot(),
            exemplars: self.latency.exemplars(),
            phases: self.shards.iter().map(|s| s.profiler.snapshot()).collect(),
            // Cross-node link traffic lives in the engine's HwCounters,
            // not the registry; `Engine::telemetry` patches it in.
            links: Vec::new(),
            rings: self.shards.iter().map(|s| s.ring.stats()).collect(),
        }
    }
}

/// Per-object conservation state in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectFlow {
    pub object: DataObjectId,
    pub enqueued: u64,
    pub executed: u64,
}

impl ObjectFlow {
    /// Sub-commands still sitting in routing buffers (0 once drained).
    pub fn in_flight(&self) -> u64 {
        self.enqueued.saturating_sub(self.executed)
    }
}

/// Balancer activity in a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BalancerCounters {
    pub cycles: u64,
    pub moves: u64,
    pub keys_moved: u64,
}

/// The trace-sampling conservation ledger in a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceLedger {
    /// Commands stamped at routing time.
    pub stamped: u64,
    /// Stamped commands whose latency was recorded at execution.
    pub traced: u64,
    /// Stamped commands discarded before execution.
    pub dropped: u64,
}

impl TraceLedger {
    /// `stamped == traced + dropped`; holds exactly once the engine is
    /// drained.
    pub fn balances(&self) -> bool {
        self.stamped == self.traced + self.dropped
    }
}

/// A consistent-enough point-in-time view of the whole engine's
/// telemetry: per-AEU counters, per-node and engine rollups, the
/// per-object conservation ledger, balancer activity, and merged
/// histograms.  Obtain one via `Engine::telemetry()`.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    pub per_aeu: Vec<CounterSnapshot>,
    pub per_node: Vec<(NodeId, CounterSnapshot)>,
    pub totals: CounterSnapshot,
    pub objects: Vec<ObjectFlow>,
    pub balancer: BalancerCounters,
    pub swap_batch: HistogramSnapshot,
    pub exec_group: HistogramSnapshot,
    pub step_ns: HistogramSnapshot,
    /// Sampled-trace conservation: stamped vs. traced + dropped.
    pub trace: TraceLedger,
    /// Per-(object, op) sampled latency series, sorted by key.
    pub latency: Vec<(LatencyKey, LatencySeries)>,
    /// Per-tenant full-path latency histograms (serving traces only),
    /// sorted by tenant id.
    pub tenant_latency: Vec<(u32, LogHistogram)>,
    /// Per-bucket most-recent full-path trace exemplars.
    pub exemplars: Vec<Option<Exemplar>>,
    /// Per-AEU epoch-phase wall-time attribution, indexed like
    /// `per_aeu`.
    pub phases: Vec<PhaseBreakdown>,
    /// Cross-node interconnect traffic per link and direction (empty
    /// when the runtime has no hardware-counter model attached).
    pub links: Vec<LinkTraffic>,
    /// Per-AEU trace-ring accounting, indexed like `per_aeu`.
    pub rings: Vec<RingStats>,
}

/// Byte traffic over one interconnect link, per direction, as recorded
/// by the engine's `eris_numa::HwCounters` model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Endpoint node ids (the topology's link endpoint order).
    pub a: u32,
    pub b: u32,
    /// Bytes that flowed `a → b`.
    pub bytes_ab: u64,
    /// Bytes that flowed `b → a`.
    pub bytes_ba: u64,
}

impl TelemetrySnapshot {
    /// The conservation law: every enqueued sub-command was executed.
    /// Holds exactly when the engine is drained.
    pub fn conservation_holds(&self) -> bool {
        self.objects.iter().all(|o| o.enqueued == o.executed)
    }

    /// Profiler invariant: for every AEU that attributed any wall time,
    /// the phase fractions sum to 1 within `tol` (the `server`
    /// experiment asserts this at ±1%).
    pub fn phases_sum_to_one(&self, tol: f64) -> bool {
        self.phases.iter().all(|p| {
            if p.total_ns() == 0 {
                return true;
            }
            let sum: f64 = Phase::ALL.iter().map(|&ph| p.fraction(ph)).sum();
            (sum - 1.0).abs() <= tol
        })
    }

    /// Collapsed-stack (flamegraph input) render of the per-AEU epoch
    /// phase profile: one `aeu{i};{phase} {ns}` line per nonzero pair.
    pub fn collapsed_stack(&self) -> String {
        eris_obs::collapsed_stack(&self.phases)
    }

    /// Hand-rolled JSON render (no serde dependency).
    pub fn to_json(&self) -> String {
        fn counters(c: &CounterSnapshot, out: &mut String) {
            out.push('{');
            for (i, (k, v)) in c.fields().into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":{v}"));
            }
            out.push('}');
        }
        fn hist(h: &HistogramSnapshot, out: &mut String) {
            out.push_str(&format!("{{\"sum\":{},\"buckets\":[", h.sum));
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str("]}");
        }
        let mut s = String::new();
        s.push_str("{\"totals\":");
        counters(&self.totals, &mut s);
        s.push_str(",\"per_aeu\":[");
        for (i, c) in self.per_aeu.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            counters(c, &mut s);
        }
        s.push_str("],\"per_node\":[");
        for (i, (n, c)) in self.per_node.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"node\":{},\"counters\":", n.0));
            counters(c, &mut s);
            s.push('}');
        }
        s.push_str("],\"objects\":[");
        for (i, o) in self.objects.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"object\":{},\"enqueued\":{},\"executed\":{}}}",
                o.object.0, o.enqueued, o.executed
            ));
        }
        s.push_str(&format!(
            "],\"balancer\":{{\"cycles\":{},\"moves\":{},\"keys_moved\":{}}}",
            self.balancer.cycles, self.balancer.moves, self.balancer.keys_moved
        ));
        s.push_str(",\"histograms\":{\"swap_batch\":");
        hist(&self.swap_batch, &mut s);
        s.push_str(",\"exec_group\":");
        hist(&self.exec_group, &mut s);
        s.push_str(",\"step_ns\":");
        hist(&self.step_ns, &mut s);
        s.push('}');
        s.push_str(&format!(
            ",\"trace\":{{\"stamped\":{},\"traced\":{},\"dropped\":{}}}",
            self.trace.stamped, self.trace.traced, self.trace.dropped
        ));
        s.push_str(",\"latency\":[");
        for (i, ((object, op), series)) in self.latency.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"object\":{object},\"op\":{op},\
                 \"queue_wait\":{{\"count\":{},\"sum\":{}}},\
                 \"exec\":{{\"count\":{},\"sum\":{}}},\
                 \"hops\":{{\"count\":{},\"sum\":{}}}}}",
                series.queue_wait.count,
                series.queue_wait.sum,
                series.exec.count,
                series.exec.sum,
                series.hops.count,
                series.hops.sum
            ));
        }
        s.push_str("],\"tenant_latency\":[");
        for (i, (tenant, h)) in self.tenant_latency.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"tenant\":{tenant},\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{}}}",
                h.count,
                h.sum,
                h.p50(),
                h.p99()
            ));
        }
        s.push_str("],\"exemplars\":[");
        let mut first = true;
        for (bucket, e) in self.exemplars.iter().enumerate() {
            let Some(e) = e else { continue };
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "{{\"bucket\":{bucket},\"trace_id\":\"{:016x}\",\"tenant\":{},\
                 \"total_ns\":{},\"net_ns\":{},\"admit_ns\":{},\"queue_ns\":{},\
                 \"exec_ns\":{},\"hops\":{}}}",
                e.trace_id,
                e.tenant,
                e.total_ns,
                e.net_ns,
                e.admit_ns,
                e.queue_ns,
                e.exec_ns,
                e.hops
            ));
        }
        s.push_str("],\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            for (j, &ph) in Phase::ALL.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\":{}", ph.name(), p.get(ph)));
            }
            s.push('}');
        }
        s.push_str("],\"links\":[");
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"a\":{},\"b\":{},\"bytes_ab\":{},\"bytes_ba\":{}}}",
                l.a, l.b, l.bytes_ab, l.bytes_ba
            ));
        }
        s.push_str("],\"rings\":[");
        for (i, r) in self.rings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"capacity\":{},\"emitted\":{},\"retained\":{},\"dropped\":{}}}",
                r.capacity, r.emitted, r.retained, r.dropped
            ));
        }
        s.push_str("]}");
        s
    }

    /// Convert to the exporter's neutral metric representation: one
    /// metric per counter (per-AEU samples labelled `aeu`), the
    /// conservation ledgers, balancer activity, trace-ring accounting
    /// and the sampled latency sums.
    pub fn to_metrics(&self) -> Vec<Metric> {
        let mut out = Vec::new();
        // Per-AEU counters.  Peak gauges are recognizable by name; all
        // other fields are monotonic counters.
        let names: Vec<&'static str> = CounterSnapshot::default()
            .fields()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for (fi, name) in names.iter().enumerate() {
            let kind = if name.starts_with("peak_") {
                MetricKind::Gauge
            } else {
                MetricKind::Counter
            };
            let suffix = if kind == MetricKind::Counter {
                "_total"
            } else {
                ""
            };
            let mut m = Metric::new(
                &format!("eris_{name}{suffix}"),
                &format!("Engine counter `{name}` per AEU."),
                kind,
            );
            for (aeu, c) in self.per_aeu.iter().enumerate() {
                let v = c.fields()[fi].1;
                m = m.sample(&[("aeu", &aeu.to_string())], v as f64);
            }
            out.push(m);
        }
        // Per-object conservation ledger.
        let mut enq = Metric::new(
            "eris_object_enqueued_total",
            "Sub-commands enqueued by the routing layer, per data object.",
            MetricKind::Counter,
        );
        let mut exe = Metric::new(
            "eris_object_executed_total",
            "Commands executed by the owning AEUs, per data object.",
            MetricKind::Counter,
        );
        for o in &self.objects {
            let id = o.object.0.to_string();
            enq = enq.sample(&[("object", &id)], o.enqueued as f64);
            exe = exe.sample(&[("object", &id)], o.executed as f64);
        }
        out.push(enq);
        out.push(exe);
        // Balancer activity.
        for (name, help, v) in [
            (
                "eris_balancer_cycles_total",
                "Balancing cycles that moved data.",
                self.balancer.cycles,
            ),
            (
                "eris_balancer_moves_total",
                "Partition transfers executed by balancing cycles.",
                self.balancer.moves,
            ),
            (
                "eris_balancer_keys_moved_total",
                "Keys or rows moved by partition transfers.",
                self.balancer.keys_moved,
            ),
        ] {
            out.push(Metric::new(name, help, MetricKind::Counter).sample(&[], v as f64));
        }
        // Trace-sampling ledger.
        for (name, help, v) in [
            (
                "eris_trace_stamped_total",
                "Commands stamped with a trace marker at routing time.",
                self.trace.stamped,
            ),
            (
                "eris_trace_traced_total",
                "Stamped commands whose latency was recorded at execution.",
                self.trace.traced,
            ),
            (
                "eris_trace_dropped_total",
                "Stamped commands discarded before execution.",
                self.trace.dropped,
            ),
        ] {
            out.push(Metric::new(name, help, MetricKind::Counter).sample(&[], v as f64));
        }
        // Trace-ring accounting.
        for (name, help, get) in [
            (
                "eris_ring_emitted_total",
                "Trace events offered to the per-AEU ring.",
                0usize,
            ),
            (
                "eris_ring_retained",
                "Trace events currently readable in the per-AEU ring.",
                1,
            ),
            (
                "eris_ring_dropped_total",
                "Trace events displaced or abandoned in the per-AEU ring.",
                2,
            ),
        ] {
            let kind = if get == 1 {
                MetricKind::Gauge
            } else {
                MetricKind::Counter
            };
            let mut m = Metric::new(name, help, kind);
            for (aeu, r) in self.rings.iter().enumerate() {
                let v = match get {
                    0 => r.emitted,
                    1 => r.retained,
                    _ => r.dropped,
                };
                m = m.sample(&[("aeu", &aeu.to_string())], v as f64);
            }
            out.push(m);
        }
        // Sampled latency: count + sum per (object, op) and stage, so
        // mean = sum / count is recoverable downstream.
        for (stage, help) in [
            ("queue_wait", "submit to start of the coalesced batch"),
            ("exec", "host-time cost of the executing batch"),
        ] {
            let mut cnt = Metric::new(
                &format!("eris_latency_{stage}_ns_count"),
                &format!("Sampled command latencies recorded ({help})."),
                MetricKind::Counter,
            );
            let mut sum = Metric::new(
                &format!("eris_latency_{stage}_ns_sum"),
                &format!("Sum of sampled command latencies in ns ({help})."),
                MetricKind::Counter,
            );
            for ((object, op), series) in &self.latency {
                let h = if stage == "queue_wait" {
                    &series.queue_wait
                } else {
                    &series.exec
                };
                let labels = [("object", object.to_string()), ("op", op.to_string())];
                let labels: Vec<(&str, &str)> =
                    labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
                cnt = cnt.sample(&labels, h.count as f64);
                sum = sum.sample(&labels, h.sum as f64);
            }
            out.push(cnt);
            out.push(sum);
        }
        // Per-tenant full-path latency (serving traces).
        let mut tcnt = Metric::new(
            "eris_tenant_full_latency_ns_count",
            "Serving-layer traces recorded per tenant (full path: net + admit + queue + exec).",
            MetricKind::Counter,
        );
        let mut tsum = Metric::new(
            "eris_tenant_full_latency_ns_sum",
            "Sum of per-tenant full-path trace latencies in ns.",
            MetricKind::Counter,
        );
        let mut tp99 = Metric::new(
            "eris_tenant_full_latency_p99_ns",
            "Per-tenant full-path p99 latency estimate (log2 bucket upper bound).",
            MetricKind::Gauge,
        );
        for (tenant, h) in &self.tenant_latency {
            let t = tenant.to_string();
            tcnt = tcnt.sample(&[("tenant", &t)], h.count as f64);
            tsum = tsum.sample(&[("tenant", &t)], h.sum as f64);
            tp99 = tp99.sample(&[("tenant", &t)], h.p99() as f64);
        }
        out.push(tcnt);
        out.push(tsum);
        out.push(tp99);
        // Histogram exemplars: one sample per retained bucket occupant
        // and span, so a tail bucket resolves to its full-path trace.
        let mut exm = Metric::new(
            "eris_latency_exemplar_ns",
            "Most recent full-path trace retained per latency bucket, decomposed by span.",
            MetricKind::Gauge,
        );
        for (bucket, e) in self.exemplars.iter().enumerate() {
            let Some(e) = e else { continue };
            let le = eris_obs::latency::bucket_le(bucket).to_string();
            let id = format!("{:016x}", e.trace_id);
            let tenant = e.tenant.to_string();
            for (span, v) in [
                ("total", e.total_ns),
                ("net", e.net_ns),
                ("admit", e.admit_ns),
                ("queue", e.queue_ns),
                ("exec", e.exec_ns),
            ] {
                exm = exm.sample(
                    &[
                        ("le", &le),
                        ("trace_id", &id),
                        ("tenant", &tenant),
                        ("span", span),
                    ],
                    v as f64,
                );
            }
        }
        out.push(exm);
        // Per-AEU epoch-phase attribution.
        let mut phase = Metric::new(
            "eris_aeu_phase_ns_total",
            "Epoch wall time attributed to each execution phase, per AEU.",
            MetricKind::Counter,
        );
        for (aeu, p) in self.phases.iter().enumerate() {
            let a = aeu.to_string();
            for &ph in Phase::ALL.iter() {
                phase = phase.sample(&[("aeu", &a), ("phase", ph.name())], p.get(ph) as f64);
            }
        }
        out.push(phase);
        // Cross-node link traffic.
        let mut link = Metric::new(
            "eris_link_bytes_total",
            "Bytes that crossed each interconnect link, per direction.",
            MetricKind::Counter,
        );
        for l in &self.links {
            let (a, b) = (l.a.to_string(), l.b.to_string());
            link = link
                .sample(&[("a", &a), ("b", &b), ("dir", "ab")], l.bytes_ab as f64)
                .sample(&[("a", &a), ("b", &b), ("dir", "ba")], l.bytes_ba as f64);
        }
        out.push(link);
        out
    }

    /// Render the whole snapshot in the Prometheus text exposition
    /// format.
    pub fn to_prometheus(&self) -> String {
        eris_obs::render_prometheus(&self.to_metrics())
    }
}

impl fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = &self.totals;
        writeln!(
            f,
            "telemetry: {} AEUs on {} nodes",
            self.per_aeu.len(),
            self.per_node.len()
        )?;
        writeln!(
            f,
            "  routed   {:>12}  (unicast {}, multicast {}, splits {})",
            t.commands_routed, t.commands_unicast, t.commands_multicast, t.command_splits
        )?;
        writeln!(
            f,
            "  flushes  {:>12}  (commands {}, bytes {}, stalls {})",
            t.flushes, t.flush_commands, t.flush_bytes, t.flush_stalls
        )?;
        writeln!(
            f,
            "  incoming {:>12}  writes (rejects {}), {} swaps, {} bytes swapped",
            t.incoming_writes, t.incoming_rejects, t.buffer_swaps, t.swapped_bytes
        )?;
        writeln!(
            f,
            "  executed {:>12}  in {} batches ({} coalesced scan batches)",
            t.commands_executed, t.exec_batches, t.coalesced_scans
        )?;
        writeln!(
            f,
            "  ops: {} lookups, {} upserts, {} scans ({} rows), {} forwarded",
            t.lookups, t.upserts, t.scans, t.scan_rows, t.forwarded
        )?;
        writeln!(
            f,
            "  kernels: {} simd sweeps, {} chunked sweeps, {} scalar sweeps, {} batched probe keys",
            t.simd_sweeps, t.chunked_sweeps, t.scalar_sweeps, t.batched_probe_keys
        )?;
        writeln!(
            f,
            "  peaks: outgoing {} B, incoming {} B",
            t.peak_outgoing_bytes, t.peak_incoming_bytes
        )?;
        writeln!(
            f,
            "  balancer: {} cycles, {} moves, {} keys moved",
            self.balancer.cycles, self.balancer.moves, self.balancer.keys_moved
        )?;
        writeln!(
            f,
            "  journal: {} records, {} bytes, {} fsyncs, {} replayed",
            t.journal_records, t.journal_bytes, t.journal_fsyncs, t.replayed_records
        )?;
        let ring_emitted: u64 = self.rings.iter().map(|r| r.emitted).sum();
        let ring_dropped: u64 = self.rings.iter().map(|r| r.dropped).sum();
        writeln!(
            f,
            "  trace: {} stamped, {} traced, {} dropped; {} latency series; {} ring events ({} displaced)",
            self.trace.stamped,
            self.trace.traced,
            self.trace.dropped,
            self.latency.len(),
            ring_emitted,
            ring_dropped
        )?;
        for (n, c) in &self.per_node {
            writeln!(
                f,
                "  node {:>2}: routed {:>10} executed {:>10} flush bytes {:>12}",
                n.0, c.commands_routed, c.commands_executed, c.flush_bytes
            )?;
        }
        for o in &self.objects {
            writeln!(
                f,
                "  object {:>2}: enqueued {:>10} executed {:>10} {}",
                o.object.0,
                o.enqueued,
                o.executed,
                if o.enqueued == o.executed {
                    "(balanced)".to_string()
                } else {
                    format!("({} in flight)", o.in_flight())
                }
            )?;
        }
        let filled = self.exemplars.iter().flatten().count();
        if !self.tenant_latency.is_empty() || filled > 0 {
            writeln!(
                f,
                "  serving: {} tenant latency series, {} bucket exemplars",
                self.tenant_latency.len(),
                filled
            )?;
        }
        let mut agg = PhaseBreakdown::default();
        for p in &self.phases {
            for (slot, v) in agg.ns.iter_mut().zip(p.ns.iter()) {
                *slot += v;
            }
        }
        if agg.total_ns() > 0 {
            write!(f, "  phases:")?;
            for &ph in Phase::ALL.iter() {
                write!(f, " {} {:.0}%", ph.name(), agg.fraction(ph) * 100.0)?;
            }
            writeln!(f)?;
        }
        for l in &self.links {
            if l.bytes_ab + l.bytes_ba > 0 {
                writeln!(
                    f,
                    "  link {}<->{}: {} B ->, {} B <-",
                    l.a, l.b, l.bytes_ab, l.bytes_ba
                )?;
            }
        }
        writeln!(f, "  swap batch: {}", self.swap_batch)?;
        writeln!(f, "  exec group: {}", self.exec_group)?;
        write!(f, "  step ns:    {}", self.step_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_value_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of((1 << 14) + 1), 15);
        assert_eq!(bucket_of(1 << 15), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_merges() {
        let h = Histogram::default();
        for v in [0, 1, 1, 5, 40_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 40_007);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        let mut m = s;
        m.merge(&s);
        assert_eq!(m.count(), 10);
        assert_eq!(m.sum, 2 * 40_007);
    }

    #[test]
    fn counters_merge_sums_and_maxes() {
        let a = LiveCounters::default();
        a.commands_routed.store(5, Relaxed);
        a.peak_outgoing_bytes.store(100, Relaxed);
        let b = LiveCounters::default();
        b.commands_routed.store(7, Relaxed);
        b.peak_outgoing_bytes.store(60, Relaxed);
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.commands_routed, 12);
        assert_eq!(total.peak_outgoing_bytes, 100, "peaks take the max");
    }

    #[test]
    fn since_subtracts_counters_but_keeps_peaks() {
        let earlier = CounterSnapshot {
            lookups: 10,
            peak_incoming_bytes: 500,
            ..Default::default()
        };
        let later = CounterSnapshot {
            lookups: 25,
            peak_incoming_bytes: 800,
            ..earlier
        };
        let d = later.since(&earlier);
        assert_eq!(d.lookups, 15);
        assert_eq!(d.peak_incoming_bytes, 800);
    }

    #[test]
    fn since_across_a_reset_returns_post_reset_values() {
        let t = Telemetry::new(1);
        t.shard(AeuId(0)).counters.lookups.fetch_add(100, Relaxed);
        let before = t.totals_with(|_, _| {});
        assert_eq!(before.lookups, 100);
        t.reset_shards();
        t.shard(AeuId(0)).counters.lookups.fetch_add(7, Relaxed);
        let after = t.totals_with(|_, _| {});
        assert_ne!(after.generation, before.generation, "reset is stamped");
        // Without the generation stamp this delta would clamp to 0 and
        // mask the 7 post-reset lookups.
        assert_eq!(after.since(&before).lookups, 7);
        // Same-generation deltas still subtract normally.
        t.shard(AeuId(0)).counters.lookups.fetch_add(3, Relaxed);
        assert_eq!(t.totals_with(|_, _| {}).since(&after).lookups, 3);
    }

    #[test]
    fn registry_hands_out_stable_object_ledgers() {
        let t = Telemetry::new(2);
        let a = t.object(DataObjectId(3));
        a.enqueued.fetch_add(4, Relaxed);
        let b = t.object(DataObjectId(3));
        assert_eq!(b.enqueued.load(Relaxed), 4, "same ledger");
        // Gaps below the max id are materialized too.
        assert_eq!(t.object(DataObjectId(1)).enqueued.load(Relaxed), 0);
    }

    #[test]
    fn snapshot_rolls_up_nodes_and_detects_imbalance() {
        let t = Telemetry::new(4);
        let node_of = [NodeId(0), NodeId(0), NodeId(1), NodeId(1)];
        t.shard(AeuId(0)).counters.lookups.fetch_add(3, Relaxed);
        t.shard(AeuId(2)).counters.lookups.fetch_add(9, Relaxed);
        t.object(DataObjectId(0)).enqueued.fetch_add(2, Relaxed);
        let snap = t.snapshot_with(&node_of, |_, _| {});
        assert_eq!(snap.totals.lookups, 12);
        assert_eq!(snap.per_node.len(), 2);
        assert_eq!(snap.per_node[0].1.lookups, 3);
        assert_eq!(snap.per_node[1].1.lookups, 9);
        assert!(!snap.conservation_holds(), "2 enqueued, 0 executed");
        t.object(DataObjectId(0)).executed.fetch_add(2, Relaxed);
        let snap = t.snapshot_with(&node_of, |_, _| {});
        assert!(snap.conservation_holds());
    }

    #[test]
    fn fill_patches_external_counters_into_shards() {
        let t = Telemetry::new(2);
        let totals = t.totals_with(|i, c| c.incoming_writes = (i as u64 + 1) * 10);
        assert_eq!(totals.incoming_writes, 30);
    }

    #[test]
    fn reset_clears_shards_but_keeps_object_ledgers() {
        let t = Telemetry::new(2);
        t.shard(AeuId(0)).counters.lookups.fetch_add(7, Relaxed);
        t.shard(AeuId(1))
            .counters
            .journal_bytes
            .fetch_add(9, Relaxed);
        t.shard(AeuId(1)).swap_batch.record(3);
        t.balancer_cycles.fetch_add(2, Relaxed);
        t.object(DataObjectId(0)).enqueued.fetch_add(5, Relaxed);
        t.object(DataObjectId(0)).executed.fetch_add(5, Relaxed);
        t.reset_shards();
        let snap = t.snapshot_with(&[NodeId(0), NodeId(0)], |_, _| {});
        assert_eq!(snap.totals.lookups, 0);
        assert_eq!(snap.totals.journal_bytes, 0);
        assert_eq!(snap.swap_batch.count(), 0);
        assert_eq!(snap.balancer.cycles, 0);
        assert_eq!(snap.objects[0].enqueued, 5, "ledger survives reset");
        assert!(snap.conservation_holds());
        t.restore_object_ledger(DataObjectId(0), 8, 8);
        assert_eq!(t.object(DataObjectId(0)).executed.load(Relaxed), 8);
    }

    #[test]
    fn render_mentions_every_section() {
        let t = Telemetry::new(2);
        t.shard(AeuId(0)).counters.scans.fetch_add(4, Relaxed);
        t.shard(AeuId(0)).swap_batch.record(8);
        t.object(DataObjectId(0)).enqueued.fetch_add(1, Relaxed);
        let snap = t.snapshot_with(&[NodeId(0), NodeId(1)], |_, _| {});
        let text = snap.to_string();
        for needle in [
            "routed",
            "flushes",
            "executed",
            "balancer",
            "object",
            "swap batch",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        let json = snap.to_json();
        for key in [
            "\"totals\"",
            "\"per_aeu\"",
            "\"per_node\"",
            "\"objects\"",
            "\"balancer\"",
            "\"histograms\"",
        ] {
            assert!(json.contains(key), "missing {key} in JSON");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
