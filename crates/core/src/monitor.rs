//! The monitoring component of the adaption loop (Section 3.3).
//!
//! *"The ERIS adaption loop starts with the monitoring of the different
//! metrics on a per data object level.  Based on the captured metrics, the
//! load balancer periodically checks the load of ERIS for imbalances."*
//!
//! [`Monitor`] keeps a ring of per-partition metric snapshots for every
//! data object, exposes the imbalance (coefficient of variation) per metric
//! and its trend, and is what an operator dashboard (or the "ERIS live"
//! demo UI) would read.

use crate::command::DataObjectId;
use std::collections::{HashMap, VecDeque};

/// One sampling window's per-partition measurements for one object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sample {
    /// Virtual time the sample was taken, seconds.
    pub at_secs: f64,
    /// Accesses per partition in the window.
    pub accesses: Vec<u64>,
    /// Execution time per partition in the window, virtual ns.
    pub exec_ns: Vec<f64>,
    /// Keys/rows per partition at sample time.
    pub lens: Vec<usize>,
    /// Resident bytes per partition at sample time.
    pub bytes: Vec<u64>,
}

impl Sample {
    /// Coefficient of variation of the access histogram.
    pub fn access_cv(&self) -> f64 {
        cv(&self.accesses.iter().map(|&a| a as f64).collect::<Vec<_>>())
    }

    /// Coefficient of variation of the execution-time histogram.
    pub fn exec_cv(&self) -> f64 {
        cv(&self.exec_ns)
    }

    /// Coefficient of variation of the physical sizes.
    pub fn size_cv(&self) -> f64 {
        cv(&self.lens.iter().map(|&l| l as f64).collect::<Vec<_>>())
    }

    /// Total accesses in the window.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }
}

/// Standard deviation over mean (0 for degenerate histograms).
pub fn cv(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// Minimum *absolute* growth in access CV for [`Monitor::imbalance_rising`].
/// A purely relative trigger (`last > first * 1.1`) degenerates when the
/// window starts perfectly balanced: `first == 0.0` makes any nonzero CV —
/// even measurement noise of 0.001 — a "rising imbalance".
pub const RISING_MIN_DELTA: f64 = 0.05;

/// Balancer evaluations retained in the audit log.
pub const AUDIT_CAPACITY: usize = 256;

/// The outcome of one balancer evaluation of one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceVerdict {
    /// The metric CV was under the configured threshold — balanced enough.
    BelowThreshold,
    /// A cooldown from a previous oscillation suppressed the evaluation.
    CoolingDown,
    /// Over threshold, but the previous cycle paid real transfer cost
    /// without improving the imbalance (an indivisible hotspot); the
    /// balancer backed off instead of thrashing.
    OscillationDetected,
    /// Over threshold, but the target boundaries equal the current ones.
    NoBoundaryChange,
    /// Data moved; see [`BalanceDecision::migrations`].
    Rebalanced,
}

/// One executed partition migration, as recorded in the audit log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRecord {
    /// Source partition index (= AEU slot in table order).
    pub src: usize,
    /// Destination partition index.
    pub dst: usize,
    /// Moved key range `[lo, hi)`; `0..0` for size-partitioned row moves,
    /// which shift tail rows rather than a key range.
    pub lo: u64,
    pub hi: u64,
    /// Keys (index objects) or rows (columns) actually moved.
    pub keys: u64,
    /// Payload bytes represented by those keys/rows.
    pub bytes: u64,
}

/// One adaption-loop evaluation: the per-metric CVs the balancer saw, the
/// threshold it compared against, its verdict, and — when it moved data —
/// every migration it executed.
#[derive(Debug, Clone)]
pub struct BalanceDecision {
    /// Virtual time of the evaluation, seconds.
    pub at_secs: f64,
    pub object: DataObjectId,
    /// CV of the access histogram at evaluation time.
    pub access_cv: f64,
    /// CV of the per-partition execution times.
    pub exec_cv: f64,
    /// CV of the per-partition sizes.
    pub size_cv: f64,
    /// The configured trigger threshold the CVs were judged against.
    pub threshold_cv: f64,
    pub verdict: BalanceVerdict,
    /// Executed migrations (empty unless `verdict == Rebalanced`).
    pub migrations: Vec<MigrationRecord>,
}

static EMPTY_HISTORY: VecDeque<Sample> = VecDeque::new();

/// Per-object sample history with a bounded ring, plus the balancer's
/// decision audit log.
pub struct Monitor {
    history: HashMap<DataObjectId, VecDeque<Sample>>,
    capacity: usize,
    audit: VecDeque<BalanceDecision>,
}

impl Monitor {
    /// A monitor retaining the last `capacity` samples per object.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        Monitor {
            history: HashMap::new(),
            capacity,
            audit: VecDeque::new(),
        }
    }

    /// Record one sampling window for `object` (amortized O(1); the ring
    /// is a `VecDeque`, not a `Vec` with `remove(0)` shifts).
    pub fn record(&mut self, object: DataObjectId, sample: Sample) {
        let ring = self.history.entry(object).or_default();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(sample);
    }

    /// The most recent sample of an object.
    pub fn latest(&self, object: DataObjectId) -> Option<&Sample> {
        self.history.get(&object).and_then(|r| r.back())
    }

    /// Full retained history (oldest first).
    pub fn history(&self, object: DataObjectId) -> &VecDeque<Sample> {
        self.history.get(&object).unwrap_or(&EMPTY_HISTORY)
    }

    /// Append one balancer evaluation to the audit log (bounded at
    /// [`AUDIT_CAPACITY`], oldest evicted first).
    pub fn record_decision(&mut self, decision: BalanceDecision) {
        if self.audit.len() == AUDIT_CAPACITY {
            self.audit.pop_front();
        }
        self.audit.push_back(decision);
    }

    /// The retained balancer evaluations, oldest first.
    pub fn audit_log(&self) -> &VecDeque<BalanceDecision> {
        &self.audit
    }

    /// The most recent balancer evaluation of one object.
    pub fn last_decision(&self, object: DataObjectId) -> Option<&BalanceDecision> {
        self.audit.iter().rev().find(|d| d.object == object)
    }

    /// Is the access imbalance trending up over the last `k` samples?
    /// (An increasing trend means the workload is drifting faster than the
    /// balancer converges.)  Requires both 10% relative growth *and*
    /// [`RISING_MIN_DELTA`] absolute growth, so a perfectly balanced
    /// window (CV exactly 0) is not "rising" on the first speck of noise.
    pub fn imbalance_rising(&self, object: DataObjectId, k: usize) -> bool {
        let h = self.history(object);
        let k = k.max(2);
        if h.len() < k {
            return false;
        }
        let first = h[h.len() - k].access_cv();
        let last = h[h.len() - 1].access_cv();
        last > first * 1.1 && last > first + RISING_MIN_DELTA
    }

    /// Mean accesses per second over the retained history of an object.
    pub fn throughput_ops_per_sec(&self, object: DataObjectId) -> f64 {
        let h = self.history(object);
        if h.len() < 2 {
            return 0.0;
        }
        let dt = h.back().unwrap().at_secs - h.front().unwrap().at_secs;
        if dt <= 0.0 {
            return 0.0;
        }
        let ops: u64 = h.iter().skip(1).map(|s| s.total_accesses()).sum();
        ops as f64 / dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at: f64, accesses: Vec<u64>) -> Sample {
        Sample {
            at_secs: at,
            lens: vec![0; accesses.len()],
            exec_ns: accesses.iter().map(|&a| a as f64 * 10.0).collect(),
            bytes: vec![0; accesses.len()],
            accesses,
        }
    }

    #[test]
    fn cv_of_uniform_is_zero() {
        assert_eq!(cv(&[5.0, 5.0, 5.0]), 0.0);
        assert!(cv(&[0.0, 10.0]) > 0.9);
        assert_eq!(cv(&[1.0]), 0.0, "single partition is never imbalanced");
        assert_eq!(cv(&[0.0, 0.0]), 0.0, "idle object");
    }

    #[test]
    fn sample_cvs() {
        let s = sample(1.0, vec![0, 0, 100, 100]);
        assert!(s.access_cv() > 0.9);
        assert!(s.exec_cv() > 0.9);
        assert_eq!(s.size_cv(), 0.0);
        assert_eq!(s.total_accesses(), 200);
    }

    #[test]
    fn ring_keeps_last_capacity_samples() {
        let mut m = Monitor::new(3);
        let o = DataObjectId(0);
        for i in 0..5 {
            m.record(o, sample(i as f64, vec![i, i]));
        }
        assert_eq!(m.history(o).len(), 3);
        assert_eq!(m.latest(o).unwrap().at_secs, 4.0);
        assert_eq!(m.history(o)[0].at_secs, 2.0);
        assert!(m.latest(DataObjectId(9)).is_none());
    }

    #[test]
    fn rising_imbalance_detection() {
        let mut m = Monitor::new(8);
        let o = DataObjectId(0);
        m.record(o, sample(0.0, vec![10, 10, 10, 10]));
        m.record(o, sample(1.0, vec![5, 5, 15, 15]));
        m.record(o, sample(2.0, vec![1, 1, 30, 30]));
        assert!(m.imbalance_rising(o, 3));
        let mut flat = Monitor::new(8);
        flat.record(o, sample(0.0, vec![10, 10]));
        flat.record(o, sample(1.0, vec![10, 10]));
        assert!(!flat.imbalance_rising(o, 2));
    }

    #[test]
    fn ring_order_and_capacity_semantics_match_a_plain_vec() {
        // The VecDeque ring must be observably identical to the previous
        // `Vec::remove(0)` implementation: oldest-first iteration, exact
        // capacity bound, eviction strictly from the front.
        let cap = 7;
        let mut m = Monitor::new(cap);
        let o = DataObjectId(1);
        let mut oracle: Vec<f64> = Vec::new();
        for i in 0..40 {
            let at = i as f64;
            m.record(o, sample(at, vec![i, i + 1]));
            if oracle.len() == cap {
                oracle.remove(0);
            }
            oracle.push(at);
            let got: Vec<f64> = m.history(o).iter().map(|s| s.at_secs).collect();
            assert_eq!(got, oracle, "after {} records", i + 1);
        }
        assert_eq!(m.history(o).len(), cap);
        assert_eq!(m.latest(o).unwrap().at_secs, 39.0);
        assert_eq!(m.history(o)[0].at_secs, 33.0);
    }

    #[test]
    fn rising_needs_absolute_growth_not_just_relative() {
        // Regression: with `first == 0.0` the old relative-only trigger
        // (`last > first * 1.1`) fired on ANY nonzero CV — a single access
        // of noise on a perfectly balanced object read as "rising".
        let mut m = Monitor::new(8);
        let o = DataObjectId(0);
        m.record(o, sample(0.0, vec![100, 100, 100, 100]));
        m.record(o, sample(1.0, vec![100, 100, 100, 101]));
        let last_cv = m.latest(o).unwrap().access_cv();
        assert!(
            last_cv > 0.0 && last_cv < RISING_MIN_DELTA,
            "noise-level CV"
        );
        assert!(
            !m.imbalance_rising(o, 2),
            "noise on a balanced object is not a rising imbalance"
        );
        // A genuine swing from flat to skewed still trips the detector.
        m.record(o, sample(2.0, vec![10, 10, 300, 300]));
        assert!(m.imbalance_rising(o, 2));
    }

    #[test]
    fn audit_log_is_bounded_and_queryable() {
        let mut m = Monitor::new(4);
        let decision = |obj: u32, at: f64, verdict| BalanceDecision {
            at_secs: at,
            object: DataObjectId(obj),
            access_cv: 0.5,
            exec_cv: 0.4,
            size_cv: 0.0,
            threshold_cv: 0.3,
            verdict,
            migrations: vec![MigrationRecord {
                src: 0,
                dst: 1,
                lo: 0,
                hi: 10,
                keys: 10,
                bytes: 80,
            }],
        };
        for i in 0..AUDIT_CAPACITY + 5 {
            m.record_decision(decision(
                (i % 2) as u32,
                i as f64,
                BalanceVerdict::Rebalanced,
            ));
        }
        assert_eq!(m.audit_log().len(), AUDIT_CAPACITY, "bounded");
        assert_eq!(
            m.audit_log().front().unwrap().at_secs,
            5.0,
            "oldest evicted first"
        );
        let last = m.last_decision(DataObjectId(0)).unwrap();
        assert_eq!(last.at_secs, (AUDIT_CAPACITY + 4) as f64);
        assert_eq!(last.migrations.len(), 1);
        assert!(m.last_decision(DataObjectId(9)).is_none());
    }

    #[test]
    fn throughput_over_history() {
        let mut m = Monitor::new(8);
        let o = DataObjectId(0);
        m.record(o, sample(0.0, vec![0, 0]));
        m.record(o, sample(1.0, vec![500, 500]));
        m.record(o, sample(2.0, vec![500, 500]));
        assert!((m.throughput_ops_per_sec(o) - 1000.0).abs() < 1e-9);
        assert_eq!(m.throughput_ops_per_sec(DataObjectId(3)), 0.0);
    }
}
