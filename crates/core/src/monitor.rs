//! The monitoring component of the adaption loop (Section 3.3).
//!
//! *"The ERIS adaption loop starts with the monitoring of the different
//! metrics on a per data object level.  Based on the captured metrics, the
//! load balancer periodically checks the load of ERIS for imbalances."*
//!
//! [`Monitor`] keeps a ring of per-partition metric snapshots for every
//! data object, exposes the imbalance (coefficient of variation) per metric
//! and its trend, and is what an operator dashboard (or the "ERIS live"
//! demo UI) would read.

use crate::command::DataObjectId;
use std::collections::HashMap;

/// One sampling window's per-partition measurements for one object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sample {
    /// Virtual time the sample was taken, seconds.
    pub at_secs: f64,
    /// Accesses per partition in the window.
    pub accesses: Vec<u64>,
    /// Execution time per partition in the window, virtual ns.
    pub exec_ns: Vec<f64>,
    /// Keys/rows per partition at sample time.
    pub lens: Vec<usize>,
    /// Resident bytes per partition at sample time.
    pub bytes: Vec<u64>,
}

impl Sample {
    /// Coefficient of variation of the access histogram.
    pub fn access_cv(&self) -> f64 {
        cv(&self.accesses.iter().map(|&a| a as f64).collect::<Vec<_>>())
    }

    /// Coefficient of variation of the execution-time histogram.
    pub fn exec_cv(&self) -> f64 {
        cv(&self.exec_ns)
    }

    /// Coefficient of variation of the physical sizes.
    pub fn size_cv(&self) -> f64 {
        cv(&self.lens.iter().map(|&l| l as f64).collect::<Vec<_>>())
    }

    /// Total accesses in the window.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }
}

/// Standard deviation over mean (0 for degenerate histograms).
pub fn cv(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// Per-object sample history with a bounded ring.
pub struct Monitor {
    history: HashMap<DataObjectId, Vec<Sample>>,
    capacity: usize,
}

impl Monitor {
    /// A monitor retaining the last `capacity` samples per object.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        Monitor {
            history: HashMap::new(),
            capacity,
        }
    }

    /// Record one sampling window for `object`.
    pub fn record(&mut self, object: DataObjectId, sample: Sample) {
        let ring = self.history.entry(object).or_default();
        if ring.len() == self.capacity {
            ring.remove(0);
        }
        ring.push(sample);
    }

    /// The most recent sample of an object.
    pub fn latest(&self, object: DataObjectId) -> Option<&Sample> {
        self.history.get(&object).and_then(|r| r.last())
    }

    /// Full retained history (oldest first).
    pub fn history(&self, object: DataObjectId) -> &[Sample] {
        self.history.get(&object).map_or(&[], |r| r.as_slice())
    }

    /// Is the access imbalance trending up over the last `k` samples?
    /// (An increasing trend means the workload is drifting faster than the
    /// balancer converges.)
    pub fn imbalance_rising(&self, object: DataObjectId, k: usize) -> bool {
        let h = self.history(object);
        if h.len() < k.max(2) {
            return false;
        }
        let tail = &h[h.len() - k.max(2)..];
        let first = tail.first().unwrap().access_cv();
        let last = tail.last().unwrap().access_cv();
        last > first * 1.1
    }

    /// Mean accesses per second over the retained history of an object.
    pub fn throughput_ops_per_sec(&self, object: DataObjectId) -> f64 {
        let h = self.history(object);
        if h.len() < 2 {
            return 0.0;
        }
        let dt = h.last().unwrap().at_secs - h.first().unwrap().at_secs;
        if dt <= 0.0 {
            return 0.0;
        }
        let ops: u64 = h[1..].iter().map(|s| s.total_accesses()).sum();
        ops as f64 / dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at: f64, accesses: Vec<u64>) -> Sample {
        Sample {
            at_secs: at,
            lens: vec![0; accesses.len()],
            exec_ns: accesses.iter().map(|&a| a as f64 * 10.0).collect(),
            bytes: vec![0; accesses.len()],
            accesses,
        }
    }

    #[test]
    fn cv_of_uniform_is_zero() {
        assert_eq!(cv(&[5.0, 5.0, 5.0]), 0.0);
        assert!(cv(&[0.0, 10.0]) > 0.9);
        assert_eq!(cv(&[1.0]), 0.0, "single partition is never imbalanced");
        assert_eq!(cv(&[0.0, 0.0]), 0.0, "idle object");
    }

    #[test]
    fn sample_cvs() {
        let s = sample(1.0, vec![0, 0, 100, 100]);
        assert!(s.access_cv() > 0.9);
        assert!(s.exec_cv() > 0.9);
        assert_eq!(s.size_cv(), 0.0);
        assert_eq!(s.total_accesses(), 200);
    }

    #[test]
    fn ring_keeps_last_capacity_samples() {
        let mut m = Monitor::new(3);
        let o = DataObjectId(0);
        for i in 0..5 {
            m.record(o, sample(i as f64, vec![i, i]));
        }
        assert_eq!(m.history(o).len(), 3);
        assert_eq!(m.latest(o).unwrap().at_secs, 4.0);
        assert_eq!(m.history(o)[0].at_secs, 2.0);
        assert!(m.latest(DataObjectId(9)).is_none());
    }

    #[test]
    fn rising_imbalance_detection() {
        let mut m = Monitor::new(8);
        let o = DataObjectId(0);
        m.record(o, sample(0.0, vec![10, 10, 10, 10]));
        m.record(o, sample(1.0, vec![5, 5, 15, 15]));
        m.record(o, sample(2.0, vec![1, 1, 30, 30]));
        assert!(m.imbalance_rising(o, 3));
        let mut flat = Monitor::new(8);
        flat.record(o, sample(0.0, vec![10, 10]));
        flat.record(o, sample(1.0, vec![10, 10]));
        assert!(!flat.imbalance_rising(o, 2));
    }

    #[test]
    fn throughput_over_history() {
        let mut m = Monitor::new(8);
        let o = DataObjectId(0);
        m.record(o, sample(0.0, vec![0, 0]));
        m.record(o, sample(1.0, vec![500, 500]));
        m.record(o, sample(2.0, vec![500, 500]));
        assert!((m.throughput_ops_per_sec(o) - 1000.0).abs() < 1e-9);
        assert_eq!(m.throughput_ops_per_sec(DataObjectId(3)), 0.0);
    }
}
