//! Result collection: the "callback function reference" of a data command.
//!
//! Commands carry a `ticket`; AEUs report completions here.  Throughput
//! experiments only need the atomic counters; correctness tests enable
//! value collection and assert on the exact results.

use crate::command::AeuId;
use eris_column::scan::AggregateResult;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared sink for operation results.
#[derive(Debug, Default)]
pub struct ResultCollector {
    pub lookups: AtomicU64,
    pub lookup_hits: AtomicU64,
    pub upserts: AtomicU64,
    pub inserted_new: AtomicU64,
    pub scans: AtomicU64,
    pub rows_scanned: AtomicU64,
    collect_values: bool,
    lookup_values: Mutex<Vec<(u64, u64, Option<u64>)>>,
    scan_results: Mutex<Vec<(u64, AeuId, AggregateResult)>>,
}

impl ResultCollector {
    /// Counters only.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters plus full value collection (tests).
    pub fn collecting() -> Self {
        ResultCollector {
            collect_values: true,
            ..Default::default()
        }
    }

    /// Record a batch of lookup results.
    // HOT-PATH-CUT: reply staging — result batches own their payload
    // vectors by design; the collector is the handoff out of the
    // latch-free section.
    pub fn lookup_batch(&self, ticket: u64, keys: &[u64], values: &[Option<u64>]) {
        debug_assert_eq!(keys.len(), values.len());
        self.lookups.fetch_add(keys.len() as u64, Ordering::Relaxed);
        let hits = values.iter().filter(|v| v.is_some()).count() as u64;
        self.lookup_hits.fetch_add(hits, Ordering::Relaxed);
        if self.collect_values {
            let mut g = self.lookup_values.lock();
            for (k, v) in keys.iter().zip(values) {
                g.push((ticket, *k, *v));
            }
        }
    }

    /// Record a batch of upserts, `new` of which inserted fresh keys.
    // HOT-PATH-CUT: reply staging — result batches own their payload
    // vectors by design; the collector is the handoff out of the
    // latch-free section.
    pub fn upsert_batch(&self, n: u64, new: u64) {
        self.upserts.fetch_add(n, Ordering::Relaxed);
        self.inserted_new.fetch_add(new, Ordering::Relaxed);
    }

    /// Record one partition's contribution to a scan.
    // HOT-PATH-CUT: reply staging — result batches own their payload
    // vectors by design; the collector is the handoff out of the
    // latch-free section.
    pub fn scan_partial(&self, ticket: u64, from: AeuId, result: AggregateResult, rows: u64) {
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.rows_scanned.fetch_add(rows, Ordering::Relaxed);
        if self.collect_values {
            self.scan_results.lock().push((ticket, from, result));
        }
    }

    /// Collected lookup results (collection mode only).
    pub fn take_lookup_values(&self) -> Vec<(u64, u64, Option<u64>)> {
        std::mem::take(&mut self.lookup_values.lock())
    }

    /// Collected scan partials (collection mode only).
    pub fn take_scan_results(&self) -> Vec<(u64, AeuId, AggregateResult)> {
        std::mem::take(&mut self.scan_results.lock())
    }

    /// Combine scan partials of one ticket into a single aggregate.
    pub fn combine_scan(&self, ticket: u64) -> Option<AggregateResult> {
        let partials = self.scan_results.lock();
        let mut acc: Option<AggregateResult> = None;
        for (t, _, r) in partials.iter() {
            if *t != ticket {
                continue;
            }
            acc = Some(match (acc, *r) {
                (None, r) => r,
                (Some(AggregateResult::Count(a)), AggregateResult::Count(b)) => {
                    AggregateResult::Count(a + b)
                }
                (Some(AggregateResult::Sum(a)), AggregateResult::Sum(b)) => {
                    AggregateResult::Sum(a.wrapping_add(b))
                }
                (Some(AggregateResult::MinMax(a)), AggregateResult::MinMax(b)) => {
                    AggregateResult::MinMax(match (a, b) {
                        (None, x) | (x, None) => x,
                        (Some((al, ah)), Some((bl, bh))) => Some((al.min(bl), ah.max(bh))),
                    })
                }
                (Some(a), b) => {
                    panic!("mixed aggregate kinds for ticket {ticket}: {a:?} vs {b:?}")
                }
            });
        }
        acc
    }

    /// Snapshot of the counter values.
    pub fn counts(&self) -> ResultCounts {
        ResultCounts {
            lookups: self.lookups.load(Ordering::Relaxed),
            lookup_hits: self.lookup_hits.load(Ordering::Relaxed),
            upserts: self.upserts.load(Ordering::Relaxed),
            inserted_new: self.inserted_new.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
        }
    }
}

/// A counter snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCounts {
    pub lookups: u64,
    pub lookup_hits: u64,
    pub upserts: u64,
    pub inserted_new: u64,
    pub scans: u64,
    pub rows_scanned: u64,
}

impl std::ops::Sub for ResultCounts {
    type Output = ResultCounts;
    fn sub(self, rhs: ResultCounts) -> ResultCounts {
        ResultCounts {
            lookups: self.lookups - rhs.lookups,
            lookup_hits: self.lookup_hits - rhs.lookup_hits,
            upserts: self.upserts - rhs.upserts,
            inserted_new: self.inserted_new - rhs.inserted_new,
            scans: self.scans - rhs.scans,
            rows_scanned: self.rows_scanned - rhs.rows_scanned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = ResultCollector::new();
        c.lookup_batch(1, &[1, 2, 3], &[Some(1), None, Some(3)]);
        c.upsert_batch(5, 2);
        c.scan_partial(9, AeuId(0), AggregateResult::Count(7), 100);
        let s = c.counts();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.lookup_hits, 2);
        assert_eq!(s.upserts, 5);
        assert_eq!(s.inserted_new, 2);
        assert_eq!(s.scans, 1);
        assert_eq!(s.rows_scanned, 100);
    }

    #[test]
    fn counting_mode_drops_values() {
        let c = ResultCollector::new();
        c.lookup_batch(1, &[1], &[Some(1)]);
        assert!(c.take_lookup_values().is_empty());
    }

    #[test]
    fn collection_mode_keeps_values() {
        let c = ResultCollector::collecting();
        c.lookup_batch(1, &[1, 2], &[Some(10), None]);
        let v = c.take_lookup_values();
        assert_eq!(v, vec![(1, 1, Some(10)), (1, 2, None)]);
        assert!(c.take_lookup_values().is_empty(), "take drains");
    }

    #[test]
    fn combine_scan_partials() {
        let c = ResultCollector::collecting();
        c.scan_partial(5, AeuId(0), AggregateResult::Count(10), 10);
        c.scan_partial(5, AeuId(1), AggregateResult::Count(32), 32);
        c.scan_partial(6, AeuId(0), AggregateResult::Count(1), 1);
        assert_eq!(c.combine_scan(5), Some(AggregateResult::Count(42)));
        assert_eq!(c.combine_scan(7), None);
    }

    #[test]
    fn combine_minmax_with_empty_partials() {
        let c = ResultCollector::collecting();
        c.scan_partial(1, AeuId(0), AggregateResult::MinMax(None), 0);
        c.scan_partial(1, AeuId(1), AggregateResult::MinMax(Some((3, 9))), 5);
        assert_eq!(
            c.combine_scan(1),
            Some(AggregateResult::MinMax(Some((3, 9))))
        );
    }

    #[test]
    fn counts_difference() {
        let a = ResultCounts {
            lookups: 10,
            ..Default::default()
        };
        let b = ResultCounts {
            lookups: 4,
            ..Default::default()
        };
        assert_eq!((a - b).lookups, 6);
    }
}
