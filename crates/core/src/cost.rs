//! Virtual-time cost parameters and the analytic cache model.
//!
//! The cooperative runtime charges every storage operation CPU time,
//! memory latency, and memory traffic.  CPU and latency constants live in
//! [`CostParams`]; traffic goes through the max-min fair flow solver of
//! `eris-numa`.  The per-lookup *miss count* comes from an analytic model
//! of the prefix tree against the last-level cache: the top levels of the
//! tree are hot and cache-resident, the bottom levels miss — the exact
//! effect Figures 8 and 10 of the paper attribute the ERIS/shared gap to.

use eris_index::PrefixTreeConfig;

/// Calibration constants of the virtual-time model.
///
/// Values are chosen to sit in the plausible range of the paper's hardware
/// generation (Sandy Bridge / Interlagos era); the reproduction targets
/// *shapes and ratios*, not absolute numbers.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Fixed CPU cost per point operation (dispatch, hashing the digit
    /// path, result handling).
    pub cpu_ns_per_point_op: f64,
    /// CPU cost per tree level traversed.
    pub cpu_ns_per_tree_level: f64,
    /// Extra CPU per upsert (slot write, presence bit, occasional node
    /// allocation).
    pub cpu_ns_per_upsert: f64,
    /// Extra cost per upsert on the *shared* tree: the CAS-based
    /// synchronization the baseline needs ("synchronized via atomic
    /// instructions").
    pub shared_cas_ns: f64,
    /// CPU cost per row during a column scan (predicate + aggregate).
    pub cpu_ns_per_scan_row: f64,
    /// CPU cost of routing one command (partition-table lookup, encode).
    pub cpu_ns_per_routed_cmd: f64,
    /// CPU cost per key examined while splitting a command's data segment
    /// by owner (routing step 1's batch lookup), plus encode/decode copy.
    pub cpu_ns_per_routed_key: f64,
    /// Latency multiplier for the shared baseline's remote accesses: the
    /// snooping cache-coherence overhead of uncoordinated sharing
    /// (Hackenberg et al., MICRO'09; Section 2.1 of the paper).
    pub shared_coherence_factor: f64,
    /// Latency charge per flush into a remote incoming buffer (one
    /// reservation round trip).
    pub flush_latency_factor: f64,
    /// Memory-level parallelism: outstanding misses a batched lookup loop
    /// overlaps (the command-grouping optimization of Section 3.1).
    pub mlp: f64,
    /// Cache line size in bytes.
    pub cache_line: u64,
    /// Fixed cost of a *link* partition transfer (pointer relink inside a
    /// memory-management domain).
    pub link_transfer_ns: f64,
    /// CPU cost per key to rebuild an index from a flattened stream on the
    /// target side of a *copy* transfer.
    pub rebuild_ns_per_key: f64,
    /// Bytes per key in the flattened exchange format (key + value).
    pub transfer_bytes_per_key: u64,
    /// Core frequency relative to nominal (DVFS), scaling all CPU work.
    /// Memory latency and bandwidth are unaffected — the lever behind the
    /// paper's future-work question of energy awareness on a data-oriented
    /// architecture (Section 6): memory-bound AEUs lose little throughput
    /// at reduced frequency.
    pub frequency_scale: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            cpu_ns_per_point_op: 14.0,
            cpu_ns_per_tree_level: 1.6,
            cpu_ns_per_upsert: 8.0,
            shared_cas_ns: 55.0,
            cpu_ns_per_scan_row: 0.12,
            cpu_ns_per_routed_cmd: 11.0,
            cpu_ns_per_routed_key: 7.0,
            shared_coherence_factor: 1.5,
            flush_latency_factor: 1.0,
            mlp: 4.0,
            cache_line: 64,
            link_transfer_ns: 4_000.0,
            rebuild_ns_per_key: 18.0,
            transfer_bytes_per_key: 16,
            frequency_scale: 1.0,
        }
    }
}

/// Expected node bytes of a dense-domain prefix tree, level by level
/// (root first).  Inner nodes are `fanout` u32 children; the leaf level is
/// `fanout` u64 values plus a presence bitmap.
pub fn tree_level_bytes(keys: u64, cfg: PrefixTreeConfig) -> Vec<f64> {
    let levels = cfg.levels() as i64;
    let fanout = cfg.fanout() as f64;
    let keys = keys as f64;
    (0..levels)
        .map(|l| {
            // With keys dense in [0, keys), the number of occupied nodes at
            // level l is keys / fanout^(levels-l), capped by the level's
            // structural width fanout^l (and at least one node).
            let by_keys = keys / fanout.powi((levels - l) as i32);
            let by_width = fanout.powi(l as i32);
            let nodes = by_keys.min(by_width).max(1.0);
            let node_bytes = if l == levels - 1 {
                fanout * 8.0 + fanout / 8.0
            } else {
                fanout * 4.0
            };
            nodes * node_bytes
        })
        // ALLOC-OK: one small Vec (one entry per tree level) per cost
        // model evaluation, at batch grouping time — not per key.
        .collect()
}

/// Expected LLC misses per lookup for a tree of `keys` dense keys when
/// `cache_bytes` of LLC are effectively available to it.
///
/// Greedy top-down residency: hot levels (touched by *every* lookup) occupy
/// the cache first; a partially resident level misses with the uncovered
/// fraction.  This is the standard "cache the top of the tree" model and
/// reproduces the measured behaviour: small trees run cache-resident, big
/// trees pay roughly one miss per uncached level.
pub fn expected_tree_misses(keys: u64, cfg: PrefixTreeConfig, cache_bytes: f64) -> f64 {
    let mut budget = cache_bytes;
    let mut misses = 0.0;
    for bytes in tree_level_bytes(keys, cfg) {
        if budget >= bytes {
            budget -= bytes;
        } else if budget > 0.0 {
            misses += 1.0 - budget / bytes;
            budget = 0.0;
        } else {
            misses += 1.0;
        }
    }
    misses
}

/// Expected LLC misses per point access of a per-partition hash table of
/// `keys` entries against `cache_bytes` of effective cache.
///
/// The bucket array (~24 B per slot at 85% load) is accessed uniformly, so
/// the resident fraction is simply cache/array; a Robin-Hood probe touches
/// ~1.3 buckets on average.
pub fn expected_hash_misses(keys: u64, cache_bytes: f64) -> f64 {
    const BYTES_PER_KEY: f64 = 24.0 / 0.85;
    const AVG_PROBES: f64 = 1.3;
    let array_bytes = keys as f64 * BYTES_PER_KEY;
    let resident = (cache_bytes / array_bytes).clamp(0.0, 1.0);
    AVG_PROBES * (1.0 - resident)
}

/// Expected miss *ratio* (misses / L3 requests) per lookup: every level
/// touch is an L3 request once it leaves L1/L2; the model treats all level
/// touches as L3 requests, matching how Figure 10 normalizes.
pub fn expected_miss_ratio(keys: u64, cfg: PrefixTreeConfig, cache_bytes: f64) -> f64 {
    let levels = cfg.levels() as f64;
    expected_tree_misses(keys, cfg, cache_bytes) / levels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PrefixTreeConfig {
        PrefixTreeConfig::new(8, 64)
    }

    #[test]
    fn level_bytes_grow_towards_leaves() {
        let lv = tree_level_bytes(1 << 30, cfg());
        assert_eq!(lv.len(), 8);
        for w in lv.windows(2) {
            assert!(w[0] <= w[1] * 1.01, "levels grow monotonically: {lv:?}");
        }
        // Leaf level of a 2^30-key dense tree: 2^22 nodes x (2048+32) B.
        let expected_leaf = (1u64 << 22) as f64 * (256.0 * 8.0 + 32.0);
        assert!((lv[7] - expected_leaf).abs() / expected_leaf < 0.01);
    }

    #[test]
    fn tiny_tree_is_fully_cached() {
        // 65k keys ~ a few MB; fits in a 24 MiB LLC entirely.
        let m = expected_tree_misses(1 << 16, cfg(), 24.0 * (1 << 20) as f64);
        assert!(m < 0.01, "expected ~0 misses, got {m}");
    }

    #[test]
    fn huge_tree_misses_in_lower_levels() {
        // 2^31 keys ~ 50+ GB of tree; only the top fits in 24 MiB.
        // Dense trees are flat: the leaf level always misses and the level
        // above misses partially once it outgrows the cache.
        let m = expected_tree_misses(1 << 31, cfg(), 24.0 * (1 << 20) as f64);
        assert!(m > 1.0, "bottom levels must miss, got {m}");
        assert!(m < 8.0);
    }

    #[test]
    fn misses_decrease_with_more_cache() {
        let keys = 1 << 28;
        let small = expected_tree_misses(keys, cfg(), 2.0 * (1 << 20) as f64);
        let large = expected_tree_misses(keys, cfg(), 64.0 * (1 << 20) as f64);
        assert!(large < small);
    }

    #[test]
    fn misses_increase_with_tree_size() {
        let cache = 12.0 * (1 << 20) as f64;
        let mut prev = 0.0;
        for keys in [1u64 << 20, 1 << 24, 1 << 28, 1 << 32] {
            let m = expected_tree_misses(keys, cfg(), cache);
            assert!(m >= prev, "monotone in size");
            prev = m;
        }
    }

    #[test]
    fn partitioning_reduces_misses() {
        // The ERIS effect: 64 partitions of K/64 keys with LLC/8 each miss
        // less than one shared tree of K keys with one node's LLC.
        let llc = 16.0 * (1 << 20) as f64;
        let keys = 1u64 << 30;
        let eris = expected_tree_misses(keys / 64, cfg(), llc / 8.0);
        let shared = expected_tree_misses(keys, cfg(), llc);
        assert!(
            eris < shared,
            "partitioned: {eris} misses, shared: {shared} misses"
        );
    }

    #[test]
    fn hash_misses_scale_with_size() {
        let cache = 4.0 * (1 << 20) as f64;
        // Table fits in cache: no misses.
        assert_eq!(expected_hash_misses(1 << 10, cache), 0.0);
        // Table far larger than cache: ~1.3 misses per probe.
        let big = expected_hash_misses(1 << 30, cache);
        assert!(big > 1.2 && big <= 1.3, "{big}");
        // Hash point access beats a deep tree when both are uncached.
        let tree = expected_tree_misses(1 << 30, cfg(), cache);
        assert!(big < tree + 0.5, "hash {big} vs tree {tree}");
    }

    #[test]
    fn miss_ratio_is_normalized() {
        let r = expected_miss_ratio(1 << 31, cfg(), 6.0 * (1 << 20) as f64);
        assert!(r > 0.0 && r < 1.0);
    }
}
