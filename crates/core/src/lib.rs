//! # eris-core — a NUMA-aware in-memory storage engine
//!
//! A from-scratch reproduction of **ERIS** ("ERIS: A NUMA-Aware In-Memory
//! Storage Engine for Analytical Workloads", Kissinger, Kiefer, Schlegel,
//! Habich, Molka, Lehner; ADMS'14 — demonstrated at SIGMOD 2014 as "ERIS
//! live").  ERIS is a data-oriented (DORA-style) engine: data objects are
//! partitioned over **Autonomous Execution Units** — one worker pinned per
//! core — that exclusively own their partitions and exchange *data
//! commands* (scan, lookup, insert/upsert) through a NUMA-optimized
//! high-throughput routing layer.  A configurable, NUMA-aware load
//! balancer adapts the partitioning to the workload.
//!
//! ## Quick start
//!
//! ```
//! use eris_core::prelude::*;
//!
//! // An engine on a simulated 4-node Intel box (Table 1 of the paper).
//! let mut engine = Engine::new(eris_numa::intel_machine(), EngineConfig {
//!     collect_results: true,
//!     ..Default::default()
//! });
//! let idx = engine.create_index("orders", 1 << 20);
//! engine.bulk_load_index(idx, (0..1000u64).map(|k| (k, k * 2)));
//!
//! // Route a lookup through the data command routing layer.
//! engine.submit(AeuId(0), DataCommand {
//!     object: idx,
//!     ticket: 1,
//!     payload: Payload::Lookup { keys: vec![21, 999_999] },
//! }).unwrap();
//! engine.run_until_drained();
//!
//! let mut results = engine.results().take_lookup_values();
//! results.sort();
//! assert_eq!(results, vec![(1, 21, Some(42)), (1, 999_999, None)]);
//! ```
//!
//! ## Crate map
//!
//! * [`command`] — data commands and their wire format.
//! * [`routing`] — partition tables (CSB+-tree backed), per-target
//!   outgoing + multicast buffers, and the latch-free incoming double
//!   buffer with the 64-bit `[active|offset|writers]` descriptor.
//! * [`aeu`] — the AEU loop: group → process (scan sharing, batched
//!   lookups) → balancing.
//! * [`balancer`] — One-Shot and Moving-Average target partitioning,
//!   transfer planning, link/copy execution.
//! * [`engine`] — construction, the cooperative virtual-time runtime, and
//!   a threaded runtime exercising the real atomics.
//! * [`telemetry`] — shard-per-AEU live counters and histograms, folded
//!   into consistent `TelemetrySnapshot`s with a per-object
//!   enqueued-equals-executed conservation ledger.
//! * [`durability`] — the redo-sink seam the `eris-durability` crate plugs
//!   into: per-AEU journaling of applied effects plus checkpoint metadata.
//! * [`baseline`] — the NUMA-agnostic shared index / shared scan the paper
//!   compares against.
//! * [`cost`] — virtual-time calibration and the analytic LLC model.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod aeu;
pub mod balancer;
pub mod baseline;
pub mod command;
pub mod cost;
pub mod durability;
pub mod engine;
pub mod monitor;
pub mod results;
pub mod routing;
pub mod telemetry;

pub use aeu::{AbsorbError, Aeu, OpCounts, Partition, PartitionData, WorkSummary};
pub use balancer::{BalanceAlgorithm, BalanceMetric, BalancerConfig};
pub use command::{AeuId, DataCommand, DataObjectId, DecodeError, Payload, StorageOp};
pub use cost::CostParams;
pub use durability::{ObjectClass, ObjectDescriptor, RedoOp, RedoSink};
pub use engine::{Engine, EngineConfig, EpochReport, ObjectKind, QuiesceReport};
pub use monitor::{BalanceDecision, BalanceVerdict, MigrationRecord, Monitor, Sample};
pub use results::{ResultCollector, ResultCounts};
pub use routing::{RoutingConfig, RoutingError};
pub use telemetry::{CounterSnapshot, Telemetry, TelemetrySnapshot};

/// Everything needed to drive the engine.
pub mod prelude {
    pub use crate::aeu::{CommandGen, OpCounts};
    pub use crate::balancer::{BalanceAlgorithm, BalanceMetric, BalancerConfig};
    pub use crate::command::{AeuId, DataCommand, DataObjectId, Payload, StorageOp};
    pub use crate::cost::CostParams;
    pub use crate::engine::{Engine, EngineConfig, EpochReport, ObjectKind, QuiesceReport};
    pub use crate::results::{ResultCollector, ResultCounts};
    pub use crate::routing::{RoutingConfig, RoutingError};
    pub use crate::telemetry::{CounterSnapshot, TelemetrySnapshot};
    pub use eris_column::{Aggregate, Predicate, ScanKernel};
    pub use eris_index::PrefixTreeConfig;
}
