//! The NUMA-agnostic baselines of Section 4.
//!
//! * [`SharedIndexBench`] — one shared prefix tree, synchronized purely
//!   with atomic instructions, memory interleaved across all nodes (the
//!   paper runs it under `numactl --interleave=all`).  Worker threads
//!   operate on the tree directly — no partitioning, no routing.
//! * [`SharedScanBench`] — parallel threads scanning one column whose
//!   segments are placed on a single node (*Single RAM*) or interleaved
//!   (*Interleaved*), the two naive allocation strategies of Figure 9.
//!
//! Both run under the same virtual-time accounting as the engine: real
//! data structure operations, with latency/bandwidth charged through the
//! identical cost model and flow solver, so ERIS-vs-baseline ratios are
//! apples-to-apples.

use crate::cost::{expected_tree_misses, CostParams};
use eris_column::{Column, Predicate, Segment};
use eris_index::{PrefixTreeConfig, SharedPrefixTree};
use eris_mem::{MemoryManager, Policy};
use eris_numa::{CostModel, Flow, FlowSolver, HwCounters, NodeId, Topology, VirtualClock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Result of one benchmark phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseResult {
    /// Operations (or rows) completed.
    pub ops: u64,
    /// Virtual time consumed, seconds.
    pub secs: f64,
}

impl PhaseResult {
    /// Throughput in operations per virtual second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.ops as f64 / self.secs
        } else {
            0.0
        }
    }
}

/// The shared-index baseline: same prefix tree, no partitioning, atomic
/// synchronization, interleaved memory.
pub struct SharedIndexBench {
    topo: Arc<Topology>,
    params: CostParams,
    tree: SharedPrefixTree,
    tree_cfg: PrefixTreeConfig,
    /// One worker per core; workers[i] runs on node `worker_nodes[i]`.
    worker_nodes: Vec<NodeId>,
    /// Virtual keys the index models (real keys × scale).
    model_keys: u64,
    real_keys: u64,
    batch: usize,
    pub clock: VirtualClock,
    pub counters: HwCounters,
    rng: StdRng,
}

impl SharedIndexBench {
    pub fn new(
        topo: Topology,
        tree_cfg: PrefixTreeConfig,
        params: CostParams,
        real_keys: u64,
        size_scale: u64,
        seed: u64,
    ) -> Self {
        let topo = Arc::new(topo);
        let worker_nodes: Vec<NodeId> = topo.cores().map(|c| topo.node_of_core(c)).collect();
        let counters = HwCounters::new(&topo);
        SharedIndexBench {
            params,
            tree: SharedPrefixTree::new(tree_cfg, 0),
            tree_cfg,
            worker_nodes,
            model_keys: real_keys * size_scale,
            real_keys,
            batch: 256,
            clock: VirtualClock::new(),
            counters,
            topo,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The number of worker threads (one per core).
    pub fn num_workers(&self) -> usize {
        self.worker_nodes.len()
    }

    /// Effective aggregate LLC of the shared index: because every node
    /// caches the *same* hot upper tree levels, replicated lines shrink
    /// the fleet of caches to roughly a single node's capacity
    /// (Figure 11: 79.3% of shared-index hits were on replicated lines).
    fn effective_cache_bytes(&self) -> f64 {
        let spec = self.topo.node_spec(NodeId(0));
        spec.llc_mib as f64 * 1048576.0
    }

    /// Mean read latency from `src` to an interleaved home node.
    fn avg_latency_ns(&self, src: NodeId) -> f64 {
        let cm = CostModel::new(&self.topo);
        let n = self.topo.num_nodes() as f64;
        self.topo
            .nodes()
            .map(|h| cm.latency_ns(src, h))
            .sum::<f64>()
            / n
    }

    /// Run one phase of `virtual_secs`, doing real `upsert`s or lookups.
    fn run_phase(&mut self, virtual_secs: f64, upsert: bool) -> PhaseResult {
        let end = self.clock.now_secs() + virtual_secs;
        let mut ops = 0u64;
        let misses = expected_tree_misses(
            self.model_keys.max(1),
            self.tree_cfg,
            self.effective_cache_bytes(),
        );
        let levels = self.tree_cfg.levels() as f64;
        let num_nodes = self.topo.num_nodes() as u64;
        while self.clock.now_secs() < end {
            // One epoch: every worker executes one real batch.
            let mut flows: Vec<Flow> = Vec::new();
            let mut worker_cpu = vec![0f64; self.worker_nodes.len()];
            let mut worker_lat = vec![0f64; self.worker_nodes.len()];
            let mut spans = Vec::with_capacity(self.worker_nodes.len());
            for (w, &src) in self.worker_nodes.iter().enumerate() {
                let start_flow = flows.len();
                for _ in 0..self.batch {
                    let key = self.rng.gen_range(0..self.real_keys);
                    if upsert {
                        self.tree.upsert(key, key.wrapping_mul(3));
                    } else {
                        std::hint::black_box(self.tree.lookup(key));
                    }
                }
                let b = self.batch as f64;
                worker_cpu[w] = b
                    * (self.params.cpu_ns_per_point_op
                        + levels * self.params.cpu_ns_per_tree_level
                        + if upsert {
                            self.params.cpu_ns_per_upsert + self.params.shared_cas_ns
                        } else {
                            0.0
                        });
                worker_lat[w] =
                    b * misses * self.avg_latency_ns(src) * self.params.shared_coherence_factor
                        / self.params.mlp;
                // Miss traffic spreads over the interleaved homes.
                let bytes_total = (b * misses * self.params.cache_line as f64) as u64;
                let per_home = (bytes_total / num_nodes).max(1);
                for home in self.topo.nodes() {
                    flows.push(Flow::new(src, home, per_home));
                }
                spans.push(start_flow..flows.len());
            }
            let rates = FlowSolver::new(&self.topo).solve(&flows);
            for f in &flows {
                self.counters.record(&self.topo, f.src, f.home, f.bytes);
            }
            let mut duration = 0f64;
            for (w, span) in spans.into_iter().enumerate() {
                // Miss traffic overlaps under MLP: the slowest home binds.
                let bw_ns: f64 = span
                    .map(|i| flows[i].bytes as f64 / rates.rates[i])
                    .fold(0.0, f64::max);
                let cpu = worker_cpu[w] / self.params.frequency_scale;
                duration = duration.max(cpu + worker_lat[w].max(bw_ns));
            }
            self.clock.advance_ns(duration.max(1_000.0));
            ops += (self.batch * self.worker_nodes.len()) as u64;
        }
        PhaseResult {
            ops,
            secs: virtual_secs,
        }
    }

    /// Insert phase: random keys for `virtual_secs`.
    pub fn run_upsert_phase(&mut self, virtual_secs: f64) -> PhaseResult {
        self.run_phase(virtual_secs, true)
    }

    /// Lookup phase: random keys for `virtual_secs`.
    pub fn run_lookup_phase(&mut self, virtual_secs: f64) -> PhaseResult {
        self.run_phase(virtual_secs, false)
    }

    /// Pre-populate the tree with `n` real keys (setup, not measured).
    pub fn load_dense(&mut self, n: u64) {
        for k in 0..n {
            self.tree.upsert(k, k);
        }
    }

    /// The shared tree (tests).
    pub fn tree(&self) -> &SharedPrefixTree {
        &self.tree
    }
}

/// Memory placement of the shared-scan baseline (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanPlacement {
    /// All segments on one node.
    SingleRam(NodeId),
    /// Segments round-robin across all nodes (`numactl --interleave=all`).
    Interleaved,
}

/// The shared-scan baseline: parallel threads cooperatively scanning one
/// column placed with a naive allocation strategy.
pub struct SharedScanBench {
    topo: Arc<Topology>,
    params: CostParams,
    column: Column,
    worker_nodes: Vec<NodeId>,
    size_scale: u64,
    pub clock: VirtualClock,
    pub counters: HwCounters,
}

/// Values per baseline column segment.
const SEGMENT_VALUES: usize = 64 * 1024;

impl SharedScanBench {
    /// Build the column with `real_rows` rows placed per `placement`.
    pub fn new(
        topo: Topology,
        placement: ScanPlacement,
        params: CostParams,
        real_rows: usize,
        size_scale: u64,
    ) -> Self {
        let topo = Arc::new(topo);
        let mem = MemoryManager::new(&topo);
        let policy = match placement {
            ScanPlacement::SingleRam(n) => Policy::SingleNode(n),
            ScanPlacement::Interleaved => Policy::Interleaved,
        };
        let mut column = Column::new();
        let mut remaining = real_rows;
        let mut v = 0u64;
        while remaining > 0 {
            let alloc = mem.alloc(policy, (SEGMENT_VALUES * 8) as u64);
            column.push_segment(Segment::with_capacity(
                alloc.home(),
                alloc.vaddr,
                SEGMENT_VALUES,
            ));
            let take = remaining.min(SEGMENT_VALUES);
            for _ in 0..take {
                column.append(v).expect("fresh segment");
                v += 1;
            }
            remaining -= take;
        }
        let worker_nodes: Vec<NodeId> = topo.cores().map(|c| topo.node_of_core(c)).collect();
        let counters = HwCounters::new(&topo);
        SharedScanBench {
            params,
            column,
            worker_nodes,
            size_scale,
            clock: VirtualClock::new(),
            counters,
            topo,
        }
    }

    /// Scan the whole column once, split evenly over all workers.
    /// Returns the *virtual* bytes read and the virtual duration.
    pub fn scan_once(&mut self) -> (u64, f64) {
        let rows = self.column.len();
        let workers = self.worker_nodes.len();
        let chunk = rows.div_ceil(workers);
        let mut flows: Vec<Flow> = Vec::new();
        let mut worker_cpu = vec![0f64; workers];
        let mut spans = Vec::with_capacity(workers);
        let mut sum = 0u64;
        for (w, &src) in self.worker_nodes.iter().enumerate() {
            let start = w * chunk;
            let end = (start + chunk).min(rows);
            let flow_start = flows.len();
            let examined = self.column.scan_rows(start, end, Predicate::All, |_, v| {
                sum = sum.wrapping_add(v);
            });
            worker_cpu[w] =
                examined as f64 * self.size_scale as f64 * self.params.cpu_ns_per_scan_row;
            for (home, seg_rows) in self.column.rows_per_node(start, end) {
                flows.push(Flow::new(src, home, seg_rows * 8 * self.size_scale));
            }
            spans.push(flow_start..flows.len());
        }
        std::hint::black_box(sum);
        let rates = FlowSolver::new(&self.topo).solve(&flows);
        for f in &flows {
            self.counters.record(&self.topo, f.src, f.home, f.bytes);
        }
        let mut duration = 0f64;
        for (w, span) in spans.into_iter().enumerate() {
            let bw_ns: f64 = span.map(|i| flows[i].bytes as f64 / rates.rates[i]).sum();
            duration = duration.max(worker_cpu[w] / self.params.frequency_scale + bw_ns);
        }
        self.clock.advance_ns(duration.max(1_000.0));
        ((rows as u64) * 8 * self.size_scale, duration)
    }

    /// Scan repeatedly for `virtual_secs`; returns aggregate GB/s.
    pub fn run(&mut self, virtual_secs: f64) -> f64 {
        let end = self.clock.now_secs() + virtual_secs;
        let mut bytes = 0u64;
        let start = self.clock.now_secs();
        while self.clock.now_secs() < end {
            bytes += self.scan_once().0;
        }
        bytes as f64 / ((self.clock.now_secs() - start) * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eris_numa::machines::{custom_machine, intel_machine};

    #[test]
    fn shared_index_lookup_phase_completes_real_ops() {
        let mut b = SharedIndexBench::new(
            custom_machine("m", 2, 2, 20.0, 100.0, 10.0, 60.0),
            PrefixTreeConfig::new(8, 32),
            CostParams::default(),
            10_000,
            1,
            7,
        );
        b.load_dense(10_000);
        assert_eq!(b.tree().len(), 10_000);
        let r = b.run_lookup_phase(0.001);
        assert!(r.ops > 0);
        assert!(r.ops_per_sec() > 0.0);
        assert!(b.counters.remote_requests + b.counters.local_requests > 0);
    }

    #[test]
    fn shared_index_slows_down_with_bigger_model() {
        let mk = |model_scale: u64| {
            let mut b = SharedIndexBench::new(
                intel_machine(),
                PrefixTreeConfig::new(8, 64),
                CostParams::default(),
                100_000,
                model_scale,
                7,
            );
            b.load_dense(100_000);
            b.run_lookup_phase(0.001).ops_per_sec()
        };
        let small = mk(1); // 100k keys: cache resident
        let large = mk(20_000); // models 2B keys: memory bound
        assert!(
            small > 1.5 * large,
            "cache-resident {small} must beat memory-bound {large}"
        );
    }

    #[test]
    fn single_ram_is_slower_than_interleaved() {
        let params = CostParams::default();
        let rows = 4 * SEGMENT_VALUES;
        let mut single = SharedScanBench::new(
            intel_machine(),
            ScanPlacement::SingleRam(NodeId(0)),
            params,
            rows,
            1,
        );
        let mut inter =
            SharedScanBench::new(intel_machine(), ScanPlacement::Interleaved, params, rows, 1);
        let (b1, d1) = single.scan_once();
        let (b2, d2) = inter.scan_once();
        assert_eq!(b1, b2);
        let gbps_single = b1 as f64 / d1;
        let gbps_inter = b2 as f64 / d2;
        assert!(
            gbps_inter > gbps_single,
            "interleaved {gbps_inter} must beat one IMC {gbps_single}"
        );
        // Single RAM is bounded by one memory controller.
        assert!(gbps_single <= 26.7 * 1.01);
    }

    #[test]
    fn scan_visits_every_row() {
        let mut b = SharedScanBench::new(
            custom_machine("m", 2, 2, 20.0, 100.0, 10.0, 60.0),
            ScanPlacement::Interleaved,
            CostParams::default(),
            1000,
            1,
        );
        let (bytes, _) = b.scan_once();
        assert_eq!(bytes, 8000);
    }
}
