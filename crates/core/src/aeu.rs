//! Autonomous Execution Units.
//!
//! Section 3.1: an AEU is pinned to one core, owns one partition per data
//! object, and loops over three stages: **group** the incoming data command
//! buffer by (data object, command type), **process** the groups (shared
//! scans, batched lookups/upserts), and **handle balancing/transfer
//! commands**.  All data structure accesses are latch-free because the AEU
//! is the only writer of its partitions.

use crate::command::{AeuId, DataCommand, DataObjectId, Payload, StorageOp};
use crate::cost::{expected_tree_misses, CostParams};
use crate::durability::{RedoOp, RedoSink};
use crate::results::ResultCollector;
use crate::routing::RoutingError;
use crate::routing::{FlushInfo, IncomingBuffers, Router};
use crate::telemetry::{ObjectCounters, TelemetryShard};
use eris_column::{Column, ScanKernel, Segment, SharedScan};
use eris_index::{HashTable, PrefixTree, PrefixTreeConfig};
use eris_mem::ThreadCache;
use eris_numa::{CoreId, Flow, NodeId};
use eris_obs::{
    now_ns, LatencyRecord, LatencyTable, Phase, Stamped, TraceEvent, TraceStamp, NUM_PHASES,
};
use std::collections::BTreeMap;
// ordering: Relaxed is the only ordering this module imports — every
// atomic here is a monotonic telemetry counter that carries no payload;
// command data flows through the incoming/outgoing buffer protocols.
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

/// A decoded incoming command paired with its (rare) trace stamp.
type TracedCommand = (DataCommand, Option<TraceStamp>);

/// Values per provisioned column segment.
const SEGMENT_VALUES: usize = 64 * 1024;

/// Does the half-open validity range `[lo, hi)` contain `k`?  Matching
/// [`eris_column::Predicate::Range`], `hi == u64::MAX` is a sentinel for
/// unbounded-above: the top partition is closed at the top of the
/// domain, so a key of `u64::MAX` is *mine*, not a stray — otherwise it
/// would be forwarded forever (no half-open range can contain it).
#[inline]
fn range_contains(lo: u64, hi: u64, k: u64) -> bool {
    k >= lo && (k < hi || hi == u64::MAX)
}

/// Why [`Aeu::absorb_rows`] refused a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsorbError {
    /// The AEU holds no partition of that object.
    UnknownPartition(DataObjectId),
    /// The partition exists but is an index, not a column.
    NotAColumn(DataObjectId),
}

/// The storage of one partition.
pub enum PartitionData {
    /// Range-partitioned prefix tree (order-preserving; supports range scans).
    Index(PrefixTree),
    /// Range-partitioned hash table with a per-partition hash function
    /// (Section 3.1) — O(1) point access, no range scans.
    Hash(HashTable),
    /// Size-partitioned column.
    Column(Column),
}

impl PartitionData {
    /// Keys or rows stored.
    pub fn len(&self) -> usize {
        match self {
            PartitionData::Index(t) => t.len(),
            PartitionData::Hash(h) => h.len(),
            PartitionData::Column(c) => c.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes.
    pub fn bytes(&self) -> u64 {
        match self {
            PartitionData::Index(t) => t.memory_bytes(),
            PartitionData::Hash(h) => h.memory_bytes(),
            PartitionData::Column(c) => c.bytes(),
        }
    }
}

impl PartitionData {
    /// Expected LLC misses per point operation, given the modelled key
    /// count and the AEU's effective cache share.
    fn point_misses(&self, model_keys: u64, cache_bytes: f64) -> f64 {
        match self {
            PartitionData::Index(t) => {
                expected_tree_misses(model_keys.max(1), t.config(), cache_bytes)
            }
            PartitionData::Hash(_) => {
                crate::cost::expected_hash_misses(model_keys.max(1), cache_bytes)
            }
            PartitionData::Column(_) => 0.0,
        }
    }

    /// CPU cost of one point operation's structure traversal.
    fn point_cpu_ns(&self, params: &CostParams) -> f64 {
        match self {
            PartitionData::Index(t) => {
                params.cpu_ns_per_point_op
                    + t.config().levels() as f64 * params.cpu_ns_per_tree_level
            }
            // A hash probe touches ~1.3 buckets: constant work.
            PartitionData::Hash(_) => {
                params.cpu_ns_per_point_op + 2.0 * params.cpu_ns_per_tree_level
            }
            PartitionData::Column(_) => params.cpu_ns_per_point_op,
        }
    }
}

/// One AEU-owned partition of a data object, plus its monitoring state.
pub struct Partition {
    pub data: PartitionData,
    /// The key range this AEU is responsible for (index objects).
    pub range: (u64, u64),
    /// Accesses since the last monitor sample.
    pub accesses: u64,
    /// Execution time since the last monitor sample (virtual ns).
    pub exec_ns: f64,
}

/// A per-epoch command generator: the query-processing layer above the
/// storage engine, modelled as commands arising *at* each AEU (as they do
/// during distributed query processing, e.g. lookups produced by a join).
pub type CommandGen = Box<dyn FnMut(u64, &mut Vec<DataCommand>) + Send>;

/// Operation tallies of one step.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpCounts {
    pub lookups: u64,
    pub upserts: u64,
    pub scans: u64,
    pub scan_rows: u64,
    pub commands_routed: u64,
    pub forwarded: u64,
}

impl OpCounts {
    pub fn add(&mut self, o: &OpCounts) {
        self.lookups += o.lookups;
        self.upserts += o.upserts;
        self.scans += o.scans;
        self.scan_rows += o.scan_rows;
        self.commands_routed += o.commands_routed;
        self.forwarded += o.forwarded;
    }
}

/// How a worker's flow occupies its time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Streaming consumption: the worker advances only as bytes arrive
    /// (column scans).  Serial flows of one worker add up.
    Serial,
    /// Posted/overlapped traffic: transfers proceed concurrently (lookup
    /// miss traffic under MLP, buffer flush copies).  Only the slowest
    /// overlapped flow bounds the worker.
    Overlapped,
}

/// What one worker did in one step, for the virtual-time solver.
pub struct WorkSummary {
    pub node: NodeId,
    /// Pure compute time.
    pub cpu_ns: f64,
    /// Serialized memory/communication latency.
    pub latency_ns: f64,
    /// Memory traffic to be fair-shared.
    pub flows: Vec<(Flow, FlowKind)>,
    pub ops: OpCounts,
}

impl WorkSummary {
    pub fn new(node: NodeId) -> Self {
        WorkSummary {
            node,
            cpu_ns: 0.0,
            latency_ns: 0.0,
            flows: Vec::new(),
            ops: OpCounts::default(),
        }
    }

    /// Merge flows sharing the same (src, home) pair.  One worker's traffic
    /// to one home is a single stream: splitting it into per-command flows
    /// would both over-claim fair shares and over-serialize the worker's
    /// own transfer time.
    pub fn coalesce_flows(&mut self) {
        if self.flows.len() < 2 {
            return;
        }
        let mut merged: Vec<(Flow, FlowKind)> = Vec::with_capacity(self.flows.len().min(16));
        for (f, k) in self.flows.drain(..) {
            match merged
                .iter_mut()
                .find(|(m, mk)| m.src == f.src && m.home == f.home && *mk == k)
            {
                Some((m, _)) => m.bytes += f.bytes,
                None => merged.push((f, k)),
            }
        }
        self.flows = merged;
    }
}

/// Per-AEU configuration resolved by the engine.
pub struct AeuConfig {
    pub params: CostParams,
    /// LLC bytes effectively available to this AEU (node LLC / AEUs per node).
    pub llc_share_bytes: f64,
    /// Virtual keys per real key: experiments model paper-scale data with a
    /// real subsample; lengths entering the cost model are scaled by this.
    pub size_scale: u64,
    /// Local memory read latency of this AEU's node.
    pub local_latency_ns: f64,
    /// AEU index → home node, for flush traffic accounting.
    pub node_of: Arc<Vec<NodeId>>,
    /// Kernel used for coalesced column sweeps: chunked (default) or the
    /// row-at-a-time scalar oracle.
    pub scan_kernel: ScanKernel,
}

/// An Autonomous Execution Unit.
pub struct Aeu {
    pub id: AeuId,
    pub node: NodeId,
    pub core: CoreId,
    cfg: AeuConfig,
    partitions: BTreeMap<DataObjectId, Partition>,
    router: Router,
    incoming: Arc<IncomingBuffers>,
    results: Arc<ResultCollector>,
    mem: ThreadCache,
    generator: Option<CommandGen>,
    /// Raw-routing mode: swap and decode incoming commands but skip the
    /// processing stage (the "raw routing throughput" arm of Figure 5).
    discard_incoming: bool,
    /// Balancing work charged to the next step (partition transfers).
    pending_ns: f64,
    epoch: u64,
    /// Rotating destination for result replies (statistical stand-in for
    /// the callback owner, which is uniformly distributed in the
    /// symmetric benchmark workloads).
    reply_rr: usize,
    // Scratch buffers reused across steps.
    scratch_cmds: Vec<TracedCommand>,
    scratch_gen: Vec<DataCommand>,
    scratch_values: Vec<Option<u64>>,
    /// Stamped commands executed by the current group, recorded into the
    /// latency table once the group's host-time cost is known.
    traced_pending: Vec<(DataObjectId, u8, TraceStamp)>,
    /// This AEU's telemetry shard (execution-side counters), shared with
    /// the router.
    tel: Arc<TelemetryShard>,
    /// The engine-wide sampled-latency table.
    latency: Arc<LatencyTable>,
    /// Per-object conservation ledgers, cached off the registry lock.
    tel_objects: Vec<Option<Arc<ObjectCounters>>>,
    /// Durability hook: every applied local mutation is reported here.
    sink: Option<Arc<dyn RedoSink>>,
}

impl Aeu {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: AeuId,
        node: NodeId,
        core: CoreId,
        cfg: AeuConfig,
        router: Router,
        incoming: Arc<IncomingBuffers>,
        results: Arc<ResultCollector>,
        mem: ThreadCache,
    ) -> Self {
        let tel = Arc::clone(router.telemetry_shard());
        let latency = Arc::clone(router.shared().telemetry().latency());
        Aeu {
            id,
            node,
            core,
            cfg,
            partitions: BTreeMap::new(),
            router,
            incoming,
            results,
            mem,
            generator: None,
            discard_incoming: false,
            pending_ns: 0.0,
            epoch: 0,
            reply_rr: id.index(),
            scratch_cmds: Vec::new(),
            scratch_gen: Vec::new(),
            scratch_values: Vec::new(),
            traced_pending: Vec::new(),
            tel,
            latency,
            tel_objects: Vec::new(),
            sink: None,
        }
    }

    /// Emit one structured trace event into this AEU's ring.
    #[inline]
    fn emit(&self, event: TraceEvent) {
        self.tel.ring.emit(Stamped {
            at_ns: now_ns(),
            aeu: self.id.0,
            event,
        });
    }

    /// Forward a stray command, preserving an attached trace stamp with
    /// its hop count bumped (the stamp's journey continues at the new
    /// owner).  No fresh sampling happens on this path.
    // HOT-PATH-CUT: rebalancing slow path — a command that landed on
    // the wrong AEU mid-migration is re-routed; rare by construction.
    fn forward_stray(&mut self, cmd: DataCommand, stamp: Option<TraceStamp>) -> Vec<FlushInfo> {
        let stamp = stamp.map(|s| TraceStamp {
            hops: s.hops + 1,
            ..s
        });
        self.router
            .route_traced(cmd, stamp)
            .expect("internally produced command targets a registered object")
    }

    /// Attach (or detach) the durability sink.  Must happen while the
    /// engine is quiesced; recovery runs with the sink detached so replay
    /// does not re-journal itself.
    pub fn set_redo_sink(&mut self, sink: Option<Arc<dyn RedoSink>>) {
        self.sink = sink;
    }

    /// Report one applied mutation to the attached sink, if any.
    #[inline]
    // HOT-PATH-CUT: durability handoff — the WAL shard buffers the
    // redo record and group-commits off the latch-free path; the
    // journal subsystem is reviewed (and fsync-gated) separately.
    fn journal(&self, op: RedoOp<'_>) {
        if let Some(s) = &self.sink {
            s.append(self.id, op);
        }
    }

    /// The cached conservation ledger of `id` (execution side).
    // HOT-PATH-CUT: first-touch ledger registration; allocates the
    // counter arc once per object, steady state is a map hit.
    fn object_ledger(&mut self, id: DataObjectId) -> Arc<ObjectCounters> {
        let i = id.0 as usize;
        if self.tel_objects.len() <= i {
            self.tel_objects.resize_with(i + 1, || None);
        }
        match &self.tel_objects[i] {
            Some(c) => Arc::clone(c),
            None => {
                let c = self.router.shared().telemetry().object(id);
                self.tel_objects[i] = Some(Arc::clone(&c));
                c
            }
        }
    }

    /// Attach (or clear) this AEU's command generator.
    pub fn set_generator(&mut self, g: Option<CommandGen>) {
        self.generator = g;
    }

    /// Enable raw-routing mode: incoming commands are swapped in and
    /// decoded, then dropped without processing (Figure 5, "raw").
    pub fn set_discard_incoming(&mut self, discard: bool) {
        self.discard_incoming = discard;
    }

    /// Create an index partition responsible for `range`.
    pub fn create_index_partition(
        &mut self,
        object: DataObjectId,
        cfg: PrefixTreeConfig,
        range: (u64, u64),
    ) {
        let base = self.mem.alloc(1 << 20).vaddr;
        self.partitions.insert(
            object,
            Partition {
                data: PartitionData::Index(PrefixTree::with_config(cfg, base)),
                range,
                accesses: 0,
                exec_ns: 0.0,
            },
        );
    }

    /// Create a hash partition responsible for `range`, using a hash
    /// function seeded per partition (Section 3.1).
    pub fn create_hash_partition(&mut self, object: DataObjectId, range: (u64, u64)) {
        let base = self.mem.alloc(1 << 20).vaddr;
        // The AEU id seeds the per-partition hash function.
        let seed = (self.id.0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.partitions.insert(
            object,
            Partition {
                data: PartitionData::Hash(HashTable::new(seed, base)),
                range,
                accesses: 0,
                exec_ns: 0.0,
            },
        );
    }

    /// Create an (initially empty) column partition.
    pub fn create_column_partition(&mut self, object: DataObjectId) {
        self.partitions.insert(
            object,
            Partition {
                data: PartitionData::Column(Column::new()),
                range: (0, u64::MAX),
                accesses: 0,
                exec_ns: 0.0,
            },
        );
    }

    /// The partition of `object`, if this AEU holds one.
    pub fn partition(&self, object: DataObjectId) -> Option<&Partition> {
        self.partitions.get(&object)
    }

    /// Mutable partition access (engine-side balancing).
    pub fn partition_mut(&mut self, object: DataObjectId) -> Option<&mut Partition> {
        self.partitions.get_mut(&object)
    }

    /// Monitor sampling: returns `(accesses, exec_ns, len, bytes)` since the
    /// last sample and resets the window counters.
    pub fn take_sample(&mut self, object: DataObjectId) -> (u64, f64, usize, u64) {
        match self.partitions.get_mut(&object) {
            Some(p) => {
                let s = (p.accesses, p.exec_ns, p.data.len(), p.data.bytes());
                p.accesses = 0;
                p.exec_ns = 0.0;
                s
            }
            None => (0, 0.0, 0, 0),
        }
    }

    /// Charge balancing/transfer work to this AEU's next step.
    pub fn add_pending_ns(&mut self, ns: f64) {
        self.pending_ns += ns;
    }

    /// Route a command on behalf of an external client through this AEU's
    /// routing front end, charging the costs to `w`.
    pub fn route_external(
        &mut self,
        cmd: DataCommand,
        w: &mut WorkSummary,
    ) -> Result<(), RoutingError> {
        self.route_and_charge(cmd, w)
    }

    /// Route a command on behalf of the serving layer with a trace
    /// stamp born at frame decode (full-path tracing: the stamp carries
    /// `(tenant, conn, seq)` and the net-queue/admission spans).  Costs
    /// are charged to `w` exactly like [`Self::route_external`].
    pub fn route_external_traced(
        &mut self,
        cmd: DataCommand,
        stamp: TraceStamp,
        w: &mut WorkSummary,
    ) -> Result<(), RoutingError> {
        self.route_and_charge_with(cmd, Some(stamp), w)
    }

    /// Route one command, charging CPU per emitted sub-command (the batch
    /// target lookup + encode of routing step 1) and flush costs.
    fn route_and_charge(
        &mut self,
        cmd: DataCommand,
        w: &mut WorkSummary,
    ) -> Result<(), RoutingError> {
        self.route_and_charge_with(cmd, None, w)
    }

    fn route_and_charge_with(
        &mut self,
        cmd: DataCommand,
        stamp: Option<TraceStamp>,
        w: &mut WorkSummary,
    ) -> Result<(), RoutingError> {
        let before = self.router.stats.commands_out;
        let keys = cmd.payload.op_count();
        let fl = match stamp {
            Some(s) => self.router.route_stamped(cmd, s)?,
            None => self.router.route(cmd)?,
        };
        let emitted = (self.router.stats.commands_out - before).max(1);
        w.cpu_ns += emitted as f64 * self.cfg.params.cpu_ns_per_routed_cmd
            + keys as f64 * self.cfg.params.cpu_ns_per_routed_key;
        w.ops.commands_routed += 1;
        charge_flushes_to(w, &self.cfg.node_of, &fl, &self.cfg.params, false);
        Ok(())
    }

    /// Provision a fresh local segment for a column partition.
    // HOT-PATH-CUT: amortized segment provisioning — runs once per
    // SEGMENT_ROWS appends, never per command.
    fn provision_segment(mem: &mut ThreadCache, node: NodeId, col: &mut Column) {
        let alloc = mem.alloc((SEGMENT_VALUES * 8) as u64);
        col.push_segment(Segment::with_capacity(node, alloc.vaddr, SEGMENT_VALUES));
    }

    /// Append rows to a column partition, provisioning segments on demand.
    ///
    /// Total over its inputs: callers that hand it an unknown object or
    /// an index partition get a typed error instead of a panicked AEU.
    pub fn absorb_rows(&mut self, object: DataObjectId, rows: &[u64]) -> Result<(), AbsorbError> {
        let node = self.node;
        let Some(p) = self.partitions.get_mut(&object) else {
            return Err(AbsorbError::UnknownPartition(object));
        };
        let PartitionData::Column(col) = &mut p.data else {
            return Err(AbsorbError::NotAColumn(object));
        };
        let mut written = 0;
        while written < rows.len() {
            // BOUNDS: the loop guard keeps written < rows.len().
            written += col.append_slice(&rows[written..]);
            if written < rows.len() {
                Self::provision_segment(&mut self.mem, node, col);
            }
        }
        self.journal(RedoOp::AppendRows { object, rows });
        Ok(())
    }

    /// Insert pairs into an index or hash partition (balancing absorb side).
    pub fn absorb_pairs(&mut self, object: DataObjectId, pairs: &[(u64, u64)]) {
        let p = self
            .partitions
            .get_mut(&object)
            .expect("point partition exists");
        match &mut p.data {
            PartitionData::Index(tree) => {
                for &(k, v) in pairs {
                    tree.upsert(k, v);
                }
            }
            PartitionData::Hash(h) => {
                for &(k, v) in pairs {
                    h.upsert(k, v);
                }
            }
            PartitionData::Column(_) => panic!("absorb_pairs on a column partition"),
        }
        self.journal(RedoOp::UpsertPairs { object, pairs });
    }

    /// Extract and remove all keys of `[lo, hi)` (balancing shrink side).
    pub fn extract_range(&mut self, object: DataObjectId, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let p = self
            .partitions
            .get_mut(&object)
            .expect("point partition exists");
        let moved = match &mut p.data {
            PartitionData::Index(tree) => {
                let moved = tree.flatten_range(lo, hi);
                for &(k, _) in &moved {
                    tree.remove(k);
                }
                moved
            }
            PartitionData::Hash(h) => h.extract_range(lo, hi),
            PartitionData::Column(_) => panic!("extract_range on a column partition"),
        };
        self.journal(RedoOp::RemoveRange { object, lo, hi });
        moved
    }

    /// Remove the last `n` rows of a column partition.
    pub fn extract_tail_rows(&mut self, object: DataObjectId, n: usize) -> Vec<u64> {
        let p = self
            .partitions
            .get_mut(&object)
            .expect("column partition exists");
        let PartitionData::Column(col) = &mut p.data else {
            panic!("extract_tail_rows on an index partition")
        };
        let rows = col.drain_tail(n);
        self.journal(RedoOp::RemoveTail {
            object,
            n: rows.len() as u64,
        });
        rows
    }

    /// Update the responsibility range after a balancing command.
    pub fn set_range(&mut self, object: DataObjectId, range: (u64, u64)) {
        if let Some(p) = self.partitions.get_mut(&object) {
            p.range = range;
            self.journal(RedoOp::SetRange {
                object,
                lo: range.0,
                hi: range.1,
            });
        }
    }

    /// Model length of a partition: real length × size scale.
    fn model_len(&self, p: &Partition) -> u64 {
        p.data.len() as u64 * self.cfg.size_scale
    }

    /// One iteration of the AEU loop.
    pub fn step(&mut self) -> WorkSummary {
        self.epoch += 1;
        let mut w = WorkSummary::new(self.node);
        w.cpu_ns += std::mem::take(&mut self.pending_ns);
        // Epoch profiler: host wall time is attributed to phases as the
        // step moves through its stages; whatever the stage timeline and
        // the per-group kernel timings below don't claim is charged as
        // idle at the end, so the per-AEU phase sums always equal the
        // measured wall time.
        let mut phase_ns = [0u64; NUM_PHASES];
        let step_t0 = now_ns();
        let mut mark = step_t0;

        // Stage 0: command generation (the query layer above).
        if let Some(gen) = &mut self.generator {
            self.scratch_gen.clear();
            gen(self.epoch, &mut self.scratch_gen);
            let gen_cmds: Vec<DataCommand> = self.scratch_gen.drain(..).collect();
            for cmd in gen_cmds {
                self.route_and_charge(cmd, &mut w)
                    .expect("generated command targets a registered object");
            }
            let now = now_ns();
            phase_ns[Phase::Route as usize] += now.saturating_sub(mark);
            mark = now;
        }

        // Stage 1: swap incoming buffers and group commands.
        self.scratch_cmds.clear();
        let cmds = &mut self.scratch_cmds;
        let mut swapped_bytes = 0u64;
        self.incoming.swap_and_consume(|d| {
            swapped_bytes = d.len() as u64;
            *cmds = DataCommand::decode_all_traced(d);
        });
        // Telemetry: every decoded command counts as executed for the
        // conservation ledger — including raw-routing discard mode, where
        // delivery is the whole point of the measurement.
        if !self.scratch_cmds.is_empty() {
            let cmds = std::mem::take(&mut self.scratch_cmds);
            self.tel
                .counters
                .commands_executed
                .fetch_add(cmds.len() as u64, Relaxed);
            self.tel.swap_batch.record(cmds.len() as u64);
            self.emit(TraceEvent::BufferSwap {
                bytes: swapped_bytes,
                commands: cmds.len() as u32,
            });
            let mut i = 0;
            while i < cmds.len() {
                let object = cmds[i].0.object;
                let mut j = i + 1;
                while j < cmds.len() && cmds[j].0.object == object {
                    j += 1;
                }
                self.object_ledger(object)
                    .executed
                    .fetch_add((j - i) as u64, Relaxed);
                i = j;
            }
            self.scratch_cmds = cmds;
        }
        if self.discard_incoming {
            // Discarded stamps leave the system here; charge them to the
            // trace ledger so stamped == traced + dropped stays exact.
            let stamped = self
                .scratch_cmds
                .iter()
                .filter(|(_, s)| s.is_some())
                .count() as u64;
            if stamped > 0 {
                self.latency.on_dropped(stamped);
            }
            self.scratch_cmds.clear();
        }
        {
            // Everything since the last mark — buffer swap, decode,
            // conservation tallies, discard — is input intake.
            let now = now_ns();
            phase_ns[Phase::ReadAdmit as usize] += now.saturating_sub(mark);
        }
        if !self.scratch_cmds.is_empty() {
            // Grouping: stable sort by (object, op) so equal groups are
            // adjacent; cheap relative to processing.  Stamps ride along
            // with their command.
            self.scratch_cmds
                .sort_by_key(|(c, _)| (c.object, c.payload.op()));
            let cmds = std::mem::take(&mut self.scratch_cmds);
            let mut i = 0;
            while i < cmds.len() {
                let object = cmds[i].0.object;
                let op = cmds[i].0.payload.op();
                let mut j = i + 1;
                while j < cmds.len() && cmds[j].0.object == object && cmds[j].0.payload.op() == op {
                    j += 1;
                }
                self.tel.counters.exec_batches.fetch_add(1, Relaxed);
                self.tel.exec_group.record((j - i) as u64);
                if op == StorageOp::Scan && j - i >= 2 {
                    self.tel.counters.coalesced_scans.fetch_add(1, Relaxed);
                }
                let group_t0 = now_ns();
                self.traced_pending.clear();
                self.process_group(object, op, &cmds[i..j], &mut w);
                let exec_ns = now_ns().saturating_sub(group_t0);
                phase_ns[kernel_phase(op) as usize] += exec_ns;
                let mut max_wait = 0u64;
                if !self.traced_pending.is_empty() {
                    let pend = std::mem::take(&mut self.traced_pending);
                    for (obj, tag, stamp) in &pend {
                        let wait = group_t0.saturating_sub(stamp.submit_ns);
                        max_wait = max_wait.max(wait);
                        self.latency.record(
                            (obj.0, *tag),
                            LatencyRecord {
                                queue_wait_ns: wait,
                                exec_ns,
                                hops: stamp.hops,
                                net_ns: stamp.net_ns as u64,
                                admit_ns: stamp.admit_ns as u64,
                                trace_id: stamp.trace_id(),
                                tenant: stamp.tenant,
                            },
                        );
                    }
                    self.traced_pending = pend;
                }
                self.emit(TraceEvent::BatchExecuted {
                    object: object.0,
                    op: op.tag(),
                    batch: (j - i) as u32,
                    queue_wait_ns: max_wait,
                    exec_ns,
                });
                i = j;
            }
            self.scratch_cmds = cmds;
        }

        // Stage 2 epilogue: flush outgoing buffers before starting over.
        mark = now_ns();
        let flushes = self.router.flush_all();
        charge_flushes_to(&mut w, &self.cfg.node_of, &flushes, &self.cfg.params, true);
        phase_ns[Phase::Flush as usize] += now_ns().saturating_sub(mark);

        // Fold the step's operation tallies into the telemetry shard
        // (routing-side counters are maintained by the router itself).
        let ops = &w.ops;
        let c = &self.tel.counters;
        if ops.lookups > 0 {
            c.lookups.fetch_add(ops.lookups, Relaxed);
        }
        if ops.upserts > 0 {
            c.upserts.fetch_add(ops.upserts, Relaxed);
        }
        if ops.scans > 0 {
            c.scans.fetch_add(ops.scans, Relaxed);
        }
        if ops.scan_rows > 0 {
            c.scan_rows.fetch_add(ops.scan_rows, Relaxed);
        }
        if ops.forwarded > 0 {
            c.forwarded.fetch_add(ops.forwarded, Relaxed);
        }
        self.tel.step_ns.record((w.cpu_ns + w.latency_ns) as u64);
        if let Some(s) = &self.sink {
            s.end_of_step(self.id);
        }
        // Close the profiler's books: idle is the wall-time remainder.
        let wall = now_ns().saturating_sub(step_t0);
        let attributed: u64 = phase_ns.iter().sum();
        phase_ns[Phase::Idle as usize] += wall.saturating_sub(attributed);
        for (i, &ns) in phase_ns.iter().enumerate() {
            if ns > 0 {
                self.tel.profiler.add(Phase::ALL[i], ns);
            }
        }
        w
    }

    /// Process one (object, op) group — the coalesced execution stage.
    // HOT-PATH-ROOT: the AEU's per-group execution dispatch; every
    // command the engine processes flows through here.
    fn process_group(
        &mut self,
        object: DataObjectId,
        op: StorageOp,
        cmds: &[TracedCommand],
        w: &mut WorkSummary,
    ) {
        match op {
            StorageOp::Lookup => self.process_lookups(object, cmds, w),
            StorageOp::Upsert => self.process_upserts(object, cmds, w),
            StorageOp::Scan => self.process_scans(object, cmds, w),
            StorageOp::JoinProbe | StorageOp::Materialize => {
                self.process_scan_producers(object, cmds, w)
            }
        }
    }

    /// Scan-shaped operators that *produce* new data commands from the
    /// rows they visit: the join probe (route a lookup per row) and
    /// intermediate-result materialization (route appends).  This is the
    /// paper's "AEUs generate data commands during the processing stage"
    /// pattern.
    fn process_scan_producers(
        &mut self,
        object: DataObjectId,
        cmds: &[TracedCommand],
        w: &mut WorkSummary,
    ) {
        let params = self.cfg.params;
        let scale = self.cfg.size_scale;
        if !self.partitions.contains_key(&object) {
            for (c, stamp) in cmds {
                w.ops.forwarded += 1;
                let fl = self.forward_stray(c.clone(), *stamp);
                charge_flushes_to(w, &self.cfg.node_of, &fl, &params, false);
            }
            self.emit(TraceEvent::ForwardedStray {
                object: object.0,
                count: cmds.len() as u32,
            });
            return;
        }
        /// Rows per routed batch command.
        const PRODUCER_BATCH: usize = 128;
        for (c, stamp) in cmds {
            // Multicast deliveries are never stamped, but if one ever
            // arrives stamped it executes right here.
            // ALLOC-OK: trace bookkeeping for the sampled minority of
            // commands; the pending vector drains every epoch.
            if let Some(stamp) = stamp {
                self.traced_pending
                    .push((object, c.payload.op().tag(), *stamp));
            }
            // Gather matching row values from the local partition.
            let (pred, snapshot) = match &c.payload {
                Payload::JoinProbe { pred, snapshot, .. }
                // BOUNDS: dispatch invariant — process_group routes only
                // JoinProbe/Materialize payloads here; the map lookup below is
                // backed by the contains_key guard at fn entry.
                // ALLOC-OK: `values` stages the gathered rows for downstream
                // batching; it is the producer's working set by design.
                | Payload::Materialize { pred, snapshot, .. } => (*pred, *snapshot),
                _ => unreachable!(),
            };
            let mut values = Vec::new();
            let p = &self.partitions[&object];
            let examined = match &p.data {
                PartitionData::Column(col) => {
                    // Chunked gather: branch-free selection bitmap per
                    // chunk, then a selected-row walk.
                    col.collect_matching(pred, snapshot.min(col.len() as u64) as usize, &mut values)
                }
                PartitionData::Index(tree) => {
                    // ALLOC-OK: gathering into the producer's staging vector, as the
                    // column arm above.
                    tree.scan_range_inclusive(0, u64::MAX, |_, v| {
                        if pred.matches(v) {
                            values.push(v);
                        }
                    });
                    tree.len()
                }
                PartitionData::Hash(h) => {
                    // ALLOC-OK: gathering into the producer's staging vector, as the
                    // column arm above.
                    h.for_each(|_, v| {
                        if pred.matches(v) {
                            values.push(v);
                        }
                    });
                    h.len()
                }
            } as u64;
            // Scan cost (same as a plain scan of this partition).
            let exec_ns = examined as f64 * scale as f64 * params.cpu_ns_per_scan_row;
            w.cpu_ns += exec_ns;
            w.ops.scans += 1;
            w.ops.scan_rows += examined * scale;
            // ALLOC-OK: one flow record per executed command, drained into
            // the epoch's work summary.
            // ALLOC-OK: flow records drain into the epoch's work summary.
            w.flows.push((
                Flow::new(self.node, self.node, examined * 8 * scale),
                FlowKind::Serial,
            ));
            if let Some(p) = self.partitions.get_mut(&object) {
                p.accesses += 1;
                p.exec_ns += exec_ns;
            }
            // Produce downstream commands in batches.
            for chunk in values.chunks(PRODUCER_BATCH) {
                // BOUNDS: same dispatch invariant as the gather above; the
                // expect below is infallible for the same reason as
                // `route_internal` (internally produced commands target
                // registered objects).
                // ALLOC-OK: each produced command owns its key batch — the
                // payload crosses an AEU boundary.
                let cmd = match &c.payload {
                    Payload::JoinProbe { index, .. } => DataCommand {
                        object: *index,
                        ticket: c.ticket,
                        payload: Payload::Lookup {
                            // ALLOC-OK: the produced command owns its key batch — the
                            // payload crosses an AEU boundary.
                            keys: chunk.to_vec(),
                        },
                    },
                    Payload::Materialize { dst, .. } => DataCommand {
                        object: *dst,
                        ticket: c.ticket,
                        payload: Payload::Upsert {
                            // ALLOC-OK: owned payload, as the lookup arm above.
                            // BOUNDS: the unreachable arm below restates the dispatch
                            // invariant already matched at the top of this loop body, and
                            // the route expect is infallible as for `route_internal`.
                            pairs: chunk.iter().map(|&v| (v, v)).collect(),
                        },
                    },
                    _ => unreachable!(),
                };
                // Infallible for the same reason as `route_internal`.
                self.route_and_charge(cmd, w)
                    .expect("internally produced command targets a registered object");
            }
        }
    }

    fn process_lookups(
        &mut self,
        object: DataObjectId,
        cmds: &[TracedCommand],
        w: &mut WorkSummary,
    ) {
        let Some(p) = self.partitions.get(&object) else {
            // Partition moved away entirely: forward everything.
            for (c, stamp) in cmds {
                w.ops.forwarded += c.payload.op_count();
                let fl = self.forward_stray(c.clone(), *stamp);
                charge_flushes_to(w, &self.cfg.node_of, &fl, &self.cfg.params, false);
            }
            self.emit(TraceEvent::ForwardedStray {
                object: object.0,
                count: cmds.len() as u32,
            });
            return;
        };
        let (lo, hi) = p.range;
        // BOUNDS: routing invariant — the router never targets a column
        // partition with point lookups; debug-checked, total in release.
        debug_assert!(
            !matches!(p.data, PartitionData::Column(_)),
            "lookup on a column partition"
        );
        let misses = p
            .data
            .point_misses(self.model_len(p), self.cfg.llc_share_bytes);
        let per_op_cpu = p.data.point_cpu_ns(&self.cfg.params);
        let params = self.cfg.params;
        let mut total = 0u64;
        let mut exec_ns = 0.0;
        let mut strays: Vec<(u64, Vec<u64>, Option<TraceStamp>)> = Vec::new();
        for (c, stamp) in cmds {
            // BOUNDS: dispatch invariant — process_group groups by op, so
            // every payload in this batch is a Lookup.
            // ALLOC-OK: the mine/stray partition below stages the batch's
            // keys; strays ride out as owned payloads across AEUs.
            let Payload::Lookup { keys } = &c.payload else {
                unreachable!()
            };
            // Validity check: keys outside the updated range are forwarded
            // to the AEU now responsible (Section 3.3.2).
            let (mine, stray): (Vec<u64>, Vec<u64>) =
                keys.iter().partition(|&&k| range_contains(lo, hi, k));
            // A stamp is recorded where work happens: here if any keys
            // are local, otherwise it rides on with the strays.
            // ALLOC-OK: trace bookkeeping for the sampled minority, and the
            // stray push hands leftover keys an owned ride to their new
            // owner; both drain every epoch.
            let fully_stray = mine.is_empty() && !stray.is_empty();
            if let Some(s) = stamp {
                if !fully_stray {
                    self.traced_pending
                        .push((object, StorageOp::Lookup.tag(), *s));
                }
            }
            if !stray.is_empty() {
                // ALLOC-OK: strays ride out as owned payloads to their
                // new owner; the vector drains at the end of the batch.
                strays.push((c.ticket, stray, if fully_stray { *stamp } else { None }));
            }
            if mine.is_empty() {
                continue;
            }
            // BOUNDS: presence proven by the `else` at fn entry; nothing in
            // this loop removes partitions.  The unreachable arm below
            // restates the column debug_assert above.
            let data = &self.partitions[&object].data;
            let values = &mut self.scratch_values;
            match data {
                PartitionData::Index(tree) => tree.lookup_batch(&mine, values),
                PartitionData::Hash(h) => {
                    values.clear();
                    // Batched probe: AMAC interleaved state machine —
                    // every in-flight probe's next bucket is prefetched
                    // while the others execute, results in input order.
                    h.lookup_batch(&mine, values);
                    self.tel
                        .counters
                        .batched_probe_keys
                        .fetch_add(mine.len() as u64, Relaxed);
                }
                // BOUNDS: restates the column routing debug_assert at fn entry.
                PartitionData::Column(_) => unreachable!(),
            }
            self.results.lookup_batch(c.ticket, &mine, values);
            let n = mine.len() as u64;
            total += n;
            // Result reply path: the callback owner receives the values.
            self.reply_rr = (self.reply_rr + 1) % self.cfg.node_of.len();
            // BOUNDS: reply_rr was just reduced modulo node_of.len().
            let reply_node = self.cfg.node_of[self.reply_rr];
            w.latency_ns += FLUSH_BASE_LATENCY_NS / (2.0 * params.mlp);
            w.cpu_ns += n as f64 * 2.0;
            // ALLOC-OK: flow records, as above.
            w.flows.push((
                Flow::new(self.node, reply_node, n * 16),
                FlowKind::Overlapped,
            ));
            exec_ns += n as f64 * per_op_cpu;
            w.latency_ns += n as f64 * misses * self.cfg.local_latency_ns / params.mlp;
            // ALLOC-OK: flow records drain into the epoch's work summary.
            w.flows.push((
                Flow::new(
                    self.node,
                    self.node,
                    (n as f64 * misses * params.cache_line as f64) as u64,
                ),
                FlowKind::Overlapped,
            ));
        }
        w.cpu_ns += exec_ns;
        w.ops.lookups += total;
        if let Some(p) = self.partitions.get_mut(&object) {
            p.accesses += total;
            p.exec_ns += exec_ns;
        }
        if !strays.is_empty() {
            let stray_keys: u64 = strays.iter().map(|(_, k, _)| k.len() as u64).sum();
            self.emit(TraceEvent::ForwardedStray {
                object: object.0,
                count: stray_keys as u32,
            });
        }
        for (ticket, keys, stamp) in strays {
            w.ops.forwarded += keys.len() as u64;
            w.cpu_ns += keys.len() as f64 * params.cpu_ns_per_routed_cmd;
            let fl = self.forward_stray(
                DataCommand {
                    object,
                    ticket,
                    payload: Payload::Lookup { keys },
                },
                stamp,
            );
            charge_flushes_to(w, &self.cfg.node_of, &fl, &params, false);
        }
    }

    fn process_upserts(
        &mut self,
        object: DataObjectId,
        cmds: &[TracedCommand],
        w: &mut WorkSummary,
    ) {
        let params = self.cfg.params;
        let Some(p) = self.partitions.get(&object) else {
            for (c, stamp) in cmds {
                w.ops.forwarded += c.payload.op_count();
                let fl = self.forward_stray(c.clone(), *stamp);
                charge_flushes_to(w, &self.cfg.node_of, &fl, &params, false);
            }
            self.emit(TraceEvent::ForwardedStray {
                object: object.0,
                count: cmds.len() as u32,
            });
            return;
        };
        match &p.data {
            PartitionData::Index(_) | PartitionData::Hash(_) => {
                let (lo, hi) = p.range;
                let misses = p
                    .data
                    .point_misses(self.model_len(p), self.cfg.llc_share_bytes);
                let per_op_cpu = p.data.point_cpu_ns(&params);
                let mut total = 0u64;
                let mut fresh = 0u64;
                let mut exec_ns = 0.0;
                type Pairs = Vec<(u64, u64)>;
                let mut strays: Vec<(u64, Pairs, Option<TraceStamp>)> = Vec::new();
                for (c, stamp) in cmds {
                    // BOUNDS: dispatch invariant — process_group groups by op, so
                    // every payload in this batch is an Upsert.
                    let Payload::Upsert { pairs } = &c.payload else {
                        unreachable!()
                    };
                    let (mine, stray): (Pairs, Pairs) =
                        pairs.iter().partition(|&&(k, _)| range_contains(lo, hi, k));
                    let fully_stray = mine.is_empty() && !stray.is_empty();
                    // ALLOC-OK: trace bookkeeping for the sampled minority; the
                    // pending vector drains every epoch.  The stray push hands the
                    // leftover keys an owned ride to their new owner.
                    if let Some(s) = stamp {
                        if !fully_stray {
                            self.traced_pending
                                .push((object, StorageOp::Upsert.tag(), *s));
                        }
                    }
                    if !stray.is_empty() {
                        strays.push((c.ticket, stray, if fully_stray { *stamp } else { None }));
                    }
                    // BOUNDS: presence was proven at fn entry (the
                    // stray-forwarding `else` above) and nothing in this
                    // loop removes partitions; the re-fetch only scopes
                    // the mutable borrow.  Release builds skip the batch
                    // instead of crashing the AEU if that ever rots.
                    let Some(p) = self.partitions.get_mut(&object) else {
                        debug_assert!(false, "partition vanished mid-batch");
                        continue;
                    };
                    match &mut p.data {
                        PartitionData::Index(tree) => {
                            for &(k, v) in &mine {
                                if tree.upsert(k, v).is_none() {
                                    fresh += 1;
                                }
                            }
                        }
                        PartitionData::Hash(h) => {
                            // Batched upsert: one single-rehash reserve,
                            // group-prefetched home buckets, input-order
                            // application.
                            fresh += h.upsert_batch(&mine);
                            self.tel
                                .counters
                                .batched_probe_keys
                                .fetch_add(mine.len() as u64, Relaxed);
                        }
                        // BOUNDS: this match arm runs under Index|Hash only.
                        PartitionData::Column(_) => unreachable!(),
                    }
                    if !mine.is_empty() {
                        self.journal(RedoOp::UpsertPairs {
                            object,
                            pairs: &mine,
                        });
                    }
                    let n = mine.len() as u64;
                    total += n;
                    exec_ns += n as f64 * (per_op_cpu + params.cpu_ns_per_upsert);
                    w.latency_ns += n as f64 * misses * self.cfg.local_latency_ns / params.mlp;
                    // ALLOC-OK: flow records drain into the epoch's work summary.
                    w.flows.push((
                        Flow::new(
                            self.node,
                            self.node,
                            (n as f64 * misses * params.cache_line as f64) as u64,
                        ),
                        FlowKind::Overlapped,
                    ));
                }
                self.results.upsert_batch(total, fresh);
                w.cpu_ns += exec_ns;
                w.ops.upserts += total;
                if let Some(p) = self.partitions.get_mut(&object) {
                    p.accesses += total;
                    p.exec_ns += exec_ns;
                }
                if !strays.is_empty() {
                    let stray_pairs: u64 = strays.iter().map(|(_, p, _)| p.len() as u64).sum();
                    self.emit(TraceEvent::ForwardedStray {
                        object: object.0,
                        count: stray_pairs as u32,
                    });
                }
                for (ticket, pairs, stamp) in strays {
                    w.ops.forwarded += pairs.len() as u64;
                    w.cpu_ns += pairs.len() as f64 * params.cpu_ns_per_routed_cmd;
                    let fl = self.forward_stray(
                        DataCommand {
                            object,
                            ticket,
                            payload: Payload::Upsert { pairs },
                        },
                        stamp,
                    );
                    charge_flushes_to(w, &self.cfg.node_of, &fl, &params, false);
                }
            }
            PartitionData::Column(_) => {
                // Appends: materialize values into the local column.
                let mut rows: Vec<u64> = Vec::new();
                for (c, stamp) in cmds {
                    // BOUNDS: dispatch invariant, as the index/hash branch above.
                    // ALLOC-OK: `rows` stages the batch's values for one absorb
                    // call; the traced push drains every epoch.
                    let Payload::Upsert { pairs } = &c.payload else {
                        unreachable!()
                    };
                    // Column appends are always fully local: a stamp
                    // completes its journey here.
                    if let Some(s) = stamp {
                        self.traced_pending
                            .push((object, StorageOp::Upsert.tag(), *s));
                    }
                    // ALLOC-OK: `rows` stages the whole batch for one
                    // absorb call into pre-provisioned segments.
                    rows.extend(pairs.iter().map(|&(_, v)| v));
                }
                let n = rows.len() as u64;
                // This match arm proved the partition is a local column,
                // so the absorb cannot fail; a debug build still screams
                // if that invariant ever rots.
                let absorbed = self.absorb_rows(object, &rows);
                debug_assert!(absorbed.is_ok(), "{absorbed:?}");
                self.results.upsert_batch(n, n);
                let exec_ns = n as f64 * (params.cpu_ns_per_scan_row + params.cpu_ns_per_upsert);
                w.cpu_ns += exec_ns;
                w.ops.upserts += n;
                w.flows
                    // ALLOC-OK: one flow record per absorbed batch.
                    .push((Flow::new(self.node, self.node, n * 8), FlowKind::Overlapped));
                if let Some(p) = self.partitions.get_mut(&object) {
                    p.accesses += n;
                    p.exec_ns += exec_ns;
                }
            }
        }
    }

    fn process_scans(&mut self, object: DataObjectId, cmds: &[TracedCommand], w: &mut WorkSummary) {
        let params = self.cfg.params;
        let scale = self.cfg.size_scale;
        let Some(p) = self.partitions.get_mut(&object) else {
            for (c, stamp) in cmds {
                w.ops.forwarded += 1;
                let fl = self.forward_stray(c.clone(), *stamp);
                charge_flushes_to(w, &self.cfg.node_of, &fl, &params, false);
            }
            self.emit(TraceEvent::ForwardedStray {
                object: object.0,
                count: cmds.len() as u32,
            });
            return;
        };
        match &mut p.data {
            PartitionData::Column(col) => {
                // Scan sharing: all coalesced scan commands in one sweep.
                let mut shared = SharedScan::new();
                for (c, _) in cmds {
                    // BOUNDS: dispatch invariant — process_group groups by op, so
                    // every payload in this batch is a Scan; registration into the
                    // shared sweep allocates per command (ALLOC-OK, fused batch).
                    let Payload::Scan {
                        pred,
                        agg,
                        snapshot,
                    } = &c.payload
                    else {
                        unreachable!()
                    };
                    shared.add(*pred, (*snapshot).min(col.len() as u64) as usize, *agg);
                }
                let kernel = self.cfg.scan_kernel;
                let (outcomes, examined) = shared.execute_with(col, kernel);
                match kernel {
                    ScanKernel::Simd => &self.tel.counters.simd_sweeps,
                    ScanKernel::Chunked => &self.tel.counters.chunked_sweeps,
                    ScanKernel::Scalar => &self.tel.counters.scalar_sweeps,
                }
                .fetch_add(1, Relaxed);
                let examined = examined as u64;
                for (i, ((c, _), r)) in cmds.iter().zip(outcomes).enumerate() {
                    // The sweep is shared: attribute the examined rows once,
                    // not once per coalesced consumer.
                    let rows = if i == 0 { examined * scale } else { 0 };
                    self.results.scan_partial(c.ticket, self.id, r, rows);
                }
                let exec_ns = examined as f64 * scale as f64 * params.cpu_ns_per_scan_row;
                w.cpu_ns += exec_ns;
                w.ops.scans += cmds.len() as u64;
                w.ops.scan_rows += examined * scale;
                // One sweep of bytes regardless of the number of consumers:
                // the scan-sharing win.  Traffic per segment home.
                for seg in col.segments() {
                    let seg_rows = (seg.len() as u64).min(examined);
                    if seg_rows > 0 {
                        // ALLOC-OK: one flow record per scanned batch.
                        w.flows.push((
                            Flow::new(self.node, seg.home(), seg_rows * 8 * scale),
                            FlowKind::Serial,
                        ));
                    }
                }
                p.accesses += cmds.len() as u64;
                p.exec_ns += exec_ns;
            }
            PartitionData::Index(_) | PartitionData::Hash(_) => {
                // Range scan: in order over the index, full-sweep filter
                // over a hash partition (unordered, Section 3.1 trade-off).
                let mut total_rows = 0u64;
                for (c, _) in cmds {
                    // BOUNDS: dispatch invariant, as the column branch above.
                    let Payload::Scan { pred, agg, .. } = &c.payload else {
                        unreachable!()
                    };
                    let mut count = 0u64;
                    let mut sum = 0u64;
                    let mut minmax: Option<(u64, u64)> = None;
                    let mut visit = |v: u64| {
                        count += 1;
                        sum = sum.wrapping_add(v);
                        minmax = Some(match minmax {
                            None => (v, v),
                            Some((a, b)) => (a.min(v), b.max(v)),
                        });
                    };
                    // Exact inclusive bounds: `Equals(u64::MAX)` and
                    // unbounded-above ranges reach the top key instead of
                    // losing it to half-open saturation.
                    if let Some((lo, hi)) = pred.bounds_inclusive() {
                        match &p.data {
                            PartitionData::Index(tree) => {
                                tree.scan_range_inclusive(lo, hi, |_, v| visit(v))
                            }
                            PartitionData::Hash(h) => h.for_each(|k, v| {
                                if k >= lo && k <= hi {
                                    visit(v);
                                }
                            }),
                            // BOUNDS: this match runs under Index|Hash only.
                            PartitionData::Column(_) => unreachable!(),
                        }
                    }
                    let r = match agg {
                        eris_column::Aggregate::Count => {
                            eris_column::scan::AggregateResult::Count(count * scale)
                        }
                        eris_column::Aggregate::Sum => eris_column::scan::AggregateResult::Sum(sum),
                        eris_column::Aggregate::MinMax => {
                            eris_column::scan::AggregateResult::MinMax(minmax)
                        }
                    };
                    self.results
                        .scan_partial(c.ticket, self.id, r, count * scale);
                    total_rows += count;
                }
                let exec_ns = total_rows as f64 * scale as f64 * params.cpu_ns_per_scan_row;
                w.cpu_ns += exec_ns;
                w.ops.scans += cmds.len() as u64;
                w.ops.scan_rows += total_rows * scale;
                // ALLOC-OK: one flow record per scanned batch.
                w.flows.push((
                    Flow::new(self.node, self.node, total_rows * 16 * scale),
                    FlowKind::Serial,
                ));
                p.accesses += cmds.len() as u64;
                p.exec_ns += exec_ns;
            }
        }
    }

    /// Serialize every partition this AEU owns, in object order:
    /// `(object, range, payload)`.  Payload formats are owned by the
    /// structures themselves (`PrefixTree`/`HashTable`/`Column`
    /// `serialize_into`).
    pub fn serialize_partitions(&self) -> Vec<(DataObjectId, (u64, u64), Vec<u8>)> {
        self.partitions
            .iter()
            .map(|(&object, p)| {
                let mut payload = Vec::new();
                match &p.data {
                    PartitionData::Index(tree) => tree.serialize_into(&mut payload),
                    PartitionData::Hash(h) => h.serialize_into(&mut payload),
                    PartitionData::Column(col) => col.serialize_into(&mut payload),
                }
                (object, p.range, payload)
            })
            .collect()
    }

    /// Refill one (freshly created, empty) partition from a checkpoint
    /// payload and restore its responsibility range.  Returns `false` if
    /// this AEU holds no such partition or the payload is malformed.
    /// Runs before the redo sink is attached, so nothing is re-journaled.
    pub fn restore_partition(
        &mut self,
        object: DataObjectId,
        range: (u64, u64),
        payload: &[u8],
    ) -> bool {
        let node = self.node;
        let Some(p) = self.partitions.get_mut(&object) else {
            return false;
        };
        p.range = range;
        match &mut p.data {
            PartitionData::Index(tree) => tree.restore(payload),
            PartitionData::Hash(h) => h.restore(payload),
            PartitionData::Column(col) => {
                let Some(rows) = Column::decode_values(payload) else {
                    return false;
                };
                let mut written = 0;
                while written < rows.len() {
                    written += col.append_slice(&rows[written..]);
                    if written < rows.len() {
                        Self::provision_segment(&mut self.mem, node, col);
                    }
                }
                true
            }
        }
    }

    /// Router statistics (fig5).
    pub fn router_stats(&self) -> &crate::routing::RouterStats {
        &self.router.stats
    }

    /// True when the outgoing buffers are fully drained.
    pub fn is_drained(&self) -> bool {
        self.router.is_drained() && self.incoming.pending_bytes() == 0
    }
}

/// The profiler phase a coalesced `(object, op)` group's execution wall
/// time is charged to: scans hit the chunked scan kernels, lookups and
/// join probes the hash/index probe kernels, upserts and materialized
/// appends the write path.
fn kernel_phase(op: StorageOp) -> Phase {
    match op {
        StorageOp::Scan => Phase::ScanKernel,
        StorageOp::Lookup | StorageOp::JoinProbe => Phase::Probe,
        StorageOp::Upsert | StorageOp::Materialize => Phase::Write,
    }
}

/// Base latency of one incoming-buffer reservation (CAS round trip).
const FLUSH_BASE_LATENCY_NS: f64 = 250.0;

/// Charge flush traffic: one reservation (CAS) round trip per flush, plus
/// the copied bytes as a flow homed at the target's node.
///
/// Threshold flushes (`overlapped = false`) hammer the *same* remote
/// descriptor line back to back, so each CAS pays the full round trip —
/// the small-buffer penalty of Figure 5.  Loop-end flushes
/// (`overlapped = true`) go to distinct targets and overlap like posted
/// stores, divided by twice the load MLP.  Pre-buffering amortizes both
/// over whole buffers.
fn charge_flushes_to(
    w: &mut WorkSummary,
    node_of: &[NodeId],
    flushes: &[FlushInfo],
    params: &CostParams,
    overlapped: bool,
) {
    let per_flush = if overlapped {
        FLUSH_BASE_LATENCY_NS / (2.0 * params.mlp)
    } else {
        FLUSH_BASE_LATENCY_NS
    };
    for f in flushes {
        w.latency_ns += params.flush_latency_factor * per_flush;
        // ALLOC-OK: flow records drain into the epoch's work summary.
        // BOUNDS: FlushInfo targets come from the router, which only
        // issues AEU ids it owns — always within node_of.
        w.flows.push((
            Flow::new(w.node, node_of[f.target.index()], f.bytes),
            FlowKind::Overlapped,
        ));
    }
}
