//! The configurable load balancing algorithm (Section 3.3).
//!
//! The adaption loop samples per-partition metrics (access frequency for
//! range-partitioned objects, physical size for size-partitioned ones),
//! checks the imbalance (standard deviation across AEUs against a
//! threshold), computes a **target partitioning** with a configurable
//! aggressiveness — **One-Shot** (fully balanced immediately) or
//! **Moving Average over a window of k neighbours (MA-k)**, which turns
//! into One-Shot as k covers all partitions (Figure 6) — and emits the
//! balancing/transfer commands that realize it.

/// The metric driving index-object balancing (Section 3.3: access
/// frequency is primary; the mean execution time of a data command is the
/// additional metric that captures tree-depth and cache effects).
/// Size-partitioned objects always balance by physical partition size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceMetric {
    /// Accesses per partition in the sampling window.
    AccessFrequency,
    /// Virtual execution time per partition in the sampling window —
    /// equalizes *work*, not just request counts, so partitions with
    /// deeper trees or worse cache behaviour shed load.
    ExecutionTime,
}

/// Balancing aggressiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceAlgorithm {
    /// Compute a fully balanced target partitioning in one step.
    OneShot,
    /// Smooth the observed metric with a moving average of window `k`
    /// neighbours on each side before balancing.
    MovingAverage(usize),
}

/// Load balancer configuration.
#[derive(Debug, Clone, Copy)]
pub struct BalancerConfig {
    pub enabled: bool,
    pub algorithm: BalanceAlgorithm,
    /// Metric for range-partitioned objects.
    pub metric: BalanceMetric,
    /// Trigger when the coefficient of variation (stddev / mean) of the
    /// partition metric exceeds this.
    pub threshold_cv: f64,
    /// Sampling/adaption period in virtual seconds.
    pub period_s: f64,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            enabled: false,
            algorithm: BalanceAlgorithm::MovingAverage(1),
            metric: BalanceMetric::AccessFrequency,
            threshold_cv: 0.3,
            period_s: 1.0,
        }
    }
}

/// Does the metric distribution warrant rebalancing?
///
/// Degenerate inputs answer `false` explicitly rather than by floating-
/// point accident: fewer than two partitions have nothing to balance,
/// an all-zero (or negative-sum) window means no observed load, and a
/// non-finite mean or CV (samples carrying NaN/∞ from an upstream bug)
/// must not silently win or lose the `>` comparison.
pub fn needs_balancing(weights: &[f64], threshold_cv: f64) -> bool {
    let n = weights.len() as f64;
    if n < 2.0 {
        return false;
    }
    let mean = weights.iter().sum::<f64>() / n;
    if !mean.is_finite() || mean <= 0.0 {
        return false;
    }
    let var = weights.iter().map(|w| (w - mean) * (w - mean)).sum::<f64>() / n;
    let cv = var.sqrt() / mean;
    cv.is_finite() && cv > threshold_cv
}

/// Moving-average smoothing over `k` neighbours on each side (window
/// clipped at the ends).  `k >= n-1` averages everything — the One-Shot
/// configuration (the paper's "turns into the One-Shot algorithm when
/// configured as MA7 in our setup" with 8 partitions).
pub fn smooth(weights: &[f64], k: usize) -> Vec<f64> {
    let n = weights.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(k);
            let hi = (i + k + 1).min(n);
            weights[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Compute the target boundaries for one data object.
///
/// * `boundaries[i]` is the inclusive lower bound of partition `i`
///   (so `boundaries[0]` is the domain minimum); `domain_end` closes the
///   last range.
/// * `weights[i]` is the observed metric of partition `i`.
///
/// The observed weight of a partition is assumed uniform over its key
/// range; the new boundaries are the quantiles of that piecewise-uniform
/// distribution at the target shares.  One-Shot targets equal shares; MA-k
/// targets the smoothed shares, so repeated application converges while
/// moving less data per cycle.
pub fn target_boundaries(
    boundaries: &[u64],
    domain_end: u64,
    weights: &[f64],
    algorithm: BalanceAlgorithm,
) -> Vec<u64> {
    let n = boundaries.len();
    assert_eq!(n, weights.len());
    assert!(n > 0);
    assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
    assert!(*boundaries.last().unwrap() < domain_end);
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || n == 1 {
        return boundaries.to_vec();
    }

    // Target share per partition.
    let targets: Vec<f64> = match algorithm {
        BalanceAlgorithm::OneShot => vec![total / n as f64; n],
        BalanceAlgorithm::MovingAverage(k) => {
            let s = smooth(weights, k);
            let s_total: f64 = s.iter().sum();
            s.iter().map(|w| w / s_total * total).collect()
        }
    };

    // Piecewise-uniform CDF inversion.
    let ranges: Vec<(u64, u64)> = (0..n)
        .map(|i| {
            let hi = if i + 1 < n {
                boundaries[i + 1]
            } else {
                domain_end
            };
            (boundaries[i], hi)
        })
        .collect();
    let mut new_bounds = Vec::with_capacity(n);
    new_bounds.push(boundaries[0]);
    let mut cum_target = 0.0;
    let mut seg = 0usize; // current source partition
    let mut cum_weight = 0.0; // weight fully consumed before `seg`
    for t in targets.iter().take(n - 1) {
        cum_target += t;
        // Advance to the segment containing the quantile.
        while seg < n - 1 && cum_weight + weights[seg] < cum_target - 1e-9 {
            cum_weight += weights[seg];
            seg += 1;
        }
        let (lo, hi) = ranges[seg];
        let within = if weights[seg] > 0.0 {
            ((cum_target - cum_weight) / weights[seg]).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let pos = lo as f64 + within * (hi - lo) as f64;
        new_bounds.push(pos as u64);
    }

    // Enforce strictly increasing boundaries within the domain.
    for i in 1..n {
        let min_allowed = new_bounds[i - 1] + 1;
        let max_allowed = domain_end - (n - i) as u64;
        new_bounds[i] = new_bounds[i].clamp(min_allowed, max_allowed);
    }
    new_bounds
}

/// A range transfer between two partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Source partition index (= AEU slot in table order).
    pub from: usize,
    /// Target partition index.
    pub to: usize,
    /// Transferred key range `[lo, hi)`.
    pub lo: u64,
    pub hi: u64,
}

/// The transfer commands realizing a move from `old_bounds` to
/// `new_bounds`: every overlap of an old owner's range with a *different*
/// new owner's range becomes one transfer.
pub fn transfer_plan(old_bounds: &[u64], new_bounds: &[u64], domain_end: u64) -> Vec<Transfer> {
    assert_eq!(old_bounds.len(), new_bounds.len());
    let n = old_bounds.len();
    let range = |bounds: &[u64], i: usize| -> (u64, u64) {
        (
            bounds[i],
            if i + 1 < n { bounds[i + 1] } else { domain_end },
        )
    };
    let mut plan = Vec::new();
    for from in 0..n {
        let (olo, ohi) = range(old_bounds, from);
        for to in 0..n {
            if from == to {
                continue;
            }
            let (nlo, nhi) = range(new_bounds, to);
            let lo = olo.max(nlo);
            let hi = ohi.min(nhi);
            if lo < hi {
                plan.push(Transfer { from, to, lo, hi });
            }
        }
    }
    plan
}

/// Balance a size-partitioned object: equalize tuple counts.  Returns
/// `(from, to, tuples)` moves computed greedily from the most loaded to
/// the least loaded partitions.
pub fn size_balance_moves(lens: &[usize]) -> Vec<(usize, usize, usize)> {
    let n = lens.len();
    if n < 2 {
        return Vec::new();
    }
    let total: usize = lens.iter().sum();
    let mean = total / n;
    let mut surplus: Vec<(usize, usize)> = Vec::new(); // (idx, extra)
    let mut deficit: Vec<(usize, usize)> = Vec::new(); // (idx, missing)
    for (i, &l) in lens.iter().enumerate() {
        if l > mean {
            surplus.push((i, l - mean));
        } else if l < mean {
            deficit.push((i, mean - l));
        }
    }
    let mut moves = Vec::new();
    let (mut si, mut di) = (0, 0);
    while si < surplus.len() && di < deficit.len() {
        let give = surplus[si].1.min(deficit[di].1);
        if give > 0 {
            moves.push((surplus[si].0, deficit[di].0, give));
        }
        surplus[si].1 -= give;
        deficit[di].1 -= give;
        if surplus[si].1 == 0 {
            si += 1;
        }
        if deficit[di].1 == 0 {
            di += 1;
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 6 scenario: 8 equal ranges, partitions 3–6 get 25% each.
    fn figure6_weights() -> Vec<f64> {
        vec![0.0, 0.0, 25.0, 25.0, 25.0, 25.0, 0.0, 0.0]
    }

    fn even_bounds(n: u64, domain: u64) -> Vec<u64> {
        (0..n).map(|i| domain / n * i).collect()
    }

    #[test]
    fn cv_trigger() {
        assert!(!needs_balancing(&[10.0, 10.0, 10.0], 0.3));
        assert!(needs_balancing(&figure6_weights(), 0.3));
        assert!(
            !needs_balancing(&[0.0, 0.0], 0.3),
            "idle object never triggers"
        );
        assert!(
            !needs_balancing(&[5.0], 0.0),
            "single partition never triggers"
        );
    }

    #[test]
    fn cv_trigger_degenerate_inputs_never_fire() {
        // Empty window: no partitions sampled at all.
        assert!(!needs_balancing(&[], 0.0));
        // Single AEU, even with a zero threshold and zero weight.
        assert!(!needs_balancing(&[0.0], 0.0));
        // All-zero windows of any width (0/0 CV must not become NaN-true
        // or NaN-false by accident — it is answered before division).
        assert!(!needs_balancing(&[0.0, 0.0, 0.0, 0.0], 0.0));
        // Poisoned samples: NaN or infinity anywhere must not trigger a
        // repartitioning storm off garbage.
        assert!(!needs_balancing(&[f64::NAN, 10.0], 0.0));
        assert!(!needs_balancing(&[f64::INFINITY, 10.0], 0.0));
        assert!(!needs_balancing(&[10.0, f64::NEG_INFINITY], 0.0));
        // Negative-sum windows (metric underflow upstream) stay quiet.
        assert!(!needs_balancing(&[-5.0, -5.0], 0.0));
        // A healthy skewed window still fires with the same guards in.
        assert!(needs_balancing(&[0.0, 100.0], 0.3));
    }

    #[test]
    fn smoothing_windows() {
        let w = figure6_weights();
        let s1 = smooth(&w, 1);
        // Partition 2's MA1 = (0 + 25 + 25) / 3.
        assert!((s1[2] - 50.0 / 3.0).abs() < 1e-9);
        // Ends clip the window.
        assert!((s1[0] - 0.0).abs() < 1e-9);
        // MA7 averages everything: equals One-Shot smoothing.
        let s7 = smooth(&w, 7);
        for v in &s7 {
            assert!((v - 100.0 / 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn one_shot_fully_balances_figure6() {
        let bounds = even_bounds(8, 800);
        let nb = target_boundaries(&bounds, 800, &figure6_weights(), BalanceAlgorithm::OneShot);
        // All weight sits in [200, 600); equal eighths of the weight are
        // 50-key slices of that hot range.  Partition 0 keeps the domain
        // start; partition 1's boundary lands at the start of the hot range.
        assert_eq!(nb[0], 0);
        assert_eq!(nb[1], 250, "1/8 of the weight = 50 hot keys into [200,600)");
        assert_eq!(nb[4], 400);
        assert_eq!(nb[7], 550);
        assert!(nb.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ma_with_full_window_equals_one_shot() {
        let bounds = even_bounds(8, 800);
        let w = figure6_weights();
        let one = target_boundaries(&bounds, 800, &w, BalanceAlgorithm::OneShot);
        let ma7 = target_boundaries(&bounds, 800, &w, BalanceAlgorithm::MovingAverage(7));
        assert_eq!(one, ma7, "MA7 turns into One-Shot with 8 partitions");
    }

    #[test]
    fn ma1_moves_less_than_one_shot() {
        let bounds = even_bounds(8, 800);
        let w = figure6_weights();
        let one = target_boundaries(&bounds, 800, &w, BalanceAlgorithm::OneShot);
        let ma1 = target_boundaries(&bounds, 800, &w, BalanceAlgorithm::MovingAverage(1));
        let movement =
            |nb: &[u64]| -> u64 { nb.iter().zip(&bounds).map(|(a, b)| a.abs_diff(*b)).sum() };
        assert!(
            movement(&ma1) < movement(&one),
            "MA1 {} must move less than One-Shot {}",
            movement(&ma1),
            movement(&one)
        );
        assert!(movement(&ma1) > 0, "MA1 still adapts");
    }

    #[test]
    fn repeated_ma_converges_towards_balance() {
        let mut bounds = even_bounds(8, 800);
        let hot = (200u64, 600u64);
        for _ in 0..40 {
            // Re-observe: weight of each partition = overlap with hot range.
            let w: Vec<f64> = (0..8)
                .map(|i| {
                    let lo = bounds[i];
                    let hi = if i + 1 < 8 { bounds[i + 1] } else { 800 };
                    (hi.min(hot.1).saturating_sub(lo.max(hot.0))) as f64
                })
                .collect();
            if !needs_balancing(&w, 0.05) {
                break;
            }
            bounds = target_boundaries(&bounds, 800, &w, BalanceAlgorithm::MovingAverage(1));
        }
        // After convergence every partition holds ~1/8 of the hot range.
        let w: Vec<f64> = (0..8)
            .map(|i| {
                let lo = bounds[i];
                let hi = if i + 1 < 8 { bounds[i + 1] } else { 800 };
                (hi.min(600).saturating_sub(lo.max(200))) as f64
            })
            .collect();
        assert!(
            !needs_balancing(&w, 0.25),
            "converged: {w:?} bounds {bounds:?}"
        );
    }

    #[test]
    fn zero_weight_returns_current() {
        let bounds = even_bounds(4, 400);
        let nb = target_boundaries(&bounds, 400, &[0.0; 4], BalanceAlgorithm::OneShot);
        assert_eq!(nb, bounds);
    }

    #[test]
    fn boundaries_stay_strictly_increasing_under_extreme_skew() {
        // All weight in the last partition.
        let bounds = even_bounds(8, 64);
        let mut w = vec![0.0; 8];
        w[7] = 100.0;
        let nb = target_boundaries(&bounds, 64, &w, BalanceAlgorithm::OneShot);
        assert!(nb.windows(2).all(|x| x[0] < x[1]), "{nb:?}");
        assert!(*nb.last().unwrap() < 64);
    }

    #[test]
    fn transfer_plan_matches_figure7() {
        // Figure 7: partitions 1..4 (of 8) balancing with One-Shot; the
        // workload is symmetric so we reproduce the left half: old equal
        // bounds, new bounds concentrated in the hot upper half.
        let old = vec![0u64, 100, 200, 300];
        let new = vec![0u64, 225, 250, 275]; // partitions 2-4 take hot slices
        let plan = transfer_plan(&old, &new, 400);
        // Partition 1 takes over partition 2's entire old range (the paper's
        // "take over the entire range of partition 2" link transfer).
        assert!(plan.contains(&Transfer {
            from: 1,
            to: 0,
            lo: 100,
            hi: 200
        }));
        // Partition 3 hands the lower part of its range backwards.
        assert!(plan.iter().any(|t| t.from == 2 && t.to < 2));
        // No transfer maps a range onto its current owner.
        assert!(plan.iter().all(|t| t.from != t.to));
        // Transferred ranges are disjoint and within the domain.
        for t in &plan {
            assert!(t.lo < t.hi && t.hi <= 400);
        }
    }

    #[test]
    fn transfer_plan_empty_when_unchanged() {
        let b = vec![0u64, 10, 20];
        assert!(transfer_plan(&b, &b, 30).is_empty());
    }

    #[test]
    fn size_balance_moves_equalize() {
        let moves = size_balance_moves(&[100, 0, 50, 50]);
        // Mean = 50; partition 0 gives 50 to partition 1.
        assert_eq!(moves, vec![(0, 1, 50)]);
        assert!(size_balance_moves(&[10, 10, 10]).is_empty());
        assert!(size_balance_moves(&[7]).is_empty());
    }

    #[test]
    fn size_balance_multiple_donors_and_receivers() {
        let lens = [90usize, 10, 80, 20];
        let moves = size_balance_moves(&lens);
        let mut after = lens;
        for (f, t, n) in moves {
            after[f] -= n;
            after[t] += n;
        }
        assert_eq!(after, [50, 50, 50, 50]);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    fn bounds_and_weights() -> impl Strategy<Value = (Vec<u64>, u64, Vec<f64>)> {
        (2usize..32)
            .prop_flat_map(|n| {
                (
                    Just(n),
                    proptest::collection::vec(1u64..1000, n),
                    proptest::collection::vec(0u32..1000, n),
                )
            })
            .prop_map(|(_, gaps, weights)| {
                // Strictly increasing boundaries starting at 0.
                let mut bounds = Vec::with_capacity(gaps.len());
                let mut acc = 0u64;
                for g in &gaps {
                    bounds.push(acc);
                    acc += g;
                }
                let domain_end = acc.max(bounds.last().unwrap() + 1);
                (
                    bounds,
                    domain_end,
                    weights.into_iter().map(f64::from).collect(),
                )
            })
    }

    proptest! {
        #[test]
        fn target_boundaries_always_valid((bounds, end, weights) in bounds_and_weights()) {
            for algo in [
                BalanceAlgorithm::OneShot,
                BalanceAlgorithm::MovingAverage(1),
                BalanceAlgorithm::MovingAverage(4),
            ] {
                let nb = target_boundaries(&bounds, end, &weights, algo);
                prop_assert_eq!(nb.len(), bounds.len());
                prop_assert_eq!(nb[0], bounds[0], "domain minimum never moves");
                prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
                prop_assert!(*nb.last().unwrap() < end, "inside the domain");
            }
        }

        #[test]
        fn transfer_plan_covers_exactly_the_ownership_diff(
            (bounds, end, weights) in bounds_and_weights())
        {
            let nb = target_boundaries(&bounds, end, &weights, BalanceAlgorithm::OneShot);
            let plan = transfer_plan(&bounds, &nb, end);
            let n = bounds.len();
            let owner = |bs: &[u64], k: u64| -> usize {
                bs.iter().rposition(|&b| b <= k).unwrap()
            };
            // Sampled keys: every key whose old and new owner differ must be
            // covered by exactly one transfer (from old to new); keys whose
            // owner is unchanged must not be covered by any.
            let step = (end / 257).max(1);
            for k in (0..end).step_by(step as usize) {
                let old = owner(&bounds, k);
                let new = owner(&nb, k);
                let covering: Vec<&Transfer> =
                    plan.iter().filter(|t| t.lo <= k && k < t.hi).collect();
                if old == new {
                    prop_assert!(covering.is_empty(), "key {} moved needlessly", k);
                } else {
                    prop_assert_eq!(covering.len(), 1, "key {} covered once", k);
                    prop_assert_eq!(covering[0].from, old);
                    prop_assert_eq!(covering[0].to, new);
                }
            }
            let _ = n;
        }

        #[test]
        fn smoothing_preserves_total(weights in proptest::collection::vec(0f64..100.0, 1..64),
                                     k in 0usize..8)
        {
            let s = smooth(&weights, k);
            prop_assert_eq!(s.len(), weights.len());
            // Smoothing is an averaging operator: values stay within the
            // min/max envelope of the input.
            let lo = weights.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = weights.iter().cloned().fold(0.0, f64::max);
            for v in &s {
                prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9);
            }
        }

        #[test]
        fn size_moves_conserve_and_equalize(lens in proptest::collection::vec(0usize..10_000, 2..32)) {
            let moves = size_balance_moves(&lens);
            let mut after = lens.clone();
            for (f, t, n) in &moves {
                prop_assert!(after[*f] >= *n, "never move more than held");
                after[*f] -= n;
                after[*t] += n;
            }
            let before_total: usize = lens.iter().sum();
            let after_total: usize = after.iter().sum();
            prop_assert_eq!(before_total, after_total, "tuples conserved");
            let mean = before_total / lens.len();
            for l in &after {
                prop_assert!(l.abs_diff(mean) <= lens.len() + 1, "near-equal: {:?}", after);
            }
        }
    }
}
