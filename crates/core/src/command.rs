//! Data commands and their byte-buffer wire format.
//!
//! Section 3.2: *"A data command consists of a storage operation type (i.e.,
//! scan, lookup, or insert/upsert), a data object identifier, a reference to
//! a callback function, a data segment that contains all the necessary
//! parameters for the storage operation (e.g., a batch of keys for the
//! lookup or filters for a scan)."*
//!
//! Commands are serialized into the routing layer's byte buffers exactly
//! because the incoming-buffer descriptor of the paper reserves *byte*
//! ranges (32-bit offsets); the encoding here is the little-endian layout
//! written into those ranges.

use bytes::{Buf, BufMut};
use eris_column::{Aggregate, Predicate};

/// Identifier of a data object (a table or index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataObjectId(pub u32);

/// Identifier of an AEU.  AEUs are numbered like the platform's cores, so
/// `AeuId(i)` runs on core `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AeuId(pub u32);

impl AeuId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AeuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AEU{}", self.0)
    }
}

/// The storage operation of a data command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StorageOp {
    Lookup,
    Upsert,
    Scan,
    /// Scan the local partition and route a `Lookup` into another object
    /// for every matching row — the distributed index-nested-loop join
    /// probe ("lookup operations during a join", Section 3.2).
    JoinProbe,
    /// Scan the local partition and route matching rows as appends into a
    /// size-partitioned object — NUMA-aware materialization of intermediate
    /// results (Section 1: "the effective handling of intermediate results
    /// ... [is a] mission critical component").
    Materialize,
}

/// The parameters ("data segment") of a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// A batch of keys to look up.
    Lookup { keys: Vec<u64> },
    /// A batch of key/value pairs to insert or update.
    Upsert { pairs: Vec<(u64, u64)> },
    /// A predicate + aggregate over the snapshot visible at issue time.
    Scan {
        pred: Predicate,
        agg: Aggregate,
        snapshot: u64,
    },
    /// Probe `index` with every matching row value of the local partition.
    JoinProbe {
        index: DataObjectId,
        pred: Predicate,
        snapshot: u64,
    },
    /// Append matching row values into `dst`.
    Materialize {
        dst: DataObjectId,
        pred: Predicate,
        snapshot: u64,
    },
}

impl Payload {
    pub fn op(&self) -> StorageOp {
        match self {
            Payload::Lookup { .. } => StorageOp::Lookup,
            Payload::Upsert { .. } => StorageOp::Upsert,
            Payload::Scan { .. } => StorageOp::Scan,
            Payload::JoinProbe { .. } => StorageOp::JoinProbe,
            Payload::Materialize { .. } => StorageOp::Materialize,
        }
    }

    /// Number of elementary storage operations this command carries.
    pub fn op_count(&self) -> u64 {
        match self {
            Payload::Lookup { keys } => keys.len() as u64,
            Payload::Upsert { pairs } => pairs.len() as u64,
            Payload::Scan { .. } | Payload::JoinProbe { .. } | Payload::Materialize { .. } => 1,
        }
    }
}

/// A routable data command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataCommand {
    pub object: DataObjectId,
    /// Callback reference: correlates results with the issuing query.
    pub ticket: u64,
    pub payload: Payload,
}

const OP_LOOKUP: u8 = 0;
const OP_UPSERT: u8 = 1;
const OP_SCAN: u8 = 2;
const OP_JOIN_PROBE: u8 = 3;
const OP_MATERIALIZE: u8 = 4;

const PRED_ALL: u8 = 0;
const PRED_RANGE: u8 = 1;
const PRED_EQ: u8 = 2;

const AGG_COUNT: u8 = 0;
const AGG_SUM: u8 = 1;
const AGG_MINMAX: u8 = 2;

/// Command header size in bytes: op + object + ticket + payload length.
pub const HEADER_BYTES: usize = 1 + 4 + 8 + 4;

impl DataCommand {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_BYTES + payload_len(&self.payload)
    }

    /// Append the wire encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        let (op, plen) = (
            match self.payload {
                Payload::Lookup { .. } => OP_LOOKUP,
                Payload::Upsert { .. } => OP_UPSERT,
                Payload::Scan { .. } => OP_SCAN,
                Payload::JoinProbe { .. } => OP_JOIN_PROBE,
                Payload::Materialize { .. } => OP_MATERIALIZE,
            },
            payload_len(&self.payload) as u32,
        );
        out.put_u8(op);
        out.put_u32_le(self.object.0);
        out.put_u64_le(self.ticket);
        out.put_u32_le(plen);
        match &self.payload {
            Payload::Lookup { keys } => {
                out.put_u32_le(keys.len() as u32);
                for k in keys {
                    out.put_u64_le(*k);
                }
            }
            Payload::Upsert { pairs } => {
                out.put_u32_le(pairs.len() as u32);
                for (k, v) in pairs {
                    out.put_u64_le(*k);
                    out.put_u64_le(*v);
                }
            }
            Payload::Scan {
                pred,
                agg,
                snapshot,
            } => {
                encode_pred(out, pred);
                out.put_u8(match agg {
                    Aggregate::Count => AGG_COUNT,
                    Aggregate::Sum => AGG_SUM,
                    Aggregate::MinMax => AGG_MINMAX,
                });
                out.put_u64_le(*snapshot);
            }
            Payload::JoinProbe {
                index,
                pred,
                snapshot,
            } => {
                out.put_u32_le(index.0);
                encode_pred(out, pred);
                out.put_u64_le(*snapshot);
            }
            Payload::Materialize {
                dst,
                pred,
                snapshot,
            } => {
                out.put_u32_le(dst.0);
                encode_pred(out, pred);
                out.put_u64_le(*snapshot);
            }
        }
    }

    /// Decode one command from the front of `buf`, advancing it.
    ///
    /// # Panics
    /// On a malformed buffer — buffers are process-internal, so corruption
    /// is a logic error, not an input error.
    pub fn decode(buf: &mut &[u8]) -> DataCommand {
        assert!(buf.len() >= HEADER_BYTES, "truncated command header");
        let op = buf.get_u8();
        let object = DataObjectId(buf.get_u32_le());
        let ticket = buf.get_u64_le();
        let plen = buf.get_u32_le() as usize;
        assert!(buf.len() >= plen, "truncated command payload");
        let payload = match op {
            OP_LOOKUP => {
                let n = buf.get_u32_le() as usize;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(buf.get_u64_le());
                }
                Payload::Lookup { keys }
            }
            OP_UPSERT => {
                let n = buf.get_u32_le() as usize;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = buf.get_u64_le();
                    let v = buf.get_u64_le();
                    pairs.push((k, v));
                }
                Payload::Upsert { pairs }
            }
            OP_SCAN => {
                let pred = decode_pred(buf);
                let agg = match buf.get_u8() {
                    AGG_COUNT => Aggregate::Count,
                    AGG_SUM => Aggregate::Sum,
                    AGG_MINMAX => Aggregate::MinMax,
                    t => panic!("unknown aggregate tag {t}"),
                };
                let snapshot = buf.get_u64_le();
                Payload::Scan {
                    pred,
                    agg,
                    snapshot,
                }
            }
            OP_JOIN_PROBE => {
                let index = DataObjectId(buf.get_u32_le());
                let pred = decode_pred(buf);
                let snapshot = buf.get_u64_le();
                Payload::JoinProbe {
                    index,
                    pred,
                    snapshot,
                }
            }
            OP_MATERIALIZE => {
                let dst = DataObjectId(buf.get_u32_le());
                let pred = decode_pred(buf);
                let snapshot = buf.get_u64_le();
                Payload::Materialize {
                    dst,
                    pred,
                    snapshot,
                }
            }
            t => panic!("unknown op tag {t}"),
        };
        DataCommand {
            object,
            ticket,
            payload,
        }
    }

    /// Decode every command in a filled buffer region.
    pub fn decode_all(mut buf: &[u8]) -> Vec<DataCommand> {
        let mut out = Vec::new();
        while !buf.is_empty() {
            out.push(DataCommand::decode(&mut buf));
        }
        out
    }
}

fn payload_len(p: &Payload) -> usize {
    match p {
        Payload::Lookup { keys } => 4 + keys.len() * 8,
        Payload::Upsert { pairs } => 4 + pairs.len() * 16,
        Payload::Scan { .. } => 1 + 8 + 8 + 1 + 8,
        Payload::JoinProbe { .. } | Payload::Materialize { .. } => 4 + 1 + 8 + 8 + 8,
    }
}

fn encode_pred(out: &mut Vec<u8>, pred: &Predicate) {
    match *pred {
        Predicate::All => {
            out.put_u8(PRED_ALL);
            out.put_u64_le(0);
            out.put_u64_le(0);
        }
        Predicate::Range { lo, hi } => {
            out.put_u8(PRED_RANGE);
            out.put_u64_le(lo);
            out.put_u64_le(hi);
        }
        Predicate::Equals(x) => {
            out.put_u8(PRED_EQ);
            out.put_u64_le(x);
            out.put_u64_le(0);
        }
    }
}

fn decode_pred(buf: &mut &[u8]) -> Predicate {
    let ptag = buf.get_u8();
    let a = buf.get_u64_le();
    let b = buf.get_u64_le();
    match ptag {
        PRED_ALL => Predicate::All,
        PRED_RANGE => Predicate::Range { lo: a, hi: b },
        PRED_EQ => Predicate::Equals(a),
        t => panic!("unknown predicate tag {t}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(cmd: DataCommand) {
        let mut buf = Vec::new();
        cmd.encode(&mut buf);
        assert_eq!(buf.len(), cmd.encoded_len());
        let mut slice = buf.as_slice();
        let back = DataCommand::decode(&mut slice);
        assert!(slice.is_empty(), "decoder must consume exactly one command");
        assert_eq!(back, cmd);
    }

    #[test]
    fn lookup_roundtrip() {
        roundtrip(DataCommand {
            object: DataObjectId(7),
            ticket: 0xDEADBEEF,
            payload: Payload::Lookup {
                keys: vec![1, 2, u64::MAX],
            },
        });
    }

    #[test]
    fn empty_lookup_roundtrip() {
        roundtrip(DataCommand {
            object: DataObjectId(0),
            ticket: 0,
            payload: Payload::Lookup { keys: vec![] },
        });
    }

    #[test]
    fn upsert_roundtrip() {
        roundtrip(DataCommand {
            object: DataObjectId(1),
            ticket: 42,
            payload: Payload::Upsert {
                pairs: vec![(5, 50), (6, 60)],
            },
        });
    }

    #[test]
    fn scan_variants_roundtrip() {
        for pred in [
            Predicate::All,
            Predicate::Range { lo: 3, hi: 9 },
            Predicate::Equals(77),
        ] {
            for agg in [Aggregate::Count, Aggregate::Sum, Aggregate::MinMax] {
                roundtrip(DataCommand {
                    object: DataObjectId(9),
                    ticket: 1,
                    payload: Payload::Scan {
                        pred,
                        agg,
                        snapshot: 12345,
                    },
                });
            }
        }
    }

    #[test]
    fn join_probe_and_materialize_roundtrip() {
        roundtrip(DataCommand {
            object: DataObjectId(3),
            ticket: 77,
            payload: Payload::JoinProbe {
                index: DataObjectId(9),
                pred: Predicate::Range { lo: 5, hi: 10 },
                snapshot: 42,
            },
        });
        roundtrip(DataCommand {
            object: DataObjectId(4),
            ticket: 78,
            payload: Payload::Materialize {
                dst: DataObjectId(2),
                pred: Predicate::All,
                snapshot: u64::MAX,
            },
        });
    }

    #[test]
    fn decode_all_splits_concatenated_commands() {
        let a = DataCommand {
            object: DataObjectId(1),
            ticket: 1,
            payload: Payload::Lookup { keys: vec![9] },
        };
        let b = DataCommand {
            object: DataObjectId(2),
            ticket: 2,
            payload: Payload::Scan {
                pred: Predicate::All,
                agg: Aggregate::Count,
                snapshot: 5,
            },
        };
        let mut buf = Vec::new();
        a.encode(&mut buf);
        b.encode(&mut buf);
        let all = DataCommand::decode_all(&buf);
        assert_eq!(all, vec![a, b]);
    }

    #[test]
    fn op_counts() {
        assert_eq!(
            Payload::Lookup {
                keys: vec![1, 2, 3]
            }
            .op_count(),
            3
        );
        assert_eq!(
            Payload::Upsert {
                pairs: vec![(1, 1)]
            }
            .op_count(),
            1
        );
        assert_eq!(
            Payload::Scan {
                pred: Predicate::All,
                agg: Aggregate::Count,
                snapshot: 0
            }
            .op_count(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_buffer_panics() {
        let cmd = DataCommand {
            object: DataObjectId(1),
            ticket: 1,
            payload: Payload::Lookup { keys: vec![1, 2] },
        };
        let mut buf = Vec::new();
        cmd.encode(&mut buf);
        let mut short = &buf[..HEADER_BYTES - 2];
        DataCommand::decode(&mut short);
    }
}
