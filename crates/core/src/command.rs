//! Data commands and their byte-buffer wire format.
//!
//! Section 3.2: *"A data command consists of a storage operation type (i.e.,
//! scan, lookup, or insert/upsert), a data object identifier, a reference to
//! a callback function, a data segment that contains all the necessary
//! parameters for the storage operation (e.g., a batch of keys for the
//! lookup or filters for a scan)."*
//!
//! Commands are serialized into the routing layer's byte buffers exactly
//! because the incoming-buffer descriptor of the paper reserves *byte*
//! ranges (32-bit offsets); the encoding here is the little-endian layout
//! written into those ranges.

use bytes::{Buf, BufMut};
use eris_column::{Aggregate, Predicate};
use eris_obs::TraceStamp;

/// Identifier of a data object (a table or index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataObjectId(pub u32);

/// Identifier of an AEU.  AEUs are numbered like the platform's cores, so
/// `AeuId(i)` runs on core `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AeuId(pub u32);

impl AeuId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AeuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AEU{}", self.0)
    }
}

/// The storage operation of a data command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StorageOp {
    Lookup,
    Upsert,
    Scan,
    /// Scan the local partition and route a `Lookup` into another object
    /// for every matching row — the distributed index-nested-loop join
    /// probe ("lookup operations during a join", Section 3.2).
    JoinProbe,
    /// Scan the local partition and route matching rows as appends into a
    /// size-partitioned object — NUMA-aware materialization of intermediate
    /// results (Section 1: "the effective handling of intermediate results
    /// ... [is a] mission critical component").
    Materialize,
}

impl StorageOp {
    /// Stable wire/telemetry tag of this op (the `OP_*` byte).
    pub fn tag(self) -> u8 {
        match self {
            StorageOp::Lookup => OP_LOOKUP,
            StorageOp::Upsert => OP_UPSERT,
            StorageOp::Scan => OP_SCAN,
            StorageOp::JoinProbe => OP_JOIN_PROBE,
            StorageOp::Materialize => OP_MATERIALIZE,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            StorageOp::Lookup => "lookup",
            StorageOp::Upsert => "upsert",
            StorageOp::Scan => "scan",
            StorageOp::JoinProbe => "join_probe",
            StorageOp::Materialize => "materialize",
        }
    }

    /// Inverse of [`StorageOp::tag`] (telemetry labelling of recorded
    /// latency keys).
    pub fn from_tag(tag: u8) -> Option<StorageOp> {
        match tag {
            OP_LOOKUP => Some(StorageOp::Lookup),
            OP_UPSERT => Some(StorageOp::Upsert),
            OP_SCAN => Some(StorageOp::Scan),
            OP_JOIN_PROBE => Some(StorageOp::JoinProbe),
            OP_MATERIALIZE => Some(StorageOp::Materialize),
            _ => None,
        }
    }
}

/// The parameters ("data segment") of a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// A batch of keys to look up.
    Lookup { keys: Vec<u64> },
    /// A batch of key/value pairs to insert or update.
    Upsert { pairs: Vec<(u64, u64)> },
    /// A predicate + aggregate over the snapshot visible at issue time.
    Scan {
        pred: Predicate,
        agg: Aggregate,
        snapshot: u64,
    },
    /// Probe `index` with every matching row value of the local partition.
    JoinProbe {
        index: DataObjectId,
        pred: Predicate,
        snapshot: u64,
    },
    /// Append matching row values into `dst`.
    Materialize {
        dst: DataObjectId,
        pred: Predicate,
        snapshot: u64,
    },
}

impl Payload {
    pub fn op(&self) -> StorageOp {
        match self {
            Payload::Lookup { .. } => StorageOp::Lookup,
            Payload::Upsert { .. } => StorageOp::Upsert,
            Payload::Scan { .. } => StorageOp::Scan,
            Payload::JoinProbe { .. } => StorageOp::JoinProbe,
            Payload::Materialize { .. } => StorageOp::Materialize,
        }
    }

    /// Number of elementary storage operations this command carries.
    pub fn op_count(&self) -> u64 {
        match self {
            Payload::Lookup { keys } => keys.len() as u64,
            Payload::Upsert { pairs } => pairs.len() as u64,
            Payload::Scan { .. } | Payload::JoinProbe { .. } | Payload::Materialize { .. } => 1,
        }
    }
}

/// A routable data command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataCommand {
    pub object: DataObjectId,
    /// Callback reference: correlates results with the issuing query.
    pub ticket: u64,
    pub payload: Payload,
}

const OP_LOOKUP: u8 = 0;
const OP_UPSERT: u8 = 1;
const OP_SCAN: u8 = 2;
const OP_JOIN_PROBE: u8 = 3;
const OP_MATERIALIZE: u8 = 4;
/// Not a storage op: an in-band latency-trace marker that annotates the
/// *next* command in the stream (see [`encode_trace_marker`]).
const OP_TRACE: u8 = 5;

const PRED_ALL: u8 = 0;
const PRED_RANGE: u8 = 1;
const PRED_EQ: u8 = 2;

const AGG_COUNT: u8 = 0;
const AGG_SUM: u8 = 1;
const AGG_MINMAX: u8 = 2;

/// Command header size in bytes: op + object + ticket + payload length.
pub const HEADER_BYTES: usize = 1 + 4 + 8 + 4;

/// Why a byte stream failed to decode as a [`DataCommand`].  Routing
/// buffers are process-internal, but the same wire format is persisted by
/// the durability journal, where truncated or corrupt input is a normal
/// crash outcome and must be rejected, not panicked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the encoding was complete.
    Truncated,
    /// The payload was shorter than its declared length.
    TrailingPayloadBytes {
        declared: u32,
        consumed: u32,
    },
    UnknownOp(u8),
    UnknownPredicate(u8),
    UnknownAggregate(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated command encoding"),
            DecodeError::TrailingPayloadBytes { declared, consumed } => write!(
                f,
                "payload declared {declared} bytes but decoding consumed {consumed}"
            ),
            DecodeError::UnknownOp(t) => write!(f, "unknown op tag {t}"),
            DecodeError::UnknownPredicate(t) => write!(f, "unknown predicate tag {t}"),
            DecodeError::UnknownAggregate(t) => write!(f, "unknown aggregate tag {t}"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn take_u8(buf: &mut &[u8]) -> Result<u8, DecodeError> {
    if buf.is_empty() {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u8())
}

#[inline]
fn take_u32(buf: &mut &[u8]) -> Result<u32, DecodeError> {
    if buf.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u32_le())
}

#[inline]
fn take_u64(buf: &mut &[u8]) -> Result<u64, DecodeError> {
    if buf.len() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u64_le())
}

impl DataCommand {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_BYTES + payload_len(&self.payload)
    }

    /// Append the wire encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        // ALLOC-OK: serializes into the caller's reusable outgoing
        // buffer; one exact reserve, steady state writes in place.
        out.reserve(self.encoded_len());
        let (op, plen) = (
            match self.payload {
                Payload::Lookup { .. } => OP_LOOKUP,
                Payload::Upsert { .. } => OP_UPSERT,
                Payload::Scan { .. } => OP_SCAN,
                Payload::JoinProbe { .. } => OP_JOIN_PROBE,
                Payload::Materialize { .. } => OP_MATERIALIZE,
            },
            payload_len(&self.payload) as u32,
        );
        out.put_u8(op);
        out.put_u32_le(self.object.0);
        out.put_u64_le(self.ticket);
        out.put_u32_le(plen);
        match &self.payload {
            Payload::Lookup { keys } => {
                out.put_u32_le(keys.len() as u32);
                for k in keys {
                    out.put_u64_le(*k);
                }
            }
            Payload::Upsert { pairs } => {
                out.put_u32_le(pairs.len() as u32);
                for (k, v) in pairs {
                    out.put_u64_le(*k);
                    out.put_u64_le(*v);
                }
            }
            Payload::Scan {
                pred,
                agg,
                snapshot,
            } => {
                encode_pred(out, pred);
                out.put_u8(match agg {
                    Aggregate::Count => AGG_COUNT,
                    Aggregate::Sum => AGG_SUM,
                    Aggregate::MinMax => AGG_MINMAX,
                });
                out.put_u64_le(*snapshot);
            }
            Payload::JoinProbe {
                index,
                pred,
                snapshot,
            } => {
                out.put_u32_le(index.0);
                encode_pred(out, pred);
                out.put_u64_le(*snapshot);
            }
            Payload::Materialize {
                dst,
                pred,
                snapshot,
            } => {
                out.put_u32_le(dst.0);
                encode_pred(out, pred);
                out.put_u64_le(*snapshot);
            }
        }
    }

    /// Decode one command from the front of `buf`, advancing it only on
    /// success.  Never panics: malformed, truncated, or corrupt input is
    /// reported as a [`DecodeError`] and leaves `buf` untouched.
    pub fn try_decode(buf: &mut &[u8]) -> Result<DataCommand, DecodeError> {
        if buf.len() < HEADER_BYTES {
            return Err(DecodeError::Truncated);
        }
        let mut cur = *buf;
        let op = cur.get_u8();
        let object = DataObjectId(cur.get_u32_le());
        let ticket = cur.get_u64_le();
        let plen = cur.get_u32_le() as usize;
        if cur.len() < plen {
            return Err(DecodeError::Truncated);
        }
        let mut body = &cur[..plen];
        let payload = match op {
            OP_LOOKUP => {
                let n = take_u32(&mut body)? as usize;
                // Cap the pre-allocation by what the body can actually
                // hold, so a corrupt count cannot demand gigabytes.
                let mut keys = Vec::with_capacity(n.min(body.len() / 8));
                for _ in 0..n {
                    keys.push(take_u64(&mut body)?);
                }
                Payload::Lookup { keys }
            }
            OP_UPSERT => {
                let n = take_u32(&mut body)? as usize;
                let mut pairs = Vec::with_capacity(n.min(body.len() / 16));
                for _ in 0..n {
                    let k = take_u64(&mut body)?;
                    let v = take_u64(&mut body)?;
                    pairs.push((k, v));
                }
                Payload::Upsert { pairs }
            }
            OP_SCAN => {
                let pred = decode_pred(&mut body)?;
                let agg = match take_u8(&mut body)? {
                    AGG_COUNT => Aggregate::Count,
                    AGG_SUM => Aggregate::Sum,
                    AGG_MINMAX => Aggregate::MinMax,
                    t => return Err(DecodeError::UnknownAggregate(t)),
                };
                let snapshot = take_u64(&mut body)?;
                Payload::Scan {
                    pred,
                    agg,
                    snapshot,
                }
            }
            OP_JOIN_PROBE => {
                let index = DataObjectId(take_u32(&mut body)?);
                let pred = decode_pred(&mut body)?;
                let snapshot = take_u64(&mut body)?;
                Payload::JoinProbe {
                    index,
                    pred,
                    snapshot,
                }
            }
            OP_MATERIALIZE => {
                let dst = DataObjectId(take_u32(&mut body)?);
                let pred = decode_pred(&mut body)?;
                let snapshot = take_u64(&mut body)?;
                Payload::Materialize {
                    dst,
                    pred,
                    snapshot,
                }
            }
            t => return Err(DecodeError::UnknownOp(t)),
        };
        if !body.is_empty() {
            return Err(DecodeError::TrailingPayloadBytes {
                declared: plen as u32,
                consumed: (plen - body.len()) as u32,
            });
        }
        *buf = &cur[plen..];
        Ok(DataCommand {
            object,
            ticket,
            payload,
        })
    }

    /// Decode one command from the front of `buf`, advancing it.
    ///
    /// # Panics
    /// On a malformed buffer — routing buffers are process-internal, so
    /// corruption there is a logic error, not an input error.  External
    /// input (journal replay) goes through [`DataCommand::try_decode`].
    pub fn decode(buf: &mut &[u8]) -> DataCommand {
        match DataCommand::try_decode(buf) {
            Ok(cmd) => cmd,
            Err(e) => panic!("malformed command buffer: {e}"),
        }
    }

    /// Decode every command in a filled buffer region.  Trace markers
    /// are skipped (their stamps dropped); callers that consume stamps
    /// use [`DataCommand::decode_all_traced`].
    pub fn decode_all(buf: &[u8]) -> Vec<DataCommand> {
        DataCommand::decode_all_traced(buf)
            .into_iter()
            .map(|(cmd, _)| cmd)
            .collect()
    }

    /// Decode every command in a filled buffer region, attaching each
    /// in-band trace marker to the command that follows it.
    ///
    /// A marker always immediately precedes its command: the router
    /// appends the pair in one call and flushes copy whole buffers, so a
    /// marker at the very end of a region (no following command) is a
    /// logic error and panics like any other malformed internal buffer.
    pub fn decode_all_traced(mut buf: &[u8]) -> Vec<(DataCommand, Option<TraceStamp>)> {
        let mut out = Vec::new();
        let mut pending: Option<TraceStamp> = None;
        while !buf.is_empty() {
            if buf[0] == OP_TRACE {
                let (_object, stamp) = match try_decode_trace_marker(&mut buf) {
                    Ok(m) => m,
                    Err(e) => panic!("malformed trace marker: {e}"),
                };
                assert!(
                    !buf.is_empty(),
                    "dangling trace marker at end of command buffer"
                );
                pending = Some(stamp);
                continue;
            }
            out.push((DataCommand::decode(&mut buf), pending.take()));
        }
        out
    }
}

/// Trace-marker body length: hops + tenant + conn + net_ns + admit_ns
/// (4 bytes each) + seq (8 bytes).
const TRACE_BODY_BYTES: usize = 4 * 5 + 8;

/// Encoded size of one trace marker record.
pub const TRACE_MARKER_BYTES: usize = HEADER_BYTES + TRACE_BODY_BYTES;

/// Append an in-band latency-trace marker annotating the next command in
/// the stream.  The marker reuses the command-header shape
/// (`[op][object:u32][u64][plen:u32]`) so stream walking stays uniform:
/// the ticket slot carries the submit-time clock reading and the body
/// the stray-forwarding hop count plus the serving-side trace context
/// (`tenant`/`conn`/`seq` identity and the net-queue / admission spans
/// accumulated before routing).
pub fn encode_trace_marker(object: DataObjectId, stamp: TraceStamp, out: &mut Vec<u8>) {
    // ALLOC-OK: as DataCommand::encode — one exact reserve into the
    // caller's reusable buffer.
    out.reserve(TRACE_MARKER_BYTES);
    out.put_u8(OP_TRACE);
    out.put_u32_le(object.0);
    out.put_u64_le(stamp.submit_ns);
    out.put_u32_le(TRACE_BODY_BYTES as u32);
    out.put_u32_le(stamp.hops);
    out.put_u32_le(stamp.tenant);
    out.put_u32_le(stamp.conn);
    out.put_u32_le(stamp.net_ns);
    out.put_u32_le(stamp.admit_ns);
    out.put_u64_le(stamp.seq);
}

/// Decode one trace marker from the front of `buf`, advancing it only on
/// success.
fn try_decode_trace_marker(buf: &mut &[u8]) -> Result<(DataObjectId, TraceStamp), DecodeError> {
    if buf.len() < TRACE_MARKER_BYTES {
        return Err(DecodeError::Truncated);
    }
    let mut cur = *buf;
    let op = cur.get_u8();
    debug_assert_eq!(op, OP_TRACE);
    let object = DataObjectId(cur.get_u32_le());
    let submit_ns = cur.get_u64_le();
    let plen = cur.get_u32_le();
    if plen != TRACE_BODY_BYTES as u32 {
        return Err(DecodeError::TrailingPayloadBytes {
            declared: plen,
            consumed: TRACE_BODY_BYTES as u32,
        });
    }
    let hops = cur.get_u32_le();
    let tenant = cur.get_u32_le();
    let conn = cur.get_u32_le();
    let net_ns = cur.get_u32_le();
    let admit_ns = cur.get_u32_le();
    let seq = cur.get_u64_le();
    *buf = &buf[TRACE_MARKER_BYTES..];
    Ok((
        object,
        TraceStamp {
            submit_ns,
            hops,
            tenant,
            conn,
            seq,
            net_ns,
            admit_ns,
        },
    ))
}

fn payload_len(p: &Payload) -> usize {
    match p {
        Payload::Lookup { keys } => 4 + keys.len() * 8,
        Payload::Upsert { pairs } => 4 + pairs.len() * 16,
        Payload::Scan { .. } => 1 + 8 + 8 + 1 + 8,
        Payload::JoinProbe { .. } | Payload::Materialize { .. } => 4 + 1 + 8 + 8 + 8,
    }
}

fn encode_pred(out: &mut Vec<u8>, pred: &Predicate) {
    match *pred {
        Predicate::All => {
            out.put_u8(PRED_ALL);
            out.put_u64_le(0);
            out.put_u64_le(0);
        }
        Predicate::Range { lo, hi } => {
            out.put_u8(PRED_RANGE);
            out.put_u64_le(lo);
            out.put_u64_le(hi);
        }
        Predicate::Equals(x) => {
            out.put_u8(PRED_EQ);
            out.put_u64_le(x);
            out.put_u64_le(0);
        }
    }
}

fn decode_pred(buf: &mut &[u8]) -> Result<Predicate, DecodeError> {
    let ptag = take_u8(buf)?;
    let a = take_u64(buf)?;
    let b = take_u64(buf)?;
    match ptag {
        PRED_ALL => Ok(Predicate::All),
        PRED_RANGE => Ok(Predicate::Range { lo: a, hi: b }),
        PRED_EQ => Ok(Predicate::Equals(a)),
        t => Err(DecodeError::UnknownPredicate(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(cmd: DataCommand) {
        let mut buf = Vec::new();
        cmd.encode(&mut buf);
        assert_eq!(buf.len(), cmd.encoded_len());
        let mut slice = buf.as_slice();
        let back = DataCommand::decode(&mut slice);
        assert!(slice.is_empty(), "decoder must consume exactly one command");
        assert_eq!(back, cmd);
    }

    #[test]
    fn lookup_roundtrip() {
        roundtrip(DataCommand {
            object: DataObjectId(7),
            ticket: 0xDEADBEEF,
            payload: Payload::Lookup {
                keys: vec![1, 2, u64::MAX],
            },
        });
    }

    #[test]
    fn empty_lookup_roundtrip() {
        roundtrip(DataCommand {
            object: DataObjectId(0),
            ticket: 0,
            payload: Payload::Lookup { keys: vec![] },
        });
    }

    #[test]
    fn upsert_roundtrip() {
        roundtrip(DataCommand {
            object: DataObjectId(1),
            ticket: 42,
            payload: Payload::Upsert {
                pairs: vec![(5, 50), (6, 60)],
            },
        });
    }

    #[test]
    fn scan_variants_roundtrip() {
        for pred in [
            Predicate::All,
            Predicate::Range { lo: 3, hi: 9 },
            Predicate::Equals(77),
        ] {
            for agg in [Aggregate::Count, Aggregate::Sum, Aggregate::MinMax] {
                roundtrip(DataCommand {
                    object: DataObjectId(9),
                    ticket: 1,
                    payload: Payload::Scan {
                        pred,
                        agg,
                        snapshot: 12345,
                    },
                });
            }
        }
    }

    #[test]
    fn join_probe_and_materialize_roundtrip() {
        roundtrip(DataCommand {
            object: DataObjectId(3),
            ticket: 77,
            payload: Payload::JoinProbe {
                index: DataObjectId(9),
                pred: Predicate::Range { lo: 5, hi: 10 },
                snapshot: 42,
            },
        });
        roundtrip(DataCommand {
            object: DataObjectId(4),
            ticket: 78,
            payload: Payload::Materialize {
                dst: DataObjectId(2),
                pred: Predicate::All,
                snapshot: u64::MAX,
            },
        });
    }

    #[test]
    fn decode_all_splits_concatenated_commands() {
        let a = DataCommand {
            object: DataObjectId(1),
            ticket: 1,
            payload: Payload::Lookup { keys: vec![9] },
        };
        let b = DataCommand {
            object: DataObjectId(2),
            ticket: 2,
            payload: Payload::Scan {
                pred: Predicate::All,
                agg: Aggregate::Count,
                snapshot: 5,
            },
        };
        let mut buf = Vec::new();
        a.encode(&mut buf);
        b.encode(&mut buf);
        let all = DataCommand::decode_all(&buf);
        assert_eq!(all, vec![a, b]);
    }

    #[test]
    fn op_counts() {
        assert_eq!(
            Payload::Lookup {
                keys: vec![1, 2, 3]
            }
            .op_count(),
            3
        );
        assert_eq!(
            Payload::Upsert {
                pairs: vec![(1, 1)]
            }
            .op_count(),
            1
        );
        assert_eq!(
            Payload::Scan {
                pred: Predicate::All,
                agg: Aggregate::Count,
                snapshot: 0
            }
            .op_count(),
            1
        );
    }

    #[test]
    fn try_decode_rejects_every_truncation() {
        let cmd = DataCommand {
            object: DataObjectId(3),
            ticket: 9,
            payload: Payload::Upsert {
                pairs: vec![(1, 2), (3, 4)],
            },
        };
        let mut buf = Vec::new();
        cmd.encode(&mut buf);
        for cut in 0..buf.len() {
            let mut short = &buf[..cut];
            let before = short;
            assert_eq!(
                DataCommand::try_decode(&mut short),
                Err(DecodeError::Truncated),
                "prefix of {cut} bytes"
            );
            assert_eq!(short, before, "buffer untouched on error");
        }
        let mut full = buf.as_slice();
        assert_eq!(DataCommand::try_decode(&mut full), Ok(cmd));
        assert!(full.is_empty());
    }

    #[test]
    fn try_decode_rejects_unknown_tags() {
        let cmd = DataCommand {
            object: DataObjectId(0),
            ticket: 0,
            payload: Payload::Scan {
                pred: Predicate::All,
                agg: Aggregate::Count,
                snapshot: 0,
            },
        };
        let mut buf = Vec::new();
        cmd.encode(&mut buf);
        let mut bad_op = buf.clone();
        bad_op[0] = 99;
        assert_eq!(
            DataCommand::try_decode(&mut bad_op.as_slice()),
            Err(DecodeError::UnknownOp(99))
        );
        let mut bad_pred = buf.clone();
        bad_pred[HEADER_BYTES] = 77;
        assert_eq!(
            DataCommand::try_decode(&mut bad_pred.as_slice()),
            Err(DecodeError::UnknownPredicate(77))
        );
        let mut bad_agg = buf.clone();
        bad_agg[HEADER_BYTES + 17] = 55;
        assert_eq!(
            DataCommand::try_decode(&mut bad_agg.as_slice()),
            Err(DecodeError::UnknownAggregate(55))
        );
    }

    #[test]
    fn try_decode_survives_corrupt_element_counts() {
        let cmd = DataCommand {
            object: DataObjectId(0),
            ticket: 0,
            payload: Payload::Lookup { keys: vec![42] },
        };
        let mut buf = Vec::new();
        cmd.encode(&mut buf);
        // Blow up the key count without growing the payload: must fail
        // cleanly instead of over-allocating or panicking.
        buf[HEADER_BYTES..HEADER_BYTES + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            DataCommand::try_decode(&mut buf.as_slice()),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn trace_marker_attaches_to_the_following_command() {
        let a = DataCommand {
            object: DataObjectId(1),
            ticket: 1,
            payload: Payload::Lookup { keys: vec![9] },
        };
        let b = DataCommand {
            object: DataObjectId(2),
            ticket: 2,
            payload: Payload::Upsert {
                pairs: vec![(3, 4)],
            },
        };
        let stamp = TraceStamp {
            hops: 2,
            tenant: 11,
            conn: 4,
            seq: 900,
            net_ns: 5_000,
            admit_ns: 250,
            ..TraceStamp::engine(123_456_789)
        };
        let mut buf = Vec::new();
        a.encode(&mut buf);
        let before = buf.len();
        encode_trace_marker(b.object, stamp, &mut buf);
        assert_eq!(buf.len() - before, TRACE_MARKER_BYTES);
        b.encode(&mut buf);

        let traced = DataCommand::decode_all_traced(&buf);
        assert_eq!(traced.len(), 2);
        assert_eq!(traced[0], (a.clone(), None));
        assert_eq!(traced[1], (b.clone(), Some(stamp)));
        // The stamp-blind decoder sees the identical command stream.
        assert_eq!(DataCommand::decode_all(&buf), vec![a, b]);
    }

    #[test]
    fn trace_marker_is_rejected_by_the_external_decoder() {
        // `try_decode` guards external input (journal replay); markers
        // are routing-internal and must not decode as commands there.
        let mut buf = Vec::new();
        encode_trace_marker(DataObjectId(7), TraceStamp::engine(1), &mut buf);
        let mut cur = buf.as_slice();
        assert_eq!(
            DataCommand::try_decode(&mut cur),
            Err(DecodeError::UnknownOp(5))
        );
    }

    #[test]
    #[should_panic(expected = "dangling trace marker")]
    fn dangling_trace_marker_panics() {
        let mut buf = Vec::new();
        encode_trace_marker(DataObjectId(0), TraceStamp::engine(0), &mut buf);
        DataCommand::decode_all_traced(&buf);
    }

    #[test]
    fn storage_op_tags_roundtrip() {
        for op in [
            StorageOp::Lookup,
            StorageOp::Upsert,
            StorageOp::Scan,
            StorageOp::JoinProbe,
            StorageOp::Materialize,
        ] {
            assert_eq!(StorageOp::from_tag(op.tag()), Some(op));
            assert!(!op.name().is_empty());
        }
        assert_eq!(StorageOp::from_tag(5), None, "trace tag is not an op");
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_buffer_panics() {
        let cmd = DataCommand {
            object: DataObjectId(1),
            ticket: 1,
            payload: Payload::Lookup { keys: vec![1, 2] },
        };
        let mut buf = Vec::new();
        cmd.encode(&mut buf);
        let mut short = &buf[..HEADER_BYTES - 2];
        DataCommand::decode(&mut short);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use eris_column::{Aggregate, Predicate};
    use proptest::prelude::*;

    const FULL: core::ops::RangeInclusive<u64> = 0..=u64::MAX;

    fn arb_pred() -> impl Strategy<Value = Predicate> {
        (0u8..3, FULL, FULL).prop_map(|(tag, a, b)| match tag {
            0 => Predicate::All,
            1 => Predicate::Range { lo: a, hi: b },
            _ => Predicate::Equals(a),
        })
    }

    fn arb_command() -> impl Strategy<Value = DataCommand> {
        (
            (0u8..5, 0u32..1 << 20, FULL),
            proptest::collection::vec(FULL, 0..48),
            proptest::collection::vec((FULL, FULL), 0..48),
            (arb_pred(), 0u8..3, FULL, 0u32..1 << 20),
        )
            .prop_map(
                |((op, object, ticket), keys, pairs, (pred, agg, snapshot, other))| {
                    let agg = match agg {
                        0 => Aggregate::Count,
                        1 => Aggregate::Sum,
                        _ => Aggregate::MinMax,
                    };
                    let payload = match op {
                        0 => Payload::Lookup { keys },
                        1 => Payload::Upsert { pairs },
                        2 => Payload::Scan {
                            pred,
                            agg,
                            snapshot,
                        },
                        3 => Payload::JoinProbe {
                            index: DataObjectId(other),
                            pred,
                            snapshot,
                        },
                        _ => Payload::Materialize {
                            dst: DataObjectId(other),
                            pred,
                            snapshot,
                        },
                    };
                    DataCommand {
                        object: DataObjectId(object),
                        ticket,
                        payload,
                    }
                },
            )
    }

    fn arb_stamp() -> impl Strategy<Value = TraceStamp> {
        (
            (FULL, 0u32..=u32::MAX, 0u32..=u32::MAX),
            (0u32..=u32::MAX, FULL, 0u32..=u32::MAX, 0u32..=u32::MAX),
        )
            .prop_map(
                |((submit_ns, hops, tenant), (conn, seq, net_ns, admit_ns))| TraceStamp {
                    submit_ns,
                    hops,
                    tenant,
                    conn,
                    seq,
                    net_ns,
                    admit_ns,
                },
            )
    }

    proptest! {
        /// The extended trace-context marker (identity + serving-side
        /// spans) round-trips bit-for-bit through the in-band wire
        /// encoding, and the stamp lands on the command it precedes.
        #[test]
        fn trace_marker_roundtrips_full_context(
            stamp in arb_stamp(),
            cmd in arb_command(),
        ) {
            let mut buf = Vec::new();
            encode_trace_marker(cmd.object, stamp, &mut buf);
            prop_assert_eq!(buf.len(), TRACE_MARKER_BYTES);
            cmd.encode(&mut buf);
            let traced = DataCommand::decode_all_traced(&buf);
            prop_assert_eq!(traced.len(), 1);
            let (back, got) = traced.into_iter().next().unwrap();
            prop_assert_eq!(back, cmd);
            prop_assert_eq!(got, Some(stamp));
            // Derived trace ids are stable across the round trip.
            prop_assert_eq!(got.unwrap().trace_id(), stamp.trace_id());
        }

        /// Truncating a marker anywhere must yield a clean typed error
        /// from the internal marker decoder path (via decode_all_traced
        /// panicking is reserved for malformed *internal* buffers; here
        /// we check the guarded entry point used on journal bytes).
        #[test]
        fn truncated_marker_is_rejected_externally(stamp in arb_stamp()) {
            let mut buf = Vec::new();
            encode_trace_marker(DataObjectId(3), stamp, &mut buf);
            for cut in 1..buf.len() {
                let mut cur = &buf[..cut];
                prop_assert!(DataCommand::try_decode(&mut cur).is_err());
            }
        }

        #[test]
        fn encoding_roundtrips(cmd in arb_command()) {
            let mut buf = Vec::new();
            cmd.encode(&mut buf);
            prop_assert_eq!(buf.len(), cmd.encoded_len());
            let mut cur = buf.as_slice();
            let back = DataCommand::try_decode(&mut cur).expect("own encoding decodes");
            prop_assert!(cur.is_empty(), "decode consumes the whole encoding");
            prop_assert_eq!(back, cmd);
        }

        #[test]
        fn every_truncation_is_rejected(cmd in arb_command()) {
            let mut buf = Vec::new();
            cmd.encode(&mut buf);
            // Every strict prefix must fail cleanly and leave the cursor put.
            for cut in 0..buf.len() {
                let mut cur = &buf[..cut];
                let before = cur;
                prop_assert!(DataCommand::try_decode(&mut cur).is_err());
                prop_assert_eq!(cur, before, "cursor untouched on error");
            }
        }

        /// Network bytes are hostile: feeding *arbitrary* byte strings to
        /// the external decoder must never panic, never over-allocate, and
        /// on failure must leave the cursor exactly where it was.  On
        /// success the decoded command must survive a re-encode/re-decode
        /// round trip of the same length (the predicate encoding is
        /// fixed-width with ignored pad words, so byte-for-byte equality
        /// is deliberately not required).
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
            let mut cur = bytes.as_slice();
            let before = cur;
            match DataCommand::try_decode(&mut cur) {
                Ok(cmd) => {
                    let consumed = before.len() - cur.len();
                    let mut re = Vec::new();
                    cmd.encode(&mut re);
                    prop_assert_eq!(re.len(), consumed, "re-encode preserves length");
                    let back = DataCommand::try_decode(&mut re.as_slice()).expect("re-decode");
                    prop_assert_eq!(back, cmd, "round trip is idempotent");
                }
                Err(_) => prop_assert_eq!(cur, before, "cursor untouched on error"),
            }
        }

        /// Corrupting any single byte of a valid encoding must produce
        /// either a clean typed error or a different-but-valid command —
        /// never a panic, never a command that fails to round-trip.
        #[test]
        fn single_byte_corruption_is_contained(cmd in arb_command(), pos in 0usize..4096, flip in 1u8..=255) {
            let mut buf = Vec::new();
            cmd.encode(&mut buf);
            let pos = pos % buf.len();
            buf[pos] ^= flip;
            let mut cur = buf.as_slice();
            if let Ok(decoded) = DataCommand::try_decode(&mut cur) {
                let consumed = buf.len() - cur.len();
                let mut re = Vec::new();
                decoded.encode(&mut re);
                prop_assert_eq!(re.len(), consumed);
                let back = DataCommand::try_decode(&mut re.as_slice()).expect("re-decode");
                prop_assert_eq!(back, decoded);
            }
        }
    }

    /// Every `DecodeError` variant is reachable from hostile input — the
    /// serving layer maps each onto a typed reject response, so an
    /// unreachable variant would mean dead protocol surface.
    #[test]
    fn every_decode_error_variant_is_reachable() {
        use std::mem::discriminant;

        // Truncated: header shorter than HEADER_BYTES.
        let short = [OP_LOOKUP; 3];
        let got = DataCommand::try_decode(&mut &short[..]).unwrap_err();
        assert_eq!(discriminant(&got), discriminant(&DecodeError::Truncated));

        // Truncated (declared payload longer than the buffer).
        let mut lying = Vec::new();
        DataCommand {
            object: DataObjectId(1),
            ticket: 0,
            payload: Payload::Lookup { keys: vec![7] },
        }
        .encode(&mut lying);
        let plen_at = 1 + 4 + 8;
        lying[plen_at..plen_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let got = DataCommand::try_decode(&mut lying.as_slice()).unwrap_err();
        assert_eq!(discriminant(&got), discriminant(&DecodeError::Truncated));

        // TrailingPayloadBytes: payload longer than its content needs.
        let mut padded = Vec::new();
        DataCommand {
            object: DataObjectId(1),
            ticket: 0,
            payload: Payload::Lookup { keys: vec![] },
        }
        .encode(&mut padded);
        padded[plen_at..plen_at + 4].copy_from_slice(&12u32.to_le_bytes());
        padded.extend_from_slice(&[0u8; 8]);
        assert_eq!(
            DataCommand::try_decode(&mut padded.as_slice()),
            Err(DecodeError::TrailingPayloadBytes {
                declared: 12,
                consumed: 4,
            })
        );

        // UnknownOp.
        let mut bad_op = Vec::new();
        bad_op.push(200u8);
        bad_op.extend_from_slice(&1u32.to_le_bytes());
        bad_op.extend_from_slice(&0u64.to_le_bytes());
        bad_op.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            DataCommand::try_decode(&mut bad_op.as_slice()),
            Err(DecodeError::UnknownOp(200))
        );

        // UnknownPredicate / UnknownAggregate: corrupt a scan's tags.
        let mut scan = Vec::new();
        DataCommand {
            object: DataObjectId(1),
            ticket: 0,
            payload: Payload::Scan {
                pred: Predicate::All,
                agg: Aggregate::Count,
                snapshot: 0,
            },
        }
        .encode(&mut scan);
        let body_at = HEADER_BYTES;
        let mut bad_pred = scan.clone();
        bad_pred[body_at] = 250;
        assert_eq!(
            DataCommand::try_decode(&mut bad_pred.as_slice()),
            Err(DecodeError::UnknownPredicate(250))
        );
        // The predicate field is fixed-width: tag + two u64 words.
        let mut bad_agg = scan.clone();
        bad_agg[body_at + 17] = 251;
        assert_eq!(
            DataCommand::try_decode(&mut bad_agg.as_slice()),
            Err(DecodeError::UnknownAggregate(251))
        );
    }
}
