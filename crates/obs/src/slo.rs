//! Per-tenant SLO tracking with multi-window burn rates.
//!
//! Two objectives per tenant, both defined against an **error budget**
//! (the tolerated bad fraction over the compliance period):
//!
//! * **latency** — a request is bad when its full-path latency (net +
//!   admit + queue + exec) exceeds the configured threshold; the feeder
//!   counts these with `LogHistogram::count_over`.
//! * **errors** — a request is bad when the serving layer rejected it
//!   (shed, quota-denied, protocol/decode/routing reject).
//!
//! The engine itself never touches request state: at every export tick
//! the caller pushes *cumulative* totals per tenant ([`SloTotals`]),
//! and burn rates are computed by diffing the newest sample against a
//! baseline at each window boundary — the standard multi-window
//! burn-rate alerting construction (a burn rate of 1.0 consumes exactly
//! the whole budget if sustained; short windows catch fast burns, long
//! windows catch slow ones).
//!
//! All state lives under one mutex keyed by tenant; observation ticks
//! are export-rate (hertz, not megahertz), so contention is irrelevant.

use crate::export::{Metric, MetricKind};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};

/// Cumulative per-tenant totals at one observation tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloTotals {
    /// Requests that received *any* verdict (completed + rejected).
    pub requests: u64,
    /// Completed requests whose full-path latency exceeded the
    /// objective threshold.
    pub bad_latency: u64,
    /// Requests rejected by the serving layer.
    pub errors: u64,
}

/// The per-tenant objectives and the burn-rate windows.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Full-path latency above this is a bad request (ns).
    pub latency_threshold_ns: u64,
    /// Tolerated bad-latency fraction (e.g. `0.01` = 1% may be slow).
    pub latency_budget: f64,
    /// Tolerated error fraction.
    pub error_budget: f64,
    /// Burn-rate windows, shortest first (ns).
    pub windows_ns: Vec<u64>,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_threshold_ns: 50_000_000, // 50 ms
            latency_budget: 0.01,
            error_budget: 0.05,
            windows_ns: vec![60_000_000_000, 600_000_000_000], // 60 s, 600 s
        }
    }
}

/// One window's burn rates for one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRate {
    pub window_ns: u64,
    /// Requests observed inside the window.
    pub requests: u64,
    /// `bad_latency_fraction / latency_budget` over the window.
    pub latency_burn: f64,
    /// `error_fraction / error_budget` over the window.
    pub error_burn: f64,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    at_ns: u64,
    totals: SloTotals,
}

#[derive(Debug, Default)]
struct TenantSlo {
    samples: VecDeque<Sample>,
}

/// Multi-window, multi-tenant burn-rate tracker.
#[derive(Debug)]
pub struct SloEngine {
    cfg: SloConfig,
    tenants: Mutex<HashMap<u32, TenantSlo>>,
}

impl SloEngine {
    pub fn new(cfg: SloConfig) -> Self {
        SloEngine {
            cfg,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Push one tenant's cumulative totals at time `at_ns`.  Samples
    /// older than the longest window (plus one baseline beyond it) are
    /// pruned.
    pub fn observe(&self, tenant: u32, at_ns: u64, totals: SloTotals) {
        let horizon = self.cfg.windows_ns.iter().copied().max().unwrap_or(0);
        let mut map = self.tenants.lock();
        let t = map.entry(tenant).or_default();
        t.samples.push_back(Sample { at_ns, totals });
        // Keep one sample at-or-before the horizon as the diff baseline.
        while t.samples.len() >= 2 && t.samples[1].at_ns + horizon <= at_ns {
            t.samples.pop_front();
        }
    }

    /// Burn rates for `tenant` at `now_ns`, one entry per configured
    /// window.  A window with no observed requests burns at 0.
    pub fn burn_rates(&self, tenant: u32, now_ns: u64) -> Vec<BurnRate> {
        let map = self.tenants.lock();
        let Some(t) = map.get(&tenant) else {
            return Vec::new();
        };
        let Some(&newest) = t.samples.back() else {
            return Vec::new();
        };
        self.cfg
            .windows_ns
            .iter()
            .map(|&w| {
                let cutoff = now_ns.saturating_sub(w);
                // Baseline: the newest sample at or before the window
                // start (fall back to the oldest retained sample — the
                // window then covers all history we have).
                let base = t
                    .samples
                    .iter()
                    .rev()
                    .find(|s| s.at_ns <= cutoff)
                    .or_else(|| t.samples.front())
                    .copied()
                    .unwrap_or(newest);
                let req = newest.totals.requests.saturating_sub(base.totals.requests);
                let bad_lat = newest
                    .totals
                    .bad_latency
                    .saturating_sub(base.totals.bad_latency);
                let errs = newest.totals.errors.saturating_sub(base.totals.errors);
                let frac = |bad: u64| {
                    if req == 0 {
                        0.0
                    } else {
                        bad as f64 / req as f64
                    }
                };
                BurnRate {
                    window_ns: w,
                    requests: req,
                    latency_burn: frac(bad_lat) / self.cfg.latency_budget.max(1e-12),
                    error_burn: frac(errs) / self.cfg.error_budget.max(1e-12),
                }
            })
            .collect()
    }

    /// Tenants with at least one observation, sorted.
    pub fn tenants(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.tenants.lock().keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// The worst (largest) burn rate across all windows and both
    /// objectives for `tenant` — the single number gating an alert.
    pub fn worst_burn(&self, tenant: u32, now_ns: u64) -> f64 {
        self.burn_rates(tenant, now_ns)
            .iter()
            .map(|b| b.latency_burn.max(b.error_burn))
            .fold(0.0, f64::max)
    }

    /// Export every tenant's burn rates as gauges:
    /// `eris_slo_burn_rate{tenant,objective,window}` plus the raw
    /// in-window request count for context.
    pub fn to_metrics(&self, now_ns: u64) -> Vec<Metric> {
        let mut burn = Metric::new(
            "eris_slo_burn_rate",
            "Error-budget burn rate per tenant, objective, and window \
             (1.0 = consuming exactly the whole budget)",
            MetricKind::Gauge,
        );
        let mut reqs = Metric::new(
            "eris_slo_window_requests",
            "Requests observed inside each burn-rate window",
            MetricKind::Gauge,
        );
        for tenant in self.tenants() {
            for b in self.burn_rates(tenant, now_ns) {
                let window = format!("{}s", b.window_ns / 1_000_000_000);
                let t = tenant.to_string();
                burn = burn
                    .sample(
                        &[
                            ("tenant", &t),
                            ("objective", "latency"),
                            ("window", &window),
                        ],
                        b.latency_burn,
                    )
                    .sample(
                        &[("tenant", &t), ("objective", "errors"), ("window", &window)],
                        b.error_burn,
                    );
                reqs = reqs.sample(&[("tenant", &t), ("window", &window)], b.requests as f64);
            }
        }
        vec![burn, reqs]
    }
}

impl Default for SloEngine {
    fn default() -> Self {
        SloEngine::new(SloConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    fn engine() -> SloEngine {
        SloEngine::new(SloConfig {
            latency_threshold_ns: 1_000_000,
            latency_budget: 0.01,
            error_budget: 0.05,
            windows_ns: vec![10 * S, 100 * S],
        })
    }

    #[test]
    fn no_observations_no_burn() {
        let e = engine();
        assert!(e.burn_rates(1, 50 * S).is_empty());
        assert_eq!(e.worst_burn(1, 50 * S), 0.0);
        assert!(e.tenants().is_empty());
    }

    #[test]
    fn steady_burn_at_exactly_budget_is_one() {
        let e = engine();
        // 1% of requests are slow each tick — exactly the budget.
        for tick in 0..20u64 {
            e.observe(
                7,
                tick * S,
                SloTotals {
                    requests: tick * 1_000,
                    bad_latency: tick * 10,
                    errors: 0,
                },
            );
        }
        for b in e.burn_rates(7, 19 * S) {
            assert!(b.requests > 0);
            assert!(
                (b.latency_burn - 1.0).abs() < 1e-9,
                "window {} burn {}",
                b.window_ns,
                b.latency_burn
            );
            assert_eq!(b.error_burn, 0.0);
        }
    }

    #[test]
    fn short_window_reacts_to_a_fast_burn_before_the_long_one() {
        let e = engine();
        // 100 ticks of clean traffic, then 5 ticks of 50% errors.
        let mut req = 0u64;
        let mut errs = 0u64;
        for tick in 0..105u64 {
            req += 1_000;
            if tick >= 100 {
                errs += 500;
            }
            e.observe(
                1,
                tick * S,
                SloTotals {
                    requests: req,
                    bad_latency: 0,
                    errors: errs,
                },
            );
        }
        let rates = e.burn_rates(1, 104 * S);
        assert_eq!(rates.len(), 2);
        let (short, long) = (&rates[0], &rates[1]);
        // Short window is saturated with the outage; long window dilutes
        // it across the clean history.
        assert!(short.error_burn > long.error_burn * 2.0);
        assert!(short.error_burn > 1.0, "short burn {}", short.error_burn);
        assert_eq!(e.worst_burn(1, 104 * S), short.error_burn);
    }

    #[test]
    fn pruning_keeps_a_baseline_beyond_the_longest_window() {
        let e = engine();
        for tick in 0..500u64 {
            e.observe(
                2,
                tick * S,
                SloTotals {
                    requests: tick,
                    bad_latency: 0,
                    errors: 0,
                },
            );
        }
        // The 100 s window must still find a baseline ~100 s back.
        let rates = e.burn_rates(2, 499 * S);
        assert_eq!(rates[1].requests, 100);
        assert_eq!(rates[0].requests, 10);
    }

    #[test]
    fn metrics_export_labels_every_window_and_objective() {
        let e = engine();
        e.observe(3, 0, SloTotals::default());
        e.observe(
            3,
            10 * S,
            SloTotals {
                requests: 100,
                bad_latency: 4,
                errors: 10,
            },
        );
        let metrics = e.to_metrics(10 * S);
        let burn = &metrics[0];
        // 2 windows × 2 objectives.
        assert_eq!(burn.samples.len(), 4);
        let text = crate::export::render_prometheus(&metrics);
        assert!(
            text.contains("eris_slo_burn_rate{tenant=\"3\",objective=\"latency\",window=\"10s\"}")
        );
        assert!(text.contains("objective=\"errors\""));
        assert!(text.contains("eris_slo_window_requests"));
    }
}
