//! Bounded lock-free trace-event rings.
//!
//! One ring per AEU records the most recent trace events.  Rings are
//! **overwrite-oldest**: emission never blocks the hot path on a slow
//! (or absent) consumer, and a full ring silently recycles its oldest
//! slot — but never silently *loses* an event: the accounting invariant
//!
//! ```text
//! emitted == retained + dropped
//! ```
//!
//! holds exactly at every quiescent point (no in-flight writers).  It is
//! maintained by charging `dropped` at the moment an event becomes
//! unreadable: when a newer write displaces a completed slot, and when a
//! writer abandons its claim because an even newer generation already
//! occupies its slot.
//!
//! ## Concurrency
//!
//! Writers are typically one AEU, but the engine thread also emits into
//! AEU rings (balancer migrations, journal barriers), so the ring is
//! multi-writer.  Each emission claims a unique global generation with
//! one `fetch_add`; the slot is a per-slot seqlock whose sequence word
//! encodes `(generation + 1) << 1 | busy`.  Sequences are monotonic per
//! slot, so a late old-generation writer can never clobber a newer
//! event.  Readers copy slots optimistically and discard torn reads.

//!
//! The module is written against the `eris-sync` facade, so a build
//! with `RUSTFLAGS="--cfg loom"` model-checks the exact shipping
//! protocol (see the `loom_models` test module and DESIGN.md
//! § Concurrency model).

use crate::event::Stamped;
use crate::event::TraceEvent;
use eris_sync::cell::UnsafeCell;
use eris_sync::hint;
use eris_sync::sync::atomic::{fence, AtomicU64, Ordering};

struct Slot {
    /// `0` = never written; else `(generation + 1) << 1 | busy_bit`.
    seq: AtomicU64,
    data: UnsafeCell<Stamped>,
}

/// A bounded multi-writer overwrite-oldest event ring.
pub struct TraceRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Total events offered (each `emit` claims one generation).
    head: AtomicU64,
    /// Events no longer readable: displaced by overwrite or abandoned
    /// to a newer generation.
    dropped: AtomicU64,
}

// SAFETY: slot payloads are only read/written under the per-slot
// sequence protocol; torn reads are detected and discarded.
unsafe impl Sync for TraceRing {}
unsafe impl Send for TraceRing {}

/// Accounting snapshot of one ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingStats {
    pub capacity: u64,
    pub emitted: u64,
    pub retained: u64,
    pub dropped: u64,
}

const PLACEHOLDER: Stamped = Stamped {
    at_ns: 0,
    aeu: 0,
    event: TraceEvent::BufferSwap {
        bytes: 0,
        commands: 0,
    },
};

impl TraceRing {
    /// A ring holding the most recent `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                data: UnsafeCell::new(PLACEHOLDER),
            })
            .collect();
        TraceRing {
            slots,
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Record one event.  Wait-free except for a bounded spin when an
    /// older writer is mid-write in the same slot (a full ring-lap race,
    /// vanishingly rare at sane capacities).
    // HOT-PATH-ROOT: called per traced command from the AEU loop;
    // the seqlock claim must stay wait-free.
    pub fn emit(&self, event: Stamped) {
        // ordering: Relaxed — the generation counter only needs
        // atomicity; payload publication is ordered by the per-slot
        // seqlock below, and `stats` tolerates transient skew.
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        // BOUNDS: the claim position is masked to the power-of-two
        // capacity.
        let slot = &self.slots[(pos & self.mask) as usize];
        let done = (pos + 1) << 1;
        let busy = done | 1;
        loop {
            // ordering: Acquire pairs with the Release completion store
            // of whichever writer last owned this slot;
            // pairs-with: ring-slot-seq.
            let cur = slot.seq.load(Ordering::Acquire);
            if cur >= done {
                // A newer generation already owns this slot: our event
                // is stale before it was ever readable.
                // ordering: Relaxed — ledger counter, no payload.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if cur & 1 == 1 {
                hint::spin_loop();
                continue;
            }
            // ordering: Acquire on success — the claim is a lock
            // acquire: an acquire RMW forbids the payload write below
            // from floating above it, so readers can never see new
            // bytes under an old even sequence.  Failure is Relaxed;
            // the retry re-reads with Acquire above.
            if slot
                .seq
                .compare_exchange_weak(cur, busy, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                if cur != 0 {
                    // We displace a completed older event.
                    // ordering: Relaxed — ledger counter, no payload.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                slot.data.with_mut(|p| {
                    // SAFETY: the busy bit exclusively claims the slot.
                    unsafe { std::ptr::write_volatile(p, event) }
                });
                // ordering: Release publishes the payload before the
                // even sequence that readers validate against;
                // pairs-with: ring-slot-seq.
                slot.seq.store(done, Ordering::Release);
                return;
            }
        }
    }

    /// Copy out the currently retained events, oldest first.  Torn slots
    /// (an in-flight overwrite) are skipped; their displacement is
    /// charged to `dropped` by the writer.
    pub fn snapshot(&self) -> Vec<Stamped> {
        let mut entries: Vec<(u64, Stamped)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            for _ in 0..8 {
                // ordering: Acquire pairs with a completing writer's
                // Release store, so an even sequence implies its
                // payload bytes are visible below;
                // pairs-with: ring-slot-seq.
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 {
                    break;
                }
                if s1 & 1 == 1 {
                    hint::spin_loop();
                    continue;
                }
                let data = slot.data.with(|p| {
                    // SAFETY: optimistic copy; a torn or stale payload
                    // is discarded by the sequence validation below.
                    unsafe { std::ptr::read_volatile(p) }
                });
                // ordering: the Acquire fence pins the payload copy
                // above the validation load — an Acquire *load* alone
                // would not, since prior accesses may reorder past it.
                // This is the canonical seqlock read-side fence
                // (crossbeam's SeqLock::validate_read does the same).
                fence(Ordering::Acquire);
                // ordering: Relaxed — the fence above already orders
                // this validation load against the payload copy.
                if slot.seq.load(Ordering::Relaxed) == s1 {
                    entries.push((s1 >> 1, data));
                    break;
                }
            }
        }
        entries.sort_unstable_by_key(|(gen, _)| *gen);
        entries.into_iter().map(|(_, d)| d).collect()
    }

    /// Events retained by kind, newest last (convenience for tickers).
    pub fn snapshot_kind(&self, kind: &str) -> Vec<Stamped> {
        self.snapshot()
            .into_iter()
            .filter(|s| s.event.kind() == kind)
            .collect()
    }

    pub fn stats(&self) -> RingStats {
        // ordering: Acquire on both, and load order matters for a
        // quiescent reader: `dropped` first so a concurrent emit can
        // only make `retained` look larger, never negative.
        let dropped = self.dropped.load(Ordering::Acquire);
        let emitted = self.head.load(Ordering::Acquire);
        RingStats {
            capacity: self.slots.len() as u64,
            emitted,
            retained: emitted.saturating_sub(dropped),
            dropped,
        }
    }
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::new(1024)
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use proptest::prelude::*;

    fn ev(i: u64) -> Stamped {
        Stamped {
            at_ns: i,
            aeu: 0,
            event: TraceEvent::BufferSwap {
                bytes: i,
                commands: i as u32,
            },
        }
    }

    #[test]
    fn under_capacity_everything_is_retained_in_order() {
        let ring = TraceRing::new(8);
        for i in 0..5 {
            ring.emit(ev(i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 5);
        assert!(snap.windows(2).all(|w| w[0].at_ns < w[1].at_ns));
        let st = ring.stats();
        assert_eq!((st.emitted, st.retained, st.dropped), (5, 5, 0));
    }

    #[test]
    fn overwrite_keeps_the_newest_and_counts_the_displaced() {
        let ring = TraceRing::new(4);
        for i in 0..10 {
            ring.emit(ev(i));
        }
        let snap = ring.snapshot();
        assert_eq!(
            snap.iter().map(|s| s.at_ns).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "the newest `capacity` events survive, oldest first"
        );
        let st = ring.stats();
        assert_eq!(st.emitted, 10);
        assert_eq!(st.dropped, 6);
        assert_eq!(st.retained as usize, snap.len());
    }

    proptest! {
        /// The drop ledger is exact for any emission count and capacity:
        /// at quiescence, emitted == snapshot-visible + dropped.
        #[test]
        fn emitted_equals_retained_plus_dropped(
            cap in 1usize..64,
            n in 0u64..500,
        ) {
            let ring = TraceRing::new(cap);
            for i in 0..n {
                ring.emit(ev(i));
            }
            let st = ring.stats();
            prop_assert_eq!(st.emitted, n);
            let snap = ring.snapshot();
            prop_assert_eq!(st.retained as usize, snap.len());
            prop_assert_eq!(st.emitted, st.retained + st.dropped);
            // Retention is bounded by capacity and keeps the suffix.
            prop_assert!(snap.len() as u64 <= st.capacity);
            let expect_first = n.saturating_sub(st.capacity);
            let got: Vec<u64> = snap.iter().map(|s| s.at_ns).collect();
            let want: Vec<u64> = (expect_first..n).collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn concurrent_writers_never_break_the_ledger() {
        let ring = std::sync::Arc::new(TraceRing::new(64));
        let writers = 8u64;
        let per = 5000u64;
        let handles: Vec<_> = (0..writers)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        ring.emit(ev(t * per + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let st = ring.stats();
        assert_eq!(st.emitted, writers * per);
        assert_eq!(st.emitted, st.retained + st.dropped, "{st:?}");
        let snap = ring.snapshot();
        assert_eq!(snap.len() as u64, st.retained, "{st:?}");
        // Every retained event is one that was actually emitted (no
        // torn payloads): bytes mirrors the write index.
        for s in snap {
            match s.event {
                TraceEvent::BufferSwap { bytes, commands } => {
                    assert_eq!(bytes, s.at_ns);
                    assert_eq!(commands, s.at_ns as u32);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }
}

/// Model-checked interleaving exploration of the per-slot seqlock.
///
/// Under a plain `cargo test` each model runs once with real threads (a
/// smoke test); under `RUSTFLAGS="--cfg loom"` the `eris-sync` facade
/// swaps in the loom shim and every schedule within the preemption
/// bound (`LOOM_MAX_PREEMPTIONS`, default 2) is explored exhaustively.
/// Run with `cargo test -p eris-obs --lib loom_`.
///
/// Fidelity note: the shim explores interleavings under sequential
/// consistency only (see `shims/loom`), so it checks the slot-claim
/// and ledger protocol, not C11 reordering.  The reader-side Acquire
/// *fence* bug in `snapshot` (a bare Acquire validation load lets the
/// payload copy sink below it) was found by review against the
/// canonical crossbeam `SeqLock::validate_read` pattern, not by these
/// models — an SC explorer cannot exhibit it.  The ledger models are
/// mutation-tested: dropping the abandon-path `dropped` charge makes
/// `loom_emitted_equals_retained_plus_dropped_under_overwrite` fail.
#[cfg(test)]
mod loom_models {
    use super::*;
    use crate::event::TraceEvent;
    use eris_sync::sync::Arc;
    use eris_sync::{model, thread};

    /// A well-formed event whose fields are mutually redundant, so any
    /// torn mix of two events is detectable.
    fn ev(i: u64) -> Stamped {
        Stamped {
            at_ns: i,
            aeu: 0,
            event: TraceEvent::BufferSwap {
                bytes: i,
                commands: i as u32,
            },
        }
    }

    fn assert_coherent(s: &Stamped) {
        match s.event {
            TraceEvent::BufferSwap { bytes, commands } => {
                assert_eq!(bytes, s.at_ns, "payload torn across writers");
                assert_eq!(commands, s.at_ns as u32, "payload torn across writers");
            }
            ref other => panic!("unexpected event {other:?}"),
        }
    }

    /// A snapshot racing two writers in the same two-slot ring never
    /// observes a torn payload: every returned event is one that some
    /// writer emitted, bit-for-bit.
    #[test]
    fn loom_seqlock_readers_never_observe_torn_slots() {
        model(|| {
            let ring = Arc::new(TraceRing::new(2));
            let handles: Vec<_> = [1u64, 2u64]
                .into_iter()
                .map(|i| {
                    let ring = Arc::clone(&ring);
                    thread::spawn(move || ring.emit(ev(i)))
                })
                .collect();
            // Race a snapshot against the in-flight writers.
            for s in ring.snapshot() {
                assert_coherent(&s);
            }
            for h in handles {
                h.join().unwrap();
            }
            // At quiescence everything emitted is readable and coherent.
            let snap = ring.snapshot();
            let st = ring.stats();
            assert_eq!(st.emitted, 2);
            assert_eq!(st.emitted, st.retained + st.dropped, "{st:?}");
            assert_eq!(snap.len() as u64, st.retained, "{st:?}");
            for s in &snap {
                assert_coherent(s);
            }
        });
    }

    /// Conservation under overwrite pressure: four emissions into a
    /// two-slot ring displace at least two events, and at quiescence
    /// `emitted == retained + dropped` holds exactly at every
    /// interleaving — including the abandon path where a late writer
    /// finds a newer generation already in its slot.
    #[test]
    fn loom_emitted_equals_retained_plus_dropped_under_overwrite() {
        model(|| {
            let ring = Arc::new(TraceRing::new(2));
            let handles: Vec<_> = [0u64, 1u64]
                .into_iter()
                .map(|t| {
                    let ring = Arc::clone(&ring);
                    thread::spawn(move || {
                        ring.emit(ev(t * 2 + 1));
                        ring.emit(ev(t * 2 + 2));
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let st = ring.stats();
            assert_eq!(st.emitted, 4);
            assert_eq!(st.emitted, st.retained + st.dropped, "ledger leaks: {st:?}");
            let snap = ring.snapshot();
            assert_eq!(snap.len() as u64, st.retained, "{st:?}");
            assert!(st.retained <= 2, "a two-slot ring retains at most two");
            for s in &snap {
                assert_coherent(s);
            }
        });
    }
}
