//! Histogram exemplars: one seqlock slot per log2 latency bucket
//! retaining the most recent traced request that landed there, so a
//! tail-bucket outlier in the exported histogram links directly to a
//! full-path trace (trace id + span breakdown) without scanning rings.
//!
//! ## Concurrency
//!
//! Writers are the executing AEUs (any thread that records into the
//! latency table); readers are exporters.  Each bucket slot is the same
//! per-slot seqlock as the trace rings: a per-slot write counter claims
//! a unique generation with one `fetch_add`, the sequence word encodes
//! `(write + 1) << 1 | busy`, and readers copy optimistically and
//! discard torn reads.  Unlike the rings there is no conservation
//! ledger — exemplars are deliberately last-write-wins (the *most
//! recent* occupant of a bucket is the useful one), so a displaced or
//! abandoned exemplar is not an accounting event.
//!
//! The module is written against the `eris-sync` facade, so a build
//! with `RUSTFLAGS="--cfg loom"` model-checks the exact shipping
//! protocol (see the `loom_models` test module).

use crate::latency::LATENCY_BUCKETS;
use eris_sync::cell::UnsafeCell;
use eris_sync::hint;
use eris_sync::sync::atomic::{fence, AtomicU64, Ordering};

/// The span breakdown of one traced request, retained per bucket.
///
/// `total_ns` is redundantly the sum of the four spans; readers (and
/// the loom torn-read model) use that to detect an incoherent mix of
/// two writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// [`crate::TraceStamp::trace_id`] of the retained request.
    pub trace_id: u64,
    /// Host-clock time the exemplar was recorded.
    pub at_ns: u64,
    /// Full-path latency: `net + admit + queue + exec`.
    pub total_ns: u64,
    /// Network-queue span (0 for engine-born traces).
    pub net_ns: u64,
    /// Admission span (0 for engine-born traces).
    pub admit_ns: u64,
    /// Routing-queue span (submit to start of the coalesced batch).
    pub queue_ns: u64,
    /// Execution span.
    pub exec_ns: u64,
    /// Stray-forwarding hops.
    pub hops: u32,
    /// Originating tenant ([`crate::TENANT_NONE`] for engine-born).
    pub tenant: u32,
}

const PLACEHOLDER: Exemplar = Exemplar {
    trace_id: 0,
    at_ns: 0,
    total_ns: 0,
    net_ns: 0,
    admit_ns: 0,
    queue_ns: 0,
    exec_ns: 0,
    hops: 0,
    tenant: 0,
};

struct Slot {
    /// `0` = never written; else `(write + 1) << 1 | busy_bit`.
    seq: AtomicU64,
    /// Writes offered to this slot (each `record` claims one).
    head: AtomicU64,
    data: UnsafeCell<Exemplar>,
}

/// One seqlock exemplar slot per latency bucket.
pub struct ExemplarTable {
    slots: Box<[Slot]>,
}

// SAFETY: slot payloads are only read/written under the per-slot
// sequence protocol; torn reads are detected and discarded.
unsafe impl Sync for ExemplarTable {}
unsafe impl Send for ExemplarTable {}

impl Default for ExemplarTable {
    fn default() -> Self {
        let slots = (0..LATENCY_BUCKETS)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                head: AtomicU64::new(0),
                data: UnsafeCell::new(PLACEHOLDER),
            })
            .collect();
        ExemplarTable { slots }
    }
}

impl ExemplarTable {
    /// Retain `ex` as bucket `bucket`'s exemplar.  Wait-free except for
    /// a bounded spin when another writer is mid-write in the same
    /// bucket; a writer that loses the generation race simply abandons
    /// (a newer exemplar is already there or imminent).
    // HOT-PATH-ROOT: called per sampled command on the latency path;
    // same wait-free seqlock discipline as the trace ring.
    pub fn record(&self, bucket: usize, ex: Exemplar) {
        // BOUNDS: the bucket index is clamped to the fixed table size.
        let slot = &self.slots[bucket.min(LATENCY_BUCKETS - 1)];
        // ordering: Relaxed — the write counter only needs atomicity;
        // payload publication is ordered by the per-slot seqlock below.
        let pos = slot.head.fetch_add(1, Ordering::Relaxed);
        let done = (pos + 1) << 1;
        let busy = done | 1;
        loop {
            // ordering: Acquire pairs with the Release completion store
            // of whichever writer last owned this slot;
            // pairs-with: exemplar-slot-seq.
            let cur = slot.seq.load(Ordering::Acquire);
            if cur >= done {
                // A newer write already owns this bucket: ours is stale
                // before it was ever readable — last-write-wins.
                return;
            }
            if cur & 1 == 1 {
                hint::spin_loop();
                continue;
            }
            // ordering: Acquire on success — the claim is a lock
            // acquire: an acquire RMW forbids the payload write below
            // from floating above it, so readers can never see new
            // bytes under an old even sequence.  Failure is Relaxed;
            // the retry re-reads with Acquire above.
            if slot
                .seq
                .compare_exchange_weak(cur, busy, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                slot.data.with_mut(|p| {
                    // SAFETY: the busy bit exclusively claims the slot.
                    unsafe { std::ptr::write_volatile(p, ex) }
                });
                // ordering: Release publishes the payload before the
                // even sequence that readers validate against;
                // pairs-with: exemplar-slot-seq.
                slot.seq.store(done, Ordering::Release);
                return;
            }
        }
    }

    /// Copy out every bucket's current exemplar (`None` = never
    /// written).  Torn slots (an in-flight overwrite) are skipped after
    /// a bounded number of attempts — the next export sees the slot.
    pub fn snapshot(&self) -> Vec<Option<Exemplar>> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let mut got = None;
            for _ in 0..8 {
                // ordering: Acquire pairs with a completing writer's
                // Release store, so an even sequence implies its
                // payload bytes are visible below;
                // pairs-with: exemplar-slot-seq.
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 {
                    break;
                }
                if s1 & 1 == 1 {
                    hint::spin_loop();
                    continue;
                }
                let data = slot.data.with(|p| {
                    // SAFETY: optimistic copy; a torn or stale payload
                    // is discarded by the sequence validation below.
                    unsafe { std::ptr::read_volatile(p) }
                });
                // ordering: the Acquire fence pins the payload copy
                // above the validation load — an Acquire *load* alone
                // would not, since prior accesses may reorder past it.
                // This is the canonical seqlock read-side fence
                // (crossbeam's SeqLock::validate_read does the same).
                fence(Ordering::Acquire);
                // ordering: Relaxed — the fence above already orders
                // this validation load against the payload copy.
                if slot.seq.load(Ordering::Relaxed) == s1 {
                    got = Some(data);
                    break;
                }
            }
            out.push(got);
        }
        out
    }

    /// Forget every exemplar (start of a measurement window).  Callers
    /// must be quiesced — concurrent writers would race the zeroing.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            // ordering: Relaxed — reset is a quiescent-state operation;
            // no payload is published through these stores.
            slot.seq.store(0, Ordering::Relaxed);
            slot.head.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for ExemplarTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let filled = self.snapshot().iter().flatten().count();
        f.debug_struct("ExemplarTable")
            .field("buckets", &LATENCY_BUCKETS)
            .field("filled", &filled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::bucket_of;

    fn ex(v: u64) -> Exemplar {
        Exemplar {
            trace_id: v,
            at_ns: v,
            total_ns: 4 * v,
            net_ns: v,
            admit_ns: v,
            queue_ns: v,
            exec_ns: v,
            hops: v as u32,
            tenant: v as u32,
        }
    }

    #[test]
    fn empty_table_snapshots_all_none() {
        let t = ExemplarTable::default();
        assert!(t.snapshot().iter().all(|s| s.is_none()));
    }

    #[test]
    fn last_write_wins_per_bucket() {
        let t = ExemplarTable::default();
        t.record(3, ex(1));
        t.record(3, ex(2));
        t.record(7, ex(9));
        let snap = t.snapshot();
        assert_eq!(snap[3], Some(ex(2)));
        assert_eq!(snap[7], Some(ex(9)));
        assert!(snap[0].is_none());
        t.reset();
        assert!(t.snapshot().iter().all(|s| s.is_none()));
    }

    #[test]
    fn out_of_range_bucket_saturates() {
        let t = ExemplarTable::default();
        t.record(LATENCY_BUCKETS + 10, ex(5));
        assert_eq!(t.snapshot()[LATENCY_BUCKETS - 1], Some(ex(5)));
    }

    #[test]
    fn bucket_of_total_matches_histogram_bucketing() {
        // The exemplar a tail bucket retains must be one whose total
        // would land in that same histogram bucket.
        for total in [1u64, 100, 5_000, 1 << 20] {
            let t = ExemplarTable::default();
            let mut e = ex(1);
            e.total_ns = total;
            e.net_ns = total;
            t.record(bucket_of(total), e);
            assert_eq!(t.snapshot()[bucket_of(total)].unwrap().total_ns, total);
        }
    }

    #[test]
    fn concurrent_writers_never_tear_an_exemplar() {
        let t = std::sync::Arc::new(ExemplarTable::default());
        let handles: Vec<_> = (1..=8u64)
            .map(|w| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..2000 {
                        t.record((i % LATENCY_BUCKETS as u64) as usize, ex(w * 10_000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for e in t.snapshot().iter().flatten() {
            assert_eq!(e.total_ns, 4 * e.trace_id, "torn exemplar: {e:?}");
            assert_eq!(e.net_ns, e.trace_id);
            assert_eq!(e.exec_ns, e.trace_id);
        }
    }
}

/// Model-checked interleaving exploration of the per-bucket seqlock —
/// the satellite "seqlock-exemplar torn-read test in the mini-loom
/// harness".
///
/// Under a plain `cargo test` each model runs once with real threads (a
/// smoke test); under `RUSTFLAGS="--cfg loom"` the `eris-sync` facade
/// swaps in the loom shim and every schedule within the preemption
/// bound is explored exhaustively.  Run with
/// `cargo test -p eris-obs --lib loom_`.
///
/// Fidelity note: like the ring models, the shim explores interleavings
/// under sequential consistency only, so these models check the
/// slot-claim protocol (busy-bit exclusion, generation staleness, a
/// coherent quiescent winner), not C11 reordering.  As with the rings,
/// the reader-side Acquire *fence* in `snapshot` is justified by review
/// against the canonical crossbeam `SeqLock::validate_read` pattern —
/// an SC explorer cannot exhibit the reordering it prevents.
#[cfg(test)]
mod loom_models {
    use super::*;
    use eris_sync::sync::Arc;
    use eris_sync::{model, thread};

    /// An exemplar whose fields are mutually redundant, so any torn mix
    /// of two exemplars is detectable.
    fn ex(v: u64) -> Exemplar {
        Exemplar {
            trace_id: v,
            at_ns: v,
            total_ns: 4 * v,
            net_ns: v,
            admit_ns: v,
            queue_ns: v,
            exec_ns: v,
            hops: v as u32,
            tenant: v as u32,
        }
    }

    fn assert_coherent(e: &Exemplar) {
        assert_eq!(e.total_ns, 4 * e.trace_id, "payload torn across writers");
        assert_eq!(
            e.total_ns,
            e.net_ns + e.admit_ns + e.queue_ns + e.exec_ns,
            "span sum torn across writers"
        );
        assert_eq!(e.at_ns, e.trace_id, "payload torn across writers");
        assert_eq!(e.hops as u64, e.trace_id, "payload torn across writers");
    }

    /// A snapshot racing two writers into the same bucket never
    /// observes a torn exemplar, and at quiescence the bucket holds one
    /// of the two writes bit-for-bit.
    #[test]
    fn loom_exemplar_readers_never_observe_torn_slots() {
        model(|| {
            let t = Arc::new(ExemplarTable::default());
            let handles: Vec<_> = [1u64, 2u64]
                .into_iter()
                .map(|i| {
                    let t = Arc::clone(&t);
                    thread::spawn(move || t.record(5, ex(i)))
                })
                .collect();
            // Race a snapshot against the in-flight writers.
            for e in t.snapshot().iter().flatten() {
                assert_coherent(e);
            }
            for h in handles {
                h.join().unwrap();
            }
            // At quiescence the bucket holds a coherent exemplar (one
            // writer may have abandoned to the newer generation).
            let snap = t.snapshot();
            let got = snap[5].expect("at least one write completed");
            assert_coherent(&got);
            assert!(got.trace_id == 1 || got.trace_id == 2);
            assert!(snap.iter().enumerate().all(|(b, s)| b == 5 || s.is_none()));
        });
    }
}
